//! Quickstart: the paper's Example 3 (Fig. 5) end to end.
//!
//! Builds the one-latch model, extracts its FSM, derives the exact `T_M`
//! formula of Definition 4, and then runs a miniature design-intent-coverage
//! check against it.
//!
//! Run with: `cargo run --release --example quickstart`

use specmatcher::core::tm::{enumerated_tm, relational_tm};
use specmatcher::core::{ArchSpec, GapConfig, RtlSpec, SpecMatcher};
use specmatcher::designs::simple;
use specmatcher::fsm::extract_fsm;
use specmatcher::ltl::Ltl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- The Fig. 5 model: c' = a & b, reset to 0 -------------------------
    let (mut table, module) = simple::model();
    println!("== SNL of the model ==\n{}", module.to_snl(&table));

    // ---- FSM extraction (Section 3) ---------------------------------------
    let fsm = extract_fsm(&module, &table, true)?;
    println!(
        "extracted FSM: {} states, {} transitions (input guards merged)",
        fsm.num_states(),
        fsm.num_transitions()
    );
    println!("{}", fsm.to_dot(&table));

    // ---- T_M (Definition 4) ------------------------------------------------
    let tm_enum = enumerated_tm(&module, &table, true)?;
    let tm_rel = relational_tm(&module);
    println!("T_M (enumerated, as in the paper):\n  {}", tm_enum.display(&table));
    println!("T_M (relational, equivalent):\n  {}", tm_rel.display(&table));

    // ---- A miniature coverage run ------------------------------------------
    // Architectural intent: if p and q then c two cycles later; RTL property
    // of the (unmodeled) front-end: p & q propagate to a & b.
    let arch = ArchSpec::new([(
        "A1",
        Ltl::parse("G(p & q -> X X c)", &mut table)?,
    )]);
    let rtl = RtlSpec::new(
        [
            ("R1", Ltl::parse("G(p -> X a)", &mut table)?),
            ("R2", Ltl::parse("G(q -> X b)", &mut table)?),
        ],
        [module],
    );
    let run = SpecMatcher::new(GapConfig::default()).check(&arch, &rtl, &table)?;
    println!("== coverage ==\n{}", run.render(&table));
    assert!(run.all_covered(), "this decomposition is sound and complete");
    Ok(())
}
