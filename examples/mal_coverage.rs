//! The paper's running example, end to end: Examples 1, 2 and 4.
//!
//! * Example 1 (Fig. 2): the RTL spec of the arbiter plus the RTL of `M1`
//!   and `L1` **covers** the priority intent `A` — the primary coverage
//!   question (Theorem 1) is answered by model checking `¬A ∧ R` in `M`.
//! * Example 2 (Fig. 4): the rewired MAL has a genuine coverage gap; the
//!   tool enumerates uncovered terms (Algorithm 1, step 2(a/b)), pushes
//!   them into `A`'s parse tree and weakens variable instances
//!   (steps 2(c/d)) to produce a structure-preserving gap property like the
//!   paper's `U`, then proves it closes the gap (Definition 3).
//!
//! Run with: `cargo run --release --example mal_coverage`

use specmatcher::core::{closes_gap, CoverageModel, GapConfig, SpecMatcher};
use specmatcher::designs::mal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let matcher = SpecMatcher::new(GapConfig::default());

    // ---- Example 1: coverage holds -----------------------------------------
    let ex1 = mal::ex1();
    println!("==== Example 1 (Fig. 2) ====");
    println!("architectural intent:");
    for p in ex1.arch.properties() {
        println!("  {} = {}", p.name(), p.formula().display(&ex1.table));
    }
    println!("RTL properties of PrA (+ environment):");
    for p in ex1.rtl.properties() {
        println!("  {} = {}", p.name(), p.formula().display(&ex1.table));
    }
    let run1 = ex1.check(&matcher)?;
    print!("{}", run1.render(&ex1.table));
    assert!(run1.all_covered(), "Example 1 must be covered");

    // ---- Example 2: the gap -------------------------------------------------
    let mut ex2 = mal::ex2();
    println!("\n==== Example 2 (Fig. 4) ====");
    let run2 = ex2.check(&matcher)?;
    print!("{}", run2.render(&ex2.table));
    assert!(!run2.all_covered(), "Example 2 must have a gap");

    // ---- Example 4: the paper's U closes the gap ----------------------------
    println!("\n==== Example 4: checking the paper's gap property U ====");
    let u = mal::paper_gap_property(&mut ex2);
    println!("U = {}", u.display(&ex2.table));
    let model = CoverageModel::build(&ex2.arch, &ex2.rtl, &ex2.table)?;
    let fa = ex2.arch.properties()[0].formula();
    println!(
        "A stronger than U (Def. 2): {}",
        specmatcher::automata::stronger_than(fa, &u)
    );
    let closed = closes_gap(&u, fa, &ex2.rtl, &model)?;
    println!("U closes the coverage gap (Def. 3): {closed}");
    assert!(closed);
    Ok(())
}
