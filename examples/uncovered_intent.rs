//! Definition 5 — the *uncovered architectural intent* — and iterative
//! gap closure.
//!
//! The gap properties of Algorithm 1 may mention any observable signal
//! (the paper's `U` mentions the cache input `hit`). Definition 5 asks a
//! stricter question: what is the weakest property **in the intent's own
//! vocabulary** (`AP_A`) that closes the hole? This example contrasts the
//! two on a small bus-bridge spec, then shows `close_gap_iteratively`
//! composing several single-instance weakenings when one is not enough.
//!
//! Run with `cargo run --release --example uncovered_intent`.

use dic_core::{
    close_gap_iteratively, find_gap, uncovered_intent, uncovered_terms, ArchSpec, CoverageModel,
    GapConfig, RtlSpec,
};
use dic_logic::SignalTable;
use dic_ltl::Ltl;
use dic_netlist::ModuleBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut t = SignalTable::new();

    // A bus bridge: requests are queued (`pend`), granted downstream as
    // `gnt`, and the response `rsp` is latched back. The architectural
    // intent speaks about `req`, `busy` and `rsp`; the RTL team wrote one
    // property for the (property-specified) downstream arbiter and gave us
    // the bridge glue as RTL.
    let a1 = Ltl::parse("G(req -> X X rsp)", &mut t)?;
    let a2 = Ltl::parse("G(busy & req -> F rsp)", &mut t)?; // puts busy in AP_A
    let r1 = Ltl::parse("G(req & !busy -> X gnt)", &mut t)?;

    let glue = {
        let mut b = ModuleBuilder::new("bridge", &mut t);
        let gnt = b.input("gnt");
        let rsp = b.latch_from("rsp", gnt, false);
        b.mark_output(rsp);
        b.finish()?
    };

    let arch = ArchSpec::new([("A1", a1.clone()), ("A2", a2)]);
    let rtl = RtlSpec::new([("R1", r1)], [glue]);
    let model = CoverageModel::build(&arch, &rtl, &t)?;
    let config = GapConfig::default();

    println!("intent A1 = {}", a1.display(&t));
    println!("RTL spec covers it? — no: R1 is silent when busy is high.\n");

    // Algorithm 1's gap properties: free to mention any observable signal.
    let terms = uncovered_terms(&a1, &rtl, &model, &config)?;
    let gaps = find_gap(&a1, &terms, &rtl, &model, &config)?;
    println!("== Algorithm 1 gap properties (over all observables):");
    for g in &gaps {
        println!("  {}", g.describe(&t));
    }

    // Definition 5: restricted to AP_A = {req, busy, rsp}.
    println!("\n== Uncovered architectural intent (Definition 5, over AP_A):");
    match uncovered_intent(&a1, &arch, &rtl, &model, &config)? {
        Some(g) => {
            println!("  {}", g.formula.display(&t));
            let ap_a = arch.alphabet();
            assert!(g.formula.atoms().is_subset(&ap_a));
            println!("  (verified: closes the gap, alphabet within AP_A)");
        }
        None => println!("  none — the gap genuinely needs non-AP_A conditions"),
    }

    // Iterative closure: strengthen instance by instance until closed.
    println!("\n== Iterative closure:");
    match close_gap_iteratively(&a1, &rtl, &model, &config, 4)? {
        Some((formula, rounds)) => {
            println!("  closed after {rounds} round(s): {}", formula.display(&t));
        }
        None => println!("  not closed within the round budget"),
    }
    Ok(())
}
