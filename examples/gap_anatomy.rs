//! Anatomy of Algorithm 1 on the paper's Example 2 (Fig. 4).
//!
//! Walks the gap-finding pipeline phase by phase, printing the
//! intermediate objects the paper describes: the refuting run (primary
//! coverage), the uncovered terms `UM` (step 2(a)/(b)), the variable
//! instances of `A` they are pushed against (step 2(c)), and the final
//! structure-preserving gap properties (step 2(d)) — among them the
//! paper's
//!
//! ```text
//! U = G(!wait & r1 & X(r1 U (r2 & X !hit)) -> X(!d2 U d1))
//! ```
//!
//! Run with `cargo run --release --example gap_anatomy`.

use dic_core::{
    closes_gap, find_gap, primary_coverage, uncovered_terms, CoverageModel, GapConfig,
};
use dic_designs::mal;
use dic_ltl::LtlNode;
use std::time::Instant;

fn main() {
    let d = mal::ex2();
    let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("model builds");
    let fa = d.arch.properties()[0].formula();
    let config = GapConfig::default();

    println!("== Design: {} (paper Fig. 4)", d.name);
    println!("architectural intent A = {}", fa.display(&d.table));
    for p in d.rtl.properties() {
        println!("  RTL property {:>5} = {}", p.name(), p.formula().display(&d.table));
    }
    for m in d.rtl.concrete() {
        println!(
            "  concrete module {} ({} wires, {} latches)",
            m.name(),
            m.wires().len(),
            m.latches().len()
        );
    }

    // Phase 1 — the primary coverage question (Theorem 1).
    let t0 = Instant::now();
    let witness = primary_coverage(fa, &d.rtl, &model).expect("within backend limits");
    println!("\n== Primary coverage (Theorem 1): {:?}", t0.elapsed());
    let Some(run) = witness else {
        println!("covered — nothing to explain");
        return;
    };
    println!("NOT covered; a run passing R but refuting A (loop at t{}):", run.loop_start());
    for (i, st) in run.states().iter().enumerate() {
        let mark = if i == run.loop_start() { "->" } else { "  " };
        println!("  {mark} t{i}: {}", st.display(&d.table));
    }

    // Phase 2 — uncovered terms UM (steps 2(a)/(b)).
    let t1 = Instant::now();
    let terms = uncovered_terms(fa, &d.rtl, &model, &config).expect("within backend limits");
    println!("\n== Uncovered terms UM ({} terms, {:?}):", terms.len(), t1.elapsed());
    for term in &terms {
        println!("  {}", term.display(&d.table));
    }

    // Phase 3 — where the terms land in A's parse tree (step 2(c)).
    println!("\n== Variable instances of A (push targets):");
    for occ in fa.atom_occurrences() {
        let LtlNode::Atom(id) = occ.subformula.node() else {
            continue;
        };
        println!(
            "  {:<5} at {:<16} X-depth {}  polarity {:?}  unbounded-depth {}",
            d.table.name(*id),
            occ.position.to_string(),
            occ.x_depth,
            occ.polarity,
            occ.unbounded_depth,
        );
    }

    // Phase 4 — weakening and verification (step 2(d)).
    let t2 = Instant::now();
    let gaps = find_gap(fa, &terms, &d.rtl, &model, &config).expect("within backend limits");
    println!(
        "\n== Gap properties ({} closing candidates, {:?}; weakest first):",
        gaps.len(),
        t2.elapsed()
    );
    for g in &gaps {
        println!("  {}", g.describe(&d.table));
    }

    // Every reported property is re-verified here, end to end.
    for g in &gaps {
        assert!(dic_automata::stronger_than(fa, &g.formula));
        assert!(closes_gap(&g.formula, fa, &d.rtl, &model).expect("within backend limits"));
    }
    println!("\nall {} gap properties re-verified: weaker than A and gap-closing", gaps.len());
}
