//! The ARM AMBA AHB coverage run (Table 1, third row).
//!
//! Arbiter as RTL, masters and slave as 29 properties, one system-level
//! priority property. Prints the full coverage report with the per-phase
//! timing breakdown the paper tabulates.
//!
//! Run with: `cargo run --release --example amba_ahb`

use specmatcher::core::{GapConfig, SpecMatcher};
use specmatcher::designs::amba;
use specmatcher::fsm::extract_fsm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = amba::ahb29();
    println!("design: {} ({} RTL properties)", design.name, design.rtl.num_properties());

    // The concrete arbiter, as the tool sees it.
    let arbiter = &design.rtl.concrete()[0];
    println!("\n== arbiter RTL ==\n{}", arbiter.to_snl(&design.table));
    let fsm = extract_fsm(arbiter, &design.table, true)?;
    println!(
        "arbiter FSM: {} states, {} transitions",
        fsm.num_states(),
        fsm.num_transitions()
    );

    println!("\n== architectural intent ==");
    for p in design.arch.properties() {
        println!("  {} = {}", p.name(), p.formula().display(&design.table));
    }

    // Bounded gap budget keeps the demo interactive; crank it up for the
    // full candidate sweep.
    let config = GapConfig {
        max_terms: 3,
        max_candidates: 32,
        ..GapConfig::default()
    };
    let run = design.check(&SpecMatcher::new(config))?;
    println!("\n== coverage report ==");
    print!("{}", run.render(&design.table));
    Ok(())
}
