//! Regenerates the paper's Fig. 3 timing diagrams by simulating the MAL.
//!
//! Scenario (a): cache hit for `r1` — the data signal `d1` follows the
//! grant promptly. Scenario (b): cache miss for `r1` — `wait` rises and
//! holds until `hit`, and `d1` fires with the arriving data.
//!
//! Run with: `cargo run --release --example timing_diagram`

use specmatcher::designs::mal;
use specmatcher::netlist::{Module, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = mal::ex1();
    let t = &design.table;
    let sig = |name: &str| {
        t.lookup(name)
            .unwrap_or_else(|| panic!("signal {name} must exist in the MAL"))
    };
    let (r1, r2, hit) = (sig("r1"), sig("r2"), sig("hit"));
    let (n1, n2) = (sig("n1"), sig("n2"));
    let shown = vec![
        sig("r1"),
        sig("r2"),
        sig("g1"),
        sig("g2"),
        sig("hit"),
        sig("wait"),
        sig("d1"),
        sig("d2"),
    ];

    // The concrete modules (M1 + L1); the arbiter is property-specified, so
    // the simulation drives n1/n2 the way the properties dictate
    // (n1 follows r1 by one cycle, n2 follows !r1 & r2).
    let composed = Module::compose("MAL", &[&design.rtl.concrete()[0], &design.rtl.concrete()[1]], t)?;

    println!("== Fig. 3(a): cache hit for r1 ==");
    let mut sim = Simulator::new(&composed, t)?;
    let trace = sim.run(&[
        // cycle 0: r1 pulses
        vec![(r1, true), (r2, false), (hit, false), (n1, false), (n2, false)],
        // cycle 1: arbiter raises n1; cache hits immediately; r2 arrives
        vec![(r1, false), (r2, true), (hit, true), (n1, true), (n2, false)],
        // cycle 2: d1 delivered; arbiter turns to r2
        vec![(r2, false), (hit, true), (n1, false), (n2, true)],
        // cycle 3: d2 delivered
        vec![(hit, false), (n2, false)],
        vec![],
    ]);
    print!("{}", trace.render(t, &shown));

    println!("\n== Fig. 3(b): cache miss for r1 ==");
    let mut sim = Simulator::new(&composed, t)?;
    let trace = sim.run(&[
        // cycle 0: r1 pulses
        vec![(r1, true), (r2, false), (hit, false), (n1, false), (n2, false)],
        // cycle 1: grant for r1 — but the cache misses
        vec![(r1, false), (r2, true), (hit, false), (n1, true), (n2, false)],
        // cycles 2-3: wait holds; the arbiter decision for r2 is masked
        vec![(r2, false), (hit, false), (n1, false), (n2, true)],
        vec![(hit, false), (n2, true)],
        // cycle 4: the data arrives — d1 fires with the hit
        vec![(hit, true), (n2, true)],
        // cycle 5: wait clears, r2's grant can finally pass
        vec![(hit, false), (n2, true)],
        vec![(hit, true), (n2, false)],
        vec![],
    ]);
    print!("{}", trace.render(t, &shown));
    Ok(())
}
