//! **specmatcher** — design intent coverage with RTL blocks.
//!
//! This is the facade crate of the workspace reproducing *"What lies
//! between Design Intent Coverage and Model Checking?"* (DATE 2006). It
//! re-exports the layered crates:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | Boolean | [`logic`] | signals, cubes, expressions, BDDs |
//! | Temporal | [`ltl`] | LTL AST, parser, lasso semantics, temporal cubes |
//! | RTL | [`netlist`] | modules, SNL format, simulator |
//! | Semantics | [`fsm`] | FSM extraction, Kripke structures |
//! | Checking | [`automata`] | GPVW, emptiness, model checker |
//! | Symbolic | [`symbolic`] | BDD transition relations, reachability, fair cycles |
//! | Coverage | [`core`] | Theorems 1–2, Algorithm 1, backend selection, the SpecMatcher pipeline |
//! | Workloads | [`designs`] | MAL, AMBA AHB, pipeline, scaling generators |
//! | Observability | [`trace`] | spans, engine counters, profile tree, JSONL trace sink |
//! | Governance | [`fault`] | cooperative deadlines, deterministic fault injection |
//!
//! See the workspace `README.md` for a guided tour, `DESIGN.md` for the
//! architecture and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Example
//!
//! ```
//! use specmatcher::core::{GapConfig, SpecMatcher};
//! use specmatcher::designs::mal;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ex2 = mal::ex2();
//! let run = ex2.check(&SpecMatcher::new(GapConfig::default()))?;
//! assert!(!run.all_covered()); // the paper's Example 2 gap
//! # Ok(())
//! # }
//! ```
//!
//! # Failure modes
//!
//! The pipeline fails *closed*: ill-posed inputs are rejected with a
//! [`core::CoreError`] instead of producing a vacuous verdict. The
//! paper's Assumption 1 requires every architectural signal to appear in
//! the RTL specification (`AP_A ⊆ AP_R`) — intent over a signal the spec
//! never mentions can never be covered by decomposition:
//!
//! ```
//! use specmatcher::core::{ArchSpec, CoreError, GapConfig, RtlSpec, SpecMatcher};
//! use specmatcher::logic::SignalTable;
//! use specmatcher::ltl::Ltl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut t = SignalTable::new();
//! // Intent mentions `ghost`; the RTL spec only ever talks about `a`.
//! let arch = ArchSpec::new([("A", Ltl::parse("G(ghost -> X a)", &mut t)?)]);
//! let rtl = RtlSpec::new([("R", Ltl::parse("G a", &mut t)?)], []);
//!
//! let err = SpecMatcher::new(GapConfig::default())
//!     .check(&arch, &rtl, &t)
//!     .unwrap_err();
//! assert!(matches!(err, CoreError::UnknownArchSignal { ref name } if name == "ghost"));
//! assert!(err.to_string().contains("Assumption 1"));
//! # Ok(())
//! # }
//! ```
//!
//! Malformed property text is a parse error, never a panic:
//!
//! ```
//! use specmatcher::logic::SignalTable;
//! use specmatcher::ltl::Ltl;
//!
//! let mut t = SignalTable::new();
//! assert!(Ltl::parse("G(req -> X", &mut t).is_err()); // unbalanced paren
//! assert!(Ltl::parse("", &mut t).is_err());           // empty input
//! ```
//!
//! [`SignalId`](logic::SignalId)s, by contrast, are *capabilities*: they
//! are only meaningful relative to the [`SignalTable`](logic::SignalTable)
//! that issued them, and resolving a foreign id is a programming error
//! that panics rather than misrendering another design's report:
//!
//! ```should_panic
//! use specmatcher::logic::SignalTable;
//!
//! let mut mine = SignalTable::new();
//! let mut theirs = SignalTable::new();
//! mine.intern("clk");
//! theirs.intern("a");
//! theirs.intern("b");
//! let foreign = theirs.intern("c");
//! mine.name(foreign); // panics: `mine` never issued this id
//! ```

pub use dic_automata as automata;
pub use dic_core as core;
pub use dic_designs as designs;
pub use dic_fault as fault;
pub use dic_fsm as fsm;
pub use dic_logic as logic;
pub use dic_ltl as ltl;
pub use dic_netlist as netlist;
pub use dic_sat as sat;
pub use dic_symbolic as symbolic;
pub use dic_trace as trace;
