//! **specmatcher** — design intent coverage with RTL blocks.
//!
//! This is the facade crate of the workspace reproducing *"What lies
//! between Design Intent Coverage and Model Checking?"* (DATE 2006). It
//! re-exports the layered crates:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | Boolean | [`logic`] | signals, cubes, expressions, BDDs |
//! | Temporal | [`ltl`] | LTL AST, parser, lasso semantics, temporal cubes |
//! | RTL | [`netlist`] | modules, SNL format, simulator |
//! | Semantics | [`fsm`] | FSM extraction, Kripke structures |
//! | Checking | [`automata`] | GPVW, emptiness, model checker |
//! | Coverage | [`core`] | Theorems 1–2, Algorithm 1, the SpecMatcher pipeline |
//! | Workloads | [`designs`] | MAL, AMBA AHB, pipeline, scaling generators |
//!
//! See the workspace `README.md` for a guided tour, `DESIGN.md` for the
//! architecture and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Example
//!
//! ```
//! use specmatcher::core::{GapConfig, SpecMatcher};
//! use specmatcher::designs::mal;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ex2 = mal::ex2();
//! let run = ex2.check(&SpecMatcher::new(GapConfig::default()))?;
//! assert!(!run.all_covered()); // the paper's Example 2 gap
//! # Ok(())
//! # }
//! ```

pub use dic_automata as automata;
pub use dic_core as core;
pub use dic_designs as designs;
pub use dic_fsm as fsm;
pub use dic_logic as logic;
pub use dic_ltl as ltl;
pub use dic_netlist as netlist;
