//! The `specmatcher` command-line tool.
//!
//! ```text
//! specmatcher check --design <name> [--json]   run a packaged design
//! specmatcher check --snl <file> --spec <file> run user-provided RTL + spec
//! specmatcher table1                           regenerate the paper's Table 1
//! specmatcher fsm --design <name>              dump concrete-module FSMs (DOT)
//! specmatcher list                             list packaged designs
//! ```
//!
//! Spec files contain one property per line:
//!
//! ```text
//! # architectural intent
//! arch A  = G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))
//! # RTL properties
//! rtl R1  = G(r1 -> X n1)
//! rtl FAIR = G F hit
//! ```

use dic_core::{ArchSpec, GapConfig, RtlSpec, SpecMatcher, TmStyle};
use dic_designs::{mal, table1_designs, Design};
use dic_fsm::extract_fsm;
use dic_logic::SignalTable;
use dic_ltl::Ltl;
use dic_netlist::parse_snl;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("specmatcher: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "table1" => cmd_table1(),
        "fsm" => cmd_fsm(&args[1..]),
        "list" => {
            for d in table1_designs() {
                println!("{}", d.name);
            }
            println!("{}", mal::ex1().name);
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; try --help")),
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  specmatcher check --design <name> [--json]\n  specmatcher check --snl <file> --spec <file> [--json]\n  specmatcher table1\n  specmatcher fsm --design <name>\n  specmatcher list"
    );
}

fn option<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn find_design(name: &str) -> Result<Design, String> {
    let mut all = table1_designs();
    all.push(mal::ex1());
    all.into_iter()
        .find(|d| d.name == name)
        .ok_or_else(|| format!("unknown design {name:?}; see `specmatcher list`"))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let json = args.iter().any(|a| a == "--json");
    let matcher = SpecMatcher::new(GapConfig::default());
    let (design, run) = if let Some(name) = option(args, "--design") {
        let design = find_design(name)?;
        let run = design.check(&matcher).map_err(|e| e.to_string())?;
        (design, run)
    } else {
        let snl_path = option(args, "--snl").ok_or("check needs --design or --snl/--spec")?;
        let spec_path = option(args, "--spec").ok_or("check needs --spec with --snl")?;
        let snl = std::fs::read_to_string(snl_path).map_err(|e| format!("{snl_path}: {e}"))?;
        let spec = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
        let mut table = SignalTable::new();
        let modules = parse_snl(&snl, &mut table).map_err(|e| e.to_string())?;
        let (arch, rtl_props) = parse_spec(&spec, &mut table)?;
        let rtl = RtlSpec::new(
            rtl_props.iter().map(|(n, f)| (n.as_str(), f.clone())),
            modules,
        );
        let arch = ArchSpec::new(arch.iter().map(|(n, f)| (n.as_str(), f.clone())));
        let design = Design {
            name: "user",
            table,
            arch,
            rtl,
        };
        let run = design.check(&matcher).map_err(|e| e.to_string())?;
        (design, run)
    };
    if json {
        println!("{}", run.to_json(&design.table));
    } else {
        print!("{}", run.render(&design.table));
    }
    Ok(if run.all_covered() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

type NamedProps = Vec<(String, Ltl)>;

fn parse_spec(src: &str, table: &mut SignalTable) -> Result<(NamedProps, NamedProps), String> {
    let mut arch = Vec::new();
    let mut rtl = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line
            .split_once(char::is_whitespace)
            .ok_or(format!("line {}: expected 'arch'/'rtl' entry", lineno + 1))?;
        let (name, formula_src) = rest
            .split_once('=')
            .ok_or(format!("line {}: expected NAME = FORMULA", lineno + 1))?;
        let formula = Ltl::parse(formula_src.trim(), table)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match kind {
            "arch" => arch.push((name.trim().to_owned(), formula)),
            "rtl" => rtl.push((name.trim().to_owned(), formula)),
            other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
        }
    }
    if arch.is_empty() {
        return Err("spec file declares no architectural (arch) property".into());
    }
    Ok((arch, rtl))
}

fn cmd_table1() -> Result<ExitCode, String> {
    let matcher = SpecMatcher::new(GapConfig::default()).with_tm_style(TmStyle::Enumerated);
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>12}",
        "Circuit", "RTL props", "Primary (s)", "TM (s)", "Gap (s)"
    );
    for design in table1_designs() {
        let run = design.check(&matcher).map_err(|e| e.to_string())?;
        println!(
            "{:<14} {:>9} {:>12.4} {:>12.4} {:>12.4}",
            design.name,
            run.num_rtl_properties,
            run.timings.primary.as_secs_f64(),
            run.timings.tm_build.as_secs_f64(),
            run.timings.gap_find.as_secs_f64(),
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_fsm(args: &[String]) -> Result<ExitCode, String> {
    let name = option(args, "--design").ok_or("fsm needs --design <name>")?;
    let design = find_design(name)?;
    for module in design.rtl.concrete() {
        let fsm = extract_fsm(module, &design.table, true).map_err(|e| e.to_string())?;
        println!("// module {} ({} states)", module.name(), fsm.num_states());
        println!("{}", fsm.to_dot(&design.table));
    }
    Ok(ExitCode::SUCCESS)
}
