//! The `specmatcher` command-line tool.
//!
//! ```text
//! specmatcher check --design <name> [--backend B] [--reorder M] [--partition P] [--jobs N] [--bmc M] [--json] [--profile] [--trace-out F]
//! specmatcher check --snl <file> --spec <file> [--backend B] [--reorder M] [--partition P] [--jobs N] [--bmc M]
//! specmatcher table1 [--backend B] [--reorder M] [--partition P] [--jobs N] [--bmc M] [--quick | --json] [--profile] [--trace-out F]
//! specmatcher fsm --design <name>              dump concrete-module FSMs (DOT)
//! specmatcher list                             list packaged designs
//! ```
//!
//! `--backend` selects the model-checking engine for the primary coverage
//! question: `explicit` (state enumeration, refuses large models),
//! `symbolic` (BDD reachability + fair cycles) or `auto` (the default:
//! explicit for small state spaces and narrow products, symbolic past
//! either threshold). `--reorder` controls the symbolic engine's dynamic
//! variable reordering (`auto`, the default, or `off`). `--partition`
//! controls the symbolic engine's conjunctively partitioned transition
//! relation (`auto`, the default: greedy clustering up to
//! `SPECMATCHER_BDD_CLUSTER_SIZE` nodes per cluster; `off` keeps one
//! conjunct per latch/automaton) — the reported property sets are
//! byte-identical either way. `--jobs` sets the
//! worker-thread count for Algorithm 1's candidate closure verification
//! (default: `SPECMATCHER_JOBS`, else the machine's available
//! parallelism); the reported property set is identical for every value.
//! `--bmc` controls the bounded SAT refutation tier fronting the
//! gap-phase closure fixpoints (`auto`, the default, or `off`; depth via
//! `SPECMATCHER_BMC_DEPTH`, default 16) — the reported gap properties
//! are byte-identical either way, only the time to reach them changes.
//! `--profile` appends the `dic_trace` span/counter tree to the report
//! and `--trace-out <path>` writes the run as a replayable JSONL event
//! stream; with both absent tracing stays disabled and output is
//! byte-identical to earlier releases. `--timeout <secs>` (or
//! `SPECMATCHER_TIMEOUT`) arms a cooperative deadline checked between
//! engine steps: on expiry the run degrades to a *partial report* —
//! settled verdicts are kept, unresolved candidates are listed as
//! `unknown`, and the report carries an `incomplete:` line.
//!
//! Exit codes: `0` — every architectural property is covered; `1` — a
//! coverage gap was found and reported (including a partial run with at
//! least one settled gap verdict); `2` — usage or specification
//! error (bad flags, unparsable input, Assumption 1 violations);
//! `3` — a model-checking engine refused the model for resource reasons
//! (explicit state-space limit, BDD node budget), or a partial run in
//! which no gap verdict was settled before the deadline.
//!
//! Spec files contain one property per line:
//!
//! ```text
//! # architectural intent
//! arch A  = G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))
//! # RTL properties
//! rtl R1  = G(r1 -> X n1)
//! rtl FAIR = G F hit
//! ```

use dic_core::{
    ArchSpec, Backend, BmcMode, CoreError, GapConfig, PartitionMode, ReorderMode, RtlSpec,
    SpecMatcher, TmStyle,
};
use dic_designs::{mal, scaling, table1_designs, Design};
use dic_fsm::extract_fsm;
use dic_logic::SignalTable;
use dic_ltl::Ltl;
use dic_netlist::parse_snl;
use std::process::ExitCode;
use std::time::Duration;

/// A CLI failure, carrying its exit-code class: usage/spec errors exit 2,
/// engine resource refusals exit 3 (so scripts can retry with a bigger
/// budget or another backend instead of fixing their invocation).
enum CliError {
    Usage(String),
    Resource(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.to_owned())
    }
}

/// Classifies a pipeline error: state-space/node-budget refusals are
/// resource errors, everything else is the caller's problem.
/// [`core_err`] with a design-name prefix for batch runs.
fn ctx_err(name: &str, e: CoreError) -> CliError {
    match core_err(e) {
        CliError::Usage(m) => CliError::Usage(format!("{name}: {m}")),
        CliError::Resource(m) => CliError::Resource(format!("{name}: {m}")),
    }
}

fn core_err(e: CoreError) -> CliError {
    // Degradable errors (state-space and node-budget refusals, deadline
    // trips) that still escape the pipeline's partial-report machinery —
    // e.g. during model *construction*, before any verdict exists — are
    // resource errors.
    if e.is_degradable() {
        CliError::Resource(e.to_string())
    } else {
        CliError::Usage(e.to_string())
    }
}

fn main() -> ExitCode {
    // Fail-closed env audit before anything reads an override through a
    // defaulting path: a typoed SPECMATCHER_* setting is a usage error
    // (exit 2), never a silently defaulted run.
    if let Err(msg) = dic_core::validate_env() {
        eprintln!("specmatcher: {msg}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("specmatcher: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Resource(msg)) => {
            eprintln!("specmatcher: {msg}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "table1" => cmd_table1(&args[1..]),
        "fsm" => cmd_fsm(&args[1..]),
        "list" => {
            for d in table1_designs() {
                println!("{}", d.name);
            }
            println!("{}", mal::ex1().name);
            println!("chain-<n>        (scaling: n-stage latch chain, covered)");
            println!("chain-<n>-gap    (scaling: off-by-one intent, gapped)");
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; try --help").into()),
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  specmatcher check --design <name> [--backend explicit|symbolic|auto] [--reorder off|auto] [--partition off|auto] [--jobs N] [--bmc off|auto] [--timeout S] [--json] [--profile] [--trace-out <path>]\n  specmatcher check --snl <file> --spec <file> [--backend ...] [--reorder ...] [--partition ...] [--jobs N] [--bmc ...] [--timeout S] [--json] [--profile] [--trace-out <path>]\n  specmatcher table1 [--backend ...] [--reorder ...] [--partition ...] [--jobs N] [--bmc ...] [--timeout S] [--quick | --json] [--profile] [--trace-out <path>]\n  specmatcher fsm --design <name>\n  specmatcher list\n\nbackends: explicit = state enumeration (paper-faithful, limited size),\n          symbolic = BDD reachability + fair cycles (scales further),\n          auto     = pick by state-space size and product width (default)\nreorder:  auto = dynamic BDD variable reordering (group sifting; default),\n          off  = keep the static variable order\npartition: auto = conjunctively partitioned transition relation with\n          greedy clustering (cap SPECMATCHER_BDD_CLUSTER_SIZE; default),\n          off  = one conjunct per latch/automaton; gap reports are\n          byte-identical either way\njobs:     worker threads for gap-phase candidate verification\n          (default: SPECMATCHER_JOBS, else available parallelism;\n          the reported property set is identical for every value)\nbmc:      auto = bounded SAT refutation ahead of the closure fixpoints\n          (depth SPECMATCHER_BMC_DEPTH, default 16; default mode),\n          off  = fixpoint engines only; gap reports are byte-identical\ntimeout:  cooperative run deadline in seconds (default:\n          SPECMATCHER_TIMEOUT, else none); on expiry the run degrades\n          to a partial report — settled verdicts are kept, unresolved\n          candidates are listed as unknown, and the report carries an\n          'incomplete:' line\nprofile:  append the structured span/counter tree to the report\n          (stderr under --json); --trace-out writes the same run as a\n          JSONL event stream (schema specmatcher-trace/1)\n\nexit codes: 0 = covered, 1 = coverage gap reported (complete, or\n                partial with at least one settled gap verdict),\n            2 = usage/specification error,\n            3 = engine resource refusal (state-space or BDD node\n                budget) or a partial run with no settled gap"
    );
}

fn option<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn backend_option(args: &[String]) -> Result<Backend, String> {
    match option(args, "--backend") {
        None if args.iter().any(|a| a == "--backend") => {
            Err("--backend needs a value: explicit, symbolic or auto".into())
        }
        None => Ok(Backend::Auto),
        Some(s) => Backend::parse(s)
            .ok_or_else(|| format!("unknown backend {s:?}; use explicit, symbolic or auto")),
    }
}

fn bmc_option(args: &[String]) -> Result<BmcMode, String> {
    match option(args, "--bmc") {
        None if args.iter().any(|a| a == "--bmc") => {
            Err("--bmc needs a value: off or auto".into())
        }
        None => Ok(BmcMode::Auto),
        Some(s) => {
            BmcMode::parse(s).ok_or_else(|| format!("unknown bmc mode {s:?}; use off or auto"))
        }
    }
}

fn reorder_option(args: &[String]) -> Result<ReorderMode, String> {
    match option(args, "--reorder") {
        None if args.iter().any(|a| a == "--reorder") => {
            Err("--reorder needs a value: off or auto".into())
        }
        None => Ok(ReorderMode::Auto),
        Some(s) => {
            ReorderMode::parse(s).ok_or_else(|| format!("unknown reorder mode {s:?}; use off or auto"))
        }
    }
}

/// `--partition off|auto`. Returns `None` when the flag is absent so the
/// `SPECMATCHER_BDD_PARTITION` environment override (or the `auto`
/// default) stays in effect; an explicit flag wins over the environment.
fn partition_option(args: &[String]) -> Result<Option<PartitionMode>, String> {
    match option(args, "--partition") {
        None if args.iter().any(|a| a == "--partition") => {
            Err("--partition needs a value: off or auto".into())
        }
        None => Ok(None),
        Some(s) => PartitionMode::parse(s)
            .map(Some)
            .ok_or_else(|| format!("unknown partition mode {s:?}; use off or auto")),
    }
}

/// `--profile` / `--trace-out <path>` observability flags, shared by
/// `check` and `table1`. Either flag turns `dic_trace` on for the run;
/// with both absent the engines never pay more than the disabled-gate
/// branch, so reports and timings are unchanged.
fn trace_options(args: &[String]) -> Result<(bool, Option<String>), String> {
    let profile = args.iter().any(|a| a == "--profile");
    let trace_out = match option(args, "--trace-out") {
        None if args.iter().any(|a| a == "--trace-out") => {
            return Err("--trace-out needs a value: a JSONL output path".into());
        }
        other => other.map(str::to_owned),
    };
    if profile || trace_out.is_some() {
        dic_trace::set_enabled(true);
        dic_trace::reset();
    }
    Ok((profile, trace_out))
}

/// Emits the enabled trace sinks after a traced run: the rendered
/// `profile:` tree (to stderr when stdout must stay machine-readable)
/// and the JSONL event stream.
fn emit_trace_sinks(
    profile: bool,
    trace_out: Option<&str>,
    profile_to_stderr: bool,
) -> Result<(), CliError> {
    if profile {
        let tree = dic_trace::render_profile();
        if profile_to_stderr {
            eprint!("{tree}");
        } else {
            print!("{tree}");
        }
    }
    if let Some(path) = trace_out {
        dic_trace::write_jsonl(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// `--timeout <secs>` run-deadline override, mirroring
/// `SPECMATCHER_TIMEOUT`'s strict contract: absent → the environment
/// setting (else no deadline), a positive whole number of seconds wins,
/// anything else is a usage error.
fn timeout_option(args: &[String]) -> Result<Option<Duration>, String> {
    match option(args, "--timeout") {
        None if args.iter().any(|a| a == "--timeout") => {
            Err("--timeout needs a value: a positive whole number of seconds".into())
        }
        None => dic_fault::timeout_from_env(),
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n > 0 => Ok(Some(Duration::from_secs(n))),
            _ => Err(format!(
                "invalid --timeout {s:?}: expected a positive whole number of seconds"
            )),
        },
    }
}

/// Arms the run-wide governors before any engine work: the cooperative
/// deadline (`--timeout`, else `SPECMATCHER_TIMEOUT`) and the
/// deterministic fault plan (`SPECMATCHER_FAULT`; off in production).
fn arm_governance(args: &[String]) -> Result<(), CliError> {
    if let Some(budget) = timeout_option(args)? {
        dic_fault::arm_deadline(budget);
    }
    dic_fault::arm_fault_from_env().map_err(CliError::Usage)?;
    Ok(())
}

/// Records the structured abort marker so a `--trace-out` stream is
/// terminated by a final `run.aborted` event on deadline/resource/panic
/// paths (no-op with tracing disabled).
fn trace_abort(panicked: bool) {
    dic_trace::event(
        "run.aborted",
        &[
            ("deadline", dic_fault::deadline_expired() as u64),
            ("panic", panicked as u64),
        ],
    );
}

/// `--jobs N` worker-count override, mirroring `SPECMATCHER_JOBS`'s
/// strict contract: absent → `Ok(0)` (auto resolution), a positive
/// integer wins, anything else is a usage error.
fn jobs_option(args: &[String]) -> Result<usize, String> {
    match option(args, "--jobs") {
        None if args.iter().any(|a| a == "--jobs") => {
            Err("--jobs needs a value: a positive worker count".into())
        }
        None => Ok(0),
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("invalid --jobs {s:?}: expected a positive worker count")),
        },
    }
}

fn find_design(name: &str) -> Result<Design, String> {
    // The chain-<n>[-gap] scaling family is generated on demand.
    if let Some(rest) = name.strip_prefix("chain-") {
        let (n_str, gapped) = match rest.strip_suffix("-gap") {
            Some(n_str) => (n_str, true),
            None => (rest, false),
        };
        if let Ok(n) = n_str.parse::<usize>() {
            if (1..=62).contains(&n) {
                return Ok(scaling::chain_design(n, gapped));
            }
        }
        return Err(format!("unknown design {name:?}; chain stages must be 1..=62"));
    }
    let mut all = table1_designs();
    all.push(mal::ex1());
    all.into_iter()
        .find(|d| d.name == name)
        .ok_or_else(|| format!("unknown design {name:?}; see `specmatcher list`"))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, CliError> {
    let json = args.iter().any(|a| a == "--json");
    let backend = backend_option(args)?;
    let reorder = reorder_option(args)?;
    let partition = partition_option(args)?;
    let jobs = jobs_option(args)?;
    let bmc = bmc_option(args)?;
    let (profile, trace_out) = trace_options(args)?;
    arm_governance(args)?;
    let mut matcher = SpecMatcher::new(GapConfig::default())
        .with_backend(backend)
        .with_reorder(reorder)
        .with_jobs(jobs)
        .with_bmc(bmc);
    if let Some(p) = partition {
        matcher = matcher.with_partition(p);
    }
    let run_span = dic_trace::span("check");
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<(Design, dic_core::CoverageRun), CliError> {
            if let Some(name) = option(args, "--design") {
                let design = find_design(name)?;
                let run = design.check(&matcher).map_err(core_err)?;
                Ok((design, run))
            } else {
                let snl_path =
                    option(args, "--snl").ok_or("check needs --design or --snl/--spec")?;
                let spec_path = option(args, "--spec").ok_or("check needs --spec with --snl")?;
                let snl =
                    std::fs::read_to_string(snl_path).map_err(|e| format!("{snl_path}: {e}"))?;
                let spec =
                    std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
                let mut table = SignalTable::new();
                let parse_span = dic_trace::span("parse");
                let modules = parse_snl(&snl, &mut table).map_err(|e| e.to_string())?;
                let (arch, rtl_props) = parse_spec(&spec, &mut table)?;
                drop(parse_span);
                let rtl = RtlSpec::new(
                    rtl_props.iter().map(|(n, f)| (n.as_str(), f.clone())),
                    modules,
                );
                let arch = ArchSpec::new(arch.iter().map(|(n, f)| (n.as_str(), f.clone())));
                let design = Design {
                    name: "user",
                    table,
                    arch,
                    rtl,
                };
                let run = design.check(&matcher).map_err(core_err)?;
                Ok((design, run))
            }
        },
    ));
    drop(run_span);
    // Abort paths still flush the trace sinks: a `--trace-out` stream is
    // terminated with a final `run.aborted` event instead of vanishing.
    let (design, run) = match attempt {
        Ok(Ok(v)) => v,
        Ok(Err(e)) => {
            trace_abort(false);
            if let Err(CliError::Usage(m) | CliError::Resource(m)) =
                emit_trace_sinks(profile, trace_out.as_deref(), json)
            {
                eprintln!("specmatcher: {m}");
            }
            return Err(e);
        }
        Err(payload) => {
            trace_abort(true);
            if let Err(CliError::Usage(m) | CliError::Resource(m)) =
                emit_trace_sinks(profile, trace_out.as_deref(), json)
            {
                eprintln!("specmatcher: {m}");
            }
            std::panic::resume_unwind(payload);
        }
    };
    if json {
        println!("{}", run.to_json(&design.table));
    } else {
        print!("{}", run.render(&design.table));
    }
    if let Some(reason) = &run.incomplete {
        // Mirror the reason on stderr so scripts that only watch the exit
        // code and stderr still see why the run degraded.
        eprintln!("specmatcher: incomplete: {reason}");
        trace_abort(false);
    }
    // Under --json the profile tree goes to stderr so stdout stays pure
    // JSON; the JSONL stream always goes to its own file.
    emit_trace_sinks(profile, trace_out.as_deref(), json)?;
    Ok(match &run.incomplete {
        // Partial run: a settled gap is still actionable (exit 1); with
        // nothing confirmed the run only hit its resource wall (exit 3).
        Some(_) if run.has_confirmed_gap() => ExitCode::from(1),
        Some(_) => ExitCode::from(3),
        None if run.all_covered() => ExitCode::SUCCESS,
        None => ExitCode::from(1),
    })
}

type NamedProps = Vec<(String, Ltl)>;

fn parse_spec(src: &str, table: &mut SignalTable) -> Result<(NamedProps, NamedProps), String> {
    let mut arch = Vec::new();
    let mut rtl = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line
            .split_once(char::is_whitespace)
            .ok_or(format!("line {}: expected 'arch'/'rtl' entry", lineno + 1))?;
        let (name, formula_src) = rest
            .split_once('=')
            .ok_or(format!("line {}: expected NAME = FORMULA", lineno + 1))?;
        let formula = Ltl::parse(formula_src.trim(), table)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match kind {
            "arch" => arch.push((name.trim().to_owned(), formula)),
            "rtl" => rtl.push((name.trim().to_owned(), formula)),
            other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
        }
    }
    if arch.is_empty() {
        return Err("spec file declares no architectural (arch) property".into());
    }
    Ok((arch, rtl))
}

fn cmd_table1(args: &[String]) -> Result<ExitCode, CliError> {
    let backend = backend_option(args)?;
    let reorder = reorder_option(args)?;
    let partition = partition_option(args)?;
    let jobs = jobs_option(args)?;
    let bmc = bmc_option(args)?;
    let (profile, trace_out) = trace_options(args)?;
    arm_governance(args)?;
    if args.iter().any(|a| a == "--quick") {
        let code = cmd_table1_quick(backend, reorder, partition)?;
        emit_trace_sinks(profile, trace_out.as_deref(), false)?;
        return Ok(code);
    }
    let json = args.iter().any(|a| a == "--json");
    let mut json_rows = Vec::new();
    let mut matcher = SpecMatcher::new(GapConfig::default())
        .with_tm_style(TmStyle::Enumerated)
        .with_backend(backend)
        .with_reorder(reorder)
        .with_jobs(jobs)
        .with_bmc(bmc);
    if let Some(p) = partition {
        matcher = matcher.with_partition(p);
    }
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "Circuit", "RTL props", "primary", "gap", "Primary (s)", "TM (s)", "Gap (s)"
    );
    let mut incomplete_designs: Vec<String> = Vec::new();
    for design in table1_designs() {
        let design_span = dic_trace::span("design.check");
        let run = design.check(&matcher).map_err(core_err)?;
        drop(design_span);
        if let Some(reason) = &run.incomplete {
            incomplete_designs.push(format!("{}: {reason}", design.name));
        }
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>12.4} {:>12.4} {:>12.4}",
            design.name,
            run.num_rtl_properties,
            run.backend.to_string(),
            run.gap_backend.to_string(),
            run.timings.primary.as_secs_f64(),
            run.timings.tm_build.as_secs_f64(),
            run.timings.gap_find.as_secs_f64(),
        );
        if json {
            let fingerprint = dic_bench::gap_fingerprint(&run, &design.table);
            json_rows.push((
                dic_bench::TableRow {
                    circuit: design.name.to_owned(),
                    num_rtl: run.num_rtl_properties,
                    primary: run.timings.primary,
                    tm_build: run.timings.tm_build,
                    gap_find: run.timings.gap_find,
                    backend: run.backend,
                    gap_backend: run.gap_backend,
                    reorder: run.reorder,
                    jobs: run.jobs,
                    counters: run.counters,
                    bmc: run.bmc,
                    gap_fingerprint: fingerprint,
                },
                dic_bench::design_reductions(&design),
            ));
        }
    }
    if json {
        std::fs::write(
            dic_bench::BENCH_TABLE1_PATH,
            dic_bench::bench_table1_json(backend, &json_rows),
        )
        .map_err(|e| format!("{}: {e}", dic_bench::BENCH_TABLE1_PATH))?;
        println!();
        println!("wrote {}", dic_bench::BENCH_TABLE1_PATH);
    }
    if !incomplete_designs.is_empty() {
        for line in &incomplete_designs {
            println!("incomplete: {line}");
        }
        trace_abort(false);
        emit_trace_sinks(profile, trace_out.as_deref(), false)?;
        // A partial benchmark table is a resource wall, not a usage error.
        return Ok(ExitCode::from(3));
    }
    emit_trace_sinks(profile, trace_out.as_deref(), false)?;
    Ok(ExitCode::SUCCESS)
}

/// `table1 --quick`: the primary coverage question over the Table 1
/// designs *plus* a scaling row the explicit engine cannot handle — with
/// every verdict pinned — followed by a gap-phase smoke on the small
/// designs whose structured gap content is known (the paper's Example 4
/// properties must be among the reported weakest gap properties, per
/// backend). This is the CI smoke test: a backend-selection regression
/// (wrong engine, wrong verdict, lost gap property) or a reintroduced
/// state-explosion cliff fails the run instead of silently slowing it.
fn cmd_table1_quick(
    backend: Backend,
    reorder: ReorderMode,
    partition: Option<PartitionMode>,
) -> Result<ExitCode, CliError> {
    use dic_core::{CoverageModel, SymbolicOptions};

    let mut options = SymbolicOptions::from_env()
        .map_err(|e| core_err(CoreError::Symbolic(e)))?
        .with_reorder(reorder);
    if let Some(p) = partition {
        options = options.with_partition(p);
    }

    // The reduction pipeline must be on unless the bisection escape hatch
    // was pulled; CI asserts both states of this line.
    println!(
        "automaton reduction: {} (SPECMATCHER_NO_REDUCE)",
        if dic_automata::reduction_enabled() {
            "on"
        } else {
            "off"
        }
    );

    // (design, primary coverage holds?)
    let rows: Vec<(Design, bool)> = vec![
        (mal::mal26(), false),
        (dic_designs::pipeline::pipeline12(), false),
        (dic_designs::amba::ahb29(), false),
        (mal::ex2(), false),
        (mal::ex1(), true),
        (scaling::chain_design(24, false), true),
        (scaling::chain_design(22, true), false),
    ];
    println!(
        "{:<14} {:>9} {:>9} {:>12}  verdict",
        "Circuit", "RTL props", "backend", "Primary (s)"
    );
    let mut ok = true;
    for (design, expect_covered) in rows {
        let t0 = dic_trace::Stopwatch::start();
        let model = CoverageModel::build_with_symbolic_options(
            &design.arch,
            &design.rtl,
            &design.table,
            backend,
            options,
        )
        .map_err(|e| ctx_err(design.name, e))?;
        let fa = design.arch.properties()[0].formula();
        let witness = dic_core::primary_coverage(fa, &design.rtl, &model)
            .map_err(|e| ctx_err(design.name, e))?;
        let covered = witness.is_none();
        let verdict_ok = covered == expect_covered;
        ok &= verdict_ok;
        println!(
            "{:<14} {:>9} {:>9} {:>12.4}  {}{}",
            design.name,
            design.rtl.num_properties(),
            model.primary_backend().to_string(),
            t0.elapsed().as_secs_f64(),
            if covered { "covered" } else { "gap" },
            if verdict_ok { "" } else { "  << UNEXPECTED" },
        );
    }
    if !ok {
        return Err("quick table1 verdicts diverged from the pinned expectations".into());
    }

    // Gap-phase smoke: the full Algorithm 1 pipeline on mal-ex2, with the
    // two paper-shaped weakest properties pinned, plus — whenever the gap
    // engine is symbolic — a chain design past the explicit limit, whose
    // gap report must fall back to the Theorem 2 hole with non-empty
    // uncovered terms.
    let smoke_matcher = || {
        let mut m = SpecMatcher::new(GapConfig::default())
            .with_backend(backend)
            .with_reorder(reorder);
        if let Some(p) = partition {
            m = m.with_partition(p);
        }
        m
    };
    let mut ex2 = mal::ex2();
    let run = ex2
        .check(&smoke_matcher())
        .map_err(|e| ctx_err("mal-ex2", e))?;
    let rep = &run.properties[0];
    let u_hit = mal::paper_gap_property(&mut ex2);
    let u_g2 = mal::adapted_gap_property(&mut ex2);
    let has = |u: &Ltl| {
        rep.gap_properties
            .iter()
            .any(|g| dic_automata::equivalent(&g.formula, u))
    };
    println!(
        "mal-ex2 gap smoke ({} backend): {} weakest properties, paper U {}, adapted U {}",
        run.gap_backend,
        rep.gap_properties.len(),
        if has(&u_hit) { "found" } else { "MISSING" },
        if has(&u_g2) { "found" } else { "MISSING" },
    );
    if rep.covered || !has(&u_hit) || !has(&u_g2) {
        return Err("mal-ex2 gap smoke lost a pinned paper gap property".into());
    }
    if backend != Backend::Explicit {
        let chain = scaling::chain_design(22, true);
        let run = chain
            .check(&smoke_matcher())
            .map_err(|e| ctx_err("chain-22-gap", e))?;
        let rep = &run.properties[0];
        println!(
            "chain-22-gap gap smoke ({} backend): {} uncovered terms, exact-hole fallback {}",
            run.gap_backend,
            rep.uncovered_terms.len(),
            if rep.gap_properties.is_empty() { "active" } else { "inactive" },
        );
        if rep.covered || rep.uncovered_terms.is_empty() {
            return Err("chain-22-gap gap smoke produced no uncovered terms".into());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_fsm(args: &[String]) -> Result<ExitCode, CliError> {
    let name = option(args, "--design").ok_or("fsm needs --design <name>")?;
    let design = find_design(name)?;
    for module in design.rtl.concrete() {
        let fsm = extract_fsm(module, &design.table, true).map_err(|e| e.to_string())?;
        println!("// module {} ({} states)", module.name(), fsm.num_states());
        println!("{}", fsm.to_dot(&design.table));
    }
    Ok(ExitCode::SUCCESS)
}
