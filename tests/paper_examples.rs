//! Integration tests: the paper's Examples 1–4 through the public facade.

use specmatcher::automata::{implies, stronger_than};
use specmatcher::core::{closes_gap, CoverageModel, GapConfig, SpecMatcher};
use specmatcher::designs::{mal, simple};
use specmatcher::fsm::extract_fsm;
use specmatcher::ltl::LtlNode;

/// Bounded budget: the full-budget run (which also reproduces the verbatim
/// paper U) lives in the designs crate; integration level checks verdicts.
fn quick() -> GapConfig {
    GapConfig {
        max_terms: 2,
        max_candidates: 16,
        ..GapConfig::default()
    }
}

#[test]
fn ex1_coverage_holds() {
    let d = mal::ex1();
    let run = d.check(&SpecMatcher::new(quick())).expect("runs");
    assert!(run.all_covered(), "Example 1: the decomposition is sound");
    assert_eq!(run.properties.len(), 1);
    assert!(run.properties[0].witness.is_none());
}

#[test]
fn ex2_gap_exists_and_is_represented() {
    let d = mal::ex2();
    let run = d.check(&SpecMatcher::new(quick())).expect("runs");
    let rep = &run.properties[0];
    assert!(!rep.covered, "Example 2: the gap must be found");
    // The tool produces uncovered terms and at least one structured gap
    // property, and the exact Theorem 2 hole is always reported.
    assert!(!rep.uncovered_terms.is_empty());
    assert!(matches!(rep.exact_hole.node(), LtlNode::Or(_)));
    // Gap properties are weaker than A and close the gap (re-verified).
    let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
    for g in &rep.gap_properties {
        assert!(implies(&rep.formula, &g.formula));
        assert!(closes_gap(&g.formula, &rep.formula, &d.rtl, &model).expect("runs"));
    }
}

#[test]
fn ex4_paper_gap_property_closes() {
    let mut d = mal::ex2();
    let u = mal::paper_gap_property(&mut d);
    let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
    let fa = d.arch.properties()[0].formula();
    assert!(stronger_than(fa, &u), "A is strictly stronger than U");
    assert!(closes_gap(&u, fa, &d.rtl, &model).expect("runs"), "U closes the gap");
}

#[test]
fn ex3_fsm_and_tm() {
    let (t, m) = simple::model();
    let fsm = extract_fsm(&m, &t, true).expect("small");
    assert_eq!(fsm.num_states(), 2, "Fig. 5(b) has two states");
    // T_M holds on the model itself.
    let k = specmatcher::fsm::Kripke::from_module(&m, &t, &[]).expect("small");
    let tm = specmatcher::core::tm::relational_tm(&m);
    assert!(specmatcher::automata::holds_in(&tm, &k).holds());
}

#[test]
fn gap_report_renders_for_humans() {
    let d = mal::ex2();
    let run = d.check(&SpecMatcher::new(quick())).expect("runs");
    let text = run.render(&d.table);
    assert!(text.contains("NOT covered"));
    assert!(text.contains("uncovered terms"));
    assert!(text.contains("timings"));
}
