//! Integration test over the shipped SNL/spec example files — the same
//! inputs `specmatcher check --snl … --spec …` consumes.

use specmatcher::core::{ArchSpec, GapConfig, RtlSpec, SpecMatcher};
use specmatcher::logic::SignalTable;
use specmatcher::ltl::Ltl;
use specmatcher::netlist::parse_snl;

#[test]
fn shipped_mal_ex1_files_are_covered() {
    let snl = include_str!("../examples/data/mal_ex1.snl");
    let spec = include_str!("../examples/data/mal_ex1.spec");

    let mut table = SignalTable::new();
    let modules = parse_snl(snl, &mut table).expect("shipped SNL parses");
    assert_eq!(modules.len(), 2);

    // Minimal spec-file parsing (mirrors the CLI).
    let mut arch = Vec::new();
    let mut rtl = Vec::new();
    for raw in spec.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_once(char::is_whitespace).expect("entry");
        let (name, formula) = rest.split_once('=').expect("NAME = FORMULA");
        let f = Ltl::parse(formula.trim(), &mut table).expect("shipped formula parses");
        match kind {
            "arch" => arch.push((name.trim().to_owned(), f)),
            "rtl" => rtl.push((name.trim().to_owned(), f)),
            other => panic!("unknown kind {other}"),
        }
    }
    assert_eq!(arch.len(), 1);
    assert_eq!(rtl.len(), 6);

    let arch = ArchSpec::new(arch.iter().map(|(n, f)| (n.as_str(), f.clone())));
    let rtl = RtlSpec::new(rtl.iter().map(|(n, f)| (n.as_str(), f.clone())), modules);
    let run = SpecMatcher::new(GapConfig::default())
        .check(&arch, &rtl, &table)
        .expect("runs");
    assert!(run.all_covered(), "the shipped Example 1 must be covered");
}
