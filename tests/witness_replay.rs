//! Cross-layer validation: witnesses produced by the model checkers are
//! replayed on the cycle-accurate netlist simulator.
//!
//! The Kripke structure (`dic-fsm`), the symbolic engine (`dic-symbolic`)
//! and the simulator (`dic-netlist`) implement the same synchronous
//! semantics through entirely different code paths — explicit state
//! enumeration vs BDD image computation vs event-free cycle evaluation.
//! Every counterexample run the coverage pipeline reports, from either
//! backend, must therefore *replay*: driving the simulator with the
//! witness's input projection has to reproduce the witness's values on
//! every module-driven signal.

use specmatcher::core::{primary_coverage, Backend, CoverageModel, GapConfig, SpecMatcher};
use specmatcher::designs::{mal, scaling, table1_designs};
use specmatcher::logic::SignalId;
use specmatcher::netlist::Simulator;

/// Replays `witness` against the design's composed concrete modules,
/// checking each driven signal at each stored position.
fn assert_word_replays(
    design: &specmatcher::designs::Design,
    model: &CoverageModel,
    witness: &specmatcher::ltl::LassoWord,
) {
    // The model is the *composed* module (with cone-of-influence applied),
    // so replay against the composition the model actually used.
    let composed = model.composed();
    let mut sim = Simulator::new(composed, &design.table).expect("simulates");
    let driven: Vec<SignalId> = composed.driven_signals().into_iter().collect();
    let inputs: Vec<SignalId> = composed
        .inputs()
        .iter()
        .copied()
        .chain(model.input_signals().iter().copied())
        .filter(|s| !driven.contains(s))
        .collect();

    for (pos, expected) in witness.states().iter().enumerate() {
        let stimulus: Vec<(SignalId, bool)> =
            inputs.iter().map(|&i| (i, expected.get(i))).collect();
        let settled = sim.settle(&stimulus).clone();
        for &s in &driven {
            assert_eq!(
                settled.get(s),
                expected.get(s),
                "{}: driven signal {} diverges at position {pos}",
                design.name,
                design.table.name(s)
            );
        }
        sim.step(&stimulus);
    }
}

/// Builds the model with `backend`, demands a primary-coverage witness and
/// replays it.
fn assert_replays(design: &specmatcher::designs::Design, backend: Backend) {
    let model =
        CoverageModel::build_with_backend(&design.arch, &design.rtl, &design.table, backend)
            .expect("builds");
    let fa = design.arch.properties()[0].formula();
    let Some(witness) = primary_coverage(fa, &design.rtl, &model).expect("within limits") else {
        panic!("{} must have a coverage gap to produce a witness", design.name);
    };
    assert_word_replays(design, &model, &witness);
}

#[test]
fn mal_ex2_witness_replays_on_simulator() {
    assert_replays(&mal::ex2(), Backend::Explicit);
}

#[test]
fn mal_ex2_symbolic_witness_replays_on_simulator() {
    assert_replays(&mal::ex2(), Backend::Symbolic);
}

#[test]
fn all_gapped_table1_witnesses_replay() {
    for design in table1_designs() {
        let model =
            CoverageModel::build(&design.arch, &design.rtl, &design.table).expect("builds");
        let fa = design.arch.properties()[0].formula();
        if design.name == "mal-26" {
            continue; // minutes-scale explicit primary; see the test below
        }
        if primary_coverage(fa, &design.rtl, &model)
            .expect("within limits")
            .is_some()
        {
            assert_replays(&design, Backend::Explicit);
        }
    }
}

#[test]
fn gapped_table1_symbolic_witnesses_replay() {
    // The symbolic engine makes mal-26 affordable here, so no row is
    // skipped: every gapped design's symbolic witness replays.
    for design in table1_designs() {
        let model = CoverageModel::build_with_backend(
            &design.arch,
            &design.rtl,
            &design.table,
            Backend::Symbolic,
        )
        .expect("builds");
        let fa = design.arch.properties()[0].formula();
        if let Some(witness) = primary_coverage(fa, &design.rtl, &model).expect("within limits") {
            assert_word_replays(&design, &model, &witness);
        }
    }
}

#[test]
#[ignore = "explicit mal-26 primary is minutes-scale; nightly lane"]
fn mal26_explicit_witness_replays() {
    assert_replays(&mal::mal26(), Backend::Explicit);
}

#[test]
fn scaling_witness_beyond_explicit_limit_replays() {
    // 22 latches + 1 input: only the symbolic engine can even pose the
    // question; its witness must still replay on the simulator.
    assert_replays(&scaling::chain_design(22, true), Backend::Symbolic);
}

/// Every reported gap property carries a run demonstrating the uncovered
/// scenario it addresses; like the primary witnesses, those runs must
/// replay on the simulator — for both gap engines.
fn assert_gap_witnesses_replay(design: &specmatcher::designs::Design, backend: Backend) {
    let model =
        CoverageModel::build_with_backend(&design.arch, &design.rtl, &design.table, backend)
            .expect("builds");
    let matcher = SpecMatcher::new(GapConfig::default()).with_backend(backend);
    let run = matcher
        .check_with_model(&design.arch, &design.rtl, &design.table, &model)
        .expect("pipeline runs");
    let mut seen = 0usize;
    for rep in &run.properties {
        for g in &rep.gap_properties {
            // The witness is a genuine bad run (refutes the intent)…
            assert!(
                !rep.formula.holds_on(&g.witness),
                "{}: gap witness fails to refute A",
                design.name
            );
            // …and replays on the concrete modules.
            assert_word_replays(design, &model, &g.witness);
            seen += 1;
        }
    }
    assert!(
        seen > 0,
        "{}: fixture must actually report gap properties",
        design.name
    );
}

#[test]
fn mal_ex2_gap_property_witnesses_replay_explicit() {
    assert_gap_witnesses_replay(&mal::ex2(), Backend::Explicit);
}

#[test]
fn mal_ex2_gap_property_witnesses_replay_symbolic() {
    assert_gap_witnesses_replay(&mal::ex2(), Backend::Symbolic);
}

#[test]
fn pipeline_gap_property_witnesses_replay_both_backends() {
    let d = specmatcher::designs::pipeline::pipeline12();
    assert_gap_witnesses_replay(&d, Backend::Explicit);
    assert_gap_witnesses_replay(&d, Backend::Symbolic);
}
