//! Cross-layer validation: witnesses produced by the automata-theoretic
//! model checker are replayed on the cycle-accurate netlist simulator.
//!
//! The Kripke structure (`dic-fsm`) and the simulator (`dic-netlist`)
//! implement the same synchronous semantics through entirely different
//! code paths — explicit state enumeration vs event-free cycle evaluation.
//! Every counterexample run the coverage pipeline reports must therefore
//! *replay*: driving the simulator with the witness's input projection has
//! to reproduce the witness's values on every module-driven signal.

use specmatcher::core::{primary_coverage, CoverageModel};
use specmatcher::designs::{mal, table1_designs};
use specmatcher::logic::SignalId;
use specmatcher::netlist::Simulator;

/// Replays `witness` against every concrete module of `design`,
/// checking each driven signal at each stored position.
fn assert_replays(design: &specmatcher::designs::Design) {
    let model = CoverageModel::build(&design.arch, &design.rtl, &design.table).expect("builds");
    let fa = design.arch.properties()[0].formula();
    let Some(witness) = primary_coverage(fa, &design.rtl, &model) else {
        panic!("{} must have a coverage gap to produce a witness", design.name);
    };

    // The model is the *composed* module (with cone-of-influence applied),
    // so replay against the composition the model actually used.
    let composed = model.composed();
    let mut sim = Simulator::new(composed, &design.table).expect("simulates");
    let driven: Vec<SignalId> = composed.driven_signals().into_iter().collect();
    let inputs: Vec<SignalId> = composed
        .inputs()
        .iter()
        .copied()
        .chain(model.kripke().input_vars().iter().copied())
        .filter(|s| !driven.contains(s))
        .collect();

    for (pos, expected) in witness.states().iter().enumerate() {
        let stimulus: Vec<(SignalId, bool)> =
            inputs.iter().map(|&i| (i, expected.get(i))).collect();
        let settled = sim.settle(&stimulus).clone();
        for &s in &driven {
            assert_eq!(
                settled.get(s),
                expected.get(s),
                "{}: driven signal {} diverges at position {pos}",
                design.name,
                design.table.name(s)
            );
        }
        sim.step(&stimulus);
    }
}

#[test]
fn mal_ex2_witness_replays_on_simulator() {
    assert_replays(&mal::ex2());
}

#[test]
fn all_gapped_table1_witnesses_replay() {
    for design in table1_designs() {
        let model =
            CoverageModel::build(&design.arch, &design.rtl, &design.table).expect("builds");
        let fa = design.arch.properties()[0].formula();
        if design.name == "mal-26" {
            continue; // minutes-scale primary query; covered by bin/table1
        }
        if primary_coverage(fa, &design.rtl, &model).is_some() {
            assert_replays(&design);
        }
    }
}
