//! Worker-count determinism: the gap-property sets reported by Algorithm 1
//! are a function of the model alone — `--jobs 1` and `--jobs N` must
//! produce byte-identical *ordered* reports (formula, position, literal,
//! offset, attribution term and witness), on random problems and on the
//! packaged Table 1 designs alike.
//!
//! This is the acid test for the parallel closure stage: the sequential
//! path merges inline with an early budget exit, the parallel path fans
//! verification out over workers with per-worker run pools and merges
//! verdicts in canonical order on the coordinator — they share no
//! scheduling, so agreement here pins the deterministic-merge contract.

use proptest::prelude::*;
use specmatcher::core::{CoverageModel, GapConfig, PropertyReport, SpecMatcher};
use specmatcher::designs::{amba, mal, pipeline, Design};
use specmatcher::logic::SignalTable;

mod common;
use common::{random_problem, replay};

/// The full ordered fingerprint of a property report's gap set: every
/// field that reaches the rendered report or the JSON document.
fn fingerprint(rep: &PropertyReport, t: &SignalTable) -> Vec<String> {
    rep.gap_properties
        .iter()
        .map(|g| {
            format!(
                "{} @ {} lit {} off {} term {} wit {:?}",
                g.formula.display(t),
                g.position,
                g.literal.display(t),
                g.offset,
                g.term.display(t),
                g.witness,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ordered gap reports are identical at one worker and at four, and
    /// every witness of the parallel run replays on the concrete modules.
    #[test]
    fn jobs_one_and_four_report_identical_gap_sets(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let config = GapConfig {
            term_depth: 2,
            max_terms: 3,
            max_candidates: 24,
            max_gap_properties: 4,
            ..GapConfig::default()
        };

        let run_1 = SpecMatcher::new(config.clone())
            .with_jobs(1)
            .check(&arch, &rtl, &t)
            .expect("sequential pipeline runs");
        let run_4 = SpecMatcher::new(config)
            .with_jobs(4)
            .check(&arch, &rtl, &t)
            .expect("parallel pipeline runs");

        prop_assert_eq!(run_1.all_covered(), run_4.all_covered(), "verdicts (seed {})", seed);
        let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        for (r1, r4) in run_1.properties.iter().zip(&run_4.properties) {
            prop_assert_eq!(
                fingerprint(r1, &t),
                fingerprint(r4, &t),
                "ordered gap reports diverge on seed {}: A = {}",
                seed,
                r1.formula.display(&t)
            );
            for g in &r4.gap_properties {
                prop_assert!(!r1.formula.holds_on(&g.witness), "witness fails (seed {seed})");
                replay(&model, &t, &g.witness);
            }
        }
    }
}

/// The smoke budget of `table1_designs.rs`: enough to exercise merge
/// refunds on every packaged design while keeping the fast lane fast.
fn smoke_config() -> GapConfig {
    GapConfig {
        max_terms: 2,
        max_candidates: 24,
        max_gap_properties: 2,
        ..GapConfig::default()
    }
}

/// Runs `design` at the given worker count and returns the ordered gap
/// formulas of its (single) architectural property.
fn gap_formulas(design: &Design, jobs: usize) -> Vec<String> {
    let run = design
        .check(&SpecMatcher::new(smoke_config()).with_jobs(jobs))
        .unwrap_or_else(|e| panic!("design {} failed to run: {e}", design.name));
    run.properties[0]
        .gap_properties
        .iter()
        .map(|g| g.formula.display(&design.table).to_string())
        .collect()
}

/// Pins a design's exact ordered gap set at one worker and at four.
fn assert_pinned(design: &Design, expected: &[&str]) {
    let one = gap_formulas(design, 1);
    assert_eq!(one, expected, "{}: gap set drifted at --jobs 1", design.name);
    let four = gap_formulas(design, 4);
    assert_eq!(one, four, "{}: gap set depends on the worker count", design.name);
}

#[test]
fn pipeline_gap_set_is_jobs_invariant() {
    assert_pinned(
        &pipeline::pipeline12(),
        &[
            "G(req & X !fill & !stall & !pend -> X X X fill)",
            "G(req & X X !ack & !stall & !pend -> X X X fill)",
        ],
    );
}

#[test]
fn mal_ex2_gap_set_is_jobs_invariant() {
    assert_pinned(
        &mal::ex2(),
        &[
            "G(!wait & r1 & X((r1 & !g1) U r2) -> X(!d2 U d1))",
            "G(!wait & r1 & X((r1 & !g2) U r2) -> X(!d2 U d1))",
        ],
    );
}

#[test]
#[ignore = "tens of seconds per worker count; nightly lane"]
fn mal26_gap_set_is_jobs_invariant() {
    assert_pinned(
        &mal::mal26(),
        &[
            "G(!wait & r1 & X((r1 & !hit) U r2) -> X(!d2 U d1))",
            "G(!wait & r1 & X((r1 & hit) U r2) -> X(!d2 U d1))",
        ],
    );
}

#[test]
#[ignore = "tens of seconds per worker count; nightly lane"]
fn amba_ahb_gap_set_is_jobs_invariant() {
    assert_pinned(
        &amba::ahb29(),
        &[
            "G(!htrans1 & !htrans2 & hbusreq1 -> X(!(htrans2 & hready) U htrans1))",
            "G(!htrans1 & !htrans2 & hbusreq1 -> X(!(htrans2 & X !htrans2) U htrans1))",
        ],
    );
}
