//! Property-based tests for the netlist optimization passes and the FSM
//! quotient: on randomized modules,
//!
//! * `constant_fold` and `prune_dead` preserve behaviour — checked both by
//!   the BDD equivalence checker and by cycle-accurate co-simulation;
//! * the bisimulation quotient simulates the original FSM: every concrete
//!   step is matched by a quotient transition with the same observation.

use proptest::prelude::*;
use specmatcher::fsm::{extract_fsm, quotient};
use specmatcher::logic::{BoolExpr, SignalId, SignalTable};
use specmatcher::ltl::random::XorShift64;
use specmatcher::netlist::{constant_fold, equiv_check, prune_dead, Module, ModuleBuilder};
use specmatcher::netlist::{EquivVerdict, Simulator};

/// Deterministically generates a small random module: a DAG of wires over
/// inputs/earlier signals (with occasional constants so folding has work),
/// a few latches, and the final wire plus all latches as outputs.
fn random_module(seed: u64) -> (SignalTable, Module) {
    let mut rng = XorShift64::new(seed.wrapping_add(1));
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("rand", &mut t);
    let n_inputs = 2 + rng.below(3);
    let mut pool: Vec<SignalId> = (0..n_inputs)
        .map(|i| b.input(&format!("i{i}")))
        .collect();

    let leaf = |pool: &[SignalId], rng: &mut XorShift64| -> BoolExpr {
        match rng.below(8) {
            0 => BoolExpr::Const(rng.flip()),
            _ => {
                let v = BoolExpr::var(pool[rng.below(pool.len())]);
                if rng.flip() {
                    v.not()
                } else {
                    v
                }
            }
        }
    };

    let n_wires = 2 + rng.below(5);
    let mut last_wire = None;
    for i in 0..n_wires {
        let a = leaf(&pool, &mut rng);
        let c = leaf(&pool, &mut rng);
        let func = match rng.below(3) {
            0 => BoolExpr::and([a, c]),
            1 => BoolExpr::or([a, c]),
            _ => BoolExpr::xor(a, c),
        };
        let w = b.wire(&format!("w{i}"), func);
        pool.push(w);
        last_wire = Some(w);
    }

    let n_latches = 1 + rng.below(2);
    let mut latches = Vec::new();
    for i in 0..n_latches {
        let next = leaf(&pool, &mut rng);
        let q = b.latch(&format!("q{i}"), next, rng.flip());
        latches.push(q);
        // Latches feed later logic only via the pool of *earlier* nets, so
        // keep the DAG property by not extending `pool` here.
    }

    for &q in &latches {
        b.mark_output(q);
    }
    b.mark_output(last_wire.expect("at least two wires"));
    let m = b.finish().expect("generated module is valid");
    (t, m)
}

/// Drives both modules with the same stimulus and compares the outputs.
fn co_simulate(a: &Module, b: &Module, t: &SignalTable, seed: u64, cycles: usize) {
    let mut rng = XorShift64::new(seed ^ 0xC0_51_00);
    let mut sim_a = Simulator::new(a, t).expect("sim a");
    let mut sim_b = Simulator::new(b, t).expect("sim b");
    let inputs: Vec<SignalId> = a.inputs().to_vec();
    for cycle in 0..cycles {
        let stimulus: Vec<(SignalId, bool)> =
            inputs.iter().map(|&i| (i, rng.flip())).collect();
        let va = sim_a.step(&stimulus);
        let vb = sim_b.step(&stimulus);
        for &o in a.outputs() {
            assert_eq!(
                va.get(o),
                vb.get(o),
                "output {} diverges at cycle {cycle}",
                t.name(o)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn constant_fold_preserves_behaviour(seed in 0u64..1 << 48) {
        let (mut t, m) = random_module(seed);
        let (folded, _report) = constant_fold(&m, &mut t).expect("folds");
        prop_assert!(matches!(
            equiv_check(&m, &folded, &t).expect("comparable"),
            EquivVerdict::Equivalent
        ));
        co_simulate(&m, &folded, &t, seed, 12);
    }

    #[test]
    fn prune_dead_preserves_behaviour(seed in 0u64..1 << 48) {
        let (t, m) = random_module(seed);
        let pruned = prune_dead(&m, &t);
        prop_assert!(matches!(
            equiv_check(&m, &pruned, &t).expect("comparable"),
            EquivVerdict::Equivalent
        ));
        co_simulate(&m, &pruned, &t, seed, 12);
    }

    #[test]
    fn passes_compose(seed in 0u64..1 << 48) {
        let (mut t, m) = random_module(seed);
        let (folded, _) = constant_fold(&m, &mut t).expect("folds");
        let slim = prune_dead(&folded, &t);
        prop_assert!(matches!(
            equiv_check(&m, &slim, &t).expect("comparable"),
            EquivVerdict::Equivalent
        ));
        // Folding is idempotent.
        let (again, report) = constant_fold(&slim, &mut t).expect("folds");
        prop_assert!(!report.changed());
        prop_assert_eq!(again.wires().len(), slim.wires().len());
    }

    #[test]
    fn quotient_simulates_original(seed in 0u64..1 << 48) {
        let (t, m) = random_module(seed);
        // Generated modules always fit the explicit enumeration limit.
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        // Observe only the first latch; the rest may merge.
        let observe: Vec<SignalId> = fsm.state_vars().iter().copied().take(1).collect();
        let quot = quotient(&fsm, &observe);
        prop_assert!(quot.num_states() <= fsm.num_states());
        prop_assert!(quot.num_states() >= 1);

        // Dense successor table of the original.
        let n_keys = 1usize << fsm.input_vars().len();
        let mut succ = vec![usize::MAX; fsm.num_states() * n_keys];
        for tr in fsm.transitions() {
            for key in tr.guard.matching_keys(fsm.input_vars()) {
                succ[tr.from * n_keys + key as usize] = tr.to;
            }
        }

        // Every concrete step is matched by a quotient transition with the
        // same source/destination classes, and class observations agree
        // with the member states.
        let mut rng = XorShift64::new(seed ^ 0xB151);
        let mut state = fsm.initial();
        prop_assert_eq!(quot.class_of(state), quot.initial());
        for _ in 0..24 {
            let key = rng.below(n_keys) as u64;
            let next = succ[state * n_keys + key as usize];
            let (cf, ct) = (quot.class_of(state), quot.class_of(next));
            let matched = quot.transitions().iter().any(|tr| {
                tr.from == cf
                    && tr.to == ct
                    && tr.guard.matching_keys(fsm.input_vars()).contains(&key)
            });
            prop_assert!(matched, "unmatched step {} -{}-> {}", state, key, next);
            // Observation of the class equals the member's projection.
            let obs = quot.observation(cf, &fsm);
            for &s in &observe {
                let bit = fsm.state_vars().iter().position(|&v| v == s).unwrap();
                let member_val = fsm.state_key(state) >> bit & 1 == 1;
                prop_assert_eq!(obs.polarity_of(s), Some(member_val));
            }
            state = next;
        }
    }
}
