//! Conjunctive transition-relation partitioning must be *invisible* in
//! every answer: on random coverage problems, the full pipeline with
//! `--partition off` (one conjunct per latch/automaton) and with greedy
//! clustering forced at a tiny cluster cap (maximally different cluster
//! boundaries) must produce identical verdicts, byte-identical
//! gap-property sets, and witnesses that replay on the concrete modules.
//!
//! Clustering changes only which conjuncts each `and_exists` sweep sees —
//! the conjunction itself, and therefore every fixpoint, is unchanged.
//! The heavier four-design Table 1 comparison (fingerprints diffed
//! partition on vs off) runs in the nightly CI lane; here an `--ignored`
//! test carries it for local runs.

use proptest::prelude::*;
use specmatcher::core::{
    Backend, CoverageModel, GapConfig, PartitionMode, ReorderMode, SpecMatcher, SymbolicOptions,
};
use specmatcher::core::{ArchSpec, RtlSpec};
use specmatcher::logic::{BoolExpr, SignalId, SignalTable};
use specmatcher::ltl::random::{random_formula, XorShift64};
use specmatcher::ltl::Ltl;
use specmatcher::netlist::{Module, ModuleBuilder, Simulator};

/// Deterministically generates a small random module (same shape as the
/// reorder-agreement suite, offset seeds so the two suites explore
/// different problems).
fn random_module(rng: &mut XorShift64) -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("rand", &mut t);
    let n_inputs = 1 + rng.below(3);
    let mut pool: Vec<SignalId> = (0..n_inputs)
        .map(|i| b.input(&format!("i{i}")))
        .collect();

    let leaf = |pool: &[SignalId], rng: &mut XorShift64| -> BoolExpr {
        let v = BoolExpr::var(pool[rng.below(pool.len())]);
        if rng.flip() {
            v.not()
        } else {
            v
        }
    };

    for i in 0..1 + rng.below(2) {
        let a = leaf(&pool, rng);
        let c = leaf(&pool, rng);
        let func = match rng.below(3) {
            0 => BoolExpr::and([a, c]),
            1 => BoolExpr::or([a, c]),
            _ => BoolExpr::xor(a, c),
        };
        pool.push(b.wire(&format!("w{i}"), func));
    }
    for i in 0..2 + rng.below(3) {
        let next = leaf(&pool, rng);
        let q = b.latch(&format!("q{i}"), next, rng.flip());
        pool.push(q);
    }
    let out = *pool.last().expect("non-empty");
    b.mark_output(out);
    let m = b.finish().expect("generated netlist is valid");
    (t, m)
}

fn random_problem(seed: u64) -> (SignalTable, ArchSpec, RtlSpec) {
    let mut rng = XorShift64::new(seed.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(7));
    let (mut t, m) = random_module(&mut rng);
    let mod_atoms: Vec<SignalId> = m.signals().into_iter().collect();
    let mut atoms = mod_atoms.clone();
    atoms.push(t.intern("env"));
    let fa_budget = 4 + rng.below(4);
    let fa = random_formula(&mut rng, &mod_atoms, fa_budget);
    let n_props = 1 + rng.below(3);
    let props: Vec<(String, Ltl)> = (0..n_props)
        .map(|i| {
            let budget = 3 + rng.below(3);
            (format!("R{i}"), random_formula(&mut rng, &atoms, budget))
        })
        .collect();
    (
        t,
        ArchSpec::new([("A", fa)]),
        RtlSpec::new(props.iter().map(|(n, f)| (n.as_str(), f.clone())), [m]),
    )
}

/// Replays a witness word against the composed module on the simulator.
fn replay(model: &CoverageModel, table: &SignalTable, witness: &specmatcher::ltl::LassoWord) {
    let composed = model.composed();
    let mut sim = Simulator::new(composed, table).expect("simulates");
    let driven: Vec<SignalId> = composed.driven_signals().into_iter().collect();
    let inputs: Vec<SignalId> = model
        .input_signals()
        .iter()
        .copied()
        .filter(|s| !driven.contains(s))
        .collect();
    for (pos, expected) in witness.states().iter().enumerate() {
        let stimulus: Vec<(SignalId, bool)> =
            inputs.iter().map(|&i| (i, expected.get(i))).collect();
        let settled = sim.settle(&stimulus).clone();
        for &s in &driven {
            assert_eq!(
                settled.get(s),
                expected.get(s),
                "driven signal {} diverges at position {pos}",
                table.name(s)
            );
        }
        sim.step(&stimulus);
    }
}

fn gap_render(rep: &specmatcher::core::PropertyReport, t: &SignalTable) -> Vec<String> {
    rep.gap_properties
        .iter()
        .map(|g| {
            format!(
                "{} @{} +{} {}",
                g.formula.display(t),
                g.position,
                g.offset,
                g.literal.display(t)
            )
        })
        .collect::<Vec<_>>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full-pipeline equivalence of `--partition off` vs clustering forced
    /// at a pathologically small cluster cap (and the default cap).
    #[test]
    fn partitioning_is_invisible_on_random_coverage_problems(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let config = GapConfig {
            term_depth: 2,
            max_terms: 3,
            max_candidates: 24,
            max_gap_properties: 4,
            backend: Backend::Symbolic,
            ..GapConfig::default()
        };
        let matcher = SpecMatcher::new(config).with_backend(Backend::Symbolic);

        let build = |opts: SymbolicOptions| {
            CoverageModel::build_with_symbolic_options(&arch, &rtl, &t, Backend::Symbolic, opts)
                .expect("symbolic model builds")
        };
        // Reordering off in all three runs: this suite isolates the
        // partitioning axis (the reorder suite covers the other one).
        let base = SymbolicOptions::default().with_reorder(ReorderMode::Off);
        let run_off = matcher
            .check_with_model(&arch, &rtl, &t, &build(
                base.with_partition(PartitionMode::Off),
            ))
            .expect("partition-off pipeline runs");
        let run_tiny = matcher
            .check_with_model(&arch, &rtl, &t, &build(SymbolicOptions {
                partition: PartitionMode::Auto,
                cluster_size: 2, // every merge overflows: cluster boundaries everywhere
                ..base
            }))
            .expect("tiny-cluster pipeline runs");
        let run_auto = matcher
            .check_with_model(&arch, &rtl, &t, &build(
                base.with_partition(PartitionMode::Auto),
            ))
            .expect("default-cluster pipeline runs");

        for runs in [[&run_off, &run_tiny], [&run_off, &run_auto]] {
            let [ro, ra] = runs;
            prop_assert_eq!(ro.all_covered(), ra.all_covered(), "verdicts (seed {})", seed);
            for (po, pa) in ro.properties.iter().zip(&ra.properties) {
                prop_assert_eq!(po.covered, pa.covered, "per-property verdict (seed {})", seed);
                // Byte-identical gap-property sets, *in order*: the report
                // must be a function of the model, not of how the
                // transition relation happened to be clustered.
                prop_assert_eq!(
                    gap_render(po, &t),
                    gap_render(pa, &t),
                    "gap property sets diverge under partitioning (seed {})",
                    seed
                );
                for g in &pa.gap_properties {
                    prop_assert!(!pa.formula.holds_on(&g.witness));
                }
            }
        }
        // Witnesses may differ between representations but must replay.
        let stressed = CoverageModel::build_with_symbolic_options(
            &arch, &rtl, &t, Backend::Symbolic,
            SymbolicOptions {
                partition: PartitionMode::Auto,
                cluster_size: 2,
                ..SymbolicOptions::default().with_reorder(ReorderMode::Off)
            },
        ).expect("symbolic model builds");
        for p in &run_tiny.properties {
            if let Some(w) = &p.witness {
                replay(&stressed, &t, w);
            }
            for g in &p.gap_properties {
                replay(&stressed, &t, &g.witness);
            }
        }
    }
}

/// The four Table 1 designs, gap fingerprints diffed partition on vs off.
/// Slow (amba-ahb runs its full symbolic gap phase twice); the nightly CI
/// lane runs it — locally: `cargo test --release -- --ignored table1`.
#[test]
#[ignore = "minutes-long; nightly CI lane runs it (see .github/workflows/ci.yml)"]
fn table1_gap_fingerprints_agree_partition_on_vs_off() {
    for design in specmatcher::designs::table1_designs() {
        let mut fingerprints = Vec::new();
        for mode in [PartitionMode::Off, PartitionMode::Auto] {
            let matcher = SpecMatcher::new(GapConfig::default())
                .with_backend(Backend::Symbolic)
                .with_partition(mode);
            let run = design.check(&matcher).expect("table1 design checks");
            fingerprints.push(dic_bench::gap_fingerprint(&run, &design.table));
        }
        assert_eq!(
            fingerprints[0], fingerprints[1],
            "{}: gap fingerprints diverge partition off vs auto",
            design.name
        );
    }
}
