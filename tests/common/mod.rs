//! Shared helpers for the randomized integration suites: deterministic
//! random coverage problems and the simulator replay oracle.

use specmatcher::core::{ArchSpec, CoverageModel, RtlSpec};
use specmatcher::logic::{BoolExpr, SignalId, SignalTable};
use specmatcher::ltl::random::{random_formula, XorShift64};
use specmatcher::ltl::Ltl;
use specmatcher::netlist::{Module, ModuleBuilder, Simulator};

/// Deterministically generates a small random module: a couple of wires
/// over inputs/earlier signals, then a few latches.
pub fn random_module(rng: &mut XorShift64) -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("rand", &mut t);
    let n_inputs = 1 + rng.below(3);
    let mut pool: Vec<SignalId> = (0..n_inputs)
        .map(|i| b.input(&format!("i{i}")))
        .collect();

    let leaf = |pool: &[SignalId], rng: &mut XorShift64| -> BoolExpr {
        let v = BoolExpr::var(pool[rng.below(pool.len())]);
        if rng.flip() {
            v.not()
        } else {
            v
        }
    };

    for i in 0..1 + rng.below(2) {
        let a = leaf(&pool, rng);
        let c = leaf(&pool, rng);
        let func = match rng.below(3) {
            0 => BoolExpr::and([a, c]),
            1 => BoolExpr::or([a, c]),
            _ => BoolExpr::xor(a, c),
        };
        pool.push(b.wire(&format!("w{i}"), func));
    }
    for i in 0..1 + rng.below(3) {
        let next = leaf(&pool, rng);
        let q = b.latch(&format!("q{i}"), next, rng.flip());
        pool.push(q);
    }
    let out = *pool.last().expect("non-empty");
    b.mark_output(out);
    let m = b.finish().expect("generated netlist is valid");
    (t, m)
}

/// A random coverage problem over the module: an intent and a small RTL
/// property suite, all over module signals (plus one free spec atom).
pub fn random_problem(seed: u64) -> (SignalTable, ArchSpec, RtlSpec) {
    let mut rng = XorShift64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let (mut t, m) = random_module(&mut rng);
    // Assumption 1 (AP_A ⊆ AP_R): the intent stays over module signals;
    // the RTL properties may additionally mention a free environment atom.
    let mod_atoms: Vec<SignalId> = m.signals().into_iter().collect();
    let mut atoms = mod_atoms.clone();
    atoms.push(t.intern("env"));
    let fa_budget = 4 + rng.below(4);
    let fa = random_formula(&mut rng, &mod_atoms, fa_budget);
    let n_props = rng.below(3);
    let props: Vec<(String, Ltl)> = (0..n_props)
        .map(|i| {
            let budget = 3 + rng.below(3);
            (format!("R{i}"), random_formula(&mut rng, &atoms, budget))
        })
        .collect();
    (
        t,
        ArchSpec::new([("A", fa)]),
        RtlSpec::new(props.iter().map(|(n, f)| (n.as_str(), f.clone())), [m]),
    )
}

/// Replays a witness word against the composed module on the simulator.
pub fn replay(model: &CoverageModel, table: &SignalTable, witness: &specmatcher::ltl::LassoWord) {
    let composed = model.composed();
    let mut sim = Simulator::new(composed, table).expect("simulates");
    let driven: Vec<SignalId> = composed.driven_signals().into_iter().collect();
    let inputs: Vec<SignalId> = model
        .input_signals()
        .iter()
        .copied()
        .filter(|s| !driven.contains(s))
        .collect();
    for (pos, expected) in witness.states().iter().enumerate() {
        let stimulus: Vec<(SignalId, bool)> =
            inputs.iter().map(|&i| (i, expected.get(i))).collect();
        let settled = sim.settle(&stimulus).clone();
        for &s in &driven {
            assert_eq!(
                settled.get(s),
                expected.get(s),
                "driven signal {} diverges at position {pos}",
                table.name(s)
            );
        }
        sim.step(&stimulus);
    }
}
