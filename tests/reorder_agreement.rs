//! Dynamic variable reordering must be *invisible* in every answer: on
//! random coverage problems, the full pipeline with `--reorder off` and
//! with reordering forced at a tiny trigger must produce identical
//! verdicts, byte-identical gap-property sets, and witnesses that replay
//! on the concrete modules. (The witnesses themselves may differ — the
//! deterministic BDD walks follow the variable order — but everything
//! semantic must not.)
//!
//! Also pins the per-phase `Backend::Auto` choices the two-axis crossover
//! (state bits × predicted product width) makes for the packaged designs:
//! amba-ahb — 7 state bits but 29 conjunct automata — now resolves
//! symbolic for both phases, while the narrower pipeline stays explicit.

use proptest::prelude::*;
use specmatcher::core::{
    Backend, CoverageModel, GapConfig, ReorderMode, SpecMatcher, SymbolicOptions,
};
use specmatcher::logic::{BoolExpr, SignalId, SignalTable};
use specmatcher::ltl::random::{random_formula, XorShift64};
use specmatcher::ltl::Ltl;
use specmatcher::netlist::{Module, ModuleBuilder, Simulator};
use specmatcher::core::{ArchSpec, RtlSpec};

/// Deterministically generates a small random module (same shape as the
/// backend-agreement suite).
fn random_module(rng: &mut XorShift64) -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("rand", &mut t);
    let n_inputs = 1 + rng.below(3);
    let mut pool: Vec<SignalId> = (0..n_inputs)
        .map(|i| b.input(&format!("i{i}")))
        .collect();

    let leaf = |pool: &[SignalId], rng: &mut XorShift64| -> BoolExpr {
        let v = BoolExpr::var(pool[rng.below(pool.len())]);
        if rng.flip() {
            v.not()
        } else {
            v
        }
    };

    for i in 0..1 + rng.below(2) {
        let a = leaf(&pool, rng);
        let c = leaf(&pool, rng);
        let func = match rng.below(3) {
            0 => BoolExpr::and([a, c]),
            1 => BoolExpr::or([a, c]),
            _ => BoolExpr::xor(a, c),
        };
        pool.push(b.wire(&format!("w{i}"), func));
    }
    for i in 0..1 + rng.below(3) {
        let next = leaf(&pool, rng);
        let q = b.latch(&format!("q{i}"), next, rng.flip());
        pool.push(q);
    }
    let out = *pool.last().expect("non-empty");
    b.mark_output(out);
    let m = b.finish().expect("generated netlist is valid");
    (t, m)
}

fn random_problem(seed: u64) -> (SignalTable, ArchSpec, RtlSpec) {
    let mut rng = XorShift64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let (mut t, m) = random_module(&mut rng);
    let mod_atoms: Vec<SignalId> = m.signals().into_iter().collect();
    let mut atoms = mod_atoms.clone();
    atoms.push(t.intern("env"));
    let fa_budget = 4 + rng.below(4);
    let fa = random_formula(&mut rng, &mod_atoms, fa_budget);
    let n_props = rng.below(3);
    let props: Vec<(String, Ltl)> = (0..n_props)
        .map(|i| {
            let budget = 3 + rng.below(3);
            (format!("R{i}"), random_formula(&mut rng, &atoms, budget))
        })
        .collect();
    (
        t,
        ArchSpec::new([("A", fa)]),
        RtlSpec::new(props.iter().map(|(n, f)| (n.as_str(), f.clone())), [m]),
    )
}

/// Replays a witness word against the composed module on the simulator.
fn replay(model: &CoverageModel, table: &SignalTable, witness: &specmatcher::ltl::LassoWord) {
    let composed = model.composed();
    let mut sim = Simulator::new(composed, table).expect("simulates");
    let driven: Vec<SignalId> = composed.driven_signals().into_iter().collect();
    let inputs: Vec<SignalId> = model
        .input_signals()
        .iter()
        .copied()
        .filter(|s| !driven.contains(s))
        .collect();
    for (pos, expected) in witness.states().iter().enumerate() {
        let stimulus: Vec<(SignalId, bool)> =
            inputs.iter().map(|&i| (i, expected.get(i))).collect();
        let settled = sim.settle(&stimulus).clone();
        for &s in &driven {
            assert_eq!(
                settled.get(s),
                expected.get(s),
                "driven signal {} diverges at position {pos}",
                table.name(s)
            );
        }
        sim.step(&stimulus);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full-pipeline equivalence of `--reorder off` vs reorders forced at
    /// every fixpoint step.
    #[test]
    fn reorder_is_invisible_on_random_coverage_problems(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let config = GapConfig {
            term_depth: 2,
            max_terms: 3,
            max_candidates: 24,
            max_gap_properties: 4,
            backend: Backend::Symbolic,
            ..GapConfig::default()
        };
        let matcher = SpecMatcher::new(config).with_backend(Backend::Symbolic);

        let build = |opts: SymbolicOptions| {
            CoverageModel::build_with_symbolic_options(&arch, &rtl, &t, Backend::Symbolic, opts)
                .expect("symbolic model builds")
        };
        let plain = build(SymbolicOptions::default().with_reorder(ReorderMode::Off));
        let run_off = matcher
            .check_with_model(&arch, &rtl, &t, &plain)
            .expect("reorder-off pipeline runs");

        let stressed = build(SymbolicOptions {
            reorder_trigger: 1,
            ..SymbolicOptions::default()
        });
        let run_auto = matcher
            .check_with_model(&arch, &rtl, &t, &stressed)
            .expect("reorder-auto pipeline runs");

        prop_assert_eq!(
            run_off.all_covered(),
            run_auto.all_covered(),
            "verdicts (seed {})",
            seed
        );
        for (ro, ra) in run_off.properties.iter().zip(&run_auto.properties) {
            prop_assert_eq!(ro.covered, ra.covered, "per-property verdict (seed {})", seed);
            // Byte-identical gap-property sets, *in order* — the canonical
            // candidate enumeration plus semantic closure verdicts must
            // make the report a function of the model, not of the
            // variable order the engine happened to settle on.
            let render = |rep: &specmatcher::core::PropertyReport| {
                rep.gap_properties
                    .iter()
                    .map(|g| {
                        format!(
                            "{} @{} +{} {}",
                            g.formula.display(&t),
                            g.position,
                            g.offset,
                            g.literal.display(&t)
                        )
                    })
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(
                render(ro),
                render(ra),
                "gap property sets diverge under reordering (seed {})",
                seed
            );
            // Witnesses may differ but must replay on the modules.
            if let Some(w) = &ra.witness {
                replay(&stressed, &t, w);
            }
            for g in &ra.gap_properties {
                prop_assert!(!ra.formula.holds_on(&g.witness));
                replay(&stressed, &t, &g.witness);
            }
        }
    }
}

#[test]
fn auto_crossover_reflects_product_width() {
    // Re-derived for the automaton reduction pipeline, and re-checked
    // after the complement-edge BDD core: amba-ahb — 7 state bits, 29
    // conjuncts, post-reduction predicted cost ≈ 1980 — runs its
    // *explicit* gap phase in ~8 s (the reduced per-candidate closure
    // automata are ~4x smaller). The anchored/partitioned symbolic
    // engine cut its forced-symbolic run from ~230 s to ~40 s, still
    // ~5x behind explicit, so Auto must keep resolving explicit for
    // both phases; the pre-reduction crossover (800) sent it symbolic.
    // (n=4 tuning caveat: the four packaged designs are the only
    // calibration set for the 2600 threshold.)
    let amba = specmatcher::designs::amba::ahb29();
    let model = CoverageModel::build(&amba.arch, &amba.rtl, &amba.table).expect("builds");
    assert_eq!(model.primary_backend(), Backend::Explicit, "amba primary");
    assert_eq!(
        model.gap_backend_choice(Backend::Auto),
        Backend::Explicit,
        "amba gap"
    );
    assert!(model.has_explicit(), "explicit structure carries Algorithm 1");

    // The narrower pipeline design (12 properties, cost ≈ 350) stays
    // explicit on both axes, as before.
    let pipe = specmatcher::designs::pipeline::pipeline12();
    let model = CoverageModel::build(&pipe.arch, &pipe.rtl, &pipe.table).expect("builds");
    assert_eq!(model.primary_backend(), Backend::Explicit, "pipeline primary");
    assert_eq!(
        model.gap_backend_choice(Backend::Auto),
        Backend::Explicit,
        "pipeline gap"
    );

    // mal-ex2 (6 properties) likewise.
    let ex2 = specmatcher::designs::mal::ex2();
    let model = CoverageModel::build(&ex2.arch, &ex2.rtl, &ex2.table).expect("builds");
    assert_eq!(model.primary_backend(), Backend::Explicit, "mal-ex2 primary");

    // mal-26 still crosses over on the state-bit axis (17 bits > 14).
    let mal26 = specmatcher::designs::mal::mal26();
    let model = CoverageModel::build(&mal26.arch, &mal26.rtl, &mal26.table).expect("builds");
    assert_eq!(model.primary_backend(), Backend::Symbolic, "mal-26 primary");
    assert_eq!(
        model.gap_backend_choice(Backend::Auto),
        Backend::Symbolic,
        "mal-26 gap"
    );
}
