//! Fault-injection robustness sweep: deterministic faults (node-limit,
//! deadline, SAT-unknown, panic) are injected at every counted seam
//! (`bdd.alloc`, `symbolic.fixpoint_step`, `sat.solve`, `gap.worker`,
//! `bmc.encode`) over randomized coverage problems × both backends ×
//! jobs 1/4 × several hit schedules, asserting the governance contract:
//!
//! 1. **No escaped panics.** A `gap.worker` panic is isolated by the
//!    worker's `catch_unwind` and demoted to an unknown verdict; an
//!    injected panic at any other site may surface (the CLI converts it
//!    to an abort with a terminated trace), but only ever carries the
//!    injected message — a different panic means the isolation layer
//!    corrupted something on the way down.
//! 2. **No unsound verdicts.** Every verdict a faulted run *settles*
//!    matches the fault-free baseline, and every gap property it reports
//!    genuinely closes the gap on a fault-free model (the semantic
//!    membership test for the fault-free canonical set — the reported
//!    list itself is merge-order-sensitive, closure is not).
//! 3. **Quiet faults are free.** When the injection was absorbed without
//!    a trace (no unknown verdicts, no `incomplete:`), the reported gap
//!    sets are byte-identical to the baseline — the SAT-unknown screen
//!    and the symbolic→explicit retry both preserve the canonical sets.
//!
//! The fault plan is process-global, so this file holds a single test.

use proptest::prelude::*;
use specmatcher::core::{closes_gap, Backend, GapConfig, SpecMatcher};
use specmatcher::fault::{self, FaultKind, FaultPlan, Site};
use std::panic::{catch_unwind, AssertUnwindSafe};

// Only the problem generator is used here; `replay` stays with the
// backend-agreement suites.
#[allow(dead_code)]
mod common;
use common::random_problem;

const KINDS: [FaultKind; 4] = [
    FaultKind::NodeLimit,
    FaultKind::Deadline,
    FaultKind::SatUnknown,
    FaultKind::Panic,
];

/// Hit schedules: 1 lands in model construction, the larger counts land
/// progressively deeper in the primary/gap phases; a count past the
/// site's total hits degenerates to a fault-free run, which the equality
/// arm of the contract still checks.
const SCHEDULES: [u64; 4] = [1, 9, 97, 641];

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn injections_never_escape_or_corrupt(
        seed in 1u64..100_000,
        schedule_idx in 0usize..SCHEDULES.len(),
        jobs_four in 0u8..2,
        symbolic in 0u8..2,
    ) {
        let (t, arch, rtl) = random_problem(seed);
        let backend = if symbolic == 1 { Backend::Symbolic } else { Backend::Explicit };
        let jobs = if jobs_four == 1 { 4 } else { 1 };
        let nth = SCHEDULES[schedule_idx];
        let config = GapConfig {
            term_depth: 2,
            max_terms: 3,
            max_candidates: 24,
            max_gap_properties: 4,
            ..GapConfig::default()
        };
        let matcher = || {
            SpecMatcher::new(config.clone())
                .with_backend(backend)
                .with_jobs(jobs)
        };

        // Fault-free baseline (and the model the closure oracle uses).
        fault::disarm_fault();
        fault::disarm_deadline();
        let baseline = matcher().check(&arch, &rtl, &t).expect("fault-free run is total");
        let oracle_model = specmatcher::core::CoverageModel::build_with_backend(
            &arch, &rtl, &t, backend,
        ).expect("fault-free model builds");
        let base_sets: Vec<(bool, Vec<String>)> = baseline
            .properties
            .iter()
            .map(|p| {
                let mut v: Vec<String> = p
                    .gap_properties
                    .iter()
                    .map(|g| g.formula.display(&t).to_string())
                    .collect();
                v.sort();
                (p.covered, v)
            })
            .collect();

        // Injected panics are expected on some paths; keep the default
        // hook from spraying backtraces over the proptest output.
        let quiet_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        let mut failure: Option<String> = None;
        'sweep: for site in Site::ALL {
            for kind in KINDS {
                fault::reset_hits();
                fault::arm_fault(FaultPlan { site, nth, kind });
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    matcher().check(&arch, &rtl, &t)
                }));
                fault::disarm_fault();
                let label = format!(
                    "seed {seed} {site:?}:{nth}:{kind:?} backend {backend} jobs {jobs}"
                );
                let run = match outcome {
                    Err(payload) => {
                        let msg = panic_text(payload.as_ref());
                        if kind != FaultKind::Panic {
                            failure = Some(format!("{label}: escaped panic: {msg}"));
                            break 'sweep;
                        }
                        if site == Site::GapWorker {
                            failure = Some(format!(
                                "{label}: gap.worker panic must be isolated, escaped: {msg}"
                            ));
                            break 'sweep;
                        }
                        if !msg.contains(fault::INJECTED_PANIC_MSG) {
                            failure = Some(format!("{label}: foreign panic: {msg}"));
                            break 'sweep;
                        }
                        continue;
                    }
                    Ok(Err(e)) => {
                        // A surfaced error must be the degradable resource
                        // class — the injection may only ever look like a
                        // legitimate refusal.
                        if !e.is_degradable() {
                            failure = Some(format!("{label}: non-degradable error: {e}"));
                            break 'sweep;
                        }
                        continue;
                    }
                    Ok(Ok(run)) => run,
                };

                let quiet = run.incomplete.is_none()
                    && run.properties.iter().all(|p| {
                        p.unknown.is_none() && p.unknown_gaps.is_empty()
                    });
                for (p, (base_covered, base_set)) in
                    run.properties.iter().zip(&base_sets)
                {
                    if p.unknown.is_some() {
                        continue; // verdict not settled: nothing to compare
                    }
                    if p.covered != *base_covered {
                        failure = Some(format!(
                            "{label}: settled verdict flipped for {}",
                            p.name
                        ));
                        break 'sweep;
                    }
                    let mut set: Vec<String> = p
                        .gap_properties
                        .iter()
                        .map(|g| g.formula.display(&t).to_string())
                        .collect();
                    set.sort();
                    if quiet && set != *base_set {
                        failure = Some(format!(
                            "{label}: quiet fault changed the gap set for {}: \
                             {set:?} vs {base_set:?}",
                            p.name
                        ));
                        break 'sweep;
                    }
                    // Semantic canonical-set membership: every reported
                    // property closes the gap on a fault-free model.
                    for g in &p.gap_properties {
                        match closes_gap(&g.formula, &p.formula, &rtl, &oracle_model) {
                            Ok(true) => {}
                            Ok(false) => {
                                failure = Some(format!(
                                    "{label}: reported non-closing property {}",
                                    g.formula.display(&t)
                                ));
                                break 'sweep;
                            }
                            Err(e) => {
                                failure = Some(format!("{label}: oracle failed: {e}"));
                                break 'sweep;
                            }
                        }
                    }
                }
            }
        }
        fault::disarm_fault();
        fault::disarm_deadline();
        std::panic::set_hook(quiet_hook);
        if let Some(msg) = failure {
            prop_assert!(false, "{}", msg);
        }
    }
}
