//! Integration smoke tests over the Table 1 designs: every packaged design
//! builds, runs the full pipeline, and matches its documented verdict.

use specmatcher::core::{GapConfig, SpecMatcher};
use specmatcher::designs::{pipeline, table1_designs};

#[test]
fn all_table1_designs_run() {
    // Cheap configuration: the full Table 1 run happens in the bench
    // harness; here we only assert the pipeline completes and verdicts hold.
    let config = GapConfig {
        max_terms: 2,
        max_candidates: 24,
        max_gap_properties: 2,
        ..GapConfig::default()
    };
    let matcher = SpecMatcher::new(config);
    for design in table1_designs() {
        let run = design.check(&matcher).unwrap_or_else(|e| {
            panic!("design {} failed to run: {e}", design.name)
        });
        assert_eq!(run.properties.len(), 1, "{}", design.name);
        assert!(
            !run.all_covered(),
            "{}: Table 1 designs are tuned to exercise gap finding",
            design.name
        );
        assert!(
            run.num_rtl_properties >= 2,
            "{}: property suite missing",
            design.name
        );
    }
}

#[test]
fn table1_property_counts_match_paper() {
    let designs = table1_designs();
    let counts: Vec<(_, _)> = designs
        .iter()
        .map(|d| (d.name, d.rtl.num_properties()))
        .collect();
    assert_eq!(counts[0], ("mal-26", 26));
    assert_eq!(counts[1], ("pipeline", 12));
    assert_eq!(counts[2], ("amba-ahb", 29));
}

#[test]
fn pipeline_gap_mentions_ack_timing() {
    let d = pipeline::pipeline12();
    let run = d
        .check(&SpecMatcher::new(GapConfig::default()))
        .expect("runs");
    let rep = &run.properties[0];
    assert!(!rep.covered);
    let ack = d.table.lookup("ack").expect("ack interned");
    assert!(
        rep.gap_properties
            .iter()
            .any(|g| g.formula.atoms().contains(&ack)),
        "the pipeline gap is about ack timing: {:?}",
        rep.gap_properties
            .iter()
            .map(|g| g.describe(&d.table))
            .collect::<Vec<_>>()
    );
}
