//! Integration smoke tests over the Table 1 designs: every packaged design
//! builds, runs the full pipeline, and matches its documented verdict.
//!
//! The wide designs (mal-26, amba-ahb) take tens of seconds each even with
//! the reduced gap budget, so their full-pipeline runs live behind
//! `#[ignore]` and execute in the nightly lane (`cargo test -q --
//! --ignored`); the default lane keeps the fast rows plus the structural
//! assertions, so tier-1 wall time stays low without losing the coverage.

use specmatcher::core::{GapConfig, SpecMatcher};
use specmatcher::designs::{mal, pipeline, table1_designs, Design};

/// Cheap configuration: the full Table 1 run happens in the bench
/// harness; here we only assert the pipeline completes and verdicts hold.
fn smoke_config() -> GapConfig {
    GapConfig {
        max_terms: 2,
        max_candidates: 24,
        max_gap_properties: 2,
        ..GapConfig::default()
    }
}

/// Full-pipeline assertions shared by the fast and nightly lanes.
fn assert_design_runs(design: &Design) {
    let matcher = SpecMatcher::new(smoke_config());
    let run = design
        .check(&matcher)
        .unwrap_or_else(|e| panic!("design {} failed to run: {e}", design.name));
    assert_eq!(run.properties.len(), 1, "{}", design.name);
    assert!(
        !run.all_covered(),
        "{}: Table 1 designs are tuned to exercise gap finding",
        design.name
    );
    assert!(
        run.num_rtl_properties >= 2,
        "{}: property suite missing",
        design.name
    );
}

#[test]
fn fast_table1_designs_run() {
    assert_design_runs(&pipeline::pipeline12());
    assert_design_runs(&mal::ex2());
}

#[test]
#[ignore = "tens of seconds even with the reduced gap budget; nightly lane"]
fn mal26_full_pipeline_runs() {
    assert_design_runs(&mal::mal26());
}

#[test]
#[ignore = "tens of seconds even with the reduced gap budget; nightly lane"]
fn amba_ahb_full_pipeline_runs() {
    assert_design_runs(&specmatcher::designs::amba::ahb29());
}

#[test]
fn table1_property_counts_match_paper() {
    let designs = table1_designs();
    let counts: Vec<(_, _)> = designs
        .iter()
        .map(|d| (d.name, d.rtl.num_properties()))
        .collect();
    assert_eq!(counts[0], ("mal-26", 26));
    assert_eq!(counts[1], ("pipeline", 12));
    assert_eq!(counts[2], ("amba-ahb", 29));
}

#[test]
fn pipeline_gap_mentions_ack_timing() {
    let d = pipeline::pipeline12();
    let run = d
        .check(&SpecMatcher::new(GapConfig::default()))
        .expect("runs");
    let rep = &run.properties[0];
    assert!(!rep.covered);
    let ack = d.table.lookup("ack").expect("ack interned");
    assert!(
        rep.gap_properties
            .iter()
            .any(|g| g.formula.atoms().contains(&ack)),
        "the pipeline gap is about ack timing: {:?}",
        rep.gap_properties
            .iter()
            .map(|g| g.describe(&d.table))
            .collect::<Vec<_>>()
    );
}
