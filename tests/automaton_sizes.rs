//! Regression pins for the automaton reduction pipeline: exact
//! post-reduction state and acceptance-set counts for every Table-1 spec
//! conjunct (each RTL property and the negated intent). A future rewrite
//! or tableau regression then shows up as a *diff in this table*, not as
//! an unexplained slowdown three layers downstream.
//!
//! The `pre` numbers are the legacy (pre-pipeline) GPVW tableau — what
//! `SPECMATCHER_NO_REDUCE=1` restores. The paper's Table-1 RTL suites are
//! dominated by shallow `G(x -> X y)`-class safety properties whose
//! tableaus are already simulation-minimal; the pipeline's measured wins
//! are on the `U`/`F`-shaped liveness conjuncts pinned as strict
//! decreases below, and (above all) on the deep weakened-candidate
//! automata of Algorithm 1's closure loop, which are not per-design
//! constants and are exercised by `tests/reduction_equivalence.rs`.

use specmatcher::automata::translation_reduction;
use specmatcher::designs::table1_designs;
use specmatcher::ltl::Ltl;

/// (conjunct, pre states, post states, pre acceptance sets, post ones).
type Pin = (&'static str, usize, usize, usize, usize);

fn pins() -> Vec<(&'static str, Vec<Pin>)> {
    vec![
        (
            "mal-26",
            vec![
                ("G1", 6, 6, 0, 0),
                ("G2", 8, 8, 0, 0),
                ("G3", 10, 10, 0, 0),
                ("G4", 12, 12, 0, 0),
                ("C1", 4, 4, 0, 0),
                ("C2", 4, 4, 0, 0),
                ("C3", 4, 4, 0, 0),
                ("C4", 4, 4, 0, 0),
                ("B2", 4, 4, 0, 0),
                ("B3", 4, 4, 0, 0),
                ("B4", 4, 4, 0, 0),
                ("X1", 2, 2, 0, 0),
                ("X2", 2, 2, 0, 0),
                ("X3", 2, 2, 0, 0),
                ("X4", 2, 2, 0, 0),
                ("X5", 2, 2, 0, 0),
                ("X6", 2, 2, 0, 0),
                ("W1", 4, 4, 0, 0),
                ("W2", 4, 4, 0, 0),
                ("W3", 4, 4, 0, 0),
                ("W4", 4, 4, 0, 0),
                ("K2", 4, 4, 0, 0),
                ("K3", 4, 4, 0, 0),
                ("K4", 4, 4, 0, 0),
                ("INIT", 2, 2, 0, 0),
                ("FAIR", 2, 2, 1, 1),
                ("!A", 11, 11, 2, 2),
            ],
        ),
        (
            "pipeline",
            vec![
                ("R1_FILL", 6, 6, 0, 0),
                ("R2_ONLY", 4, 4, 0, 0),
                ("R3_QUIET", 4, 4, 0, 0),
                ("R4_MEMFAIR", 2, 2, 1, 1),
                ("R5_INIT", 2, 2, 0, 0),
                ("R6_STALL", 4, 4, 0, 0),
                ("R7_ISSUE", 6, 6, 0, 0),
                ("R8_ACKPULSE", 3, 2, 0, 0),
                ("R9_REQHOLD", 5, 5, 0, 0),
                ("R10_NOREQ", 4, 4, 0, 0),
                ("R11_INIT", 2, 2, 0, 0),
                ("R12_PENDHOLD", 5, 5, 0, 0),
                ("!A", 6, 6, 1, 1),
            ],
        ),
        (
            "amba-ahb",
            vec![
                ("M1_START", 8, 8, 0, 0),
                ("M1_NOGRANT", 4, 4, 0, 0),
                ("M1_HOLD", 7, 7, 0, 0),
                ("M1_REQHOLD", 5, 5, 0, 0),
                ("M1_DONE", 7, 4, 0, 0),
                ("M1_NOREQ", 5, 5, 0, 0),
                ("M1_INIT", 2, 2, 0, 0),
                ("M1_CONT", 9, 9, 0, 0),
                ("M2_START", 8, 8, 0, 0),
                ("M2_NOGRANT", 4, 4, 0, 0),
                ("M2_HOLD", 7, 7, 0, 0),
                ("M2_REQHOLD", 5, 5, 0, 0),
                ("M2_DONE", 7, 4, 0, 0),
                ("M2_NOREQ", 5, 5, 0, 0),
                ("M2_INIT", 2, 2, 0, 0),
                ("M2_CONT", 9, 9, 0, 0),
                ("S_IDLE_READY", 6, 6, 0, 0),
                ("S_FAIR", 2, 2, 1, 1),
                ("S_COMPLETE", 5, 3, 1, 1),
                ("S_INIT", 2, 2, 0, 0),
                ("S_LIVE", 4, 2, 1, 1),
                ("S_WAIT2", 7, 3, 0, 0),
                ("P_TRANS_MUTEX", 2, 2, 0, 0),
                ("P_OWN1", 4, 4, 0, 0),
                ("P_OWN2", 4, 4, 0, 0),
                ("P_INIT", 2, 2, 0, 0),
                ("P_GRANT_MUTEX", 2, 2, 0, 0),
                ("P_SERVE1", 5, 3, 1, 1),
                ("P_SERVE2", 8, 4, 1, 1),
                ("!A", 5, 5, 1, 1),
            ],
        ),
        (
            "mal-ex2",
            vec![
                ("R'1", 4, 4, 0, 0),
                ("R'2", 6, 6, 0, 0),
                ("C'1", 4, 4, 0, 0),
                ("C'2", 4, 4, 0, 0),
                ("INIT", 2, 2, 0, 0),
                ("FAIR", 2, 2, 1, 1),
                ("!A", 11, 11, 2, 2),
            ],
        ),
    ]
}

#[test]
fn table1_conjunct_sizes_are_pinned() {
    let designs = table1_designs();
    for (design_name, expected) in pins() {
        let design = designs
            .iter()
            .find(|d| d.name == design_name)
            .expect("packaged design");
        let mut conjuncts: Vec<(String, Ltl)> = design
            .rtl
            .properties()
            .iter()
            .map(|p| (p.name().to_owned(), p.formula().clone()))
            .collect();
        for p in design.arch.properties() {
            conjuncts.push((format!("!{}", p.name()), Ltl::not(p.formula().clone())));
        }
        assert_eq!(
            conjuncts.len(),
            expected.len(),
            "{design_name}: conjunct count drifted"
        );
        for ((name, f), &(pin_name, pre_s, post_s, pre_a, post_a)) in
            conjuncts.iter().zip(&expected)
        {
            assert_eq!(name, pin_name, "{design_name}: conjunct order drifted");
            let s = translation_reduction(f);
            assert_eq!(
                (s.pre.states, s.post.states, s.pre.acceptance_sets, s.post.acceptance_sets),
                (pre_s, post_s, pre_a, post_a),
                "{design_name}/{name}: automaton sizes drifted (pre/post states, pre/post acc)"
            );
            assert!(
                s.post.states <= s.pre.states
                    && s.post.transitions <= s.pre.transitions
                    && s.post.acceptance_sets <= s.pre.acceptance_sets,
                "{design_name}/{name}: reduction must never grow"
            );
        }
    }
}

#[test]
fn liveness_conjuncts_strictly_shrink() {
    // The conjuncts where the pipeline provably bites on Table 1 — every
    // `U`/`F`-shaped liveness property with a postponement branch — must
    // keep strictly decreasing; losing one of these is a reduction
    // regression even if nothing slows down immediately.
    let strict: &[(&str, &str)] = &[
        ("pipeline", "R8_ACKPULSE"),
        ("amba-ahb", "M1_DONE"),
        ("amba-ahb", "M2_DONE"),
        ("amba-ahb", "S_COMPLETE"),
        ("amba-ahb", "S_LIVE"),
        ("amba-ahb", "S_WAIT2"),
        ("amba-ahb", "P_SERVE1"),
        ("amba-ahb", "P_SERVE2"),
    ];
    let designs = table1_designs();
    for &(design_name, prop) in strict {
        let design = designs
            .iter()
            .find(|d| d.name == design_name)
            .expect("packaged design");
        let p = design
            .rtl
            .properties()
            .iter()
            .find(|p| p.name() == prop)
            .expect("pinned property exists");
        let s = translation_reduction(p.formula());
        assert!(
            s.post.states < s.pre.states,
            "{design_name}/{prop}: expected a strict state decrease, got {} -> {}",
            s.pre.states,
            s.post.states
        );
    }
}

#[test]
fn weakened_candidate_automata_shrink_hard() {
    // The gap phase's real automaton load: Algorithm 1 verifies hundreds
    // of weakened candidates `U`, each conjoined positively into a
    // closure product. Their tableaus carry doomed postponement branches
    // the reduction removes wholesale — pin the flagship shape so the
    // 4x product shrink (and with it the measured 14x explicit gap-phase
    // speedup) cannot silently regress.
    let mut t = specmatcher::logic::SignalTable::new();
    let u = Ltl::parse(
        "G(!wait & r1 & X((r1 & !g1) U r2) -> X(!d2 U d1))",
        &mut t,
    )
    .expect("parse");
    let s = translation_reduction(&u);
    assert_eq!(s.pre.states, 48, "legacy tableau size drifted");
    assert!(
        s.post.states <= 11,
        "weakened-candidate reduction regressed: {} -> {}",
        s.pre.states,
        s.post.states
    );
}
