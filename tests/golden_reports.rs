//! Golden rendered `check` reports: formatting regressions in the
//! human-facing coverage report (witness layout, term rendering, gap
//! property lines, backend labels) are caught by comparing against
//! checked-in expectations with a normalizing diff (wall-clock timing
//! lines are stripped; everything else is deterministic).
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```

use specmatcher::core::{GapConfig, SpecMatcher};
use specmatcher::designs::{mal, scaling, Design};
use std::path::PathBuf;

/// Renders the full coverage report for `design` with the default
/// configuration and strips the lines that vary run to run.
fn normalized_report(design: &Design) -> String {
    let run = design
        .check(&SpecMatcher::new(GapConfig::default()))
        .expect("packaged design runs");
    let text = run.render(&design.table);
    let mut normalized: String = text
        .lines()
        // Everything from a `profile:` line on is the optional dic_trace
        // span/counter tree (`--profile`) — durations and node counts,
        // all run dependent.
        .take_while(|l| !l.starts_with("profile:"))
        // Wall-clock, reorder and worker statistics are machine/run
        // dependent (jobs defaults to the machine's parallelism), and the
        // governance layer's degradation surfaces (`incomplete:` reasons,
        // `unknown` verdict lines) depend on budgets and deadlines the
        // golden runs don't pin.
        .filter(|l| {
            !l.starts_with("timings")
                && !l.starts_with("reordering")
                && !l.starts_with("jobs")
                && !l.starts_with("incomplete:")
                && !l.trim_start().starts_with("unknown")
                && !l.trim_start().starts_with("UNKNOWN")
                && !l.trim_start().starts_with("unverified gap candidates")
        })
        .collect::<Vec<_>>()
        .join("\n");
    normalized.push('\n');
    normalized
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).expect("golden file writes");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("golden file {path:?} unreadable ({e}); create it with UPDATE_GOLDEN=1")
    });
    if expected == actual {
        return;
    }
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            e,
            a,
            "golden report {name} diverges at line {} (regenerate with UPDATE_GOLDEN=1 \
             if the change is intentional)",
            i + 1,
        );
    }
    panic!(
        "golden report {name} diverges in length: expected {} lines, rendered {}",
        expected.lines().count(),
        actual.lines().count()
    );
}

#[test]
fn mal_ex1_report_matches_golden() {
    // Covered design: the report is the COVERED verdict per property.
    assert_golden("mal_ex1.txt", &normalized_report(&mal::ex1()));
}

#[test]
fn mal_ex2_report_matches_golden() {
    // Gapped design: witness run, uncovered terms and gap properties.
    assert_golden("mal_ex2.txt", &normalized_report(&mal::ex2()));
}

#[test]
fn chain_gap_report_matches_golden() {
    // Gapped scaling fixture: exercises the Theorem 2 exact-hole fallback
    // (no structure-preserving property closes the off-by-one chain gap).
    assert_golden("chain_6_gap.txt", &normalized_report(&scaling::chain_design(6, true)));
}
