//! Reduction equivalence: the automaton reduction pipeline (LTL rewriting
//! → tableau pruning → simulation quotienting) must be *invisible* in
//! every answer.
//!
//! Two layers of evidence:
//!
//! 1. In-process, on random netlists × random LTL conjunctions: the
//!    multi-automaton product over **raw GPVW** translations and over
//!    **fully reduced** translations must agree on satisfiability, and
//!    reduced-path witnesses must satisfy every original conjunct and the
//!    lasso-semantics oracle.
//! 2. End-to-end, through the binary: the full pipeline (primary + gap
//!    phases) on randomly generated SNL + spec files must report the same
//!    verdict, exit code and gap-property set with reduction on (default)
//!    and off (`SPECMATCHER_NO_REDUCE=1`) — the escape hatch this asserts
//!    is also what CI uses for bisecting miscompares. Witness runs *may*
//!    differ (smaller automata walk different lassos); everything
//!    semantic must not.

use proptest::prelude::*;
use specmatcher::automata::{reduce, satisfiable_in_conj_gbas, translate, Gba};
use specmatcher::logic::{BoolExpr, SignalId, SignalTable};
use specmatcher::ltl::random::{random_formula, XorShift64};
use specmatcher::ltl::Ltl;
use specmatcher::netlist::ModuleBuilder;
use std::fmt::Write as _;
use std::process::Command;

/// A random Kripke structure, mirroring the `backend_agreement` generator.
fn random_kripke(rng: &mut XorShift64) -> (SignalTable, specmatcher::fsm::Kripke, Vec<SignalId>) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("rand", &mut t);
    let n_inputs = 1 + rng.below(3);
    let mut pool: Vec<SignalId> = (0..n_inputs)
        .map(|i| b.input(&format!("i{i}")))
        .collect();
    let leaf = |pool: &[SignalId], rng: &mut XorShift64| -> BoolExpr {
        let v = BoolExpr::var(pool[rng.below(pool.len())]);
        if rng.flip() {
            v.not()
        } else {
            v
        }
    };
    for i in 0..1 + rng.below(2) {
        let a = leaf(&pool, rng);
        let c = leaf(&pool, rng);
        let func = match rng.below(3) {
            0 => BoolExpr::and([a, c]),
            1 => BoolExpr::or([a, c]),
            _ => BoolExpr::xor(a, c),
        };
        pool.push(b.wire(&format!("w{i}"), func));
    }
    for i in 0..1 + rng.below(3) {
        let next = leaf(&pool, rng);
        pool.push(b.latch(&format!("q{i}"), next, rng.flip()));
    }
    let m = b.finish().expect("generated netlist is valid");
    let atoms: Vec<SignalId> = m.signals().into_iter().collect();
    let k = specmatcher::fsm::Kripke::from_module(&m, &t, &[]).expect("small");
    (t, k, atoms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw vs reduced automata: identical conjunction verdicts on random
    /// models, and reduced witnesses satisfy the original formulas.
    #[test]
    fn raw_and_reduced_products_agree(seed in 1u64..100_000) {
        let mut rng = XorShift64::new(seed.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(7));
        let (t, k, atoms) = random_kripke(&mut rng);
        let n_conj = 1 + rng.below(3);
        let formulas: Vec<Ltl> = (0..n_conj)
            .map(|_| {
                let budget = 3 + rng.below(5);
                random_formula(&mut rng, &atoms, budget)
            })
            .collect();

        let raw: Vec<Gba> = formulas.iter().map(|f| translate(&f.core_nnf())).collect();
        let reduced: Vec<Gba> = formulas
            .iter()
            .map(|f| reduce(&translate(&f.simplify())))
            .collect();
        for (full, small) in raw.iter().zip(&reduced) {
            prop_assert!(small.num_states() <= full.num_states());
        }

        let raw_refs: Vec<&Gba> = raw.iter().collect();
        let red_refs: Vec<&Gba> = reduced.iter().collect();
        let v_raw = satisfiable_in_conj_gbas(&raw_refs, &k);
        let v_red = satisfiable_in_conj_gbas(&red_refs, &k);
        prop_assert_eq!(
            v_raw.is_some(),
            v_red.is_some(),
            "raw vs reduced verdicts diverge on seed {} ({:?})",
            seed,
            formulas.iter().map(|f| f.display(&t).to_string()).collect::<Vec<_>>()
        );
        if let Some(w) = v_red {
            for f in &formulas {
                prop_assert!(
                    f.holds_on(&w),
                    "reduced-path witness violates {} (seed {})",
                    f.display(&t),
                    seed
                );
            }
        }
    }
}

/// Renders a random coverage problem as SNL + spec files and returns the
/// two file bodies. The module mirrors [`random_kripke`]; the spec draws
/// its atoms from the module signals so Assumption 1 holds.
fn random_problem_files(seed: u64) -> (String, String) {
    let mut rng = XorShift64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(3));
    let n_inputs = 1 + rng.below(3);
    let inputs: Vec<String> = (0..n_inputs).map(|i| format!("i{i}")).collect();
    let mut pool: Vec<String> = inputs.clone();
    let mut body = String::new();
    let leaf = |pool: &[String], rng: &mut XorShift64| -> String {
        let v = &pool[rng.below(pool.len())];
        if rng.flip() {
            format!("!{v}")
        } else {
            v.clone()
        }
    };
    for i in 0..1 + rng.below(2) {
        let (a, c) = (leaf(&pool, &mut rng), leaf(&pool, &mut rng));
        let op = ["&", "|"][rng.below(2)];
        let _ = writeln!(body, "  assign w{i} = {a} {op} {c}");
        pool.push(format!("w{i}"));
    }
    for i in 0..1 + rng.below(3) {
        let next = leaf(&pool, &mut rng);
        let init = if rng.flip() { 1 } else { 0 };
        let _ = writeln!(body, "  latch q{i} = {next} init {init}");
        pool.push(format!("q{i}"));
    }
    let out = pool.last().expect("non-empty").clone();
    let snl = format!(
        "module rand\n  input {}\n  output {}\n{}endmodule\n",
        inputs.join(" "),
        out,
        body
    );

    // Formulas over the emitted signal names, via a scratch table.
    let mut t = SignalTable::new();
    let atoms: Vec<SignalId> = pool.iter().map(|n| t.intern(n)).collect();
    let fa_budget = 4 + rng.below(4);
    let fa = random_formula(&mut rng, &atoms, fa_budget);
    let mut spec = format!("arch A = {}\n", fa.display(&t));
    let n_rtl = rng.below(3);
    for i in 0..n_rtl {
        let budget = 3 + rng.below(3);
        let r = random_formula(&mut rng, &atoms, budget);
        let _ = writeln!(spec, "rtl R{i} = {}", r.display(&t));
    }
    (snl, spec)
}

/// The semantic lines of a report: verdict and gap-property formulas
/// (everything witness-dependent is dropped).
fn semantic_summary(stdout: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_gap = false;
    for line in stdout.lines() {
        if line.contains("COVERED") || line.contains("NOT covered") {
            out.push(line.trim().to_owned());
            in_gap = false;
        } else if line.trim_start().starts_with("gap properties") {
            in_gap = true;
            out.push(line.trim().to_owned());
        } else if in_gap {
            if line.starts_with("    ") {
                out.push(line.trim().to_owned());
            } else {
                in_gap = false;
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-pipeline agreement through the binary: reduction on vs off
    /// must report the same exit code and the same gap-property set.
    #[test]
    fn full_pipeline_agrees_with_reduction_off(seed in 1u64..10_000) {
        let (snl, spec) = random_problem_files(seed);
        let dir = std::env::temp_dir().join(format!(
            "specmatcher-redeq-{}-{seed}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let snl_path = dir.join("rand.snl");
        let spec_path = dir.join("rand.spec");
        std::fs::write(&snl_path, &snl).expect("write snl");
        std::fs::write(&spec_path, &spec).expect("write spec");

        let run = |no_reduce: bool| {
            let mut cmd = Command::new(env!("CARGO_BIN_EXE_specmatcher"));
            cmd.args([
                "check",
                "--snl",
                snl_path.to_str().expect("utf8"),
                "--spec",
                spec_path.to_str().expect("utf8"),
            ]);
            if no_reduce {
                cmd.env("SPECMATCHER_NO_REDUCE", "1");
            }
            cmd.output().expect("binary runs")
        };
        let on = run(false);
        let off = run(true);
        std::fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(
            on.status.code(),
            off.status.code(),
            "exit codes diverge on seed {}\nsnl:\n{}\nspec:\n{}",
            seed,
            snl,
            spec
        );
        let sum_on = semantic_summary(&String::from_utf8_lossy(&on.stdout));
        let sum_off = semantic_summary(&String::from_utf8_lossy(&off.stdout));
        prop_assert_eq!(
            sum_on,
            sum_off,
            "semantic reports diverge on seed {}\nspec:\n{}",
            seed,
            spec
        );
    }
}
