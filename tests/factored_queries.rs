//! Integration test: the factored-product query path (materialized base
//! product + per-query automaton) agrees with the direct multi-automaton
//! product on randomized models and formulas.
//!
//! This is the soundness backbone of the gap pipeline's performance layer:
//! `CoverageModel::satisfiable_factored(base, extra)` must coincide with
//! `satisfiable(base ++ extra)` — same verdicts, and every returned
//! witness must genuinely satisfy all conjuncts.

use specmatcher::automata::{
    materialize_product, satisfiable_in_conj, satisfiable_in_conj_cached, GbaCache,
};
use specmatcher::core::{ArchSpec, CoverageModel, RtlSpec};
use specmatcher::fsm::Kripke;
use specmatcher::logic::{BoolExpr, SignalTable};
use specmatcher::ltl::random::{random_formula, XorShift64};
use specmatcher::ltl::Ltl;
use specmatcher::netlist::{Module, ModuleBuilder};

/// A 2-latch module with three free inputs; small enough that hundreds of
/// queries stay fast, rich enough to exercise liveness and safety paths.
fn fixture() -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("fix", &mut t);
    let i0 = b.input("i0");
    let i1 = b.input("i1");
    let q0 = b.table().intern("q0");
    let q1 = b.table().intern("q1");
    b.latch(
        "q0",
        BoolExpr::or([BoolExpr::var(i0), BoolExpr::var(q1)]),
        false,
    );
    b.latch(
        "q1",
        BoolExpr::and([BoolExpr::var(i1), BoolExpr::var(q0).not()]),
        false,
    );
    let o = b.wire("o", BoolExpr::xor(BoolExpr::var(q0), BoolExpr::var(q1)));
    b.mark_output(o);
    let q0id = q0;
    b.mark_output(q0id);
    b.mark_output(q1);
    let m = b.finish().expect("valid module");
    (t, m)
}

#[test]
fn materialized_base_agrees_with_direct_product() {
    let (t, m) = fixture();
    let kripke = Kripke::from_module(&m, &t, &[]).expect("fits");
    let atoms = vec![
        t.lookup("i0").unwrap(),
        t.lookup("i1").unwrap(),
        t.lookup("q0").unwrap(),
        t.lookup("o").unwrap(),
    ];
    let cache = GbaCache::new();
    let mut rng = XorShift64::new(0xDA7E_2006);
    let mut disagreements = 0;
    for round in 0..60 {
        let base: Vec<Ltl> = (0..1 + round % 3)
            .map(|_| random_formula(&mut rng, &atoms, 6))
            .collect();
        let extra: Vec<Ltl> = (0..1 + round % 2)
            .map(|_| random_formula(&mut rng, &atoms, 6))
            .collect();

        let mut all = base.clone();
        all.extend(extra.iter().cloned());
        let direct = satisfiable_in_conj(&all, &kripke);

        let product = materialize_product(&base, &kripke, &cache);
        let factored = satisfiable_in_conj_cached(&extra, &product, &cache);

        if direct.is_some() != factored.is_some() {
            disagreements += 1;
            eprintln!(
                "round {round}: direct={} factored={} base={base:?} extra={extra:?}",
                direct.is_some(),
                factored.is_some()
            );
        }
        // Witnesses must satisfy every conjunct on both paths.
        for w in direct.iter().chain(factored.iter()) {
            for f in &all {
                assert!(f.holds_on(w), "witness violates conjunct in round {round}");
            }
        }
    }
    assert_eq!(disagreements, 0);
}

#[test]
fn empty_extra_queries_the_base_itself() {
    let (mut t, m) = fixture();
    let kripke = Kripke::from_module(&m, &t, &[]).expect("fits");
    let cache = GbaCache::new();
    let sat = Ltl::parse("G F o", &mut t).expect("parses");
    let unsat = Ltl::parse("G o & G !o & F i0", &mut t).expect("parses");

    let p_sat = materialize_product(&[sat], &kripke, &cache);
    assert!(satisfiable_in_conj_cached(&[], &p_sat, &cache).is_some());

    let p_unsat = materialize_product(&[unsat], &kripke, &cache);
    assert!(satisfiable_in_conj_cached(&[], &p_unsat, &cache).is_none());
}

#[test]
fn coverage_model_factored_matches_flat() {
    let (mut t, m) = fixture();
    let a = Ltl::parse("G(i0 -> X q0)", &mut t).expect("parses");
    let r = Ltl::parse("G(i1 -> X !q0)", &mut t).expect("parses");
    let arch = ArchSpec::new([("A", a.clone())]);
    let rtl = RtlSpec::new([("R", r.clone())], [m]);
    let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");

    let atoms = vec![
        t.lookup("i0").unwrap(),
        t.lookup("q1").unwrap(),
        t.lookup("o").unwrap(),
    ];
    let mut rng = XorShift64::new(7);
    for _ in 0..40 {
        let extra = random_formula(&mut rng, &atoms, 5);
        let flat = model.satisfiable(&[r.clone(), Ltl::not(a.clone()), extra.clone()]);
        let factored = model
            .satisfiable_factored(&[r.clone(), Ltl::not(a.clone())], std::slice::from_ref(&extra));
        assert_eq!(
            flat.is_some(),
            factored.is_some(),
            "disagreement on extra = {extra:?}"
        );
    }
}

#[test]
fn product_system_reports_shape() {
    let (mut t, m) = fixture();
    let kripke = Kripke::from_module(&m, &t, &[]).expect("fits");
    let cache = GbaCache::new();
    let f = Ltl::parse("G(i0 -> X q0)", &mut t).expect("parses");
    let p = materialize_product(&[f], &kripke, &cache);
    assert!(!p.is_empty());
    assert!(p.num_states() > 0);
    assert!(p.num_transitions() >= p.num_states(), "total transition relation");

    // A contradictory base materializes to an empty system.
    let f2 = Ltl::parse("o & !o", &mut t).expect("parses");
    let p2 = materialize_product(&[f2], &kripke, &cache);
    assert!(p2.is_empty());
}
