//! Integration test: the user-facing flow — SNL text in, coverage report
//! out — exactly what the CLI wires together.

use specmatcher::core::{ArchSpec, GapConfig, RtlSpec, SpecMatcher};
use specmatcher::logic::SignalTable;
use specmatcher::ltl::Ltl;
use specmatcher::netlist::parse_snl;

const GLUE_SNL: &str = "
# A two-stage glue block: en-gated forwarding into a register.
module front
  input req en
  output a
  assign a = req & en
endmodule

module back
  input a
  output q
  latch q = a init 0
endmodule
";

#[test]
fn snl_coverage_flow_covered() {
    let mut t = SignalTable::new();
    let modules = parse_snl(GLUE_SNL, &mut t).expect("SNL parses");
    assert_eq!(modules.len(), 2);
    let arch = ArchSpec::new([(
        "A1",
        Ltl::parse("G(req & en -> X q)", &mut t).expect("parses"),
    )]);
    let rtl = RtlSpec::new(
        [("ENV", Ltl::parse("G(req -> en)", &mut t).expect("parses"))],
        modules,
    );
    let run = SpecMatcher::new(GapConfig::default())
        .check(&arch, &rtl, &t)
        .expect("runs");
    assert!(run.all_covered());
}

#[test]
fn snl_coverage_flow_gap() {
    let mut t = SignalTable::new();
    let modules = parse_snl(GLUE_SNL, &mut t).expect("SNL parses");
    // Intent ignores the en gate: not covered without an en property.
    let arch = ArchSpec::new([(
        "A1",
        Ltl::parse("G(req -> X q)", &mut t).expect("parses"),
    )]);
    let rtl = RtlSpec::new(
        [("TRIVIAL", Ltl::parse("G(q -> q)", &mut t).expect("parses"))],
        modules,
    );
    let run = SpecMatcher::new(GapConfig::default())
        .check(&arch, &rtl, &t)
        .expect("runs");
    let rep = &run.properties[0];
    assert!(!rep.covered);
    // The gap property must mention the forgotten enable.
    let en = t.lookup("en").expect("en interned");
    assert!(
        rep.gap_properties
            .iter()
            .any(|g| g.formula.atoms().contains(&en)),
        "gap properties should mention en: {:?}",
        rep.gap_properties
            .iter()
            .map(|g| g.describe(&t))
            .collect::<Vec<_>>()
    );
}

#[test]
fn snl_round_trip_preserves_coverage() {
    let mut t = SignalTable::new();
    let modules = parse_snl(GLUE_SNL, &mut t).expect("SNL parses");
    // Print both modules back to SNL and re-parse into a fresh table.
    let printed: String = modules.iter().map(|m| m.to_snl(&t)).collect();
    let mut t2 = SignalTable::new();
    let modules2 = parse_snl(&printed, &mut t2).expect("round trip parses");
    let arch = ArchSpec::new([(
        "A1",
        Ltl::parse("G(req & en -> X q)", &mut t2).expect("parses"),
    )]);
    let rtl = RtlSpec::new(
        [("ENV", Ltl::parse("G(req -> en)", &mut t2).expect("parses"))],
        modules2,
    );
    let run = SpecMatcher::new(GapConfig::default())
        .check(&arch, &rtl, &t2)
        .expect("runs");
    assert!(run.all_covered());
}
