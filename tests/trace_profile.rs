//! Observability is observational: enabling `dic_trace` (the CLI's
//! `--profile` / `--trace-out`) must not change a single reported bit.
//! Random gapped netlists are checked with tracing off and on — both
//! backends, one and four workers — and the verdicts plus the full
//! ordered gap fingerprints must be byte-identical. The traced runs are
//! then inspected: every pipeline phase span is present, the counters
//! attribute work to the right phase, and the JSONL stream replays into
//! the identical rendered tree.
//!
//! Trace state is process-global, so every test takes `exclusive()`
//! (this file is its own process; other integration suites never see
//! tracing enabled).

use proptest::prelude::*;
use specmatcher::core::{Backend, CoverageModel, GapConfig, PropertyReport, SpecMatcher};
use specmatcher::designs::mal;
use specmatcher::logic::SignalTable;
use specmatcher::trace;
use std::sync::{Mutex, MutexGuard, OnceLock};

mod common;
use common::{random_problem, replay};

/// Serializes tests (trace state is process-global) and restores the
/// disabled default afterwards.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    trace::set_enabled(false);
    trace::reset();
    guard
}

/// The full ordered fingerprint of a property report: everything that
/// reaches the rendered report or the JSON document.
fn fingerprint(rep: &PropertyReport, t: &SignalTable) -> Vec<String> {
    let mut out = vec![format!(
        "{} covered={} witness={:?} terms={}",
        rep.formula.display(t),
        rep.covered,
        rep.witness,
        rep.uncovered_terms
            .iter()
            .map(|c| c.display(t).to_string())
            .collect::<Vec<_>>()
            .join(";"),
    )];
    out.extend(rep.gap_properties.iter().map(|g| {
        format!(
            "{} @ {} lit {} off {} term {} wit {:?}",
            g.formula.display(t),
            g.position,
            g.literal.display(t),
            g.offset,
            g.term.display(t),
            g.witness,
        )
    }));
    out
}

fn small_config() -> GapConfig {
    GapConfig {
        term_depth: 2,
        max_terms: 3,
        max_candidates: 24,
        max_gap_properties: 4,
        ..GapConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tracing on vs. off: byte-identical verdicts and ordered gap sets
    /// on random problems, per backend and worker count.
    #[test]
    fn tracing_never_changes_a_reported_bit(seed in 1u64..100_000) {
        let _guard = exclusive();
        let (t, arch, rtl) = random_problem(seed);
        for backend in [Backend::Explicit, Backend::Symbolic] {
            for jobs in [1usize, 4] {
                let matcher = SpecMatcher::new(small_config())
                    .with_backend(backend)
                    .with_jobs(jobs);

                trace::set_enabled(false);
                let off = matcher.check(&arch, &rtl, &t).expect("untraced run");
                prop_assert!(off.counters.is_none(), "untraced runs carry no counters");

                trace::set_enabled(true);
                trace::reset();
                let on = matcher.check(&arch, &rtl, &t).expect("traced run");
                trace::set_enabled(false);
                prop_assert!(on.counters.is_some(), "traced runs carry phase counters");

                prop_assert_eq!(
                    off.all_covered(),
                    on.all_covered(),
                    "verdict changed under tracing (seed {}, {} backend, {} jobs)",
                    seed, backend, jobs
                );
                for (o, n) in off.properties.iter().zip(&on.properties) {
                    prop_assert_eq!(
                        fingerprint(o, &t),
                        fingerprint(n, &t),
                        "report changed under tracing (seed {}, {} backend, {} jobs)",
                        seed, backend, jobs
                    );
                }

                // The traced run's witnesses still replay on the modules.
                let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
                for rep in &on.properties {
                    for g in &rep.gap_properties {
                        replay(&model, &t, &g.witness);
                    }
                }
            }
        }
    }
}

/// Names of all recorded spans.
fn span_names(data: &trace::TraceData) -> Vec<String> {
    data.spans.iter().map(|s| s.name.clone()).collect()
}

#[test]
fn every_pipeline_phase_span_is_present() {
    let _guard = exclusive();
    trace::set_enabled(true);
    trace::reset();
    let design = mal::ex2();
    let run = design
        .check(&SpecMatcher::new(small_config()))
        .expect("runs");
    trace::set_enabled(false);
    assert!(!run.all_covered(), "mal-ex2 is the gapped fixture");

    let data = trace::capture();
    let names = span_names(&data);
    for phase in [
        "phase.tm_build",
        "phase.primary",
        "phase.gap_find",
        "gap.enumerate",
        "gap.verify",
        "fsm.kripke_build",
        "automata.translate",
    ] {
        assert!(
            names.iter().any(|n| n == phase),
            "span {phase} missing from {names:?}"
        );
    }

    // Phase spans nest under the gap phase, not beside it.
    let gap_find = data
        .spans
        .iter()
        .find(|s| s.name == "phase.gap_find")
        .expect("present");
    let verify = data
        .spans
        .iter()
        .find(|s| s.name == "gap.verify")
        .expect("present");
    assert_eq!(verify.parent, gap_find.id, "gap.verify nests in phase.gap_find");

    // Counter attribution: the gap phase did the candidate work.
    let counters = run.counters.expect("traced");
    assert!(counters.gap_find.get(trace::Counter::GapCandidatesEnumerated) > 0);
    assert!(counters.gap_find.get(trace::Counter::GapFixpointVerified) > 0);
    assert_eq!(counters.tm_build.get(trace::Counter::GapCandidatesEnumerated), 0);
    assert!(
        counters.primary.get(trace::Counter::ExplicitStatesExpanded) > 0
            || counters.primary.get(trace::Counter::BddIteOps) > 0,
        "the primary phase ran an engine"
    );
}

#[test]
fn parallel_workers_attach_to_the_verify_span() {
    let _guard = exclusive();
    trace::set_enabled(true);
    trace::reset();
    let design = mal::ex2();
    design
        .check(&SpecMatcher::new(small_config()).with_jobs(4))
        .expect("runs");
    trace::set_enabled(false);

    let data = trace::capture();
    let workers: Vec<_> = data.spans.iter().filter(|s| s.name == "gap.worker").collect();
    assert_eq!(workers.len(), 4, "one span per worker");
    let verify_ids: Vec<u64> = data
        .spans
        .iter()
        .filter(|s| s.name == "gap.verify")
        .map(|s| s.id)
        .collect();
    for w in &workers {
        assert!(
            verify_ids.contains(&w.parent),
            "worker span must parent under gap.verify"
        );
    }
    let claimed: u64 = workers
        .iter()
        .flat_map(|w| &w.meta)
        .filter(|(k, _)| k == "claimed")
        .map(|(_, v)| *v)
        .sum();
    assert!(claimed > 0, "workers recorded their claimed candidates");
}

#[test]
fn symbolic_runs_count_bdd_work() {
    let _guard = exclusive();
    trace::set_enabled(true);
    trace::reset();
    let design = mal::ex2();
    design
        .check(&SpecMatcher::new(small_config()).with_backend(Backend::Symbolic))
        .expect("runs");
    trace::set_enabled(false);

    assert!(trace::counter_value(trace::Counter::BddIteOps) > 0);
    assert!(trace::counter_value(trace::Counter::BddUniqueLookups) > 0);
    assert!(trace::gauge_value(trace::Gauge::BddPeakNodes) > 0);
    let names = span_names(&trace::capture());
    for span in ["symbolic.product_build", "symbolic.reachable", "symbolic.fair_hull"] {
        assert!(names.iter().any(|n| n == span), "span {span} missing");
    }
}

#[test]
fn jsonl_stream_replays_into_the_live_tree() {
    let _guard = exclusive();
    trace::set_enabled(true);
    trace::reset();
    let design = mal::ex2();
    design
        .check(&SpecMatcher::new(small_config()).with_jobs(2))
        .expect("runs");
    trace::set_enabled(false);

    let live = trace::render_profile();
    let replayed = trace::parse_jsonl(&trace::to_jsonl(&trace::capture()))
        .expect("own stream parses");
    assert_eq!(
        live,
        trace::render_tree(&replayed),
        "JSONL replay must render the identical profile tree"
    );
    assert!(live.starts_with("profile:\n"));
    assert!(live.contains("phase.gap_find"));
}
