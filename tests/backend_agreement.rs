//! Backend agreement: the explicit and symbolic engines must produce
//! identical coverage verdicts on randomized coverage problems, and every
//! symbolic witness must satisfy the lasso-semantics oracle *and* replay
//! against the concrete modules on the simulator.
//!
//! This is the acid test for the symbolic backend: the two engines share
//! no model-checking code (Tarjan over explicit products vs Emerson–Lei
//! over BDD images), so agreement over random netlists × random LTL is
//! strong evidence both implement the same semantics.

use proptest::prelude::*;
use specmatcher::core::{primary_coverage, Backend, BmcMode, CoverageModel, GapConfig, SpecMatcher};
use specmatcher::ltl::Ltl;

mod common;
use common::{random_problem, replay};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical verdicts from both backends; symbolic witnesses satisfy
    /// `Ltl::holds_on` for `R ∧ ¬A` and replay on the concrete modules.
    #[test]
    fn backends_agree_on_random_coverage_problems(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let fa = arch.properties()[0].formula();

        let explicit =
            CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Explicit)
                .expect("small model fits the explicit engine");
        let verdict_e = primary_coverage(fa, &rtl, &explicit).expect("explicit is total");

        let symbolic =
            CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Symbolic)
                .expect("symbolic builds");
        let verdict_s = primary_coverage(fa, &rtl, &symbolic).expect("within node budget");

        prop_assert_eq!(
            verdict_e.is_some(),
            verdict_s.is_some(),
            "backends disagree on seed {}: A = {}",
            seed,
            fa.display(&t)
        );

        if let Some(w) = verdict_s {
            // The witness refutes coverage: it satisfies every R and ¬A…
            prop_assert!(!fa.holds_on(&w), "witness fails to refute A (seed {})", seed);
            for p in rtl.properties() {
                prop_assert!(
                    p.formula().holds_on(&w),
                    "witness violates {} (seed {})",
                    p.name(),
                    seed
                );
            }
            // …and is a real run of the concrete modules.
            replay(&symbolic, &t, &w);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full-pipeline agreement: on random *gapped* coverage problems, the
    /// explicit and symbolic engines must report the same set of weakest
    /// gap properties — not just the same verdict. The engines share
    /// Algorithm 1's control flow but none of the model-checking oracle,
    /// so agreement here exercises scenario probing, generalization,
    /// quantification and closure checking end to end on both.
    #[test]
    fn gap_property_sets_agree_on_random_gapped_problems(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let config = GapConfig {
            term_depth: 2,
            max_terms: 3,
            max_candidates: 24,
            max_gap_properties: 4,
            ..GapConfig::default()
        };

        let run_e = SpecMatcher::new(config.clone())
            .with_backend(Backend::Explicit)
            .check(&arch, &rtl, &t)
            .expect("explicit pipeline runs");
        let run_s = SpecMatcher::new(config)
            .with_backend(Backend::Symbolic)
            .check(&arch, &rtl, &t)
            .expect("symbolic pipeline runs");

        prop_assert_eq!(run_e.all_covered(), run_s.all_covered(), "verdicts (seed {})", seed);
        for (re, rs) in run_e.properties.iter().zip(&run_s.properties) {
            let normalize = |rep: &specmatcher::core::PropertyReport| {
                let mut v: Vec<String> = rep
                    .gap_properties
                    .iter()
                    .map(|g| g.formula.display(&t).to_string())
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(
                normalize(re),
                normalize(rs),
                "gap property sets diverge on seed {}: A = {}",
                seed,
                re.formula.display(&t)
            );
            // Both engines' gap-property witnesses replay on the modules.
            for g in re.gap_properties.iter().chain(&rs.gap_properties) {
                prop_assert!(!re.formula.holds_on(&g.witness));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness cross-check of the bounded SAT tier: whenever
    /// `bounded_lasso` claims a run of `M` satisfying `R ∧ ¬A` within `k`
    /// steps, the unbounded fixpoint oracle must agree the conjunction is
    /// satisfiable, the run must satisfy every conjunct under
    /// `Ltl::holds_on`, and it must replay on the concrete modules. (The
    /// converse direction is intentionally unasserted: UNSAT within a
    /// bound proves nothing, which is exactly why the tier may only ever
    /// short-circuit SAT answers.)
    #[test]
    fn bmc_refutations_agree_with_fixpoint_verdicts(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let fa = arch.properties()[0].formula();
        let model =
            CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Explicit)
                .expect("small model fits the explicit engine");
        let verdict = primary_coverage(fa, &rtl, &model).expect("explicit is total");

        let mut formulas: Vec<Ltl> =
            rtl.properties().iter().map(|p| p.formula().clone()).collect();
        formulas.push(Ltl::not(fa.clone()));
        let bounded = specmatcher::sat::bounded_lasso(
            model.composed(),
            &t,
            model.free_signals(),
            &formulas,
            16,
        );
        if let Some(run) = bounded {
            prop_assert!(
                verdict.is_some(),
                "BMC found a run the fixpoint oracle says cannot exist (seed {}): A = {}",
                seed,
                fa.display(&t)
            );
            for (i, f) in formulas.iter().enumerate() {
                prop_assert!(
                    f.holds_on(&run),
                    "BMC run violates conjunct {} (seed {}): {}",
                    i,
                    seed,
                    f.display(&t)
                );
            }
            replay(&model, &t, &run);
        }
    }
}

/// The ordered gap-set identity the `--bmc` contract promises, on a real
/// Table 1 design: same gap properties, same order, same witnesses-free
/// rendering, whether or not the SAT tier screens the closure fixpoints.
/// The backend is forced symbolic because that is the (only) configuration
/// where `BmcMode::Auto` fires — on the explicit engine the tier is gated
/// off and the identity is trivial.
fn assert_bmc_modes_agree(design: &specmatcher::designs::Design) {
    let run_with = |bmc: BmcMode| {
        let matcher = SpecMatcher::new(GapConfig {
            max_terms: 3,
            max_candidates: 32,
            max_gap_properties: 4,
            ..GapConfig::default()
        })
        .with_backend(Backend::Symbolic)
        .with_bmc(bmc);
        design.check(&matcher).expect("packaged design runs")
    };
    let off = run_with(BmcMode::Off);
    let auto = run_with(BmcMode::Auto);
    assert_eq!(off.all_covered(), auto.all_covered(), "{}", design.name);
    assert_eq!(
        dic_bench::gap_fingerprint(&off, &design.table),
        dic_bench::gap_fingerprint(&auto, &design.table),
        "{}: ordered gap sets diverge between --bmc off and auto",
        design.name
    );
}

#[test]
fn bmc_modes_report_identical_gap_sets_on_the_toy_design() {
    assert_bmc_modes_agree(&specmatcher::designs::mal::ex2());
}

#[test]
#[ignore = "two symbolic mal-26 pipelines, minutes-scale; nightly lane"]
fn bmc_modes_report_identical_gap_sets_on_mal26() {
    assert_bmc_modes_agree(&specmatcher::designs::mal::mal26());
}

#[test]
#[ignore = "two forced-symbolic pipeline-12 runs, tens of seconds; nightly lane"]
fn bmc_modes_report_identical_gap_sets_on_pipeline() {
    assert_bmc_modes_agree(&specmatcher::designs::pipeline::pipeline12());
}

#[test]
#[ignore = "two forced-symbolic amba-ahb gap phases, minutes-scale; nightly lane"]
fn bmc_modes_report_identical_gap_sets_on_amba_ahb() {
    assert_bmc_modes_agree(&specmatcher::designs::amba::ahb29());
}
