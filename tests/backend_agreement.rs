//! Backend agreement: the explicit and symbolic engines must produce
//! identical coverage verdicts on randomized coverage problems, and every
//! symbolic witness must satisfy the lasso-semantics oracle *and* replay
//! against the concrete modules on the simulator.
//!
//! This is the acid test for the symbolic backend: the two engines share
//! no model-checking code (Tarjan over explicit products vs Emerson–Lei
//! over BDD images), so agreement over random netlists × random LTL is
//! strong evidence both implement the same semantics.

use proptest::prelude::*;
use specmatcher::core::{primary_coverage, Backend, CoverageModel, GapConfig, SpecMatcher};

mod common;
use common::{random_problem, replay};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical verdicts from both backends; symbolic witnesses satisfy
    /// `Ltl::holds_on` for `R ∧ ¬A` and replay on the concrete modules.
    #[test]
    fn backends_agree_on_random_coverage_problems(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let fa = arch.properties()[0].formula();

        let explicit =
            CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Explicit)
                .expect("small model fits the explicit engine");
        let verdict_e = primary_coverage(fa, &rtl, &explicit).expect("explicit is total");

        let symbolic =
            CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Symbolic)
                .expect("symbolic builds");
        let verdict_s = primary_coverage(fa, &rtl, &symbolic).expect("within node budget");

        prop_assert_eq!(
            verdict_e.is_some(),
            verdict_s.is_some(),
            "backends disagree on seed {}: A = {}",
            seed,
            fa.display(&t)
        );

        if let Some(w) = verdict_s {
            // The witness refutes coverage: it satisfies every R and ¬A…
            prop_assert!(!fa.holds_on(&w), "witness fails to refute A (seed {})", seed);
            for p in rtl.properties() {
                prop_assert!(
                    p.formula().holds_on(&w),
                    "witness violates {} (seed {})",
                    p.name(),
                    seed
                );
            }
            // …and is a real run of the concrete modules.
            replay(&symbolic, &t, &w);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full-pipeline agreement: on random *gapped* coverage problems, the
    /// explicit and symbolic engines must report the same set of weakest
    /// gap properties — not just the same verdict. The engines share
    /// Algorithm 1's control flow but none of the model-checking oracle,
    /// so agreement here exercises scenario probing, generalization,
    /// quantification and closure checking end to end on both.
    #[test]
    fn gap_property_sets_agree_on_random_gapped_problems(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let config = GapConfig {
            term_depth: 2,
            max_terms: 3,
            max_candidates: 24,
            max_gap_properties: 4,
            ..GapConfig::default()
        };

        let run_e = SpecMatcher::new(config.clone())
            .with_backend(Backend::Explicit)
            .check(&arch, &rtl, &t)
            .expect("explicit pipeline runs");
        let run_s = SpecMatcher::new(config)
            .with_backend(Backend::Symbolic)
            .check(&arch, &rtl, &t)
            .expect("symbolic pipeline runs");

        prop_assert_eq!(run_e.all_covered(), run_s.all_covered(), "verdicts (seed {})", seed);
        for (re, rs) in run_e.properties.iter().zip(&run_s.properties) {
            let normalize = |rep: &specmatcher::core::PropertyReport| {
                let mut v: Vec<String> = rep
                    .gap_properties
                    .iter()
                    .map(|g| g.formula.display(&t).to_string())
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(
                normalize(re),
                normalize(rs),
                "gap property sets diverge on seed {}: A = {}",
                seed,
                re.formula.display(&t)
            );
            // Both engines' gap-property witnesses replay on the modules.
            for g in re.gap_properties.iter().chain(&rs.gap_properties) {
                prop_assert!(!re.formula.holds_on(&g.witness));
            }
        }
    }
}
