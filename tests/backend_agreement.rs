//! Backend agreement: the explicit and symbolic engines must produce
//! identical coverage verdicts on randomized coverage problems, and every
//! symbolic witness must satisfy the lasso-semantics oracle *and* replay
//! against the concrete modules on the simulator.
//!
//! This is the acid test for the symbolic backend: the two engines share
//! no model-checking code (Tarjan over explicit products vs Emerson–Lei
//! over BDD images), so agreement over random netlists × random LTL is
//! strong evidence both implement the same semantics.

use proptest::prelude::*;
use specmatcher::core::{
    primary_coverage, ArchSpec, Backend, CoverageModel, GapConfig, RtlSpec, SpecMatcher,
};
use specmatcher::logic::{BoolExpr, SignalId, SignalTable};
use specmatcher::ltl::random::{random_formula, XorShift64};
use specmatcher::ltl::Ltl;
use specmatcher::netlist::{Module, ModuleBuilder, Simulator};

/// Deterministically generates a small random module: a couple of wires
/// over inputs/earlier signals, then a few latches.
fn random_module(rng: &mut XorShift64) -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("rand", &mut t);
    let n_inputs = 1 + rng.below(3);
    let mut pool: Vec<SignalId> = (0..n_inputs)
        .map(|i| b.input(&format!("i{i}")))
        .collect();

    let leaf = |pool: &[SignalId], rng: &mut XorShift64| -> BoolExpr {
        let v = BoolExpr::var(pool[rng.below(pool.len())]);
        if rng.flip() {
            v.not()
        } else {
            v
        }
    };

    for i in 0..1 + rng.below(2) {
        let a = leaf(&pool, rng);
        let c = leaf(&pool, rng);
        let func = match rng.below(3) {
            0 => BoolExpr::and([a, c]),
            1 => BoolExpr::or([a, c]),
            _ => BoolExpr::xor(a, c),
        };
        pool.push(b.wire(&format!("w{i}"), func));
    }
    for i in 0..1 + rng.below(3) {
        let next = leaf(&pool, rng);
        let q = b.latch(&format!("q{i}"), next, rng.flip());
        pool.push(q);
    }
    let out = *pool.last().expect("non-empty");
    b.mark_output(out);
    let m = b.finish().expect("generated netlist is valid");
    (t, m)
}

/// A random coverage problem over the module: an intent and a small RTL
/// property suite, all over module signals (plus one free spec atom).
fn random_problem(seed: u64) -> (SignalTable, ArchSpec, RtlSpec) {
    let mut rng = XorShift64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let (mut t, m) = random_module(&mut rng);
    // Assumption 1 (AP_A ⊆ AP_R): the intent stays over module signals;
    // the RTL properties may additionally mention a free environment atom.
    let mod_atoms: Vec<SignalId> = m.signals().into_iter().collect();
    let mut atoms = mod_atoms.clone();
    atoms.push(t.intern("env"));
    let fa_budget = 4 + rng.below(4);
    let fa = random_formula(&mut rng, &mod_atoms, fa_budget);
    let n_props = rng.below(3);
    let props: Vec<(String, Ltl)> = (0..n_props)
        .map(|i| {
            let budget = 3 + rng.below(3);
            (format!("R{i}"), random_formula(&mut rng, &atoms, budget))
        })
        .collect();
    (
        t,
        ArchSpec::new([("A", fa)]),
        RtlSpec::new(props.iter().map(|(n, f)| (n.as_str(), f.clone())), [m]),
    )
}

/// Replays a witness word against the composed module on the simulator.
fn replay(model: &CoverageModel, table: &SignalTable, witness: &specmatcher::ltl::LassoWord) {
    let composed = model.composed();
    let mut sim = Simulator::new(composed, table).expect("simulates");
    let driven: Vec<SignalId> = composed.driven_signals().into_iter().collect();
    let inputs: Vec<SignalId> = model
        .input_signals()
        .iter()
        .copied()
        .filter(|s| !driven.contains(s))
        .collect();
    for (pos, expected) in witness.states().iter().enumerate() {
        let stimulus: Vec<(SignalId, bool)> =
            inputs.iter().map(|&i| (i, expected.get(i))).collect();
        let settled = sim.settle(&stimulus).clone();
        for &s in &driven {
            assert_eq!(
                settled.get(s),
                expected.get(s),
                "driven signal {} diverges at position {pos}",
                table.name(s)
            );
        }
        sim.step(&stimulus);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical verdicts from both backends; symbolic witnesses satisfy
    /// `Ltl::holds_on` for `R ∧ ¬A` and replay on the concrete modules.
    #[test]
    fn backends_agree_on_random_coverage_problems(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let fa = arch.properties()[0].formula();

        let explicit =
            CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Explicit)
                .expect("small model fits the explicit engine");
        let verdict_e = primary_coverage(fa, &rtl, &explicit).expect("explicit is total");

        let symbolic =
            CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Symbolic)
                .expect("symbolic builds");
        let verdict_s = primary_coverage(fa, &rtl, &symbolic).expect("within node budget");

        prop_assert_eq!(
            verdict_e.is_some(),
            verdict_s.is_some(),
            "backends disagree on seed {}: A = {}",
            seed,
            fa.display(&t)
        );

        if let Some(w) = verdict_s {
            // The witness refutes coverage: it satisfies every R and ¬A…
            prop_assert!(!fa.holds_on(&w), "witness fails to refute A (seed {})", seed);
            for p in rtl.properties() {
                prop_assert!(
                    p.formula().holds_on(&w),
                    "witness violates {} (seed {})",
                    p.name(),
                    seed
                );
            }
            // …and is a real run of the concrete modules.
            replay(&symbolic, &t, &w);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full-pipeline agreement: on random *gapped* coverage problems, the
    /// explicit and symbolic engines must report the same set of weakest
    /// gap properties — not just the same verdict. The engines share
    /// Algorithm 1's control flow but none of the model-checking oracle,
    /// so agreement here exercises scenario probing, generalization,
    /// quantification and closure checking end to end on both.
    #[test]
    fn gap_property_sets_agree_on_random_gapped_problems(seed in 1u64..100_000) {
        let (t, arch, rtl) = random_problem(seed);
        let config = GapConfig {
            term_depth: 2,
            max_terms: 3,
            max_candidates: 24,
            max_gap_properties: 4,
            ..GapConfig::default()
        };

        let run_e = SpecMatcher::new(config.clone())
            .with_backend(Backend::Explicit)
            .check(&arch, &rtl, &t)
            .expect("explicit pipeline runs");
        let run_s = SpecMatcher::new(config)
            .with_backend(Backend::Symbolic)
            .check(&arch, &rtl, &t)
            .expect("symbolic pipeline runs");

        prop_assert_eq!(run_e.all_covered(), run_s.all_covered(), "verdicts (seed {})", seed);
        for (re, rs) in run_e.properties.iter().zip(&run_s.properties) {
            let normalize = |rep: &specmatcher::core::PropertyReport| {
                let mut v: Vec<String> = rep
                    .gap_properties
                    .iter()
                    .map(|g| g.formula.display(&t).to_string())
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(
                normalize(re),
                normalize(rs),
                "gap property sets diverge on seed {}: A = {}",
                seed,
                re.formula.display(&t)
            );
            // Both engines' gap-property witnesses replay on the modules.
            for g in re.gap_properties.iter().chain(&rs.gap_properties) {
                prop_assert!(!re.formula.holds_on(&g.witness));
            }
        }
    }
}
