//! Integration tests for the `specmatcher` command-line tool: the binary
//! is invoked end to end, covering the packaged designs, user-provided
//! SNL + spec files, JSON output and the FSM dump.

use std::io::Write as _;
use std::process::Command;

fn specmatcher(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn list_names_the_packaged_designs() {
    let out = specmatcher(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for name in ["mal-26", "pipeline", "amba-ahb", "mal-ex2", "mal-ex1"] {
        assert!(stdout.contains(name), "missing {name} in: {stdout}");
    }
}

#[test]
fn check_covered_design_exits_zero() {
    let out = specmatcher(&["check", "--design", "mal-ex1"]);
    assert!(out.status.success(), "mal-ex1 is covered");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("COVERED"));
}

#[test]
fn check_gapped_design_exits_one_and_reports() {
    let out = specmatcher(&["check", "--design", "mal-ex2"]);
    assert_eq!(out.status.code(), Some(1), "gap => exit code 1");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("NOT covered"));
    assert!(stdout.contains("gap properties"));
    assert!(stdout.contains("U r2") || stdout.contains("r1 U"));
}

#[test]
fn json_output_is_structured() {
    let out = specmatcher(&["check", "--design", "mal-ex2", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let json = stdout.trim();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"all_covered\":false"));
    assert!(json.contains("\"gap_properties\""));
    assert!(json.contains("\"witness\""));
}

#[test]
fn both_backends_honor_the_exit_code_contract() {
    // 0 = covered, 1 = gap, 2 = usage/spec error, 3 = resource refusal —
    // for every backend.
    for backend in ["explicit", "symbolic", "auto"] {
        let out = specmatcher(&["check", "--design", "mal-ex1", "--backend", backend]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "mal-ex1 covered under {backend}"
        );
        let out = specmatcher(&["check", "--design", "mal-ex2", "--backend", backend]);
        assert_eq!(out.status.code(), Some(1), "mal-ex2 gap under {backend}");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.contains("NOT covered"));
    }
    // An unknown backend is a usage error.
    let out = specmatcher(&["check", "--design", "mal-ex1", "--backend", "magic"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown backend"));
    // So is an unknown reorder mode.
    let out = specmatcher(&["check", "--design", "mal-ex1", "--reorder", "sometimes"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown reorder mode"));
    // `--reorder off` still honors the verdict codes.
    let out = specmatcher(&["check", "--design", "mal-ex1", "--reorder", "off"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn resource_refusals_exit_three() {
    // The explicit engine refusing a too-large state space is a resource
    // refusal (3), not a usage error (2): the invocation was fine, the
    // model just does not fit that engine.
    let out = specmatcher(&["check", "--design", "chain-24", "--backend", "explicit"]);
    assert_eq!(out.status.code(), Some(3), "explicit refusal => exit 3");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("state space too large"));

    // The symbolic engine's node budget tripping on the *primary*
    // question degrades to a partial report: the verdict is reported
    // unknown, the run carries an `incomplete:` line, and — with no gap
    // settled — the exit code stays the resource class (3).
    let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(["check", "--design", "mal-ex2", "--backend", "symbolic"])
        .env("SPECMATCHER_BDD_NODE_LIMIT", "1K")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "node-budget refusal => exit 3");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("UNKNOWN"), "stdout: {stdout}");
    assert!(stdout.contains("incomplete:"), "stdout: {stdout}");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("node limit"), "stderr: {stderr}");
}

#[test]
fn invalid_node_limit_is_rejected_loudly() {
    // A typo'd SPECMATCHER_BDD_NODE_LIMIT must not silently fall back to
    // the default — that is a usage error (2) with a clear message.
    for bad in ["24Q", "", "-5", "twelve", "0", "18446744073709551615M"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1", "--backend", "symbolic"])
            .env("SPECMATCHER_BDD_NODE_LIMIT", bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "value {bad:?} must be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("invalid SPECMATCHER_BDD_NODE_LIMIT"),
            "value {bad:?}: {stderr}"
        );
    }
    // Suffixed values are accepted (24M is exactly the default).
    let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(["check", "--design", "mal-ex1", "--backend", "symbolic"])
        .env("SPECMATCHER_BDD_NODE_LIMIT", "24M")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn invalid_no_reduce_is_rejected_loudly() {
    // The reduction escape hatch takes exactly "0" (reduce, the default)
    // or "1" (raw GPVW tableaus). A typo'd value must not silently pick
    // either — running a bisection with the hatch half-engaged is worse
    // than refusing: usage error (2) with a clear message.
    for bad in ["2", "yes", "true", "", "01", "on"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_NO_REDUCE", bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "value {bad:?} must be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("invalid SPECMATCHER_NO_REDUCE"),
            "value {bad:?}: {stderr}"
        );
    }
    // Both documented values still honor the verdict contract.
    for good in ["0", "1"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_NO_REDUCE", good)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(0), "value {good:?} is documented");
    }
}

#[test]
fn invalid_jobs_are_rejected_loudly() {
    // `--jobs` takes a positive worker count; zero, garbage and a
    // missing value are usage errors.
    for bad in ["0", "-2", "four", "1.5"] {
        let out = specmatcher(&["check", "--design", "mal-ex1", "--jobs", bad]);
        assert_eq!(out.status.code(), Some(2), "--jobs {bad:?} must be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains("--jobs"), "--jobs {bad:?}: {stderr}");
    }
    let out = specmatcher(&["check", "--design", "mal-ex1", "--jobs"]);
    assert_eq!(out.status.code(), Some(2), "--jobs needs a value");

    // The same contract for SPECMATCHER_JOBS: a typo'd worker count must
    // not silently fall back to the machine's parallelism.
    for bad in ["0", "-1", "four", "", "2.5"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_JOBS", bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "value {bad:?} must be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("invalid SPECMATCHER_JOBS"),
            "value {bad:?}: {stderr}"
        );
    }

    // Good values run, are reported, and leave the verdict unchanged.
    let out = specmatcher(&["check", "--design", "mal-ex2", "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(1), "worker count never changes the verdict");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("jobs: 2 workers"), "report names the worker count");
    let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(["check", "--design", "mal-ex1"])
        .env("SPECMATCHER_JOBS", "3")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn invalid_bmc_depth_is_rejected_loudly() {
    // SPECMATCHER_BMC_DEPTH takes an unroll depth in 1..=256. A typo'd
    // value must not silently fall back to the default 16 — a bounded
    // refutation sweep run at the wrong depth is worse than refusing:
    // usage error (2) with a clear message, before any work starts.
    for bad in ["0", "-3", "257", "sixteen", "", "16.5"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_BMC_DEPTH", bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "value {bad:?} must be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("invalid SPECMATCHER_BMC_DEPTH"),
            "value {bad:?}: {stderr}"
        );
    }
    // In-range depths run and leave the verdict unchanged.
    for good in ["1", "16", "256"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_BMC_DEPTH", good)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(0), "depth {good:?} is documented");
    }
}

#[test]
fn bmc_flag_honors_the_exit_code_contract() {
    // `--bmc` takes exactly off|auto; anything else (or a missing value)
    // is a usage error.
    let out = specmatcher(&["check", "--design", "mal-ex1", "--bmc", "sometimes"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("bmc"), "stderr: {stderr}");
    let out = specmatcher(&["check", "--design", "mal-ex1", "--bmc"]);
    assert_eq!(out.status.code(), Some(2), "--bmc needs a value");

    // Both modes preserve the verdict contract on the toy designs, and
    // the report names the mode it ran with.
    for mode in ["off", "auto"] {
        let out = specmatcher(&["check", "--design", "mal-ex1", "--bmc", mode]);
        assert_eq!(out.status.code(), Some(0), "mal-ex1 covered under --bmc {mode}");
        let out = specmatcher(&["check", "--design", "mal-ex2", "--bmc", mode]);
        assert_eq!(out.status.code(), Some(1), "mal-ex2 gap under --bmc {mode}");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.contains(&format!("bmc {mode}")), "report names the mode");
    }
}

#[test]
fn invalid_partition_settings_are_rejected_loudly() {
    // SPECMATCHER_BDD_PARTITION takes exactly off|auto; a typo'd mode
    // must not silently pick a transition-relation representation —
    // usage error (2) with a clear message, before any work starts.
    for bad in ["on", "1", "AUTO", "", "clustered", "of"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_BDD_PARTITION", bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "value {bad:?} must be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("invalid SPECMATCHER_BDD_PARTITION"),
            "value {bad:?}: {stderr}"
        );
    }
    // The cluster cap takes a positive node count with an optional K/M
    // suffix, same grammar as the node limit.
    for bad in ["0", "-1", "big", "", "5.5K", "5Q"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_BDD_CLUSTER_SIZE", bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "value {bad:?} must be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("invalid SPECMATCHER_BDD_CLUSTER_SIZE"),
            "value {bad:?}: {stderr}"
        );
    }
    // Documented values run and leave the verdicts unchanged.
    for (var, good) in [
        ("SPECMATCHER_BDD_PARTITION", "off"),
        ("SPECMATCHER_BDD_PARTITION", "auto"),
        ("SPECMATCHER_BDD_CLUSTER_SIZE", "5K"),
        ("SPECMATCHER_BDD_CLUSTER_SIZE", "100"),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1", "--backend", "symbolic"])
            .env(var, good)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(0), "{var}={good} is documented");
    }
}

#[test]
fn partition_flag_honors_the_exit_code_contract() {
    // `--partition` takes exactly off|auto; anything else (or a missing
    // value) is a usage error.
    let out = specmatcher(&["check", "--design", "mal-ex1", "--partition", "always"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("partition"), "stderr: {stderr}");
    let out = specmatcher(&["check", "--design", "mal-ex1", "--partition"]);
    assert_eq!(out.status.code(), Some(2), "--partition needs a value");

    // Both modes preserve the verdict contract on the toy designs, and
    // an explicit flag wins over a broken environment would-be default
    // is NOT the contract: the environment is validated first, so a bad
    // env value still refuses even when the flag is present.
    for mode in ["off", "auto"] {
        let out = specmatcher(&["check", "--design", "mal-ex1", "--backend", "symbolic", "--partition", mode]);
        assert_eq!(out.status.code(), Some(0), "mal-ex1 covered under --partition {mode}");
        let out = specmatcher(&["check", "--design", "mal-ex2", "--backend", "symbolic", "--partition", mode]);
        assert_eq!(out.status.code(), Some(1), "mal-ex2 gap under --partition {mode}");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(["check", "--design", "mal-ex1", "--partition", "auto"])
        .env("SPECMATCHER_BDD_PARTITION", "garbage")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "env is validated even when the flag overrides it");
}

#[test]
fn worker_gap_refusals_degrade_to_explicit_retry() {
    // A node budget that survives the model build, the primary question
    // and term enumeration, but trips inside closure verification: under
    // the governance layer the per-candidate refusal no longer aborts the
    // run — each tripped candidate is retried on the explicit engine
    // (mal-ex2 is well inside its limits), so the run completes with the
    // full gap-property set and the ordinary gap exit code (1). Pinned
    // with the SAT tier off: under `--bmc auto` the bounded refutations
    // screen enough fixpoints that this budget never trips at all.
    //
    // Budget re-derived for the complement-edge core: ≤64K trips before
    // the workers even start (the shared anchored products alone exceed
    // it); 96K lands inside the worker phase with ~25% margin on both
    // sides, so the trip is schedule-independent.
    for jobs in ["1", "4"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args([
                "check", "--design", "mal-ex2", "--backend", "symbolic", "--bmc", "off",
                "--jobs", jobs,
            ])
            .env("SPECMATCHER_BDD_NODE_LIMIT", "96K")
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "gap-phase refusal at --jobs {jobs} degrades, gap still reported => exit 1"
        );
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            stdout.contains("gap properties"),
            "--jobs {jobs}: explicit retry must keep the gap report: {stdout}"
        );
        assert!(
            !stdout.contains("incomplete:"),
            "--jobs {jobs}: every candidate settles after retry: {stdout}"
        );
    }
}

#[test]
fn timeout_with_partial_results_exits_one() {
    // Deterministic variant: an injected deadline trips at the third
    // gap-worker dispatch — the primary verdict (NOT covered) is already
    // settled, the gap scan is cut short and the remaining candidates
    // are enumerated as unknown. Partial report with an `incomplete:`
    // trailer and the gap exit code (1): a settled gap is actionable.
    let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(["check", "--design", "mal-ex2"])
        .env("SPECMATCHER_FAULT", "gap.worker:3:deadline")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "settled gap + deadline => exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("NOT covered"), "stdout: {stdout}");
    assert!(stdout.contains("incomplete: deadline exceeded"), "stdout: {stdout}");
    assert!(stdout.contains("unknown: "), "stdout: {stdout}");

    // Wall-clock variant on the wide design: where the 10 s budget lands
    // depends on machine load — idle it falls mid-gap-phase (exit 1, the
    // acceptance row pinned in the nightly fault-sweep lane); under a
    // fully loaded test run it can trip inside the primary question
    // (exit 3). Only the load-independent partial-report invariants are
    // pinned here.
    let out = specmatcher(&["check", "--design", "mal-26", "--timeout", "10"]);
    let code = out.status.code().expect("exit code");
    assert!(code == 1 || code == 3, "partial-run exit (1 or 3), got {code}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("incomplete: deadline exceeded"), "stdout: {stdout}");
}

#[test]
fn timeout_with_nothing_confirmed_exits_three() {
    // A deadline so tight it trips inside the *primary* question: no
    // verdict settles, the report is all unknown, and the exit code is
    // the resource class (3) — indistinguishable in severity from a
    // node-budget refusal. Forced deterministically: the injected
    // deadline fires at the first fixpoint step regardless of wall clock.
    let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(["check", "--design", "mal-ex2", "--backend", "symbolic"])
        .env("SPECMATCHER_FAULT", "symbolic.fixpoint_step:1:deadline")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "nothing settled => exit 3");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("UNKNOWN"), "stdout: {stdout}");
    assert!(stdout.contains("incomplete:"), "stdout: {stdout}");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("incomplete"), "stderr: {stderr}");
}

#[test]
fn injected_worker_panic_is_isolated() {
    // A panic on a gap worker thread must not abort the run: the verdict
    // for that candidate degrades to unknown with a diagnostic, every
    // other candidate still settles, and the gap exit code (1) holds.
    for jobs in ["1", "4"] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex2", "--jobs", jobs])
            .env("SPECMATCHER_FAULT", "gap.worker:1:panic")
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "--jobs {jobs}: worker panic isolated, gap still reported => exit 1"
        );
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            stdout.contains("unknown: "),
            "--jobs {jobs}: panicked candidate reported unknown: {stdout}"
        );
        assert!(
            stdout.contains("worker panic caught"),
            "--jobs {jobs}: diagnostic names the panic: {stdout}"
        );
        assert!(
            stdout.contains("gap properties"),
            "--jobs {jobs}: remaining candidates settle: {stdout}"
        );
    }
}

#[test]
fn strict_governance_env_parsing() {
    // Typos in the governance overrides are usage errors (exit 2), never
    // silently defaulted runs.
    for bad in ["0", "-3", "ten", "1.5", ""] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_TIMEOUT", bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "SPECMATCHER_TIMEOUT={bad:?}");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains("invalid SPECMATCHER_TIMEOUT"), "{stderr}");
    }
    for bad in [
        "gap.worker",          // missing nth:kind
        "gap.worker:0:panic",  // nth must be >= 1
        "gap.walker:1:panic",  // unknown site
        "gap.worker:1:oops",   // unknown kind
        "gap.worker:one:panic",
        "",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
            .args(["check", "--design", "mal-ex1"])
            .env("SPECMATCHER_FAULT", bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "SPECMATCHER_FAULT={bad:?}");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains("invalid SPECMATCHER_FAULT"), "{stderr}");
    }
    // The flag form is strict too.
    let out = specmatcher(&["check", "--design", "mal-ex1", "--timeout", "0"]);
    assert_eq!(out.status.code(), Some(2), "--timeout 0 is a usage error");
}

#[test]
fn scaling_design_needs_the_symbolic_backend() {
    // Beyond the explicit bit limit: explicit refuses for resource
    // reasons (3), symbolic and auto prove coverage (0).
    let out = specmatcher(&["check", "--design", "chain-24", "--backend", "explicit"]);
    assert_eq!(out.status.code(), Some(3), "explicit must refuse chain-24");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("state space too large"));

    for backend in ["symbolic", "auto"] {
        let out = specmatcher(&["check", "--design", "chain-24", "--backend", backend]);
        assert_eq!(out.status.code(), Some(0), "chain-24 covered under {backend}");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.contains("COVERED"));
        assert!(stdout.contains("symbolic"), "report must name the backend");
    }

    // The gapped variant exits 1 with a witness — and, since the gap
    // phase itself runs symbolically now, a gap report (uncovered terms;
    // the chain's off-by-one gap has no structure-preserving property, so
    // Theorem 2's exact hole is the fallback) even past the explicit
    // limit.
    let out = specmatcher(&["check", "--design", "chain-22-gap"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("NOT covered"));
    assert!(stdout.contains("witness run"));
    assert!(
        stdout.contains("uncovered terms"),
        "symbolic gap phase must enumerate terms: {stdout}"
    );
    assert!(stdout.contains("exact hole"));
    assert!(stdout.contains("gap backend symbolic"));
}

#[test]
fn reduction_escape_hatch_preserves_the_gap_report() {
    // SPECMATCHER_NO_REDUCE=1 (the bisection escape hatch) must restore
    // the legacy tableaus without changing anything semantic: same exit
    // code and the same gap-property set on the gapped toy design. (CI
    // additionally asserts the `automaton reduction: on|off` status line
    // of `table1 --quick` in both states.)
    let gap_block = |stdout: &str| -> Vec<String> {
        let mut out = Vec::new();
        let mut in_gap = false;
        for line in stdout.lines() {
            if line.trim_start().starts_with("gap properties") {
                in_gap = true;
            } else if in_gap && line.starts_with("    ") {
                out.push(line.trim().to_owned());
            } else {
                in_gap = false;
            }
        }
        out
    };
    let on = specmatcher(&["check", "--design", "mal-ex2"]);
    let off = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(["check", "--design", "mal-ex2"])
        .env("SPECMATCHER_NO_REDUCE", "1")
        .output()
        .expect("binary runs");
    assert_eq!(on.status.code(), Some(1));
    assert_eq!(off.status.code(), Some(1), "escape hatch changed the verdict");
    let gaps_on = gap_block(&String::from_utf8_lossy(&on.stdout));
    let gaps_off = gap_block(&String::from_utf8_lossy(&off.stdout));
    assert!(!gaps_on.is_empty(), "mal-ex2 must report gap properties");
    assert_eq!(gaps_on, gaps_off, "escape hatch changed the gap set");
}

#[test]
fn table1_json_writes_the_bench_trajectory() {
    // `table1 --json` must emit BENCH_table1.json next to the table; run
    // it in a scratch working directory so parallel tests cannot race on
    // the file. Uses the quick-est path available: the full table on this
    // 1-core container is ~40 s, acceptable for an integration test but
    // only worth paying once (the nightly artifact covers trend data).
    let dir = std::env::temp_dir().join(format!("specmatcher-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_specmatcher"))
        .args(["table1", "--json"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "table1 --json failed");
    let json = std::fs::read_to_string(dir.join("BENCH_table1.json")).expect("json written");
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    for needle in [
        "\"schema\":\"specmatcher-bench-table1/1\"",
        "\"reduction_enabled\":true",
        "\"name\":\"mal-26\"",
        "\"name\":\"amba-ahb\"",
        "\"bmc\":\"auto\"",
        "\"gap_fingerprint\":[",
        "\"pre\":{\"states\":",
        "\"post\":{\"states\":",
        "\"totals\":{\"pre_states\":",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    // The per-design totals must show the documented strict decrease on
    // the designs where the pipeline bites (amba-ahb: 152 -> 132 states).
    assert!(
        json.contains("\"pre_states\":152,\"post_states\":132"),
        "amba-ahb totals drifted: {json}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_design_fails_gracefully() {
    let out = specmatcher(&["check", "--design", "no-such-design"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown design"));
}

#[test]
fn snl_and_spec_files_flow() {
    let dir = std::env::temp_dir().join(format!("specmatcher-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snl_path = dir.join("glue.snl");
    let spec_path = dir.join("glue.spec");
    let mut snl = std::fs::File::create(&snl_path).expect("snl file");
    writeln!(
        snl,
        "module glue\n  input a\n  output q\n  latch q = a init 0\nendmodule"
    )
    .expect("write snl");
    let mut spec = std::fs::File::create(&spec_path).expect("spec file");
    writeln!(
        spec,
        "# user flow\narch A1 = G(req -> X X q)\nrtl R1 = G(req -> X a)"
    )
    .expect("write spec");

    let out = specmatcher(&[
        "check",
        "--snl",
        snl_path.to_str().expect("utf8 path"),
        "--spec",
        spec_path.to_str().expect("utf8 path"),
    ]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "covered spec: {stdout}");
    assert!(stdout.contains("COVERED"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsm_dump_is_dot() {
    let out = specmatcher(&["fsm", "--design", "mal-ex1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("digraph fsm"));
    assert!(stdout.contains("->"));
    assert!(stdout.contains("module"));
}

#[test]
fn help_prints_usage() {
    let out = specmatcher(&["--help"]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("usage:"));
    assert!(stderr.contains("--json"));
    assert!(stderr.contains("--backend"));
    assert!(stderr.contains("symbolic"));
}
