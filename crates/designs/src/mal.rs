//! The Memory Arbitration Logic (MAL) of the paper's Figures 2–4.
//!
//! Architecture (Example 1 / Fig. 2): requests `r1`, `r2` go to a priority
//! arbiter `PrA` (specified only by properties) that raises `n1`/`n2` one
//! cycle later; the glue block `M1` masks decisions while the cache logic
//! is busy and exports the composite `wait`; the cache access logic `L1`
//! performs the lookups: a granted request with `hit` delivers `d_i`
//! immediately, a miss parks the request in a pending latch `p_i` that
//! completes at the next *bare* hit (a hit cycle with no new grant in
//! flight).
//!
//! The architectural intent is the paper's formula, verbatim:
//!
//! ```text
//! A = G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))
//! ```
//!
//! [`ex1`] reproduces Example 1 (coverage **holds**); [`ex2`] reproduces
//! Example 2 / Fig. 4, where `M1` is moved *before* the arbiter — the
//! one-cycle race between a new `r2` decision and the `wait` masking opens
//! the paper's coverage gap, closed by the property
//! `U = G(!wait & r1 & X(r1 U (r2 & X !hit)) -> X(!d2 U d1))`.
//!
//! Beyond the paper's headline pair `R1`, `R2` (resp. `R'1`, `R'2`), the
//! RTL spec carries the completion properties making the arbiter
//! deterministic, the reset property, and the cache fairness assumption
//! `G F hit` — without these the toy example is not well-posed (spurious
//! grants would break Example 1, and a never-hitting cache refutes the
//! strong until of `A` outright). EXPERIMENTS.md discusses the accounting.

use crate::Design;
use dic_core::{ArchSpec, RtlSpec};
use dic_logic::{BoolExpr, SignalTable};
use dic_ltl::Ltl;
use dic_netlist::{Module, ModuleBuilder};

/// Builds the `L1` cache access logic for `n` request channels.
///
/// Inputs: `g1..gn`, `hit`. Outputs: `d1..dn` and the pending indicator
/// (named `wait_name`, `cwait` in Ex. 1 where `M1` re-exports it, `wait`
/// in Ex. 2 where it feeds the request masks directly).
fn cache_logic(table: &mut SignalTable, n: usize, wait_name: &str) -> Module {
    let mut b = ModuleBuilder::new("L1", table);
    let hit = b.input("hit");
    let gs: Vec<_> = (1..=n).map(|i| b.input(&format!("g{i}"))).collect();
    let ps: Vec<_> = (1..=n)
        .map(|i| b.table().intern(&format!("p{i}")))
        .collect();
    // bare: a hit cycle with no grant in flight — pending fetches complete.
    let bare = b.wire(
        "bare",
        BoolExpr::and(
            [BoolExpr::var(hit)]
                .into_iter()
                .chain(gs.iter().map(|&g| BoolExpr::var(g).not())),
        ),
    );
    for i in 0..n {
        let di = b.wire(
            &format!("d{}", i + 1),
            BoolExpr::or([
                BoolExpr::and([BoolExpr::var(gs[i]), BoolExpr::var(hit)]),
                BoolExpr::and([BoolExpr::var(ps[i]), BoolExpr::var(bare)]),
            ]),
        );
        b.mark_output(di);
        // p_i' = (g_i | p_i) & !completion-condition
        b.latch(
            &format!("p{}", i + 1),
            BoolExpr::and([
                BoolExpr::or([
                    BoolExpr::and([BoolExpr::var(gs[i]), BoolExpr::var(hit).not()]),
                    BoolExpr::var(ps[i]),
                ]),
                BoolExpr::and([BoolExpr::var(ps[i]), BoolExpr::var(bare)]).not(),
            ]),
            false,
        );
    }
    let w = b.wire(
        wait_name,
        BoolExpr::or(ps.iter().map(|&p| BoolExpr::var(p))),
    );
    b.mark_output(w);
    b.finish().expect("L1 is a valid netlist")
}

/// Example 1 / Fig. 2: arbiter first, glue masking after.
///
/// `M1`: `g_i = n_i & !cwait`, `wait = n1 | n2 | cwait` — the two AND gates
/// and the OR gate of Fig. 2. Coverage of `A` **holds**.
pub fn ex1() -> Design {
    let mut table = SignalTable::new();
    // Concrete L1 with the busy wire named cwait.
    let l1 = cache_logic(&mut table, 2, "cwait");

    // Concrete M1 glue.
    let m1 = {
        let mut b = ModuleBuilder::new("M1", &mut table);
        let n1 = b.input("n1");
        let n2 = b.input("n2");
        let cwait = b.input("cwait");
        let g1 = b.and_gate("g1", [n1], [cwait]);
        let g2 = b.and_gate("g2", [n2], [cwait]);
        let wait = b.or_gate("wait", [n1, n2, cwait], []);
        b.mark_output(g1);
        b.mark_output(g2);
        b.mark_output(wait);
        b.finish().expect("M1 is a valid netlist")
    };

    let mut p = |src: &str| Ltl::parse(src, &mut table).expect("static property parses");
    let a = p("G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))");
    let props = [
        ("R1", p("G(r1 -> X n1)")),
        ("R2", p("G(!r1 & r2 -> X n2)")),
        ("C1", p("G(!r1 -> X !n1)")),
        ("C2", p("G(r1 | !r2 -> X !n2)")),
        ("INIT", p("!n1 & !n2")),
        ("FAIR", p("G F hit")),
    ];

    Design {
        name: "mal-ex1",
        arch: ArchSpec::new([("A", a)]),
        rtl: RtlSpec::new(props, [m1, l1]),
        table,
    }
}

/// Example 2 / Fig. 4: the glue moved *before* the arbiter.
///
/// `M1` now latches masked requests (`n_i <= r_i & !wait`) and the arbiter
/// (property-specified) drives the cache grants directly — the cache busy
/// signal `wait` cannot stop a decision already in flight, which is the
/// paper's coverage gap. Coverage of `A` **fails**; the paper's property
/// `U` (see [`paper_gap_property`]) closes the gap.
pub fn ex2() -> Design {
    let mut table = SignalTable::new();
    let l1 = cache_logic(&mut table, 2, "cwait");

    // Concrete M1: registered request masks feeding the arbiter, plus the
    // composite busy indicator `wait` = everything in flight (decisions
    // `n1/n2`, grants `g1/g2`, pending fetches `cwait`). The *mask* only
    // stalls on `cwait` — an accepted request still races through the
    // decision/grant pipeline while `wait` is observable at the interface.
    // This is the paper's gap mechanism: `!wait` at the window start rules
    // out anything already in flight, but a *fresh* `r2` accepted inside
    // the window can still slip its grant past a missing `r1` fetch.
    let m1 = {
        let mut b = ModuleBuilder::new("M1", &mut table);
        let r1 = b.input("r1");
        let r2 = b.input("r2");
        let cwait = b.input("cwait");
        let g1 = b.input("g1");
        let g2 = b.input("g2");
        let n1 = b.table().intern("n1");
        let n2 = b.table().intern("n2");
        let wait = b.or_gate("wait", [n1, n2, g1, g2, cwait], []);
        b.latch(
            "n1",
            BoolExpr::and([BoolExpr::var(r1), BoolExpr::var(cwait).not()]),
            false,
        );
        b.latch(
            "n2",
            BoolExpr::and([BoolExpr::var(r2), BoolExpr::var(cwait).not()]),
            false,
        );
        b.mark_output(n1);
        b.mark_output(n2);
        b.mark_output(wait);
        b.finish().expect("M1 is a valid netlist")
    };

    let mut p = |src: &str| Ltl::parse(src, &mut table).expect("static property parses");
    let a = p("G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))");
    let props = [
        ("R'1", p("G(n1 -> X g1)")),
        ("R'2", p("G(!n1 & n2 -> X g2)")),
        ("C'1", p("G(!n1 -> X !g1)")),
        ("C'2", p("G(n1 | !n2 -> X !g2)")),
        ("INIT", p("!g1 & !g2")),
        ("FAIR", p("G F hit")),
    ];

    Design {
        name: "mal-ex2",
        arch: ArchSpec::new([("A", a)]),
        rtl: RtlSpec::new(props, [m1, l1]),
        table,
    }
}

/// The paper's gap property for Example 2, verbatim:
/// `U = G(!wait & r1 & X(r1 U (r2 & X !hit)) -> X(!d2 U d1))`.
///
/// Parsed against the design's signal table so it can be checked with
/// [`dic_core::closes_gap`]: it is strictly weaker than `A`
/// (Definition 2) and closes the Example 2 coverage gap (Definition 3) —
/// the paper's Example 4 result, machine-checked.
pub fn paper_gap_property(design: &mut Design) -> Ltl {
    Ltl::parse(
        "G(!wait & r1 & X(r1 U (r2 & X !hit)) -> X(!d2 U d1))",
        &mut design.table,
    )
    .expect("the paper's U parses")
}

/// A second paper-shaped gap property:
/// `U' = G(!wait & r1 & X(r1 U (r2 & X !g2)) -> X(!d2 U d1))`.
///
/// Same syntactic structure as the paper's `U` — the `r2` instance inside
/// the unbounded until is strengthened with an `X`-offset environment
/// literal — with the in-flight arbiter grant `g2` as the distinguishing
/// literal instead of the cache `hit`. Algorithm 1 generates this variant
/// among its closing candidates for [`ex2`].
pub fn adapted_gap_property(design: &mut Design) -> Ltl {
    Ltl::parse(
        "G(!wait & r1 & X(r1 U (r2 & X !g2)) -> X(!d2 U d1))",
        &mut design.table,
    )
    .expect("the adapted U parses")
}

/// The Table 1 MAL: four requesters, 26 RTL properties, Ex. 2 topology
/// (so the architectural priority property has a genuine gap and the full
/// Algorithm 1 pipeline runs, as in the paper's measurements).
pub fn mal26() -> Design {
    let n = 4;
    let mut table = SignalTable::new();
    let l1 = cache_logic(&mut table, n, "cwait");

    // Registered request masks for all four channels, plus the composite
    // busy indicator (see the `ex2` comment: masks stall on `cwait` only,
    // `wait` covers every in-flight stage).
    let m1 = {
        let mut b = ModuleBuilder::new("M1", &mut table);
        let cwait = b.input("cwait");
        let gs: Vec<_> = (1..=n).map(|i| b.input(&format!("g{i}"))).collect();
        let ns: Vec<_> = (1..=n)
            .map(|i| b.table().intern(&format!("n{i}")))
            .collect();
        let wait = b.or_gate(
            "wait",
            ns.iter().chain(gs.iter()).copied().chain([cwait]),
            [],
        );
        for i in 1..=n {
            let r = b.input(&format!("r{i}"));
            b.latch(
                &format!("n{i}"),
                BoolExpr::and([BoolExpr::var(r), BoolExpr::var(cwait).not()]),
                false,
            );
        }
        for i in 1..=n {
            let id = b.table().intern(&format!("n{i}"));
            b.mark_output(id);
        }
        b.mark_output(wait);
        b.finish().expect("M1 is a valid netlist")
    };

    let mut props: Vec<(String, Ltl)> = Vec::new();
    {
        let mut p = |src: &str| Ltl::parse(src, &mut table).expect("static property parses");
        // Grants: strict priority n1 > n2 > n3 > n4, stalled on cache busy.
        props.push(("G1".into(), p("G(n1 & !cwait -> X g1)")));
        props.push(("G2".into(), p("G(!n1 & n2 & !cwait -> X g2)")));
        props.push(("G3".into(), p("G(!n1 & !n2 & n3 & !cwait -> X g3)")));
        props.push(("G4".into(), p("G(!n1 & !n2 & !n3 & n4 & !cwait -> X g4)")));
        // Completions: no grant without a decision.
        for i in 1..=n {
            props.push((format!("C{i}"), p(&format!("G(!n{i} -> X !g{i})"))));
        }
        // Priority blocking.
        props.push(("B2".into(), p("G(n1 -> X !g2)")));
        props.push(("B3".into(), p("G(n1 | n2 -> X !g3)")));
        props.push(("B4".into(), p("G(n1 | n2 | n3 -> X !g4)")));
        // Pairwise grant exclusion.
        let mut k = 0;
        for i in 1..=n {
            for j in (i + 1)..=n {
                k += 1;
                props.push((format!("X{k}"), p(&format!("G !(g{i} & g{j})"))));
            }
        }
        // Silence while the cache is busy.
        for i in 1..=n {
            props.push((format!("W{i}"), p(&format!("G(cwait -> X !g{i})"))));
        }
        // Contrapositive completions (redundant in meaning, present in the
        // suite as written by the validation team).
        for i in 2..=n {
            props.push((format!("K{i}"), p(&format!("G(X g{i} -> n{i})"))));
        }
        // Reset and cache fairness.
        props.push(("INIT".into(), p("!g1 & !g2 & !g3 & !g4")));
        props.push(("FAIR".into(), p("G F hit")));
    }
    assert_eq!(props.len(), 26, "Table 1 row must carry 26 RTL properties");

    let a = Ltl::parse(
        "G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))",
        &mut table,
    )
    .expect("A parses");

    Design {
        name: "mal-26",
        arch: ArchSpec::new([("A", a)]),
        rtl: RtlSpec::new(
            props.iter().map(|(n, f)| (n.as_str(), f.clone())),
            [m1, l1],
        ),
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_core::{closes_gap, CoverageModel, GapConfig, SpecMatcher};

    #[test]
    fn ex1_coverage_holds() {
        let d = ex1();
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        let fa = d.arch.properties()[0].formula();
        let witness = dic_core::primary_coverage(fa, &d.rtl, &model).expect("within limits");
        assert!(
            witness.is_none(),
            "Example 1 must be covered; counterexample: {:?}",
            witness.map(|w| {
                w.states()
                    .iter()
                    .map(|s| s.display(&d.table).to_string())
                    .collect::<Vec<_>>()
            })
        );
    }

    #[test]
    fn ex2_gap_exists() {
        let d = ex2();
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        let fa = d.arch.properties()[0].formula();
        let witness = dic_core::primary_coverage(fa, &d.rtl, &model).expect("within limits");
        assert!(witness.is_some(), "Example 2 must have a coverage gap");
        // The witness genuinely breaks A while satisfying every R property.
        let w = witness.expect("checked");
        assert!(!fa.holds_on(&w));
        for p in d.rtl.properties() {
            assert!(p.formula().holds_on(&w), "witness violates {}", p.name());
        }
    }

    #[test]
    fn ex2_paper_u_closes_gap() {
        // The paper's Example 4, machine-checked: the verbatim U is
        // strictly weaker than A and closes the Example 2 coverage gap.
        let mut d = ex2();
        let u = paper_gap_property(&mut d);
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        let fa = d.arch.properties()[0].formula();
        assert!(dic_automata::implies(fa, &u));
        assert!(dic_automata::stronger_than(fa, &u));
        assert!(
            closes_gap(&u, fa, &d.rtl, &model).expect("runs"),
            "the paper's U must close the Example 2 gap"
        );
    }

    #[test]
    fn ex2_adapted_gap_property_also_closes() {
        // The same-shaped property over the in-flight grant literal also
        // closes (Algorithm 1 finds this one among its candidates).
        let mut d = ex2();
        let u = adapted_gap_property(&mut d);
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        let fa = d.arch.properties()[0].formula();
        assert!(dic_automata::stronger_than(fa, &u));
        assert!(closes_gap(&u, fa, &d.rtl, &model).expect("runs"));
    }

    #[test]
    fn ex2_algorithm_finds_the_paper_property_verbatim() {
        // The headline reproduction of Example 4: Algorithm 1 itself
        // produces the paper's U — the r2 instance inside the unbounded
        // until strengthened with X !hit — along with the same-shaped
        // sibling over the in-flight grant (X !g2). Candidates are explored
        // deepest-unbounded-operator first (Fig. 6), so both sit within the
        // default budgets.
        let mut d = ex2();
        let paper_u = paper_gap_property(&mut d);
        let sibling = adapted_gap_property(&mut d);
        let config = GapConfig {
            max_candidates: 160,
            max_gap_properties: 24,
            ..GapConfig::default()
        };
        let run = d.check(&SpecMatcher::new(config)).expect("runs");
        let rep = &run.properties[0];
        let found = |expected: &dic_ltl::Ltl| {
            rep.gap_properties
                .iter()
                .any(|g| dic_automata::equivalent(&g.formula, expected))
        };
        assert!(
            found(&paper_u) && found(&sibling),
            "expected the paper's U and its X!g2 sibling among: {:?}",
            rep.gap_properties
                .iter()
                .map(|g| g.describe(&d.table))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ex2_push_locates_until() {
        // Fig. 6: pushing the UM terms into A's parse tree determines that
        // "the gaps lie inside the unbounded operator until" — the
        // antecedent until `X(r1 U r2)` at ε.0.0.0.2. With the
        // deepest-unbounded-first candidate order, every *leading* closing
        // gap property weakens an instance inside one of the untils.
        let d = ex2();
        let run = d
            .check(&SpecMatcher::new(GapConfig::default()))
            .expect("runs");
        let rep = &run.properties[0];
        assert!(!rep.gap_properties.is_empty());
        let until_antecedent = [0usize, 0, 0, 2]; // path of X(r1 U r2)'s X
        let until_consequent = [0usize, 1]; // path of X(!d2 U d1)'s X
        for g in &rep.gap_properties {
            let p = g.position.path();
            assert!(
                p.starts_with(&until_antecedent) || p.starts_with(&until_consequent),
                "gap property weakens outside the untils: {}",
                g.describe(&d.table)
            );
        }
    }

    #[test]
    fn ex2_generated_gap_closes() {
        let d = ex2();
        let run = d
            .check(&SpecMatcher::new(GapConfig::default()))
            .expect("runs");
        let rep = &run.properties[0];
        assert!(!rep.covered);
        assert!(
            !rep.gap_properties.is_empty(),
            "Algorithm 1 must find a structured gap property; terms: {:?}",
            rep.uncovered_terms
        );
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        for g in &rep.gap_properties {
            assert!(closes_gap(&g.formula, &rep.formula, &d.rtl, &model).expect("runs"));
        }
    }

    #[test]
    fn mal26_property_count() {
        let d = mal26();
        assert_eq!(d.rtl.num_properties(), 26);
    }
}
