//! Parameterized designs for the state-explosion experiments.
//!
//! The paper's Section 5 warns: *"If we bring in larger RTL blocks into the
//! picture, we will have state explosion in two of the steps. Firstly, the
//! primary coverage question requires model checking on the RTL blocks.
//! Secondly, the building time for T_M will go up."* These generators make
//! that quantitative: latch chains for `T_M` growth, wider arbiters for
//! model-checking growth.

use crate::Design;
use dic_core::{ArchSpec, RtlSpec};
use dic_logic::{BoolExpr, SignalTable};
use dic_ltl::Ltl;
use dic_netlist::{Module, ModuleBuilder};

/// An `n`-stage latch chain `q1 <= a, q2 <= q1, …` (2^n FSM states under a
/// free input). Used by the `tm_scaling` bench.
pub fn latch_chain(n: usize) -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("chain", &mut t);
    let mut prev = b.input("a");
    for i in 1..=n {
        prev = b.latch_from(&format!("q{i}"), prev, false);
    }
    b.mark_output(prev);
    let m = b.finish().expect("chain is a valid netlist");
    (t, m)
}

/// A shift-register *pair* with a comparator wire, giving denser transition
/// structure than [`latch_chain`] (two independent inputs).
pub fn twin_chain(n: usize) -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("twin", &mut t);
    let mut pa = b.input("a");
    let mut pb = b.input("b");
    for i in 1..=n {
        pa = b.latch_from(&format!("qa{i}"), pa, false);
        pb = b.latch_from(&format!("qb{i}"), pb, i % 2 == 1);
    }
    let eq = b.wire(
        "match",
        BoolExpr::xor(BoolExpr::var(pa), BoolExpr::var(pb)).not(),
    );
    b.mark_output(eq);
    let m = b.finish().expect("twin chain is a valid netlist");
    (t, m)
}

/// A packaged coverage problem over an `n`-stage latch chain: the intent
/// says the input reaches the chain's tail after `n` cycles (true by
/// construction when `gapped` is false; off by one — and therefore gapped
/// with a witness — when `gapped` is true). `R` is empty: the question is
/// pure model checking of `¬A` against the concrete chain.
///
/// At `n ≥ 20` the explicit engine rejects this design with
/// `FsmError::TooLarge` (`n` latches + 1 input exceed the Kripke bit
/// limit), which is the point: these are the rows only the symbolic
/// backend can check. Packaged in the CLI as `chain-<n>` / `chain-<n>-gap`.
pub fn chain_design(n: usize, gapped: bool) -> Design {
    assert!(n >= 1, "chain needs at least one stage");
    let (mut table, module) = latch_chain(n);
    let (name, src) = if gapped {
        // Claims the value arrives one cycle early: refuted by any run
        // toggling `a`, so the checker must produce a witness lasso.
        let xs_short = "X ".repeat(n - 1);
        (format!("chain-{n}-gap"), format!("G(a -> {xs_short}q{n})"))
    } else {
        let xs = "X ".repeat(n);
        (format!("chain-{n}"), format!("G(a -> {xs}q{n})"))
    };
    let a = Ltl::parse(&src, &mut table).expect("chain intent parses");
    Design {
        // Fixture generators are called a handful of times per process;
        // leaking the name buys `&'static str` parity with the packaged
        // designs without rippling `Design.name` to `String`.
        name: Box::leak(name.into_boxed_str()),
        arch: ArchSpec::new([("A", a)]),
        rtl: RtlSpec::new(Vec::<(&str, Ltl)>::new(), [module]),
        table,
    }
}

/// The MAL generalized to `n` request channels (Ex. 2 topology), with the
/// proportional property suite. Used by the `mc_scaling` bench: the
/// primary coverage question grows with `n` on both the model side
/// (latches + free inputs) and the spec side (property count).
pub fn wide_mal(n: usize) -> Design {
    assert!((2..=4).contains(&n), "supported widths: 2..=4");
    let mut table = SignalTable::new();

    // Cache logic for n channels (same structure as mal::cache_logic, which
    // is private to the mal module; duplicated minimal variant here).
    let l1 = {
        let mut b = ModuleBuilder::new("L1", &mut table);
        let hit = b.input("hit");
        let gs: Vec<_> = (1..=n).map(|i| b.input(&format!("g{i}"))).collect();
        let ps: Vec<_> = (1..=n)
            .map(|i| b.table().intern(&format!("p{i}")))
            .collect();
        let bare = b.wire(
            "bare",
            BoolExpr::and(
                [BoolExpr::var(hit)]
                    .into_iter()
                    .chain(gs.iter().map(|&g| BoolExpr::var(g).not())),
            ),
        );
        for i in 0..n {
            let di = b.wire(
                &format!("d{}", i + 1),
                BoolExpr::or([
                    BoolExpr::and([BoolExpr::var(gs[i]), BoolExpr::var(hit)]),
                    BoolExpr::and([BoolExpr::var(ps[i]), BoolExpr::var(bare)]),
                ]),
            );
            b.mark_output(di);
            b.latch(
                &format!("p{}", i + 1),
                BoolExpr::and([
                    BoolExpr::or([
                        BoolExpr::and([BoolExpr::var(gs[i]), BoolExpr::var(hit).not()]),
                        BoolExpr::var(ps[i]),
                    ]),
                    BoolExpr::and([BoolExpr::var(ps[i]), BoolExpr::var(bare)]).not(),
                ]),
                false,
            );
        }
        let w = b.wire(
            "cwait",
            BoolExpr::or(ps.iter().map(|&p| BoolExpr::var(p))),
        );
        b.mark_output(w);
        b.finish().expect("L1 is a valid netlist")
    };

    let m1 = {
        let mut b = ModuleBuilder::new("M1", &mut table);
        let cwait = b.input("cwait");
        let gs: Vec<_> = (1..=n).map(|i| b.input(&format!("g{i}"))).collect();
        let ns: Vec<_> = (1..=n)
            .map(|i| b.table().intern(&format!("n{i}")))
            .collect();
        let wait = b.or_gate(
            "wait",
            ns.iter().chain(gs.iter()).copied().chain([cwait]),
            [],
        );
        for i in 1..=n {
            let r = b.input(&format!("r{i}"));
            b.latch(
                &format!("n{i}"),
                BoolExpr::and([BoolExpr::var(r), BoolExpr::var(cwait).not()]),
                false,
            );
        }
        for i in 1..=n {
            let id = b.table().intern(&format!("n{i}"));
            b.mark_output(id);
        }
        b.mark_output(wait);
        b.finish().expect("M1 is a valid netlist")
    };

    let mut props: Vec<(String, Ltl)> = Vec::new();
    {
        let mut p = |name: String, src: String, props: &mut Vec<(String, Ltl)>| {
            props.push((name, Ltl::parse(&src, &mut table).expect("parses")));
        };
        for i in 1..=n {
            let higher: Vec<String> = (1..i).map(|j| format!("!n{j}")).collect();
            let ante = if higher.is_empty() {
                format!("n{i} & !cwait")
            } else {
                format!("{} & n{i} & !cwait", higher.join(" & "))
            };
            p(format!("G{i}"), format!("G({ante} -> X g{i})"), &mut props);
            p(format!("C{i}"), format!("G(!n{i} -> X !g{i})"), &mut props);
            p(format!("W{i}"), format!("G(cwait -> X !g{i})"), &mut props);
        }
        for i in 1..=n {
            for j in (i + 1)..=n {
                p(
                    format!("X{i}{j}"),
                    format!("G !(g{i} & g{j})"),
                    &mut props,
                );
            }
        }
        let init = (1..=n)
            .map(|i| format!("!g{i}"))
            .collect::<Vec<_>>()
            .join(" & ");
        p("INIT".to_owned(), init, &mut props);
        p("FAIR".to_owned(), "G F hit".to_owned(), &mut props);
    }

    let a = Ltl::parse(
        "G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))",
        &mut table,
    )
    .expect("A parses");

    Design {
        name: "wide-mal",
        arch: ArchSpec::new([("A", a)]),
        rtl: RtlSpec::new(
            props.iter().map(|(nm, f)| (nm.as_str(), f.clone())),
            [m1, l1],
        ),
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_core::tm::{enumerated_tm, relational_tm};

    #[test]
    fn latch_chain_shape() {
        let (t, m) = latch_chain(4);
        assert_eq!(m.latches().len(), 4);
        assert_eq!(m.inputs().len(), 1);
        let fsm = dic_fsm::extract_fsm(&m, &t, true).expect("fits");
        assert_eq!(fsm.num_states(), 16);
    }

    #[test]
    fn enumerated_tm_grows_much_faster_than_relational() {
        let (t3, m3) = latch_chain(3);
        let (t5, m5) = latch_chain(5);
        let e3 = enumerated_tm(&m3, &t3, true).expect("fits").size();
        let e5 = enumerated_tm(&m5, &t5, true).expect("fits").size();
        let r3 = relational_tm(&m3).size();
        let r5 = relational_tm(&m5).size();
        // Enumerated blows up exponentially; relational stays linear.
        assert!(e5 > 3 * e3, "enumerated: {e3} -> {e5}");
        assert!(r5 < 2 * r3 + 16, "relational: {r3} -> {r5}");
    }

    #[test]
    fn twin_chain_has_comparator() {
        let (t, m) = twin_chain(2);
        assert!(t.lookup("match").is_some());
        assert_eq!(m.latches().len(), 4);
    }

    #[test]
    fn wide_mal_scales_property_count() {
        assert!(wide_mal(2).rtl.num_properties() < wide_mal(3).rtl.num_properties());
        assert!(wide_mal(3).rtl.num_properties() < wide_mal(4).rtl.num_properties());
    }

    #[test]
    fn chain_design_beyond_explicit_limit_needs_symbolic() {
        use dic_core::{Backend, CoverageModel, CoreError};
        let d = chain_design(24, false);
        assert_eq!(d.name, "chain-24");
        // The explicit engine refuses this state space…
        match CoverageModel::build_with_backend(&d.arch, &d.rtl, &d.table, Backend::Explicit) {
            Err(CoreError::Fsm(dic_fsm::FsmError::TooLarge { .. })) => {}
            other => panic!("expected the explicit limit to trip, got {other:?}"),
        }
        // …while Auto resolves to (pure) symbolic and proves coverage.
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("symbolic builds");
        assert_eq!(model.primary_backend(), Backend::Symbolic);
        assert!(!model.has_explicit());
        let fa = d.arch.properties()[0].formula();
        let witness = dic_core::primary_coverage(fa, &d.rtl, &model).expect("within limits");
        assert!(witness.is_none(), "the chain intent holds by construction");
    }

    #[test]
    fn gapped_chain_produces_replayable_witness_at_scale() {
        let d = chain_design(22, true);
        let model =
            dic_core::CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("symbolic builds");
        let fa = d.arch.properties()[0].formula();
        let witness = dic_core::primary_coverage(fa, &d.rtl, &model)
            .expect("within limits")
            .expect("off-by-one intent must be refuted");
        assert!(!fa.holds_on(&witness), "witness must break the intent");
    }
}
