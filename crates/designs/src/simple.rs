//! Example 3 / Figure 5: the simple AND-latch model.
//!
//! `M` has inputs `a`, `b` and output `c`, with `c` latched from `a & b`
//! and reset to 0. The paper extracts its FSM (two states) and derives
//!
//! ```text
//! TM = (!c) & G( !c&a&b&c' | !c&!(a&b)&!c' | c&a&b&c' | c&!(a&b)&!c' )
//! ```
//!
//! where `c'` is the next-state variable — i.e. `X c` in LTL.

use dic_logic::{BoolExpr, SignalTable};
use dic_netlist::{Module, ModuleBuilder};

/// Builds the Fig. 5 model and its signal table.
pub fn model() -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("simple", &mut t);
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.latch(
        "c",
        BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]),
        false,
    );
    b.mark_output(c);
    let m = b.finish().expect("the Fig. 5 model is a valid netlist");
    (t, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_core::tm::{enumerated_tm, relational_tm};
    use dic_fsm::{extract_fsm, Kripke};
    use dic_ltl::Ltl;

    #[test]
    fn fsm_matches_figure5() {
        let (t, m) = model();
        let fsm = extract_fsm(&m, &t, true).expect("small");
        assert_eq!(fsm.num_states(), 2);
        // Initial state is !c.
        let c = t.lookup("c").unwrap();
        assert_eq!(fsm.state_cube(fsm.initial()).polarity_of(c), Some(false));
    }

    #[test]
    fn tm_equals_paper_formula() {
        // The paper's minimized TM, written with X c for c'.
        let (t, m) = model();
        let mut t2 = t.clone();
        let paper = Ltl::parse(
            "!c & G( (!c & a & b & X c) | (!c & !(a & b) & X !c) \
               | (c & a & b & X c) | (c & !(a & b) & X !c) )",
            &mut t2,
        )
        .expect("parse");
        let sigs: Vec<_> = m.signals().into_iter().collect();
        let universe = Kripke::universal(&t2, &sigs).expect("small");
        for tm in [
            relational_tm(&m),
            enumerated_tm(&m, &t, true).expect("small"),
        ] {
            // tm and the paper formula accept the same runs.
            let diff1 = Ltl::and([tm.clone(), Ltl::not(paper.clone())]);
            let diff2 = Ltl::and([paper.clone(), Ltl::not(tm)]);
            assert!(
                dic_automata::satisfiable_in(&diff1, &universe).is_none(),
                "our TM admits a run the paper's TM rejects"
            );
            assert!(
                dic_automata::satisfiable_in(&diff2, &universe).is_none(),
                "the paper's TM admits a run our TM rejects"
            );
        }
    }
}
