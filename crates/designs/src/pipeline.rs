//! A pipelined memory-port controller — the "Intel Design" substitute.
//!
//! Table 1's second row is a proprietary Intel block with 12 RTL
//! properties. We substitute a synthetic design with the same workload
//! shape (one architectural property whose proof needs contributions from
//! a property-specified submodule *and* a concrete glue block; 12 RTL
//! properties, several of them redundant restatements as real suites have).
//! See DESIGN.md §3 for the substitution rationale.
//!
//! Structure: a request `req` (unless `stall`ed) is issued into the pipe
//! (`issue` register), then parks as a pending fetch (`pend`) until the
//! memory acknowledges (`ack`), after which the return unit raises `fill`.
//! The issue/pending stage is the concrete module; the return unit and the
//! environment are specified by properties.
//!
//! Architectural intent:
//!
//! ```text
//! A = G(req & !stall & !pend -> X X X fill)
//! ```
//!
//! — a fresh request fills in exactly three cycles. This is **not**
//! covered: nothing in the RTL spec forces the memory to acknowledge in
//! the window; the gap property strengthens the antecedent with the
//! acknowledge timing (`X X ack`), which Algorithm 1 finds from the
//! uncovered terms.

use crate::Design;
use dic_core::{ArchSpec, RtlSpec};
use dic_logic::{BoolExpr, SignalTable};
use dic_ltl::Ltl;
use dic_netlist::ModuleBuilder;

/// Builds the 12-property pipeline coverage problem.
pub fn pipeline12() -> Design {
    let mut table = SignalTable::new();

    // ---- Concrete issue/pending stage -------------------------------------
    let stage = {
        let mut b = ModuleBuilder::new("issue_stage", &mut table);
        let req = b.input("req");
        let stall = b.input("stall");
        let ack = b.input("ack");
        let issue = b.table().intern("issue");
        let pend = b.table().intern("pend");
        b.latch(
            "issue",
            BoolExpr::and([BoolExpr::var(req), BoolExpr::var(stall).not()]),
            false,
        );
        // A pending fetch holds until acknowledged; a fresh issue always
        // (re)arms it.
        b.latch(
            "pend",
            BoolExpr::or([
                BoolExpr::var(issue),
                BoolExpr::and([BoolExpr::var(pend), BoolExpr::var(ack).not()]),
            ]),
            false,
        );
        for name in ["issue", "pend"] {
            let id = b.table().intern(name);
            b.mark_output(id);
        }
        b.finish().expect("issue stage is a valid netlist")
    };

    // ---- Return-unit and environment properties (12) ----------------------
    let mut props: Vec<(String, Ltl)> = Vec::new();
    {
        let mut p = |name: &str, src: &str, props: &mut Vec<(String, Ltl)>| {
            props.push((
                name.to_owned(),
                Ltl::parse(src, &mut table).expect("static property parses"),
            ));
        };
        // Return unit.
        p("R1_FILL", "G(pend & ack -> X fill)", &mut props);
        p("R2_ONLY", "G(X fill -> pend & ack)", &mut props);
        p("R3_QUIET", "G(!pend -> X !fill)", &mut props);
        p("R4_MEMFAIR", "G F ack", &mut props);
        p("R5_INIT", "!fill", &mut props);
        // Issue stage restatements (redundant with the RTL, as written by
        // the validation team).
        p("R6_STALL", "G(stall -> X !issue)", &mut props);
        p("R7_ISSUE", "G(req & !stall -> X issue)", &mut props);
        p("R8_ACKPULSE", "G(ack -> X !ack)", &mut props);
        p("R9_REQHOLD", "G(stall & req -> X req)", &mut props);
        p("R10_NOREQ", "G(!req -> X !issue)", &mut props);
        p("R11_INIT", "!pend & !issue", &mut props);
        p("R12_PENDHOLD", "G(!ack & pend -> X pend)", &mut props);
    }
    assert_eq!(props.len(), 12, "Table 1 row must carry 12 RTL properties");

    let a = Ltl::parse("G(req & !stall & !pend -> X X X fill)", &mut table)
        .expect("A parses");

    Design {
        name: "pipeline",
        arch: ArchSpec::new([("A", a)]),
        rtl: RtlSpec::new(
            props.iter().map(|(n, f)| (n.as_str(), f.clone())),
            [stage],
        ),
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_core::{closes_gap, CoverageModel};

    #[test]
    fn property_count_matches_table1() {
        let d = pipeline12();
        assert_eq!(d.rtl.num_properties(), 12);
    }

    #[test]
    fn spec_is_consistent() {
        let d = pipeline12();
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        assert!(
            dic_automata::satisfiable_in_conj(d.rtl.formulas(), model.kripke()).is_some(),
            "the pipeline property suite is contradictory"
        );
    }

    #[test]
    fn fill_deadline_has_gap() {
        let d = pipeline12();
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        let fa = d.arch.properties()[0].formula();
        let witness = dic_core::primary_coverage(fa, &d.rtl, &model).expect("within limits");
        assert!(witness.is_some(), "the ack-timing gap must exist");
    }

    #[test]
    fn ack_timing_property_closes_gap() {
        // Every violation of A happens on a window with !ack two cycles in
        // (with ack the fill is forced by R1). The closing property pins the
        // *bad* scenario, exactly like the paper's `r2 & X !hit`:
        let mut d = pipeline12();
        let u = Ltl::parse(
            "G(req & !stall & !pend & X X !ack -> X X X fill)",
            &mut d.table,
        )
        .expect("parses");
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        let fa = d.arch.properties()[0].formula();
        assert!(dic_automata::implies(fa, &u));
        assert!(
            closes_gap(&u, fa, &d.rtl, &model).expect("runs"),
            "the ack-timing strengthening must close the gap"
        );
    }
}
