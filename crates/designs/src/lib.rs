//! The designs evaluated by the paper, rebuilt as runnable fixtures.
//!
//! Each submodule packages a complete coverage problem — a
//! [`SignalTable`], an architectural intent, an RTL
//! spec (properties + concrete modules) — ready to feed into
//! [`dic_core::SpecMatcher`]:
//!
//! * [`mal`] — the Memory Arbitration Logic of the paper's Figures 2–4:
//!   [`mal::ex1`] (coverage holds), [`mal::ex2`] (the rewired variant with
//!   a genuine coverage gap, Example 2), and [`mal::mal26`], the
//!   26-RTL-property four-requester version measured in Table 1.
//! * [`simple`] — the one-latch model of Example 3 / Figure 5, used to
//!   demonstrate `T_M` extraction.
//! * [`amba`] — a simplified ARM AMBA AHB subsystem: fixed-priority
//!   arbiter given as RTL, masters and slave described by 29 properties
//!   (the Table 1 "ARM AMBA AHB" row).
//! * [`pipeline`] — a synthetic pipelined memory-port controller with 12
//!   RTL properties standing in for the proprietary "Intel Design" row of
//!   Table 1 (see DESIGN.md for the substitution rationale).
//! * [`scaling`] — parameterized latch chains and arbiters for the
//!   state-explosion experiments discussed in the paper's Section 5.

pub mod amba;
pub mod mal;
pub mod pipeline;
pub mod scaling;
pub mod simple;

use dic_core::{ArchSpec, RtlSpec};
use dic_logic::SignalTable;

/// A packaged coverage problem: everything `SpecMatcher::check` needs.
#[derive(Debug)]
pub struct Design {
    /// Short identifier (used by the CLI and the benchmark tables).
    pub name: &'static str,
    /// The shared signal table.
    pub table: SignalTable,
    /// The architectural intent `A`.
    pub arch: ArchSpec,
    /// The RTL specification (properties `R` + concrete modules).
    pub rtl: RtlSpec,
}

impl Design {
    /// Convenience: run the full SpecMatcher pipeline on this design.
    ///
    /// # Errors
    ///
    /// Propagates [`dic_core::CoreError`] from model construction.
    pub fn check(
        &self,
        matcher: &dic_core::SpecMatcher,
    ) -> Result<dic_core::CoverageRun, dic_core::CoreError> {
        matcher.check(&self.arch, &self.rtl, &self.table)
    }
}

/// All Table 1 designs, in the paper's row order.
pub fn table1_designs() -> Vec<Design> {
    vec![
        mal::mal26(),
        pipeline::pipeline12(),
        amba::ahb29(),
        mal::ex2(), // "Paper Ex. (Fig 1)" — the toy example of the paper
    ]
}
