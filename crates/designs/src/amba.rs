//! A simplified ARM AMBA AHB subsystem (the Table 1 "ARM AMBA AHB" row).
//!
//! The paper: *"ARM AMBA AHB is bus protocol involving master, slave and
//! arbiter devices. The exact arbitration policy is not defined in the
//! protocol, we therefore targeted a system level property with the RTL of
//! the arbiter and set of properties over the master and slave."*
//!
//! We mirror that split: a fixed-priority **arbiter** is given as RTL (the
//! concrete module), two **masters** and a **slave** are described by 29
//! properties. Signals (AHB names, one-bit simplification):
//!
//! * `hbusreq1/2` — master bus requests (environment),
//! * `hgrant1/2` — arbiter grants (registered, change on `hready`),
//! * `hmaster` — current bus owner (arbiter register),
//! * `htrans1/2` — master transfer in progress (property-specified),
//! * `hready` — slave ready (property-specified).
//!
//! The architectural intent is a system-level priority property:
//!
//! ```text
//! A = G(!htrans1 & !htrans2 & hbusreq1 -> X(!htrans2 U htrans1))
//! ```
//!
//! — *"from a quiet bus, a master-1 request is served before any master-2
//! transfer starts"*. It is **not** covered: a grant for master 2 may
//! already be latched when the window opens (the same in-flight race as the
//! paper's Example 2), so the gap property strengthens the antecedent with
//! the in-flight condition.

use crate::Design;
use dic_core::{ArchSpec, RtlSpec};
use dic_logic::{BoolExpr, SignalTable};
use dic_ltl::Ltl;
use dic_netlist::ModuleBuilder;

/// Builds the 29-property AHB coverage problem.
pub fn ahb29() -> Design {
    let mut table = SignalTable::new();

    // ---- Concrete arbiter -------------------------------------------------
    let arbiter = {
        let mut b = ModuleBuilder::new("arbiter", &mut table);
        let hbusreq1 = b.input("hbusreq1");
        let hbusreq2 = b.input("hbusreq2");
        let hready = b.input("hready");
        let hgrant1 = b.table().intern("hgrant1");
        let hgrant2 = b.table().intern("hgrant2");
        let hmaster = b.table().intern("hmaster");
        // Grants re-arbitrate only on ready cycles; fixed priority 1 > 2.
        b.latch(
            "hgrant1",
            BoolExpr::or([
                BoolExpr::and([BoolExpr::var(hready), BoolExpr::var(hbusreq1)]),
                BoolExpr::and([BoolExpr::var(hready).not(), BoolExpr::var(hgrant1)]),
            ]),
            false,
        );
        b.latch(
            "hgrant2",
            BoolExpr::or([
                BoolExpr::and([
                    BoolExpr::var(hready),
                    BoolExpr::var(hbusreq1).not(),
                    BoolExpr::var(hbusreq2),
                ]),
                BoolExpr::and([BoolExpr::var(hready).not(), BoolExpr::var(hgrant2)]),
            ]),
            false,
        );
        // Owner register: takes the granted master at a ready edge.
        b.latch(
            "hmaster",
            BoolExpr::or([
                BoolExpr::and([BoolExpr::var(hready), BoolExpr::var(hgrant2)]),
                BoolExpr::and([
                    BoolExpr::var(hready),
                    BoolExpr::var(hgrant1).not(),
                    BoolExpr::var(hgrant2).not(),
                    BoolExpr::var(hmaster),
                ]),
                BoolExpr::and([BoolExpr::var(hready).not(), BoolExpr::var(hmaster)]),
            ]),
            false,
        );
        for name in ["hgrant1", "hgrant2", "hmaster"] {
            let id = b.table().intern(name);
            b.mark_output(id);
        }
        b.finish().expect("arbiter is a valid netlist")
    };

    // ---- Master and slave properties (29) ---------------------------------
    let mut props: Vec<(String, Ltl)> = Vec::new();
    {
        let mut p = |name: &str, src: &str, props: &mut Vec<(String, Ltl)>| {
            props.push((
                name.to_owned(),
                Ltl::parse(src, &mut table).expect("static property parses"),
            ));
        };
        for i in 1..=2u32 {
            // Masters: 8 properties each.
            p(&format!("M{i}_START"),
              &format!("G(hgrant{i} & hready & hbusreq{i} -> X htrans{i})"), &mut props);
            p(&format!("M{i}_NOGRANT"),
              &format!("G(!hgrant{i} -> X !htrans{i})"), &mut props);
            p(&format!("M{i}_HOLD"),
              &format!("G(htrans{i} & !hready & hgrant{i} -> X htrans{i})"), &mut props);
            p(&format!("M{i}_REQHOLD"),
              &format!("G(hbusreq{i} & !hgrant{i} -> X hbusreq{i})"), &mut props);
            p(&format!("M{i}_DONE"),
              &format!("G(htrans{i} & hready & !hbusreq{i} -> X !htrans{i})"), &mut props);
            p(&format!("M{i}_NOREQ"),
              &format!("G(!hbusreq{i} & !htrans{i} -> X !htrans{i})"), &mut props);
            p(&format!("M{i}_INIT"),
              &format!("!htrans{i} & !hbusreq{i}"), &mut props);
            p(&format!("M{i}_CONT"),
              &format!("G(htrans{i} & hready & hbusreq{i} & hgrant{i} -> X htrans{i})"), &mut props);
        }
        // Slave: 6 properties.
        p("S_IDLE_READY", "G(!htrans1 & !htrans2 -> X hready)", &mut props);
        p("S_FAIR", "G F hready", &mut props);
        p("S_COMPLETE", "G(htrans1 | htrans2 -> F hready)", &mut props);
        p("S_INIT", "hready", &mut props);
        p("S_LIVE", "G(!hready -> F hready)", &mut props);
        p("S_WAIT2", "G(!hready & X !hready -> X X hready)", &mut props);
        // Protocol-level: 7 properties.
        p("P_TRANS_MUTEX", "G !(htrans1 & htrans2)", &mut props);
        p("P_OWN1", "G(X htrans1 -> hgrant1)", &mut props);
        p("P_OWN2", "G(X htrans2 -> hgrant2)", &mut props);
        p("P_INIT", "!htrans1 & !htrans2", &mut props);
        p("P_GRANT_MUTEX", "G !(hgrant1 & hgrant2)", &mut props);
        p("P_SERVE1", "G(hbusreq1 -> F htrans1)", &mut props);
        p("P_SERVE2", "G(hbusreq2 & !hbusreq1 -> F htrans2)", &mut props);
    }
    assert_eq!(props.len(), 29, "Table 1 row must carry 29 RTL properties");

    let a = Ltl::parse(
        "G(!htrans1 & !htrans2 & hbusreq1 -> X(!htrans2 U htrans1))",
        &mut table,
    )
    .expect("A parses");

    Design {
        name: "amba-ahb",
        arch: ArchSpec::new([("A", a)]),
        rtl: RtlSpec::new(
            props.iter().map(|(n, f)| (n.as_str(), f.clone())),
            [arbiter],
        ),
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_core::CoverageModel;

    #[test]
    fn property_count_matches_table1() {
        let d = ahb29();
        assert_eq!(d.rtl.num_properties(), 29);
    }

    #[test]
    fn model_builds_within_limits() {
        // Force the explicit build to inspect the Kripke structure
        // directly (Auto also resolves explicit since the automaton
        // reduction pipeline moved the product-width crossover).
        let d = ahb29();
        let model =
            CoverageModel::build_with_backend(&d.arch, &d.rtl, &d.table, dic_core::Backend::Explicit)
                .expect("builds");
        // The cone-of-influence reduction drops `hmaster` (no property
        // mentions it), leaving the two grant registers; 5 free signals.
        assert_eq!(model.kripke().state_vars().len(), 2);
        assert_eq!(model.kripke().input_vars().len(), 5);
    }

    #[test]
    fn spec_is_consistent() {
        // The 29 properties must admit at least one run of the model —
        // otherwise coverage would hold vacuously. (Forced explicit: the
        // consistency check drives the explicit product directly.)
        let d = ahb29();
        let model =
            CoverageModel::build_with_backend(&d.arch, &d.rtl, &d.table, dic_core::Backend::Explicit)
                .expect("builds");
        let w = dic_automata::satisfiable_in_conj(d.rtl.formulas(), model.kripke());
        assert!(w.is_some(), "the AHB property suite is contradictory");
    }

    #[test]
    fn priority_property_has_gap() {
        let d = ahb29();
        let model = CoverageModel::build(&d.arch, &d.rtl, &d.table).expect("builds");
        let fa = d.arch.properties()[0].formula();
        let witness = dic_core::primary_coverage(fa, &d.rtl, &model).expect("within limits");
        assert!(
            witness.is_some(),
            "the in-flight grant race must open a coverage gap"
        );
        let w = witness.expect("checked");
        assert!(!fa.holds_on(&w));
        for p in d.rtl.properties() {
            assert!(p.formula().holds_on(&w), "witness violates {}", p.name());
        }
    }
}
