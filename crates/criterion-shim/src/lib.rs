//! Offline stand-in for the subset of the
//! [criterion](https://docs.rs/criterion) API this workspace's benches use.
//!
//! The build container has no crates.io access, so the bench targets link
//! this shim (its lib target is named `criterion`). It keeps criterion's
//! surface — `Criterion`, benchmark groups, `criterion_group!` /
//! `criterion_main!` — but replaces the statistics engine with a plain
//! median-of-samples wall-clock measurement:
//!
//! * each `Bencher::iter` sample times one batch of iterations with
//!   `Instant`, sized so a sample takes ≥ ~5 ms;
//! * `sample_size(n)` controls the number of samples (default 10);
//! * results go to stdout as `group/name  median  (min .. max)`.
//!
//! Good enough to detect order-of-magnitude regressions and to keep
//! `cargo bench` runnable offline; swap the `criterion-shim` workspace
//! dependency for the real crate when network access exists.

use std::time::{Duration, Instant};

/// Benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group; measurements print as `name/<bench-id>`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Measures a standalone function (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().full_name(None), sample_size, f);
        self
    }
}

/// A named collection of related measurements.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Criterion-compat no-op: the shim sizes batches automatically.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measures `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &id.into().full_name(Some(&self.name)),
            self.sample_size,
            f,
        );
        self
    }

    /// Measures `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &id.into().full_name(Some(&self.name)),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (prints a blank separator line).
    pub fn finish(self) {
        println!();
    }
}

/// Identifies one measurement: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A parameterized id, printed as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id from a bare function name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
            parameter: None,
        }
    }

    fn full_name(&self, group: Option<&str>) -> String {
        let mut s = String::new();
        if let Some(g) = group {
            s.push_str(g);
            s.push('/');
        }
        s.push_str(&self.name);
        if let Some(p) = &self.parameter {
            s.push('/');
            s.push_str(p);
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    batch: u64,
    sample: Duration,
}

impl Bencher {
    /// Times `batch` calls of `f`, recording the total in `sample`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(f());
        }
        self.sample = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: run single iterations until the payload's scale is known,
    // then size batches so one sample costs ≥ ~5 ms (or 1 call if slower).
    let mut b = Bencher {
        batch: 1,
        sample: Duration::ZERO,
    };
    f(&mut b);
    let per_call = b.sample.max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let batch = (target.as_nanos() / per_call.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            batch,
            sample: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.sample / batch as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!(
        "{name:<48} {:>12}  ({} .. {}, n={sample_size}x{batch})",
        format_duration(median),
        format_duration(samples[0]),
        format_duration(*samples.last().expect("nonempty")),
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Expands to a function running each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
