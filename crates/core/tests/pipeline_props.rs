//! End-to-end property tests for the coverage pipeline on *random* specs:
//! whatever the inputs, the reported verdicts and gap properties must obey
//! the paper's definitions.

use dic_core::{closes_gap, ArchSpec, CoverageModel, GapConfig, RtlSpec, SpecMatcher};
use dic_logic::{BoolExpr, SignalTable};
use dic_ltl::Ltl;
use dic_netlist::{Module, ModuleBuilder};
use proptest::prelude::*;

/// Deterministic xorshift for structure generation.
fn xs(mut s: u64) -> impl FnMut() -> u64 {
    move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A small random glue module over `req`, `en`, driving `q` (and maybe a
/// wire `w`), plus a random arch property and a random RTL property chosen
/// from shapes that sometimes cover and sometimes gap.
fn random_problem(seed: u64) -> (SignalTable, ArchSpec, RtlSpec) {
    let mut rng = xs(seed | 1);
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("glue", &mut t);
    let a_in = b.input("a");
    let en = b.input("en");
    let q = match rng() % 3 {
        0 => b.latch_from("q", a_in, false),
        1 => b.latch(
            "q",
            BoolExpr::and([BoolExpr::var(a_in), BoolExpr::var(en)]),
            false,
        ),
        _ => b.latch(
            "q",
            BoolExpr::or([BoolExpr::var(a_in), BoolExpr::var(en)]),
            rng().is_multiple_of(2),
        ),
    };
    b.mark_output(q);
    let m: Module = b.finish().expect("generated module is valid");

    let arch_src = match rng() % 3 {
        0 => "G(req -> X X q)",
        1 => "G(req & en -> X X q)",
        _ => "G(req -> X X (q | !en))",
    };
    let rtl_src = match rng() % 4 {
        0 => "G(req -> X a)",
        1 => "G(req & en -> X a)",
        2 => "G(req -> X (a & en))",
        _ => "G(!req -> X !a)",
    };
    let arch = ArchSpec::new([("A", Ltl::parse(arch_src, &mut t).expect("parses"))]);
    let rtl = RtlSpec::new(
        [("R", Ltl::parse(rtl_src, &mut t).expect("parses"))],
        [m],
    );
    (t, arch, rtl)
}

fn small_config() -> GapConfig {
    GapConfig {
        term_depth: 2,
        max_terms: 3,
        max_candidates: 24,
        ..GapConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fundamental contract: gap properties are (a) weaker than the
    /// architectural property and (b) close the gap; witnesses really
    /// refute coverage; covered properties produce neither.
    #[test]
    fn pipeline_invariants(seed in 1u64..10_000) {
        let (t, arch, rtl) = random_problem(seed);
        let matcher = SpecMatcher::new(small_config());
        let run = matcher.check(&arch, &rtl, &t).expect("runs");
        let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        for rep in &run.properties {
            if rep.covered {
                prop_assert!(rep.witness.is_none());
                prop_assert!(rep.gap_properties.is_empty());
                prop_assert!(rep.uncovered_terms.is_empty());
            } else {
                // Witness refutes A while satisfying every R property.
                let w = rep.witness.as_ref().expect("uncovered needs witness");
                prop_assert!(!rep.formula.holds_on(w));
                for p in rtl.properties() {
                    prop_assert!(p.formula().holds_on(w));
                }
                for g in &rep.gap_properties {
                    prop_assert!(
                        dic_automata::implies(&rep.formula, &g.formula),
                        "gap property must be weaker than A"
                    );
                    prop_assert!(
                        closes_gap(&g.formula, &rep.formula, &rtl, &model).expect("runs"),
                        "gap property must close the gap"
                    );
                    // The per-property demonstrating run is a genuine bad run.
                    prop_assert!(!rep.formula.holds_on(&g.witness));
                }
            }
        }
    }

    /// Theorem 2's exact hole always closes the gap, covered or not.
    #[test]
    fn exact_hole_always_closes(seed in 1u64..10_000) {
        let (t, arch, rtl) = random_problem(seed);
        let matcher = SpecMatcher::new(small_config());
        let run = matcher.check(&arch, &rtl, &t).expect("runs");
        let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        for rep in &run.properties {
            prop_assert!(
                closes_gap(&rep.exact_hole, &rep.formula, &rtl, &model).expect("runs"),
                "Theorem 2 hole failed to close for {}",
                rep.formula.display(&t)
            );
        }
    }

    /// The primary verdict agrees between the pipeline and a direct
    /// Theorem 1 check.
    #[test]
    fn verdict_matches_direct_theorem1(seed in 1u64..10_000) {
        let (t, arch, rtl) = random_problem(seed);
        let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        let run = SpecMatcher::new(small_config())
            .check(&arch, &rtl, &t)
            .expect("runs");
        for (rep, p) in run.properties.iter().zip(arch.properties()) {
            let direct =
                dic_core::primary_coverage(p.formula(), &rtl, &model).expect("within limits");
            prop_assert_eq!(rep.covered, direct.is_none());
        }
    }
}
