//! **SpecMatcher core** — design intent coverage with RTL blocks.
//!
//! This crate implements the contribution of *"What lies between Design
//! Intent Coverage and Model Checking?"* (Das, Basu, Dasgupta, Chakrabarti —
//! DATE 2006): given
//!
//! * an **architectural intent** `A` — properties over a module's interface
//!   that the FPV tool cannot check directly ([`ArchSpec`]),
//! * an **RTL specification** — properties `R` over some submodules plus
//!   the actual RTL of the remaining *concrete modules* ([`RtlSpec`]),
//!
//! decide whether the RTL specification **covers** the intent, and when it
//! does not, present the **coverage gap** as properties a designer can read
//! next to the originals:
//!
//! 1. [`primary_coverage`] — Theorem 1: the spec covers the intent iff
//!    `¬A ∧ R` is false in the composition `M` of the concrete modules.
//! 2. [`tm::relational_tm`] / [`tm::enumerated_tm`] — Definition 4: the LTL
//!    formula `T_M` representing exactly the runs of an RTL block.
//! 3. [`exact_hole`] — Theorem 2: the unique weakest property
//!    `RH = A ∨ ¬(R ∧ T_M)` closing the gap.
//! 4. [`uncovered_terms`], [`find_gap`] — Algorithm 1: bounded uncovered
//!    terms, universal quantification to the observable alphabet, pushing
//!    into the parse tree and polarity-aware weakening, yielding
//!    structure-preserving gap properties (the paper's `U`).
//! 5. [`SpecMatcher`] — the end-to-end pipeline with the per-phase timing
//!    breakdown reported in the paper's Table 1.
//!
//! # Quickstart
//!
//! ```
//! use dic_logic::SignalTable;
//! use dic_ltl::Ltl;
//! use dic_netlist::parse_snl;
//! use dic_core::{ArchSpec, GapConfig, RtlSpec, SpecMatcher};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut t = SignalTable::new();
//! // A concrete glue block: q follows a one cycle later.
//! let m = parse_snl(
//!     "module glue\n input a\n output q\n latch q = a init 0\nendmodule\n",
//!     &mut t,
//! )?.remove(0);
//!
//! // Architectural intent: whenever req, q two cycles later.
//! let arch = ArchSpec::new([("A1", Ltl::parse("G(req -> X X q)", &mut t)?)]);
//! // RTL property of the (unmodeled) front stage: req propagates to a.
//! let rtl = RtlSpec::new(
//!     [("R1", Ltl::parse("G(req -> X a)", &mut t)?)],
//!     [m],
//! );
//!
//! let report = SpecMatcher::new(GapConfig::default()).check(&arch, &rtl, &t)?;
//! assert!(report.properties[0].covered);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod bmc;
pub mod error;
pub mod hole;
pub mod intent;
pub mod model;
pub mod pipeline;
pub mod report;
pub mod spec;
pub mod terms;
pub mod tm;
pub mod weaken;

pub use backend::{
    predicted_product_cost, Backend, AUTO_SYMBOLIC_BITS, AUTO_SYMBOLIC_PRODUCT_COST,
};
pub use bmc::{bmc_depth_from_env, BmcMode, MAX_BMC_DEPTH};
pub use dic_symbolic::{PartitionMode, ReorderMode, ReorderStats, SymbolicOptions};
pub use error::CoreError;
pub use hole::{closes_gap, closure_witness, exact_hole};
pub use intent::{close_gap_iteratively, uncovered_intent};
pub use model::CoverageModel;
pub use pipeline::{
    CoverageRun, JobsStats, PhaseCounters, PhaseTimings, PropertyReport, SpecMatcher,
};
pub use spec::{ArchSpec, Property, RtlSpec};
pub use terms::{uncovered_terms, uncovered_terms_with_runs};
pub use tm::TmStyle;
pub use weaken::{
    find_gap, find_gap_outcome, find_gap_with_runs, GapConfig, GapOutcome, GapProperty,
    UnknownGap,
};

/// Theorem 1 (primary coverage question): the RTL specification covers the
/// architectural property `fa` iff `¬fa ∧ R` is false in the model of the
/// concrete modules. Returns `Ok(None)` when covered, or the witness run
/// refuting coverage.
///
/// Dispatches to the backend the model was built with (explicit
/// enumeration or symbolic fair-cycle detection); the witness contract is
/// identical either way.
///
/// # Errors
///
/// [`CoreError::Symbolic`] if the symbolic backend exceeds its node budget
/// mid-analysis (the explicit backend cannot fail once built).
/// Startup audit of every `SPECMATCHER_*` override with a strict parse:
/// `SPECMATCHER_NO_REDUCE`, `SPECMATCHER_JOBS`, `SPECMATCHER_BMC_DEPTH`,
/// `SPECMATCHER_BDD_PARTITION`, `SPECMATCHER_BDD_CLUSTER_SIZE`,
/// `SPECMATCHER_TIMEOUT` and `SPECMATCHER_FAULT`.
/// Returns the first offending setting's message.
///
/// Model construction re-validates these fail-closed, but the library
/// paths that merely *read* them (`reduction_enabled()`,
/// `GapConfig::effective_jobs`, the BMC depth resolution) deliberately
/// swallow garbage and fall back to defaults — safe only because every
/// binary entry point calls this (or builds a model) before any of those
/// reads. Binaries should treat an `Err` as a usage error (exit 2).
///
/// # Errors
///
/// The offending variable's message, naming the variable and the
/// expected form.
pub fn validate_env() -> Result<(), String> {
    dic_automata::reduction_from_env()?;
    backend::jobs_from_env()?;
    bmc::bmc_depth_from_env()?;
    dic_symbolic::partition_from_env().map_err(|e| e.to_string())?;
    dic_symbolic::cluster_size_from_env().map_err(|e| e.to_string())?;
    dic_fault::timeout_from_env()?;
    dic_fault::fault_from_env()?;
    Ok(())
}

pub fn primary_coverage(
    fa: &dic_ltl::Ltl,
    rtl: &RtlSpec,
    model: &CoverageModel,
) -> Result<Option<dic_ltl::LassoWord>, CoreError> {
    model.primary_query_anchored(rtl.formulas(), &dic_ltl::Ltl::not(fa.clone()))
}
