//! Uncovered architectural intent (Definition 5) and iterative closure.
//!
//! Definition 5 asks for the weakest property **over `AP_A`** that closes
//! the coverage hole — unlike the gap properties of [`find_gap`], which may
//! mention any observable signal (like `hit` in the paper's `U`). The
//! architectural projection tells the designer *which part of the intent
//! itself* is not yet enforced, in the intent's own vocabulary.
//!
//! This module also provides [`close_gap_iteratively`], the natural
//! extension the paper's "weakest **set** of temporal properties" language
//! suggests: when no single-instance weakening closes the gap, compose
//! several (each step strengthens one variable instance), until the gap is
//! closed or the budget runs out.

use crate::error::CoreError;
use crate::hole::closes_gap;
use crate::model::CoverageModel;
use crate::spec::{ArchSpec, RtlSpec};
use crate::terms::uncovered_terms;
use crate::weaken::{find_gap, GapConfig, GapProperty};
use dic_ltl::cube::exists_eliminate;
use dic_ltl::{Ltl, TemporalCube};
use std::collections::BTreeSet;

/// Definition 5: the weakest property over `AP_A` (the architectural
/// alphabet) closing the hole of `fa`, among the structure-preserving
/// candidates. Returns `Ok(None)` when the property is covered or no
/// candidate over `AP_A` closes the gap (the gap then genuinely needs
/// non-`AP_A` conditions, as in the paper's Example 2 where `hit` is
/// indispensable).
///
/// The candidate class ranges over the whole observable alphabet (see
/// [`find_gap`]) and the `AP_A` restriction is applied to the *verified*
/// candidates, so on designs with many observables the closing budget
/// can be consumed before an `AP_A` candidate is reached — raise
/// [`GapConfig::max_gap_properties`]/[`GapConfig::max_candidates`] when
/// Definition 5 matters more than wall-clock.
///
/// # Errors
///
/// Backend resolution and symbolic-engine failures; see
/// [`CoverageModel::gap_backend`].
pub fn uncovered_intent(
    fa: &Ltl,
    arch: &ArchSpec,
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Result<Option<GapProperty>, CoreError> {
    let terms = uncovered_terms(fa, rtl, model, config)?;
    if terms.is_empty() {
        return Ok(None);
    }
    // Project the terms onto AP_A, then run the same push/weaken pipeline
    // restricted to the architectural alphabet. The projection is
    // *existential*: the universal projection collapses to `false` whenever
    // a non-architectural literal is essential to the scenario (almost
    // always — the model's internal wiring is), while the existential
    // shadow keeps the AP_A-visible part. Soundness is unaffected: every
    // candidate is verified to close the gap by model checking.
    let ap_a = arch.alphabet();
    let all_signals: BTreeSet<_> = terms
        .iter()
        .flat_map(TemporalCube::signals)
        .collect();
    let hidden: BTreeSet<_> = all_signals.difference(&ap_a).copied().collect();
    let projected = if hidden.is_empty() {
        terms
    } else {
        exists_eliminate(&terms, &hidden)
    };
    if projected.is_empty() {
        return Ok(None);
    }
    Ok(find_gap(fa, &projected, rtl, model, config)?
        .into_iter()
        .find(|g| g.formula.atoms().is_subset(&ap_a)))
}

/// Iteratively composes single-instance weakenings until the gap closes.
///
/// Round `k` runs Algorithm 1 on the *current* candidate (initially `fa`
/// itself): any closing weakening of the current candidate that also
/// closes the **original** gap is returned; otherwise the weakest
/// candidate becomes the next round's start, accumulating one weakened
/// variable instance per round — the "weakest *set* of temporal
/// properties" reading of the paper, folded into one formula.
///
/// Returns `(property, rounds)` — `(true, 0)` when the intent was already
/// covered (nothing needs to be added) — or `Ok(None)` when `max_rounds`
/// is exhausted. The result is always verified to close the original gap.
///
/// # Errors
///
/// Backend resolution and symbolic-engine failures; see
/// [`CoverageModel::gap_backend`].
pub fn close_gap_iteratively(
    fa: &Ltl,
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
    max_rounds: usize,
) -> Result<Option<(Ltl, usize)>, CoreError> {
    if model
        .primary_query_anchored(rtl.formulas(), &Ltl::not(fa.clone()))?
        .is_none()
    {
        // Covered: the empty addition suffices.
        return Ok(Some((Ltl::tt(), 0)));
    }
    let mut current = fa.clone();
    for round in 1..=max_rounds {
        let terms = uncovered_terms(&current, rtl, model, config)?;
        if terms.is_empty() {
            // No scenario found although the gap is open: give up.
            return Ok(None);
        }
        let gaps = find_gap(&current, &terms, rtl, model, config)?;
        let mut best_closing = None;
        for g in &gaps {
            if closes_gap(&g.formula, fa, rtl, model)? {
                best_closing = Some(g);
                break;
            }
        }
        if let Some(best) = best_closing {
            // Closes the gap of `current` *and* of the original intent.
            return Ok(Some((best.formula.clone(), round)));
        }
        if let Some(best) = gaps.first() {
            current = best.formula.clone();
            continue;
        }
        // No closing candidate this round: weaken by the first candidate
        // that at least changes the formula, to make progress.
        let occurrences = current.atom_occurrences();
        let Some((occ, (t, lit))) = occurrences.iter().find_map(|occ| {
            terms
                .iter()
                .flat_map(|c| c.lits())
                .find(|(t, l)| *t >= occ.x_depth && l.signal() != atom_of(occ))
                .map(|&tl| (occ, tl))
        }) else {
            return Ok(None);
        };
        let lit_f = Ltl::next_n(Ltl::literal(lit.signal(), lit.polarity()), t - occ.x_depth);
        let replacement = match occ.polarity {
            dic_ltl::Polarity::Negative => Ltl::and([occ.subformula.clone(), lit_f]),
            dic_ltl::Polarity::Positive => Ltl::or([occ.subformula.clone(), lit_f]),
        };
        current = current
            .replace_at(&occ.position, replacement)
            .unwrap_or(current);
    }
    Ok(None)
}

fn atom_of(occ: &dic_ltl::position::Occurrence) -> dic_logic::SignalId {
    match occ.subformula.node() {
        dic_ltl::LtlNode::Atom(s) => *s,
        _ => unreachable!("atom_occurrences returns atoms"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    /// Gap fixture where the missing condition (en) is *architectural*:
    /// A mentions en itself, so Definition 5 has a non-trivial answer.
    fn arch_gap() -> (SignalTable, ArchSpec, RtlSpec, CoverageModel) {
        let mut t = SignalTable::new();
        // Intent over req, en, q — en ∈ AP_A.
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let helper = Ltl::parse("G(en & req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        b.input("en");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        // Put en into AP_A via a second (trivially covered) intent property.
        let a2 = Ltl::parse("G(q & en -> F q)", &mut t).unwrap();
        let arch = ArchSpec::new([("A1", a_prop), ("A2", a2)]);
        let rtl = RtlSpec::new([("R1", helper)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        (t, arch, rtl, model)
    }

    #[test]
    fn definition5_projects_to_arch_alphabet() {
        let (t, arch, rtl, model) = arch_gap();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let intent = uncovered_intent(fa, &arch, &rtl, &model, &config).expect("runs");
        let Some(g) = intent else {
            panic!("expected an uncovered-intent property over AP_A");
        };
        assert!(
            g.formula.atoms().is_subset(&arch.alphabet()),
            "Def 5 result must stay in AP_A: {}",
            g.formula.display(&t)
        );
        assert!(closes_gap(&g.formula, fa, &rtl, &model).expect("runs"));
    }

    #[test]
    fn covered_property_has_no_uncovered_intent() {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let fa = arch.properties()[0].formula();
        assert!(uncovered_intent(fa, &arch, &rtl, &model, &GapConfig::default())
            .expect("runs")
            .is_none());
    }

    #[test]
    fn iterative_closure_converges_on_single_literal_gap() {
        let (_t, arch, rtl, model) = arch_gap();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let result = close_gap_iteratively(fa, &rtl, &model, &config, 3).expect("runs");
        let Some((formula, rounds)) = result else {
            panic!("iterative closure must succeed on the en gap");
        };
        assert!((1..=2).contains(&rounds), "genuine gap needs ≥1 round");
        assert_ne!(&formula, fa, "must return a weakening, not fa itself");
        assert!(closes_gap(&formula, fa, &rtl, &model).expect("runs"));
    }

    #[test]
    fn iterative_closure_zero_rounds_when_covered() {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let fa = arch.properties()[0].formula();
        let (formula, rounds) =
            close_gap_iteratively(fa, &rtl, &model, &GapConfig::default(), 3)
                .expect("runs")
                .expect("covered: closes immediately");
        assert_eq!(rounds, 0);
        assert_eq!(formula, Ltl::tt(), "covered intent needs no addition");
    }
}
