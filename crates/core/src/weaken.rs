//! Structure-preserving gap representation: steps 2(c)/2(d) of Algorithm 1.
//!
//! The uncovered terms are *pushed* against the parse tree of the
//! architectural property: every atomic variable instance of `FA` (with its
//! `X`-depth and polarity) is paired with term literals at compatible time
//! offsets, producing weakened variants of `FA`:
//!
//! * a **negative** occurrence `v` (antecedent side) becomes `v ∧ X^k ℓ` —
//!   strengthening the antecedent restricts the property to the uncovered
//!   scenarios, weakening the property overall (the paper's Example 4:
//!   `r2` becomes `r2 ∧ X ¬hit`);
//! * a **positive** occurrence `v` (consequent side) becomes `v ∨ X^k ℓ`.
//!
//! Every candidate is weaker than `FA` by construction; candidates are kept
//! only if they *close the gap* (Definition 3, model-checked through the
//! gap backend), and the survivors are reduced to the weakest ones under
//! the strength order of Definition 2.
//!
//! Closure checks are the expensive half of Algorithm 1, and two levers
//! keep their count down:
//!
//! * the bad-run pool is **seeded** with the runs term enumeration already
//!   produced ([`find_gap_with_runs`]), so most non-closing candidates are
//!   rejected by a word evaluation before any model check;
//! * on the symbolic backend, every check reuses one cached design product
//!   (`R ∧ ¬FA`) and re-encodes only the small candidate automaton.

use crate::backend::Backend;
use crate::error::CoreError;
use crate::model::CoverageModel;
use crate::spec::RtlSpec;
use dic_logic::{Lit, SignalTable};
use dic_ltl::{LassoWord, Ltl, LtlNode, Polarity, Position, TemporalCube};
use std::collections::BTreeSet;

/// Tuning knobs for the gap-finding pipeline (Algorithm 1).
#[derive(Clone, Debug)]
pub struct GapConfig {
    /// Depth (in cycles) of uncovered terms.
    pub term_depth: usize,
    /// Maximum number of counterexample scenarios to enumerate.
    pub max_terms: usize,
    /// Whether to generalize terms by literal dropping.
    pub generalize: bool,
    /// Whether to quantify hidden signals out of the terms (step 2(b)).
    pub quantify: bool,
    /// Maximum number of weakening candidates to verify.
    pub max_candidates: usize,
    /// Largest `X` offset allowed between a variable instance and an
    /// augmented literal.
    pub max_offset: usize,
    /// Stop verifying candidates once this many closing gap properties
    /// have been found (gap-closure checks of *closing* candidates explore
    /// the whole product and dominate the runtime on wide models).
    pub max_gap_properties: usize,
    /// Skip the structured-weakening phase entirely when a variable
    /// instance of the intent sits deeper than this many `X` operators.
    /// A candidate for a deep intent pairs an `X`-obligation chain of
    /// that length with the design registers, which blows up the closure
    /// product on *either* engine (the `chain-<n>-gap` family past
    /// roughly a dozen stages) — such intents report their uncovered
    /// terms and Theorem 2's exact hole instead. The bound is a property
    /// of the formula alone, so both backends skip identically.
    pub max_intent_depth: usize,
    /// The engine the gap phase runs on. [`Backend::Auto`] (the default)
    /// follows the model's per-phase resolution: explicit below the
    /// state-bit crossover, symbolic above it or whenever the model has no
    /// explicit structure. See [`CoverageModel::gap_backend`].
    pub backend: Backend,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            term_depth: 3,
            max_terms: 6,
            generalize: true,
            quantify: true,
            max_candidates: 128,
            max_offset: 2,
            max_gap_properties: 24,
            max_intent_depth: 8,
            backend: Backend::Auto,
        }
    }
}

/// A structure-preserving gap property produced by [`find_gap`].
#[derive(Clone, Debug)]
pub struct GapProperty {
    /// The weakened architectural property that closes the gap.
    pub formula: Ltl,
    /// Position of the weakened variable instance in `FA`'s parse tree.
    pub position: Position,
    /// The literal pushed into that position.
    pub literal: Lit,
    /// `X` offset of the literal relative to the variable instance.
    pub offset: usize,
    /// The uncovered term exhibiting this weakening's literal at its
    /// position, when the enumeration found one (the empty cube
    /// otherwise — the candidate class ranges over the whole observable
    /// alphabet, not only the literals the enumerated terms mention).
    pub term: TemporalCube,
    /// A run of `M ⊨ R ∧ ¬FA` demonstrating the uncovered scenario this
    /// property addresses (matching [`GapProperty::term`] where the term
    /// is realizable as stated). Like every counterexample either engine
    /// reports, it replays on the netlist simulator.
    pub witness: LassoWord,
}

impl GapProperty {
    /// Human-readable rendering (the motivating term and demonstrating run
    /// stay in [`GapProperty::term`]/[`GapProperty::witness`] and the JSON
    /// report; inlining a full term here would drown the formula).
    pub fn describe(&self, table: &SignalTable) -> String {
        format!(
            "{}   [instance at {}, augmented with X^{} {}]",
            self.formula.display(table),
            self.position,
            self.offset,
            self.literal.display(table),
        )
    }
}

/// One weakening candidate before verification.
#[derive(Clone, Debug)]
struct Candidate {
    position: Position,
    literal: Lit,
    offset: usize,
    /// `X`-depth of the weakened instance inside `fa`.
    x_depth: usize,
    /// The first term whose literal produced this candidate.
    term: TemporalCube,
}

/// Steps 2(c) + 2(d): pushes the uncovered terms into `fa`'s parse tree,
/// generates polarity-aware weakenings, verifies gap closure, and returns
/// the weakest closing candidates (weakest first; empty when no structured
/// candidate closes the gap — callers then fall back to Theorem 2's
/// [`exact_hole`](crate::exact_hole)).
///
/// Candidate verification dispatches through the gap backend
/// ([`GapConfig::backend`]); both engines answer it on one memoized base
/// product per property.
///
/// # Errors
///
/// Backend resolution and symbolic-engine failures; see
/// [`CoverageModel::gap_backend`].
pub fn find_gap(
    fa: &Ltl,
    terms: &[TemporalCube],
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Result<Vec<GapProperty>, CoreError> {
    find_gap_with_runs(fa, terms, &[], rtl, model, config)
}

/// Like [`find_gap`], additionally seeding the bad-run pool with known
/// counterexample runs (the ones
/// [`uncovered_terms_with_runs`](crate::terms::uncovered_terms_with_runs)
/// enumerated). Every seeded run rejects — by a word evaluation — each
/// candidate that still holds on it, so the expensive closure model checks
/// are reached almost exclusively by candidates that actually close the
/// gap, and the `max_gap_properties` budget is hit with far fewer full
/// fixpoints.
///
/// # Errors
///
/// As for [`find_gap`].
pub fn find_gap_with_runs(
    fa: &Ltl,
    terms: &[TemporalCube],
    seed_runs: &[LassoWord],
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Result<Vec<GapProperty>, CoreError> {
    let backend = model.gap_backend(config.backend)?;
    if terms.is_empty() {
        // No uncovered scenario was found (covered property, or the
        // enumeration budget produced nothing): there is no gap for the
        // candidate class to close.
        return Ok(Vec::new());
    }
    let occurrences = fa.atom_occurrences();
    if occurrences.iter().any(|o| o.x_depth > config.max_intent_depth) {
        // Deep-X intent: every closure product pairs an obligation chain
        // of that depth with the design registers — a cliff for either
        // engine. Report the exact hole instead (see
        // [`GapConfig::max_intent_depth`]).
        return Ok(Vec::new());
    }
    let candidates = push_candidates(fa, terms, model.observable(), config);
    let base: Vec<Ltl> = rtl
        .formulas()
        .iter()
        .cloned()
        .chain([Ltl::not(fa.clone())])
        .collect();
    // Pool of known *bad* runs — runs of `M` satisfying `R ∧ ¬fa`. Term
    // enumeration seeds it; every failed closure check contributes one
    // more. A candidate that holds on any pooled run cannot close the gap
    // (the run would still slip through), so it is rejected by a word
    // evaluation instead of a model check.
    let mut bad_runs: Vec<LassoWord> = seed_runs.to_vec();
    // Deterministic sample words over the property atoms and the whole
    // candidate-literal universe, used to refute subsumption by earlier
    // closing candidates cheaply.
    let screen_words = {
        let mut signals: BTreeSet<dic_logic::SignalId> = fa.atoms();
        signals.extend(model.observable().iter().copied());
        random_words(&signals)
    };
    // Directed refutation probes already answered, per probed (time,
    // literal) pair — unsatisfiable probes would otherwise repeat across
    // candidates sharing a literal.
    let mut probed: BTreeSet<(usize, Lit)> = BTreeSet::new();
    let mut closing: Vec<Candidate> = Vec::new();
    let mut formulas: Vec<Ltl> = Vec::new();
    // Verification is strictly sequential in the canonical candidate
    // order. This is a *determinism requirement*, not just simplicity:
    // the closing-budget slots and the subsumption screen below must
    // depend only on closure verdicts (semantic, backend-independent) —
    // never on which particular counterexample runs a backend's pool
    // happens to hold. (A batched variant was measured to be a
    // performance wash anyway: the union automaton's size multiplies the
    // per-check cost by what the batching divides.)
    'candidates: for cand in candidates.into_iter().take(config.max_candidates) {
        if closing.len() >= config.max_gap_properties {
            break;
        }
        let Some(weakened) = apply(fa, &cand) else {
            continue;
        };
        if weakened == *fa {
            continue; // smart constructors absorbed the change
        }
        for run in &bad_runs {
            if weakened.holds_on(run) {
                continue 'candidates; // a known bad run slips through
            }
        }
        // Subsumption by an already-confirmed closing candidate: if
        // `weakened ⇒ g` for a known closing `g`, every run the candidate
        // admits is admitted by `g`, so the candidate closes too — and
        // [`weakest_only`] would drop it as (at best) equivalent to the
        // earlier `g`. Confirming closure by formula implication replaces
        // a whole-product fixpoint per redundant candidate; a sample-word
        // screen keeps the automata implication checks off the hot path.
        for g in &formulas {
            let refuted = screen_words
                .iter()
                .any(|w| weakened.holds_on(w) && !g.holds_on(w));
            if !refuted && dic_automata::implies(&weakened, g) {
                continue 'candidates;
            }
        }
        // Directed cheap refutation before the full closure fixpoint: a
        // bad run exhibiting the *negated* augmentation at the candidate's
        // position usually satisfies the weakened property outright (the
        // strengthened antecedent never fires / the weakened consequent is
        // not exercised), and any bad run satisfying the candidate refutes
        // closure by word evaluation alone. The probe is one bounded-cube
        // query against the memoized `R ∧ ¬fa` base product; when the run
        // it finds does not settle the candidate, the full check below
        // still decides it — the probe is an early exit, never an oracle.
        let probe_at = (cand.x_depth + cand.offset, cand.literal.negated());
        if probed.insert(probe_at) {
            let probe = TemporalCube::from_lits([probe_at]).expect("single literal");
            if let Some(run) = model.gap_scenario_query(backend, &base, None, &probe)? {
                bad_runs.push(run);
                let run = bad_runs.last().expect("just pushed");
                if weakened.holds_on(run) {
                    continue 'candidates;
                }
            }
        }
        match model.gap_query(backend, &base, std::slice::from_ref(&weakened))? {
            Some(run) => bad_runs.push(run),
            None => {
                closing.push(cand);
                formulas.push(weakened);
            }
        }
    }
    // Attach the demonstrating run per surviving candidate: a run matching
    // the motivating term where one exists (quantified terms are not
    // always realizable verbatim), otherwise a seeded/known bad run.
    // Candidates sharing a motivating term share the run (one query per
    // distinct term).
    let mut term_runs: std::collections::BTreeMap<TemporalCube, Option<LassoWord>> =
        std::collections::BTreeMap::new();
    let mut props = Vec::with_capacity(closing.len());
    for (cand, formula) in closing.into_iter().zip(formulas) {
        let queried = match term_runs.get(&cand.term) {
            Some(w) => w.clone(),
            None => {
                let w = model.gap_scenario_query(backend, &base, None, &cand.term)?;
                term_runs.insert(cand.term.clone(), w.clone());
                w
            }
        };
        let witness = match queried {
            Some(w) => w,
            None => match bad_runs.iter().find(|r| cand.term.holds_on(r, 0)) {
                Some(r) => r.clone(),
                None => match bad_runs.first().cloned() {
                    Some(r) => r,
                    // The pool can be empty on the unseeded path; any bad
                    // run demonstrates the gap the candidate closes.
                    None => match model.gap_scenario_query(
                        backend,
                        &base,
                        None,
                        &TemporalCube::top(),
                    )? {
                        Some(r) => r,
                        // Genuinely no bad run: `R ∧ ¬fa` is unsatisfiable
                        // (the property is covered), so there is no gap to
                        // represent.
                        None => continue,
                    },
                },
            },
        };
        props.push(GapProperty {
            formula,
            position: cand.position,
            literal: cand.literal,
            offset: cand.offset,
            term: cand.term,
            witness,
        });
    }
    Ok(weakest_only(props))
}

/// Step 2(c): pair the variable instances of `fa` with augmentation
/// literals over the *observable alphabet* — the candidate class of
/// Definitions 2/3, enumerated canonically.
///
/// After step 2(b)'s quantification, every term literal `(t, ℓ)` matching
/// an instance at `X`-depth `d` (`t ≥ d`, `t − d ≤ max_offset`) lies in
/// exactly this class, so the terms *prune nothing*: they attribute.
/// Enumerating the whole class — rather than only the literals the
/// enumerated terms happened to mention — makes the candidate pool (and
/// with it the reported weakest-property set) a function of the model
/// alone: two engines that agree on closure verdicts report byte-identical
/// sets, regardless of which counterexample runs their term enumeration
/// found. Candidates are ordered the way the paper's heuristics explore
/// them: instances nested deepest inside *unbounded* temporal operators
/// first (step 2(c) determines that "the gaps lie inside the unbounded
/// operator"; Fig. 6 weakens the until), antecedent (negative) positions
/// before consequent ones, small `X` offsets before large ones; the full
/// sort key (down to the pushed literal) is total, hence canonical.
fn push_candidates(
    fa: &Ltl,
    terms: &[TemporalCube],
    observable: &BTreeSet<dic_logic::SignalId>,
    config: &GapConfig,
) -> Vec<Candidate> {
    let mut seen: BTreeSet<(Vec<usize>, Lit, usize)> = BTreeSet::new();
    let mut out: Vec<(usize, usize, usize, Candidate)> = Vec::new();
    let occurrences = fa.atom_occurrences();
    let max_unbounded = occurrences
        .iter()
        .map(|o| o.unbounded_depth)
        .max()
        .unwrap_or(0);
    for occ in &occurrences {
        let LtlNode::Atom(own) = occ.subformula.node() else {
            continue;
        };
        for offset in 0..=config.max_offset {
            for &s in observable {
                if s == *own && offset == 0 {
                    continue; // augmenting v with v or !v is degenerate
                }
                for l in [Lit::pos(s), Lit::neg(s)] {
                    let key = (occ.position.path().to_vec(), l, offset);
                    if !seen.insert(key) {
                        continue;
                    }
                    let unbounded_rank = max_unbounded - occ.unbounded_depth;
                    let pol_rank = match occ.polarity {
                        Polarity::Negative => 0,
                        Polarity::Positive => 1,
                    };
                    // Attribution: the first enumerated term exhibiting
                    // this literal (in either polarity) at the matching
                    // time, when one exists.
                    let t = occ.x_depth + offset;
                    let term = terms
                        .iter()
                        .find(|term| {
                            term.lits()
                                .iter()
                                .any(|&(tt, tl)| tt == t && tl.signal() == s)
                        })
                        .cloned()
                        .unwrap_or_default();
                    out.push((
                        unbounded_rank,
                        pol_rank,
                        offset,
                        Candidate {
                            position: occ.position.clone(),
                            literal: l,
                            offset,
                            x_depth: occ.x_depth,
                            term,
                        },
                    ));
                }
            }
        }
    }
    out.sort_by_key(|(ur, pol, off, c)| {
        (*ur, *pol, *off, c.position.path().to_vec(), c.literal)
    });
    out.into_iter().map(|(_, _, _, c)| c).collect()
}

/// Applies a candidate: `v ∧ X^k ℓ` at negative positions, `v ∨ X^k ℓ` at
/// positive ones.
fn apply(fa: &Ltl, cand: &Candidate) -> Option<Ltl> {
    let occ = fa.subformula_at(&cand.position)?.clone();
    // Recompute polarity from the stored occurrence list is avoided: the
    // position determines it, so re-walk the tree.
    let polarity = fa
        .atom_occurrences()
        .into_iter()
        .find(|o| o.position == cand.position)?
        .polarity;
    let lit = Ltl::next_n(
        Ltl::literal(cand.literal.signal(), cand.literal.polarity()),
        cand.offset,
    );
    let replacement = match polarity {
        Polarity::Negative => Ltl::and([occ, lit]),
        Polarity::Positive => Ltl::or([occ, lit]),
    };
    fa.replace_at(&cand.position, replacement)
}

/// Definition 2 filtering: drop any candidate strictly stronger than
/// another closing candidate; sort the rest weakest-first.
///
/// The closing candidates are mostly pairwise *incomparable*, and each
/// automata-based implication check on until-heavy formulas is expensive.
/// Every pair is therefore screened first against a fixed sample of
/// pseudo-random lasso words: a word satisfying `f` but not `g` refutes
/// `f ⇒ g` outright, and only unrefuted directions reach the automata.
fn weakest_only(mut props: Vec<GapProperty>) -> Vec<GapProperty> {
    let samples = sample_words(&props);
    let sat: Vec<Vec<bool>> = props
        .iter()
        .map(|p| samples.iter().map(|w| p.formula.holds_on(w)).collect())
        .collect();
    let implies = |i: usize, j: usize| -> bool {
        if (0..samples.len()).any(|w| sat[i][w] && !sat[j][w]) {
            return false; // refuted by a sample word
        }
        dic_automata::implies(&props[i].formula, &props[j].formula)
    };
    let mut keep = vec![true; props.len()];
    for i in 0..props.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..props.len() {
            if i == j || !keep[j] {
                continue;
            }
            // Drop i if j is strictly weaker (i ⇒ j, not j ⇒ i).
            if implies(i, j) && !implies(j, i) {
                keep[i] = false;
                break;
            }
        }
    }
    // Deduplicate equivalent formulas (keep the first of each class).
    for i in 0..props.len() {
        if !keep[i] {
            continue;
        }
        for (j, keep_j) in keep.iter_mut().enumerate().skip(i + 1) {
            if *keep_j && implies(i, j) && implies(j, i) {
                *keep_j = false;
            }
        }
    }
    props
        .drain(..)
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

/// A deterministic sample of lasso words over the atoms of `props`, used
/// to refute implications cheaply in [`weakest_only`].
fn sample_words(props: &[GapProperty]) -> Vec<LassoWord> {
    let mut signals: BTreeSet<dic_logic::SignalId> = BTreeSet::new();
    for p in props {
        signals.extend(p.formula.atoms());
    }
    random_words(&signals)
}

/// A fixed-seed pseudo-random sample of lasso words over `signals`.
fn random_words(signals: &BTreeSet<dic_logic::SignalId>) -> Vec<LassoWord> {
    let n = signals.iter().map(|s| s.index() + 1).max().unwrap_or(1);
    let signals: Vec<_> = signals.iter().copied().collect();
    let mut state = 0x9e37_79b9_7f4a_7c15u64; // fixed seed: runs are reproducible
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut words = Vec::with_capacity(64);
    for _ in 0..64 {
        let len = 4 + (next() % 8) as usize;
        let loop_start = (next() % len as u64) as usize;
        let states: Vec<dic_logic::Valuation> = (0..len)
            .map(|_| {
                let mut v = dic_logic::Valuation::all_false(n);
                let bits = next();
                for (k, &s) in signals.iter().enumerate() {
                    v.set(s, bits >> (k % 64) & 1 == 1);
                }
                v
            })
            .collect();
        words.push(LassoWord::new(states, loop_start).expect("loop_start < len"));
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hole::closes_gap;
    use crate::model::CoverageModel;
    use crate::spec::{ArchSpec, RtlSpec};
    use crate::terms::{uncovered_terms, uncovered_terms_with_runs};
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    /// The `en` gap fixture: A = G(req -> XX q), R = G(req & en -> X a),
    /// glue q <= a. The gap is exactly "req with en low".
    fn gapped() -> (SignalTable, ArchSpec, RtlSpec, CoverageModel) {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req & en -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        b.input("en");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        (t, arch, rtl, model)
    }

    #[test]
    fn finds_structure_preserving_gap() {
        let (t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config).expect("runs");
        let gaps = find_gap(fa, &terms, &rtl, &model, &config).expect("runs");
        assert!(!gaps.is_empty(), "expected a structured gap property");
        for g in &gaps {
            // Weaker than FA and closes the gap — re-verify both.
            assert!(dic_automata::implies(fa, &g.formula));
            assert!(closes_gap(&g.formula, fa, &rtl, &model).expect("runs"));
            // The demonstrating run is a genuine bad run.
            assert!(!fa.holds_on(&g.witness));
        }
        // The expected shape mirrors the paper's U: the antecedent is
        // strengthened with the *uncovered scenario* literal (en low is
        // where R says nothing), i.e. G(req & !en -> X X q).
        let expected = {
            let mut t2 = t.clone();
            Ltl::parse("G(req & !en -> X X q)", &mut t2).unwrap()
        };
        assert!(
            gaps.iter()
                .any(|g| dic_automata::equivalent(&g.formula, &expected)),
            "expected G(req & !en -> XX q) among {:?}",
            gaps.iter().map(|g| g.describe(&t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gap_properties_are_weakest() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config).expect("runs");
        let gaps = find_gap(fa, &terms, &rtl, &model, &config).expect("runs");
        // No kept candidate is strictly stronger than another kept one.
        for i in 0..gaps.len() {
            for j in 0..gaps.len() {
                if i != j {
                    assert!(
                        !dic_automata::stronger_than(&gaps[i].formula, &gaps[j].formula),
                        "candidate {i} strictly stronger than {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_pool_does_not_change_the_result() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let (terms, runs) =
            uncovered_terms_with_runs(fa, &rtl, &model, &config).expect("runs");
        let unseeded = find_gap(fa, &terms, &rtl, &model, &config).expect("runs");
        let seeded =
            find_gap_with_runs(fa, &terms, &runs, &rtl, &model, &config).expect("runs");
        let fmt = |gs: &[GapProperty]| {
            let mut v: Vec<String> = gs.iter().map(|g| format!("{:?}", g.formula)).collect();
            v.sort();
            v
        };
        assert_eq!(fmt(&unseeded), fmt(&seeded), "seeding is a pure optimization");
    }

    #[test]
    fn covered_spec_yields_no_candidates() {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config).expect("runs");
        assert!(terms.is_empty());
        let gaps = find_gap(fa, &terms, &rtl, &model, &config).expect("runs");
        assert!(gaps.is_empty());
    }
}
