//! Structure-preserving gap representation: steps 2(c)/2(d) of Algorithm 1.
//!
//! The uncovered terms are *pushed* against the parse tree of the
//! architectural property: every atomic variable instance of `FA` (with its
//! `X`-depth and polarity) is paired with term literals at compatible time
//! offsets, producing weakened variants of `FA`:
//!
//! * a **negative** occurrence `v` (antecedent side) becomes `v ∧ X^k ℓ` —
//!   strengthening the antecedent restricts the property to the uncovered
//!   scenarios, weakening the property overall (the paper's Example 4:
//!   `r2` becomes `r2 ∧ X ¬hit`);
//! * a **positive** occurrence `v` (consequent side) becomes `v ∨ X^k ℓ`.
//!
//! Every candidate is weaker than `FA` by construction; candidates are kept
//! only if they *close the gap* (Definition 3, model-checked), and the
//! survivors are reduced to the weakest ones under the strength order of
//! Definition 2.

use crate::hole::closure_witness;
use crate::model::CoverageModel;
use crate::spec::RtlSpec;
use dic_logic::{Lit, SignalTable};
use dic_ltl::{LassoWord, Ltl, LtlNode, Polarity, Position, TemporalCube};
use std::collections::BTreeSet;

/// Tuning knobs for the gap-finding pipeline (Algorithm 1).
#[derive(Clone, Debug)]
pub struct GapConfig {
    /// Depth (in cycles) of uncovered terms.
    pub term_depth: usize,
    /// Maximum number of counterexample scenarios to enumerate.
    pub max_terms: usize,
    /// Whether to generalize terms by literal dropping.
    pub generalize: bool,
    /// Whether to quantify hidden signals out of the terms (step 2(b)).
    pub quantify: bool,
    /// Maximum number of weakening candidates to verify.
    pub max_candidates: usize,
    /// Largest `X` offset allowed between a variable instance and an
    /// augmented literal.
    pub max_offset: usize,
    /// Stop verifying candidates once this many closing gap properties
    /// have been found (gap-closure checks of *closing* candidates explore
    /// the whole product and dominate the runtime on wide models).
    pub max_gap_properties: usize,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            term_depth: 3,
            max_terms: 6,
            generalize: true,
            quantify: true,
            max_candidates: 128,
            max_offset: 2,
            max_gap_properties: 16,
        }
    }
}

/// A structure-preserving gap property produced by [`find_gap`].
#[derive(Clone, Debug)]
pub struct GapProperty {
    /// The weakened architectural property that closes the gap.
    pub formula: Ltl,
    /// Position of the weakened variable instance in `FA`'s parse tree.
    pub position: Position,
    /// The literal pushed into that position.
    pub literal: Lit,
    /// `X` offset of the literal relative to the variable instance.
    pub offset: usize,
}

impl GapProperty {
    /// Human-readable rendering.
    pub fn describe(&self, table: &SignalTable) -> String {
        format!(
            "{}   [instance at {}, augmented with X^{} {}]",
            self.formula.display(table),
            self.position,
            self.offset,
            self.literal.display(table),
        )
    }
}

/// One weakening candidate before verification.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Candidate {
    position: Position,
    literal: Lit,
    offset: usize,
}

/// Steps 2(c) + 2(d): pushes the uncovered terms into `fa`'s parse tree,
/// generates polarity-aware weakenings, verifies gap closure, and returns
/// the weakest closing candidates (weakest first; empty when no structured
/// candidate closes the gap — callers then fall back to Theorem 2's
/// [`exact_hole`](crate::exact_hole)).
///
/// Candidate verification runs on the explicit engine; for a symbolic-only
/// model the result is empty (same fallback as
/// [`uncovered_terms`](crate::uncovered_terms)).
pub fn find_gap(
    fa: &Ltl,
    terms: &[TemporalCube],
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Vec<GapProperty> {
    if !model.has_explicit() {
        return Vec::new();
    }
    let candidates = push_terms(fa, terms, config);
    // Pool of known *bad* runs — runs of `M` satisfying `R ∧ ¬fa`. Every
    // failed closure check contributes one. A candidate that holds on any
    // pooled run cannot close the gap (the run would still slip through),
    // so it is rejected by a word evaluation instead of a model check.
    let mut bad_runs: Vec<LassoWord> = Vec::new();
    let mut closing: Vec<GapProperty> = Vec::new();
    'candidates: for cand in candidates.into_iter().take(config.max_candidates) {
        if closing.len() >= config.max_gap_properties {
            break;
        }
        let Some(weakened) = apply(fa, &cand) else {
            continue;
        };
        if weakened == *fa {
            continue; // smart constructors absorbed the change
        }
        for run in &bad_runs {
            if weakened.holds_on(run) {
                continue 'candidates; // a known bad run slips through
            }
        }
        match closure_witness(&weakened, fa, rtl, model) {
            Some(run) => bad_runs.push(run),
            None => closing.push(GapProperty {
                formula: weakened,
                position: cand.position,
                literal: cand.literal,
                offset: cand.offset,
            }),
        }
    }
    weakest_only(closing)
}

/// Step 2(c): align term literals with the variable instances of `fa`.
///
/// A literal `(t, ℓ)` of a term matches an instance at `X`-depth `d` when
/// `t ≥ d` and `t − d ≤ max_offset`; both the literal and its negation are
/// proposed (the paper's `ϕ'`/`ϕ''` split). Candidates are ordered the way
/// the paper's heuristics explore them: instances nested deepest inside
/// *unbounded* temporal operators first (step 2(c) determines that "the
/// gaps lie inside the unbounded operator"; Fig. 6 weakens the until),
/// antecedent (negative) positions before consequent ones, small `X`
/// offsets before large ones.
fn push_terms(fa: &Ltl, terms: &[TemporalCube], config: &GapConfig) -> Vec<Candidate> {
    let mut seen: BTreeSet<(Vec<usize>, Lit, usize)> = BTreeSet::new();
    let mut out: Vec<(usize, usize, usize, Candidate)> = Vec::new();
    let occurrences = fa.atom_occurrences();
    let max_unbounded = occurrences
        .iter()
        .map(|o| o.unbounded_depth)
        .max()
        .unwrap_or(0);
    for occ in &occurrences {
        let LtlNode::Atom(own) = occ.subformula.node() else {
            continue;
        };
        for term in terms {
            for &(t, lit) in term.lits() {
                if t < occ.x_depth {
                    continue;
                }
                let offset = t - occ.x_depth;
                if offset > config.max_offset {
                    continue;
                }
                if lit.signal() == *own && offset == 0 {
                    continue; // augmenting v with v or !v is degenerate
                }
                for l in [lit, lit.negated()] {
                    let key = (occ.position.path().to_vec(), l, offset);
                    if seen.insert(key) {
                        let unbounded_rank = max_unbounded - occ.unbounded_depth;
                        let pol_rank = match occ.polarity {
                            Polarity::Negative => 0,
                            Polarity::Positive => 1,
                        };
                        out.push((
                            unbounded_rank,
                            pol_rank,
                            offset,
                            Candidate {
                                position: occ.position.clone(),
                                literal: l,
                                offset,
                            },
                        ));
                    }
                }
            }
        }
    }
    out.sort_by_key(|(ur, pol, off, c)| (*ur, *pol, *off, c.position.path().to_vec()));
    out.into_iter().map(|(_, _, _, c)| c).collect()
}

/// Applies a candidate: `v ∧ X^k ℓ` at negative positions, `v ∨ X^k ℓ` at
/// positive ones.
fn apply(fa: &Ltl, cand: &Candidate) -> Option<Ltl> {
    let occ = fa.subformula_at(&cand.position)?.clone();
    // Recompute polarity from the stored occurrence list is avoided: the
    // position determines it, so re-walk the tree.
    let polarity = fa
        .atom_occurrences()
        .into_iter()
        .find(|o| o.position == cand.position)?
        .polarity;
    let lit = Ltl::next_n(
        Ltl::literal(cand.literal.signal(), cand.literal.polarity()),
        cand.offset,
    );
    let replacement = match polarity {
        Polarity::Negative => Ltl::and([occ, lit]),
        Polarity::Positive => Ltl::or([occ, lit]),
    };
    fa.replace_at(&cand.position, replacement)
}

/// Definition 2 filtering: drop any candidate strictly stronger than
/// another closing candidate; sort the rest weakest-first.
///
/// The closing candidates are mostly pairwise *incomparable*, and each
/// automata-based implication check on until-heavy formulas is expensive.
/// Every pair is therefore screened first against a fixed sample of
/// pseudo-random lasso words: a word satisfying `f` but not `g` refutes
/// `f ⇒ g` outright, and only unrefuted directions reach the automata.
fn weakest_only(mut props: Vec<GapProperty>) -> Vec<GapProperty> {
    let samples = sample_words(&props);
    let sat: Vec<Vec<bool>> = props
        .iter()
        .map(|p| samples.iter().map(|w| p.formula.holds_on(w)).collect())
        .collect();
    let implies = |i: usize, j: usize| -> bool {
        if (0..samples.len()).any(|w| sat[i][w] && !sat[j][w]) {
            return false; // refuted by a sample word
        }
        dic_automata::implies(&props[i].formula, &props[j].formula)
    };
    let mut keep = vec![true; props.len()];
    for i in 0..props.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..props.len() {
            if i == j || !keep[j] {
                continue;
            }
            // Drop i if j is strictly weaker (i ⇒ j, not j ⇒ i).
            if implies(i, j) && !implies(j, i) {
                keep[i] = false;
                break;
            }
        }
    }
    // Deduplicate equivalent formulas (keep the first of each class).
    for i in 0..props.len() {
        if !keep[i] {
            continue;
        }
        for (j, keep_j) in keep.iter_mut().enumerate().skip(i + 1) {
            if *keep_j && implies(i, j) && implies(j, i) {
                *keep_j = false;
            }
        }
    }
    props
        .drain(..)
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

/// A deterministic sample of lasso words over the atoms of `props`, used
/// to refute implications cheaply in [`weakest_only`].
fn sample_words(props: &[GapProperty]) -> Vec<LassoWord> {
    let mut signals: BTreeSet<dic_logic::SignalId> = BTreeSet::new();
    for p in props {
        signals.extend(p.formula.atoms());
    }
    let n = signals.iter().map(|s| s.index() + 1).max().unwrap_or(1);
    let signals: Vec<_> = signals.into_iter().collect();
    let mut state = 0x9e37_79b9_7f4a_7c15u64; // fixed seed: runs are reproducible
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut words = Vec::with_capacity(64);
    for _ in 0..64 {
        let len = 4 + (next() % 8) as usize;
        let loop_start = (next() % len as u64) as usize;
        let states: Vec<dic_logic::Valuation> = (0..len)
            .map(|_| {
                let mut v = dic_logic::Valuation::all_false(n);
                let bits = next();
                for (k, &s) in signals.iter().enumerate() {
                    v.set(s, bits >> (k % 64) & 1 == 1);
                }
                v
            })
            .collect();
        words.push(LassoWord::new(states, loop_start).expect("loop_start < len"));
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hole::closes_gap;
    use crate::model::CoverageModel;
    use crate::spec::{ArchSpec, RtlSpec};
    use crate::terms::uncovered_terms;
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    /// The `en` gap fixture: A = G(req -> XX q), R = G(req & en -> X a),
    /// glue q <= a. The gap is exactly "req with en low".
    fn gapped() -> (SignalTable, ArchSpec, RtlSpec, CoverageModel) {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req & en -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        b.input("en");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        (t, arch, rtl, model)
    }

    #[test]
    fn finds_structure_preserving_gap() {
        let (t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config);
        let gaps = find_gap(fa, &terms, &rtl, &model, &config);
        assert!(!gaps.is_empty(), "expected a structured gap property");
        for g in &gaps {
            // Weaker than FA and closes the gap — re-verify both.
            assert!(dic_automata::implies(fa, &g.formula));
            assert!(closes_gap(&g.formula, fa, &rtl, &model));
        }
        // The expected shape mirrors the paper's U: the antecedent is
        // strengthened with the *uncovered scenario* literal (en low is
        // where R says nothing), i.e. G(req & !en -> X X q).
        let expected = {
            let mut t2 = t.clone();
            Ltl::parse("G(req & !en -> X X q)", &mut t2).unwrap()
        };
        assert!(
            gaps.iter()
                .any(|g| dic_automata::equivalent(&g.formula, &expected)),
            "expected G(req & !en -> XX q) among {:?}",
            gaps.iter().map(|g| g.describe(&t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gap_properties_are_weakest() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config);
        let gaps = find_gap(fa, &terms, &rtl, &model, &config);
        // No kept candidate is strictly stronger than another kept one.
        for i in 0..gaps.len() {
            for j in 0..gaps.len() {
                if i != j {
                    assert!(
                        !dic_automata::stronger_than(&gaps[i].formula, &gaps[j].formula),
                        "candidate {i} strictly stronger than {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn covered_spec_yields_no_candidates() {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config);
        assert!(terms.is_empty());
        let gaps = find_gap(fa, &terms, &rtl, &model, &config);
        assert!(gaps.is_empty());
    }
}
