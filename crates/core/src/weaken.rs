//! Structure-preserving gap representation: steps 2(c)/2(d) of Algorithm 1.
//!
//! The uncovered terms are *pushed* against the parse tree of the
//! architectural property: every atomic variable instance of `FA` (with its
//! `X`-depth and polarity) is paired with term literals at compatible time
//! offsets, producing weakened variants of `FA`:
//!
//! * a **negative** occurrence `v` (antecedent side) becomes `v ∧ X^k ℓ` —
//!   strengthening the antecedent restricts the property to the uncovered
//!   scenarios, weakening the property overall (the paper's Example 4:
//!   `r2` becomes `r2 ∧ X ¬hit`);
//! * a **positive** occurrence `v` (consequent side) becomes `v ∨ X^k ℓ`.
//!
//! Every candidate is weaker than `FA` by construction; candidates are kept
//! only if they *close the gap* (Definition 3, model-checked through the
//! gap backend), and the survivors are reduced to the weakest ones under
//! the strength order of Definition 2.
//!
//! Closure checks are the expensive half of Algorithm 1, and two levers
//! keep their count down:
//!
//! * the bad-run pool is **seeded** with the runs term enumeration already
//!   produced ([`find_gap_with_runs`]), so most non-closing candidates are
//!   rejected by a word evaluation before any model check;
//! * on the symbolic backend, every check reuses one cached design product
//!   (`R ∧ ¬FA`) and re-encodes only the small candidate automaton.

use crate::backend::Backend;
use crate::error::CoreError;
use crate::model::CoverageModel;
use crate::spec::RtlSpec;
use dic_logic::{Lit, SignalTable};
use dic_ltl::{LassoWord, Ltl, LtlNode, Polarity, Position, TemporalCube};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tuning knobs for the gap-finding pipeline (Algorithm 1).
#[derive(Clone, Debug)]
pub struct GapConfig {
    /// Depth (in cycles) of uncovered terms.
    pub term_depth: usize,
    /// Maximum number of counterexample scenarios to enumerate.
    pub max_terms: usize,
    /// Whether to generalize terms by literal dropping.
    pub generalize: bool,
    /// Whether to quantify hidden signals out of the terms (step 2(b)).
    pub quantify: bool,
    /// Maximum number of weakening candidates to verify.
    pub max_candidates: usize,
    /// Largest `X` offset allowed between a variable instance and an
    /// augmented literal.
    pub max_offset: usize,
    /// Stop verifying candidates once this many closing gap properties
    /// have been found (gap-closure checks of *closing* candidates explore
    /// the whole product and dominate the runtime on wide models).
    pub max_gap_properties: usize,
    /// Skip the structured-weakening phase entirely when a variable
    /// instance of the intent sits deeper than this many `X` operators.
    /// A candidate for a deep intent pairs an `X`-obligation chain of
    /// that length with the design registers, which blows up the closure
    /// product on *either* engine (the `chain-<n>-gap` family past
    /// roughly a dozen stages) — such intents report their uncovered
    /// terms and Theorem 2's exact hole instead. The bound is a property
    /// of the formula alone, so both backends skip identically.
    pub max_intent_depth: usize,
    /// The engine the gap phase runs on. [`Backend::Auto`] (the default)
    /// follows the model's per-phase resolution: explicit below the
    /// state-bit crossover, symbolic above it or whenever the model has no
    /// explicit structure. See [`CoverageModel::gap_backend`].
    pub backend: Backend,
    /// Worker threads for candidate closure verification (the parallel
    /// stage of Algorithm 1). `0` — the default — resolves through
    /// [`GapConfig::effective_jobs`]: `SPECMATCHER_JOBS` when set, the
    /// machine's available parallelism otherwise. The reported property
    /// set is identical for every value (verification is per-candidate
    /// and the merge is deterministic); only wall-clock changes.
    pub jobs: usize,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            term_depth: 3,
            max_terms: 6,
            generalize: true,
            quantify: true,
            max_candidates: 128,
            max_offset: 2,
            max_gap_properties: 24,
            max_intent_depth: 8,
            backend: Backend::Auto,
            jobs: 0,
        }
    }
}

impl GapConfig {
    /// Resolves [`GapConfig::jobs`]: an explicit setting wins, then a
    /// valid `SPECMATCHER_JOBS`, then the machine's available parallelism
    /// (1 when that cannot be determined). Garbage in the environment
    /// variable is ignored *here* — the pipeline entry points reject it
    /// loudly first ([`crate::backend::jobs_from_env`]).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        if let Ok(Some(n)) = crate::backend::jobs_from_env() {
            return n;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// A structure-preserving gap property produced by [`find_gap`].
#[derive(Clone, Debug)]
pub struct GapProperty {
    /// The weakened architectural property that closes the gap.
    pub formula: Ltl,
    /// Position of the weakened variable instance in `FA`'s parse tree.
    pub position: Position,
    /// The literal pushed into that position.
    pub literal: Lit,
    /// `X` offset of the literal relative to the variable instance.
    pub offset: usize,
    /// The uncovered term exhibiting this weakening's literal at its
    /// position, when the enumeration found one (the empty cube
    /// otherwise — the candidate class ranges over the whole observable
    /// alphabet, not only the literals the enumerated terms mention).
    pub term: TemporalCube,
    /// A run of `M ⊨ R ∧ ¬FA` demonstrating the uncovered scenario this
    /// property addresses (matching [`GapProperty::term`] where the term
    /// is realizable as stated). Like every counterexample either engine
    /// reports, it replays on the netlist simulator.
    pub witness: LassoWord,
}

impl GapProperty {
    /// Human-readable rendering (the motivating term and demonstrating run
    /// stay in [`GapProperty::term`]/[`GapProperty::witness`] and the JSON
    /// report; inlining a full term here would drown the formula).
    pub fn describe(&self, table: &SignalTable) -> String {
        format!(
            "{}   [instance at {}, augmented with X^{} {}]",
            self.formula.display(table),
            self.position,
            self.offset,
            self.literal.display(table),
        )
    }
}

/// A candidate whose closure verdict could not be settled: a degradable
/// resource refusal (that the explicit retry could not rescue), a caught
/// worker panic, or an injected fault left it `unknown`. Unknown verdicts
/// never enter the weakest-merge antichain — the reported gap properties
/// stay a subset of what the fault-free run reports.
#[derive(Clone, Debug)]
pub struct UnknownGap {
    /// The weakened property whose closure went unverified.
    pub formula: Ltl,
    /// Why the verdict is unknown (diagnostic, human-readable).
    pub diagnostic: String,
}

/// The gap phase's outcome under graceful degradation
/// ([`find_gap_outcome`]): the confirmed weakest gap properties, any
/// candidates left unknown, and — when the scan stopped early on a
/// deadline — the reason. Because candidates are verified (and the merge
/// frontier advances) strictly in canonical order, the confirmed set of a
/// stopped scan is exactly what a fault-free scan had accepted at the
/// same stop point: a canonical-order *prefix* of its scan, never a
/// different selection.
#[derive(Clone, Debug)]
pub struct GapOutcome {
    /// Confirmed gap properties (weakest first), as in [`find_gap`].
    pub properties: Vec<GapProperty>,
    /// Candidates whose verdict could not be settled.
    pub unknown: Vec<UnknownGap>,
    /// `Some(reason)` when the scan stopped before settling every
    /// candidate (cooperative deadline); `None` for a complete run.
    pub incomplete: Option<String>,
}

impl GapOutcome {
    fn complete(properties: Vec<GapProperty>) -> Self {
        GapOutcome {
            properties,
            unknown: Vec::new(),
            incomplete: None,
        }
    }
}

/// One weakening candidate before verification.
#[derive(Clone, Debug)]
struct Candidate {
    position: Position,
    literal: Lit,
    offset: usize,
    /// `X`-depth of the weakened instance inside `fa`.
    x_depth: usize,
    /// The first term whose literal produced this candidate.
    term: TemporalCube,
}

/// Steps 2(c) + 2(d): pushes the uncovered terms into `fa`'s parse tree,
/// generates polarity-aware weakenings, verifies gap closure, and returns
/// the weakest closing candidates (weakest first; empty when no structured
/// candidate closes the gap — callers then fall back to Theorem 2's
/// [`exact_hole`](crate::exact_hole)).
///
/// Candidate verification dispatches through the gap backend
/// ([`GapConfig::backend`]); both engines answer it on one memoized base
/// product per property.
///
/// # Errors
///
/// Backend resolution and symbolic-engine failures; see
/// [`CoverageModel::gap_backend`].
pub fn find_gap(
    fa: &Ltl,
    terms: &[TemporalCube],
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Result<Vec<GapProperty>, CoreError> {
    find_gap_with_runs(fa, terms, &[], rtl, model, config)
}

/// Like [`find_gap`], additionally seeding the bad-run pool with known
/// counterexample runs (the ones
/// [`uncovered_terms_with_runs`](crate::terms::uncovered_terms_with_runs)
/// enumerated). Every seeded run rejects — by a word evaluation — each
/// candidate that still holds on it, so the expensive closure model checks
/// are reached almost exclusively by candidates that actually close the
/// gap, and the `max_gap_properties` budget is hit with far fewer full
/// fixpoints.
///
/// # Errors
///
/// As for [`find_gap`].
pub fn find_gap_with_runs(
    fa: &Ltl,
    terms: &[TemporalCube],
    seed_runs: &[LassoWord],
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Result<Vec<GapProperty>, CoreError> {
    find_gap_outcome(fa, terms, seed_runs, rtl, model, config).map(|o| o.properties)
}

/// The degradation-aware gap phase: like [`find_gap_with_runs`], but a
/// deadline trip, a per-candidate resource refusal, or a worker panic
/// mid-scan no longer aborts — the scan stops (or skips the candidate)
/// and reports what it settled, with the remainder accounted for in
/// [`GapOutcome::unknown`] / [`GapOutcome::incomplete`]. A per-candidate
/// `NodeLimit` on the symbolic backend first retries that one candidate
/// on the explicit engine (when the model's explicit-hostility axes
/// allow) before marking it unknown; worker panics are isolated with
/// `catch_unwind` and demoted to an unknown verdict plus diagnostic.
///
/// # Errors
///
/// Only non-degradable failures: backend resolution
/// ([`CoverageModel::gap_backend`]) and configuration/spec errors.
pub fn find_gap_outcome(
    fa: &Ltl,
    terms: &[TemporalCube],
    seed_runs: &[LassoWord],
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Result<GapOutcome, CoreError> {
    let backend = model.gap_backend(config.backend)?;
    if terms.is_empty() {
        // No uncovered scenario was found (covered property, or the
        // enumeration budget produced nothing): there is no gap for the
        // candidate class to close.
        return Ok(GapOutcome::complete(Vec::new()));
    }
    let occurrences = fa.atom_occurrences();
    if occurrences.iter().any(|o| o.x_depth > config.max_intent_depth) {
        // Deep-X intent: every closure product pairs an obligation chain
        // of that depth with the design registers — a cliff for either
        // engine. Report the exact hole instead (see
        // [`GapConfig::max_intent_depth`]).
        return Ok(GapOutcome::complete(Vec::new()));
    }
    // Stage 1: canonical candidate enumeration, fixed up front. Every
    // later stage refers to candidates by their index in this order.
    let mut enum_span = dic_trace::span("gap.enumerate");
    let candidates: Vec<Candidate> = push_candidates(fa, terms, model.observable(), config)
        .into_iter()
        .take(config.max_candidates)
        .collect();
    if dic_trace::enabled() {
        dic_trace::count(
            dic_trace::Counter::GapCandidatesEnumerated,
            candidates.len() as u64,
        );
        enum_span.meta("candidates", candidates.len() as u64);
    }
    drop(enum_span);
    let base: Vec<Ltl> = rtl
        .formulas()
        .iter()
        .cloned()
        .chain([Ltl::not(fa.clone())])
        .collect();
    // Deterministic sample words over the property atoms and the whole
    // candidate-literal universe, used to refute implications between
    // candidates cheaply (subsumption screen and merge).
    let screen_words = {
        let mut signals: BTreeSet<dic_logic::SignalId> = fa.atoms();
        signals.extend(model.observable().iter().copied());
        random_words(&signals)
    };
    // Stage 2 + 3: per-candidate verification, then the deterministic
    // merge. One worker runs both inline (the merge's early exit then
    // prunes exactly like the historical sequential loop); more workers
    // fan stage 2 out and the merge runs on the coordinating thread.
    let jobs = config.effective_jobs().min(candidates.len().max(1));
    let verify_span = dic_trace::span("gap.verify");
    let verified = if jobs <= 1 {
        verify_sequential(
            fa,
            &candidates,
            seed_runs,
            &base,
            model,
            backend,
            &screen_words,
            config.max_gap_properties,
        )?
    } else {
        verify_parallel(
            fa,
            &candidates,
            seed_runs,
            &base,
            model,
            backend,
            &screen_words,
            config.max_gap_properties,
            jobs,
        )?
    };
    drop(verify_span);
    if dic_trace::enabled() && !verified.unknown.is_empty() {
        dic_trace::count(
            dic_trace::Counter::GapUnknownCandidates,
            verified.unknown.len() as u64,
        );
    }
    let _merge_span = dic_trace::span("gap.witnesses");
    let properties = attach_witnesses(verified.closing, seed_runs, &base, model, backend)?;
    Ok(GapOutcome {
        properties,
        unknown: verified.unknown,
        incomplete: verified.incomplete,
    })
}

/// Outcome of verifying one candidate, a function of the candidate alone
/// (plus, for [`Verdict::Subsumed`], formulas already accepted by the
/// merge — see the soundness note there).
enum Verdict {
    /// Degenerate candidate: the smart constructors absorbed the
    /// augmentation (or the position vanished).
    Skip,
    /// Some genuine bad run of `M ⊨ R ∧ ¬fa` satisfies the weakened
    /// property, so it cannot close the gap. *Which* run refuted it is a
    /// worker-local detail; the verdict itself is semantic.
    NotClosing,
    /// The weakened property implies a formula the merge had already
    /// accepted when this candidate was verified. That proves closure
    /// without a fixpoint (every run it admits is admitted by a closing
    /// formula) — and guarantees the merge drops it, so the formula is
    /// not carried.
    Subsumed,
    /// No run of `M ⊨ R ∧ ¬fa` satisfies the weakened property: it
    /// closes the gap (Definition 3).
    Closing(Ltl),
}

/// Per-worker verification scratch. Each worker owns its pool and probe
/// memo outright, so no verdict ever depends on what another worker
/// happened to discover first: every pooled run is a genuine bad run
/// (rejections are sound regardless of pool content), and the probe memo
/// only suppresses *repeat* probes within one worker.
struct WorkerState {
    /// Known bad runs — runs of `M` satisfying `R ∧ ¬fa`. Seeded with the
    /// term-enumeration runs; every failed closure check and probe hit
    /// contributes one more. A candidate that holds on any pooled run is
    /// rejected by a word evaluation instead of a model check.
    bad_runs: Vec<LassoWord>,
    /// Directed refutation probes already answered by this worker, per
    /// probed (time, literal) pair.
    probed: BTreeSet<(usize, Lit)>,
}

impl WorkerState {
    fn new(seed_runs: &[LassoWord]) -> Self {
        WorkerState {
            bad_runs: seed_runs.to_vec(),
            probed: BTreeSet::new(),
        }
    }
}

/// `f ⇒ g`, decided by the automata procedure behind a sample-word
/// screen: a word satisfying `f` but not `g` refutes the implication
/// outright, and only unrefuted pairs pay for the automata check. The
/// screen never changes the answer — words refute soundly — so the
/// result is deterministic and identical on every worker.
fn implies_screened(f: &Ltl, g: &Ltl, screen_words: &[LassoWord]) -> bool {
    let refuted = screen_words.iter().any(|w| f.holds_on(w) && !g.holds_on(w));
    !refuted && dic_automata::implies(f, g)
}

/// Verifies one candidate against the model: apply, word-screen against
/// the worker's bad-run pool, subsumption screen against the accepted
/// formulas, directed refutation probe, then the full closure fixpoint.
///
/// `accepted` is a (possibly stale) snapshot of the merge's accepted
/// formulas; see [`WeakestMerge`] for why staleness is sound.
#[allow(clippy::too_many_arguments)]
fn verify_candidate(
    fa: &Ltl,
    cand: &Candidate,
    base: &[Ltl],
    model: &CoverageModel,
    backend: Backend,
    accepted: &[Ltl],
    screen_words: &[LassoWord],
    state: &mut WorkerState,
) -> Result<Verdict, CoreError> {
    let Some(weakened) = apply(fa, cand) else {
        return Ok(Verdict::Skip);
    };
    if weakened == *fa {
        return Ok(Verdict::Skip); // smart constructors absorbed the change
    }
    if state.bad_runs.iter().any(|run| weakened.holds_on(run)) {
        return Ok(Verdict::NotClosing); // a known bad run slips through
    }
    // Subsumption by an already-accepted closing formula: if
    // `weakened ⇒ g` for a closing `g`, every run the candidate admits is
    // admitted by `g`, so the candidate closes too — and the merge drops
    // it as (at best) equivalent to the earlier `g`. Confirming closure
    // by formula implication replaces a whole-product fixpoint per
    // redundant candidate.
    if accepted
        .iter()
        .any(|g| implies_screened(&weakened, g, screen_words))
    {
        if dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::GapImplicationSettled, 1);
        }
        return Ok(Verdict::Subsumed);
    }
    // Directed cheap refutation before the full closure fixpoint: a
    // bad run exhibiting the *negated* augmentation at the candidate's
    // position usually satisfies the weakened property outright (the
    // strengthened antecedent never fires / the weakened consequent is
    // not exercised), and any bad run satisfying the candidate refutes
    // closure by word evaluation alone. The probe is one bounded-cube
    // query against the memoized `R ∧ ¬fa` base product; when the run
    // it finds does not settle the candidate, the full check below
    // still decides it — the probe is an early exit, never an oracle.
    let probe_at = (cand.x_depth + cand.offset, cand.literal.negated());
    if state.probed.insert(probe_at) {
        let probe = TemporalCube::from_lits([probe_at]).expect("single literal");
        if let Some(run) = model.gap_scenario_query(backend, base, None, &probe)? {
            state.bad_runs.push(run);
            let run = state.bad_runs.last().expect("just pushed");
            if weakened.holds_on(run) {
                if dic_trace::enabled() {
                    dic_trace::count(dic_trace::Counter::GapProbeRefuted, 1);
                }
                return Ok(Verdict::NotClosing);
            }
        }
    }
    if dic_trace::enabled() {
        dic_trace::count(dic_trace::Counter::GapFixpointVerified, 1);
    }
    // The full closure check. With `BmcMode::Auto`, `gap_query` itself
    // fronts this with the bounded SAT tier — a shallow refuting lasso
    // comes back without running either fixpoint engine, and lands in
    // the shared bad-run pool exactly like a fixpoint counterexample.
    match model.gap_query(backend, base, std::slice::from_ref(&weakened))? {
        Some(run) => {
            state.bad_runs.push(run);
            Ok(Verdict::NotClosing)
        }
        None => Ok(Verdict::Closing(weakened)),
    }
}

/// The deterministic merge (stage 3): consumes *closing* verdicts in
/// canonical candidate order and maintains the running weakest antichain
/// under the strength order of Definition 2.
///
/// For each offered formula `f`, in order:
///
/// * if `f ⇒ g` for an accepted `g`, `f` is dropped — it is at best
///   equivalent to `g` (keep-first dedup) and otherwise strictly
///   stronger, which the "weakest gap properties" contract excludes;
/// * otherwise every accepted `g` with `g ⇒ f` is *removed* and its
///   budget slot refunded (`f` did not imply `g`, so the implication is
///   strict: `g` is strictly stronger than the newly found weaker `f`).
///   This is the post-pass that replaces the historical mid-loop screen,
///   whose confirmed-earlier formulas burned budget slots that the final
///   weakest-only filter then discarded — reporting fewer weakest
///   properties than the budget allowed;
/// * `f` is accepted. Scanning stops once the antichain reaches the
///   `max_gap_properties` budget.
///
/// Subsumption screens against *stale* snapshots of the accepted set are
/// sound: a formula is only ever removed in favor of a strictly weaker
/// one, so `f ⇒ g` with `g` accepted at any point implies `f ⇒ h` for
/// some `h` accepted at every later point — a [`Verdict::Subsumed`]
/// candidate stays dropped no matter how the antichain evolves.
struct WeakestMerge<'a> {
    accepted: Vec<(Candidate, Ltl)>,
    screen_words: &'a [LassoWord],
    budget: usize,
}

impl<'a> WeakestMerge<'a> {
    fn new(screen_words: &'a [LassoWord], budget: usize) -> Self {
        WeakestMerge {
            accepted: Vec::new(),
            screen_words,
            budget,
        }
    }

    fn is_full(&self) -> bool {
        self.accepted.len() >= self.budget
    }

    /// Snapshot of the accepted formulas, for the workers' subsumption
    /// screen.
    fn formulas(&self) -> Vec<Ltl> {
        self.accepted.iter().map(|(_, g)| g.clone()).collect()
    }

    fn offer(&mut self, cand: Candidate, formula: Ltl) {
        let words = self.screen_words;
        if self
            .accepted
            .iter()
            .any(|(_, g)| implies_screened(&formula, g, words))
        {
            return; // equivalent to or strictly stronger than an accepted g
        }
        // The refund: `formula` implies no accepted formula (checked
        // above), so any accepted `g ⇒ formula` is strictly stronger and
        // Definition 2 drops it in favor of the weaker newcomer.
        let before = self.accepted.len();
        self.accepted
            .retain(|(_, g)| !implies_screened(g, &formula, words));
        if dic_trace::enabled() {
            dic_trace::count(
                dic_trace::Counter::GapBudgetRefunds,
                (before - self.accepted.len()) as u64,
            );
        }
        self.accepted.push((cand, formula));
    }

    fn into_closing(self) -> Vec<(Candidate, Ltl)> {
        self.accepted
    }
}

/// What the guarded per-candidate driver concluded: a settled verdict, an
/// unresolvable candidate, a scan-wide deadline stop, or a genuinely
/// fatal error.
enum Guarded {
    Settled(Verdict),
    /// The candidate could not be settled (degradable refusal, caught
    /// panic, injected unknown); the scan continues without it.
    Unknown(String),
    /// The cooperative deadline tripped — stop the scan; later candidates
    /// would trip at the same checkpoint.
    DeadlineStop,
    /// Non-degradable error: propagate, aborting the phase.
    Fatal(CoreError),
}

/// Best-effort rendering of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The graceful-degradation wrapper around [`verify_candidate`]: hosts
/// the `gap.worker` injection site and the per-candidate deadline
/// checkpoint, isolates panics with `catch_unwind`, and retries a
/// symbolic `NodeLimit` refusal on the explicit engine (lazily built,
/// when the model's explicit-hostility axes allow) before giving the
/// candidate up as unknown.
#[allow(clippy::too_many_arguments)]
fn verify_candidate_guarded(
    fa: &Ltl,
    cand: &Candidate,
    base: &[Ltl],
    model: &CoverageModel,
    backend: Backend,
    accepted: &[Ltl],
    screen_words: &[LassoWord],
    state: &mut WorkerState,
) -> Guarded {
    let forced = dic_fault::hit(dic_fault::Site::GapWorker);
    match forced {
        Some(dic_fault::FaultKind::Deadline) => return Guarded::DeadlineStop,
        Some(dic_fault::FaultKind::SatUnknown) => {
            return Guarded::Unknown("injected fault: inconclusive verdict".to_string())
        }
        _ => {}
    }
    if dic_fault::deadline_expired() {
        return Guarded::DeadlineStop;
    }
    // One guarded attempt on `b`. The injected panic fires *inside* the
    // unwind scope, so it exercises exactly the isolation an organic
    // worker panic would.
    let attempt = |b: Backend, state: &mut WorkerState, inject_panic: bool| {
        catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                dic_fault::injected_panic();
            }
            verify_candidate(fa, cand, base, model, b, accepted, screen_words, state)
        }))
        .map_err(|payload| panic_message(payload.as_ref()))
    };
    // An injected NodeLimit takes the organic refusal path verbatim.
    let first = if forced == Some(dic_fault::FaultKind::NodeLimit) {
        Ok(Err(CoreError::Symbolic(
            dic_symbolic::SymbolicError::NodeLimit {
                nodes: 0,
                cache_entries: 0,
                limit: 0,
            },
        )))
    } else {
        attempt(backend, state, forced == Some(dic_fault::FaultKind::Panic))
    };
    let node_limited = matches!(
        first,
        Ok(Err(CoreError::Symbolic(
            dic_symbolic::SymbolicError::NodeLimit { .. }
        )))
    );
    match first {
        Err(panic_msg) => Guarded::Unknown(format!("worker panic caught: {panic_msg}")),
        Ok(Ok(verdict)) => Guarded::Settled(verdict),
        Ok(Err(e)) if e.is_deadline() => Guarded::DeadlineStop,
        Ok(Err(_))
            if node_limited
                && backend == Backend::Symbolic
                && model.ensure_explicit_fallback() =>
        {
            if dic_trace::enabled() {
                dic_trace::event("gap.retry_explicit", &[]);
            }
            match attempt(Backend::Explicit, state, false) {
                Err(panic_msg) => {
                    Guarded::Unknown(format!("worker panic caught: {panic_msg}"))
                }
                Ok(Ok(verdict)) => Guarded::Settled(verdict),
                Ok(Err(e)) if e.is_deadline() => Guarded::DeadlineStop,
                Ok(Err(e)) if e.is_degradable() => Guarded::Unknown(e.to_string()),
                Ok(Err(e)) => Guarded::Fatal(e),
            }
        }
        Ok(Err(e)) if e.is_degradable() => Guarded::Unknown(e.to_string()),
        Ok(Err(e)) => Guarded::Fatal(e),
    }
}

/// Result of a verification scan: the accepted antichain plus the
/// degradation ledger the caller folds into the [`GapOutcome`].
struct VerifyOutcome {
    closing: Vec<(Candidate, Ltl)>,
    unknown: Vec<UnknownGap>,
    incomplete: Option<String>,
}

fn deadline_reason(unverified: usize) -> String {
    format!("deadline exceeded during gap verification; {unverified} candidates unverified")
}

/// Records an unsettled candidate, skipping degenerates the smart
/// constructors would have absorbed anyway.
fn push_unknown(unknown: &mut Vec<UnknownGap>, fa: &Ltl, cand: &Candidate, diagnostic: String) {
    if let Some(formula) = apply(fa, cand) {
        if formula != *fa {
            unknown.push(UnknownGap {
                formula,
                diagnostic,
            });
        }
    }
}

/// One-worker verification: the verify/merge stages run interleaved on
/// the calling thread, so the merge's budget exit stops verification at
/// exactly the candidate the historical sequential loop stopped at —
/// the refactor is free when `jobs == 1`.
#[allow(clippy::too_many_arguments)]
fn verify_sequential(
    fa: &Ltl,
    candidates: &[Candidate],
    seed_runs: &[LassoWord],
    base: &[Ltl],
    model: &CoverageModel,
    backend: Backend,
    screen_words: &[LassoWord],
    budget: usize,
) -> Result<VerifyOutcome, CoreError> {
    let mut state = WorkerState::new(seed_runs);
    let mut merge = WeakestMerge::new(screen_words, budget);
    let mut accepted: Vec<Ltl> = Vec::new();
    let mut unknown: Vec<UnknownGap> = Vec::new();
    let mut incomplete = None;
    for (idx, cand) in candidates.iter().enumerate() {
        if merge.is_full() {
            break;
        }
        match verify_candidate_guarded(
            fa,
            cand,
            base,
            model,
            backend,
            &accepted,
            screen_words,
            &mut state,
        ) {
            Guarded::Settled(Verdict::Closing(formula)) => {
                merge.offer(cand.clone(), formula);
                accepted = merge.formulas();
            }
            Guarded::Settled(_) => {}
            Guarded::Unknown(diagnostic) => push_unknown(&mut unknown, fa, cand, diagnostic),
            Guarded::DeadlineStop => {
                incomplete = Some(deadline_reason(candidates.len() - idx));
                for rest in &candidates[idx..] {
                    push_unknown(
                        &mut unknown,
                        fa,
                        rest,
                        "deadline exceeded before this candidate was verified".to_owned(),
                    );
                }
                break;
            }
            Guarded::Fatal(e) => return Err(e),
        }
    }
    Ok(VerifyOutcome {
        closing: merge.into_closing(),
        unknown,
        incomplete,
    })
}

/// Fan-out verification: `jobs` scoped workers claim candidates from a
/// shared index in canonical order, each owning its bad-run pool and
/// probe memo ([`WorkerState`]); verdicts stream back to this thread,
/// which advances a merge frontier strictly in canonical order. The
/// frontier applies the budget and the subsumption post-pass only to
/// in-order verdicts, so the result — including the point verification
/// stops — is byte-identical to the one-worker path.
///
/// Errors propagate deterministically too: the first error *in canonical
/// order* reached by the frontier wins (exactly the one the sequential
/// scan would have hit), the cutoff releases the workers, and the error
/// surfaces after they drain — a worker-thread resource refusal
/// (state-space limit, BDD node budget) reaches the caller as the same
/// [`CoreError`] it would raise inline.
///
/// On the symbolic backend the closure fixpoints serialize on the
/// engine's internal lock (the `BddManager` scratch regions are
/// single-threaded); the workers still overlap all word-level screens
/// and act as the queue that coordinating thread drains. See
/// [`Backend::fixpoint_parallelism`].
#[allow(clippy::too_many_arguments)]
fn verify_parallel(
    fa: &Ltl,
    candidates: &[Candidate],
    seed_runs: &[LassoWord],
    base: &[Ltl],
    model: &CoverageModel,
    backend: Backend,
    screen_words: &[LassoWord],
    budget: usize,
    jobs: usize,
) -> Result<VerifyOutcome, CoreError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Mutex, PoisonError};

    let total = candidates.len();
    let next = AtomicUsize::new(0);
    // First candidate index whose verdict the merge no longer needs:
    // moves to the budget point once the antichain fills (or to 0 on an
    // error), releasing the workers early.
    let cutoff = AtomicUsize::new(total);
    // Accepted formulas, republished by the merge after every accept for
    // the workers' subsumption screen. Stale reads are sound (see
    // [`WeakestMerge`]); the screen only ever *adds* fixpoint savings.
    let subsumers: Mutex<Vec<Ltl>> = Mutex::new(Vec::new());
    let (tx, rx) = mpsc::channel::<(usize, Guarded)>();

    // Workers run on their own threads, outside the coordinator's
    // thread-local span stack — attach their spans to the verify span
    // explicitly so the profile tree keeps per-worker busy time.
    let parent_span = dic_trace::current_span_id();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let cutoff = &cutoff;
            let subsumers = &subsumers;
            scope.spawn(move || {
                let mut worker_span = dic_trace::span_with_parent("gap.worker", parent_span);
                let mut state = WorkerState::new(seed_runs);
                let mut claimed = 0u64;
                let mut closing = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total || i >= cutoff.load(Ordering::SeqCst) {
                        break;
                    }
                    claimed += 1;
                    // Poison-tolerant: the snapshot is a fully-assigned
                    // `Vec` under the lock, so a panicking worker cannot
                    // leave it half-written.
                    let accepted = subsumers
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone();
                    let verdict = verify_candidate_guarded(
                        fa,
                        &candidates[i],
                        base,
                        model,
                        backend,
                        &accepted,
                        screen_words,
                        &mut state,
                    );
                    if matches!(verdict, Guarded::Settled(Verdict::Closing(_))) {
                        closing += 1;
                    }
                    if tx.send((i, verdict)).is_err() {
                        break;
                    }
                }
                if dic_trace::enabled() {
                    worker_span.meta("claimed", claimed);
                    worker_span.meta("closing", closing);
                }
            });
        }
        drop(tx);

        let mut merge = WeakestMerge::new(screen_words, budget);
        let mut slots: Vec<Option<Guarded>> = Vec::new();
        slots.resize_with(total, || None);
        let mut frontier = 0usize;
        let mut error: Option<CoreError> = None;
        let mut unknown: Vec<UnknownGap> = Vec::new();
        let mut incomplete = None;
        // Drain until every worker exits (the scope joins them anyway);
        // verdicts past the cutoff are received and discarded.
        for (i, verdict) in rx {
            if slots[i].is_none() {
                slots[i] = Some(verdict);
            }
            while frontier < cutoff.load(Ordering::SeqCst) {
                let Some(slot) = slots[frontier].take() else {
                    break; // the canonical next verdict is still in flight
                };
                match slot {
                    Guarded::Fatal(e) => {
                        error = Some(e);
                        cutoff.store(0, Ordering::SeqCst);
                    }
                    Guarded::DeadlineStop => {
                        // The scan stops at the first in-order trip: every
                        // verdict before it merged, everything after is
                        // unverified — the same stop point the sequential
                        // scan reports.
                        incomplete = Some(deadline_reason(total - frontier));
                        cutoff.store(frontier, Ordering::SeqCst);
                    }
                    Guarded::Unknown(diagnostic) => {
                        push_unknown(&mut unknown, fa, &candidates[frontier], diagnostic);
                    }
                    Guarded::Settled(Verdict::Closing(formula)) => {
                        merge.offer(candidates[frontier].clone(), formula);
                        *subsumers.lock().unwrap_or_else(PoisonError::into_inner) =
                            merge.formulas();
                        if merge.is_full() {
                            cutoff.store(frontier + 1, Ordering::SeqCst);
                        }
                    }
                    Guarded::Settled(_) => {}
                }
                frontier += 1;
            }
        }
        match error {
            Some(e) => Err(e),
            None => {
                if incomplete.is_some() {
                    // Mirror the sequential stop point: everything at or
                    // past the first in-order deadline trip is unverified,
                    // even if an out-of-order worker verdict arrived for it.
                    for rest in &candidates[cutoff.load(Ordering::SeqCst)..] {
                        push_unknown(
                            &mut unknown,
                            fa,
                            rest,
                            "deadline exceeded before this candidate was verified".to_owned(),
                        );
                    }
                }
                Ok(VerifyOutcome {
                    closing: merge.into_closing(),
                    unknown,
                    incomplete,
                })
            }
        }
    })
}

/// Attaches the demonstrating run per accepted candidate: a run matching
/// the motivating term where one exists (quantified terms are not always
/// realizable verbatim), otherwise a *seeded* run — term-matching first,
/// then the first seed — otherwise any bad run. Candidates sharing a
/// motivating term share the run (one query per distinct term). Only
/// deterministic sources are consulted — never the verification pools,
/// whose content depends on worker scheduling — so the reported
/// witnesses are identical for every worker count.
fn attach_witnesses(
    closing: Vec<(Candidate, Ltl)>,
    seed_runs: &[LassoWord],
    base: &[Ltl],
    model: &CoverageModel,
    backend: Backend,
) -> Result<Vec<GapProperty>, CoreError> {
    let mut term_runs: std::collections::BTreeMap<TemporalCube, Option<LassoWord>> =
        std::collections::BTreeMap::new();
    // A degradable refusal here (deadline trip, node budget) must not
    // discard already-confirmed properties: the query result degrades to
    // "no run found" and the deterministic seeded fallback takes over.
    let soft = |r: Result<Option<LassoWord>, CoreError>| match r {
        Ok(w) => Ok(w),
        Err(e) if e.is_degradable() => Ok(None),
        Err(e) => Err(e),
    };
    // Memoized unconstrained bad-run query, for the seedless path.
    let mut any_run: Option<Option<LassoWord>> = None;
    let mut props = Vec::with_capacity(closing.len());
    for (cand, formula) in closing {
        let queried = match term_runs.get(&cand.term) {
            Some(w) => w.clone(),
            None => {
                let w = soft(model.gap_scenario_query(backend, base, None, &cand.term))?;
                term_runs.insert(cand.term.clone(), w.clone());
                w
            }
        };
        let seeded = || {
            seed_runs
                .iter()
                .find(|r| cand.term.holds_on(r, 0))
                .or_else(|| seed_runs.first())
                .cloned()
        };
        let witness = match queried.or_else(seeded) {
            Some(w) => w,
            // The seed pool is empty on the unseeded path; any bad run
            // demonstrates the gap the candidate closes.
            None => {
                let fallback = match &any_run {
                    Some(w) => w.clone(),
                    None => {
                        let w = soft(model.gap_scenario_query(
                            backend,
                            base,
                            None,
                            &TemporalCube::top(),
                        ))?;
                        any_run = Some(w.clone());
                        w
                    }
                };
                match fallback {
                    Some(r) => r,
                    // Genuinely no bad run: `R ∧ ¬fa` is unsatisfiable
                    // (the property is covered), so there is no gap to
                    // represent.
                    None => continue,
                }
            }
        };
        props.push(GapProperty {
            formula,
            position: cand.position,
            literal: cand.literal,
            offset: cand.offset,
            term: cand.term,
            witness,
        });
    }
    Ok(props)
}

/// Step 2(c): pair the variable instances of `fa` with augmentation
/// literals over the *observable alphabet* — the candidate class of
/// Definitions 2/3, enumerated canonically.
///
/// After step 2(b)'s quantification, every term literal `(t, ℓ)` matching
/// an instance at `X`-depth `d` (`t ≥ d`, `t − d ≤ max_offset`) lies in
/// exactly this class, so the terms *prune nothing*: they attribute.
/// Enumerating the whole class — rather than only the literals the
/// enumerated terms happened to mention — makes the candidate pool (and
/// with it the reported weakest-property set) a function of the model
/// alone: two engines that agree on closure verdicts report byte-identical
/// sets, regardless of which counterexample runs their term enumeration
/// found. Candidates are ordered the way the paper's heuristics explore
/// them: instances nested deepest inside *unbounded* temporal operators
/// first (step 2(c) determines that "the gaps lie inside the unbounded
/// operator"; Fig. 6 weakens the until), antecedent (negative) positions
/// before consequent ones, small `X` offsets before large ones; the full
/// sort key (down to the pushed literal) is total, hence canonical.
fn push_candidates(
    fa: &Ltl,
    terms: &[TemporalCube],
    observable: &BTreeSet<dic_logic::SignalId>,
    config: &GapConfig,
) -> Vec<Candidate> {
    let mut seen: BTreeSet<(Vec<usize>, Lit, usize)> = BTreeSet::new();
    let mut out: Vec<(usize, usize, usize, Candidate)> = Vec::new();
    let occurrences = fa.atom_occurrences();
    let max_unbounded = occurrences
        .iter()
        .map(|o| o.unbounded_depth)
        .max()
        .unwrap_or(0);
    for occ in &occurrences {
        let LtlNode::Atom(own) = occ.subformula.node() else {
            continue;
        };
        for offset in 0..=config.max_offset {
            for &s in observable {
                if s == *own && offset == 0 {
                    continue; // augmenting v with v or !v is degenerate
                }
                for l in [Lit::pos(s), Lit::neg(s)] {
                    let key = (occ.position.path().to_vec(), l, offset);
                    if !seen.insert(key) {
                        continue;
                    }
                    let unbounded_rank = max_unbounded - occ.unbounded_depth;
                    let pol_rank = match occ.polarity {
                        Polarity::Negative => 0,
                        Polarity::Positive => 1,
                    };
                    // Attribution: the first enumerated term exhibiting
                    // this literal (in either polarity) at the matching
                    // time, when one exists.
                    let t = occ.x_depth + offset;
                    let term = terms
                        .iter()
                        .find(|term| {
                            term.lits()
                                .iter()
                                .any(|&(tt, tl)| tt == t && tl.signal() == s)
                        })
                        .cloned()
                        .unwrap_or_default();
                    out.push((
                        unbounded_rank,
                        pol_rank,
                        offset,
                        Candidate {
                            position: occ.position.clone(),
                            literal: l,
                            offset,
                            x_depth: occ.x_depth,
                            term,
                        },
                    ));
                }
            }
        }
    }
    out.sort_by_key(|(ur, pol, off, c)| {
        (*ur, *pol, *off, c.position.path().to_vec(), c.literal)
    });
    out.into_iter().map(|(_, _, _, c)| c).collect()
}

/// Applies a candidate: `v ∧ X^k ℓ` at negative positions, `v ∨ X^k ℓ` at
/// positive ones.
fn apply(fa: &Ltl, cand: &Candidate) -> Option<Ltl> {
    let occ = fa.subformula_at(&cand.position)?.clone();
    // Recompute polarity from the stored occurrence list is avoided: the
    // position determines it, so re-walk the tree.
    let polarity = fa
        .atom_occurrences()
        .into_iter()
        .find(|o| o.position == cand.position)?
        .polarity;
    let lit = Ltl::next_n(
        Ltl::literal(cand.literal.signal(), cand.literal.polarity()),
        cand.offset,
    );
    let replacement = match polarity {
        Polarity::Negative => Ltl::and([occ, lit]),
        Polarity::Positive => Ltl::or([occ, lit]),
    };
    fa.replace_at(&cand.position, replacement)
}

/// A fixed-seed pseudo-random sample of lasso words over `signals`.
fn random_words(signals: &BTreeSet<dic_logic::SignalId>) -> Vec<LassoWord> {
    let n = signals.iter().map(|s| s.index() + 1).max().unwrap_or(1);
    let signals: Vec<_> = signals.iter().copied().collect();
    let mut state = 0x9e37_79b9_7f4a_7c15u64; // fixed seed: runs are reproducible
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut words = Vec::with_capacity(64);
    for _ in 0..64 {
        let len = 4 + (next() % 8) as usize;
        let loop_start = (next() % len as u64) as usize;
        let states: Vec<dic_logic::Valuation> = (0..len)
            .map(|_| {
                let mut v = dic_logic::Valuation::all_false(n);
                let bits = next();
                for (k, &s) in signals.iter().enumerate() {
                    v.set(s, bits >> (k % 64) & 1 == 1);
                }
                v
            })
            .collect();
        words.push(LassoWord::new(states, loop_start).expect("loop_start < len"));
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hole::closes_gap;
    use crate::model::CoverageModel;
    use crate::spec::{ArchSpec, RtlSpec};
    use crate::terms::{uncovered_terms, uncovered_terms_with_runs};
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    /// The `en` gap fixture: A = G(req -> XX q), R = G(req & en -> X a),
    /// glue q <= a. The gap is exactly "req with en low".
    fn gapped() -> (SignalTable, ArchSpec, RtlSpec, CoverageModel) {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req & en -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        b.input("en");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        (t, arch, rtl, model)
    }

    #[test]
    fn finds_structure_preserving_gap() {
        let (t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config).expect("runs");
        let gaps = find_gap(fa, &terms, &rtl, &model, &config).expect("runs");
        assert!(!gaps.is_empty(), "expected a structured gap property");
        for g in &gaps {
            // Weaker than FA and closes the gap — re-verify both.
            assert!(dic_automata::implies(fa, &g.formula));
            assert!(closes_gap(&g.formula, fa, &rtl, &model).expect("runs"));
            // The demonstrating run is a genuine bad run.
            assert!(!fa.holds_on(&g.witness));
        }
        // The expected shape mirrors the paper's U: the antecedent is
        // strengthened with the *uncovered scenario* literal (en low is
        // where R says nothing), i.e. G(req & !en -> X X q).
        let expected = {
            let mut t2 = t.clone();
            Ltl::parse("G(req & !en -> X X q)", &mut t2).unwrap()
        };
        assert!(
            gaps.iter()
                .any(|g| dic_automata::equivalent(&g.formula, &expected)),
            "expected G(req & !en -> XX q) among {:?}",
            gaps.iter().map(|g| g.describe(&t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gap_properties_are_weakest() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config).expect("runs");
        let gaps = find_gap(fa, &terms, &rtl, &model, &config).expect("runs");
        // No kept candidate is strictly stronger than another kept one.
        for i in 0..gaps.len() {
            for j in 0..gaps.len() {
                if i != j {
                    assert!(
                        !dic_automata::stronger_than(&gaps[i].formula, &gaps[j].formula),
                        "candidate {i} strictly stronger than {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_pool_does_not_change_the_result() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let (terms, runs) =
            uncovered_terms_with_runs(fa, &rtl, &model, &config).expect("runs");
        let unseeded = find_gap(fa, &terms, &rtl, &model, &config).expect("runs");
        let seeded =
            find_gap_with_runs(fa, &terms, &runs, &rtl, &model, &config).expect("runs");
        let fmt = |gs: &[GapProperty]| {
            let mut v: Vec<String> = gs.iter().map(|g| format!("{:?}", g.formula)).collect();
            v.sort();
            v
        };
        assert_eq!(fmt(&unseeded), fmt(&seeded), "seeding is a pure optimization");
    }

    /// Regression: a subsumed closing candidate must refund its
    /// `max_gap_properties` slot. FA = `G(p -> q U r)` over four free
    /// inputs; the lone RTL property `G !l` pins `l` low, so three
    /// candidates close the gap in strictly increasing weakness along
    /// the canonical order: `q ∨ r` (≡ FA), then `q ∨ l` (≡ FA under
    /// `G !l`, strictly weaker as a formula), then `r ∨ l` — the
    /// weakest, `G(p -> q U (r | l))`. With a budget of 2 the
    /// historical loop admitted the first two closing candidates, hit
    /// the budget, stopped verifying, and the weakest-only post-filter
    /// then dropped one of them — reporting the strictly stronger
    /// `G(p -> (q | l) U r)` with an underfilled budget, a function of
    /// the verification order rather than of the model. The merge
    /// refunds the slot of every subsumed candidate, so verification
    /// reaches the genuinely weakest one and reports exactly it — at
    /// any worker count.
    #[test]
    fn subsumed_candidates_refund_their_budget_slot() {
        let mut t = SignalTable::new();
        let fa = Ltl::parse("G(p -> q U r)", &mut t).unwrap();
        let r_prop = Ltl::parse("G !l", &mut t).unwrap();
        let mut b = ModuleBuilder::new("free", &mut t);
        b.input("p");
        b.input("q");
        b.input("r");
        let l = b.input("l");
        let d = b.latch_from("d", l, false);
        b.mark_output(d);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", fa)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let fa = arch.properties()[0].formula();
        let term = TemporalCube::from_lits([(0, Lit::neg(l))]).unwrap();
        let weakest = {
            let mut t2 = t.clone();
            Ltl::parse("G(p -> q U (r | l))", &mut t2).unwrap()
        };
        let stronger = {
            let mut t2 = t.clone();
            Ltl::parse("G(p -> (q | l) U r)", &mut t2).unwrap()
        };
        for jobs in [1, 4] {
            let config = GapConfig {
                max_offset: 0,
                max_gap_properties: 2,
                jobs,
                ..GapConfig::default()
            };
            let gaps = find_gap(fa, std::slice::from_ref(&term), &rtl, &model, &config)
                .expect("runs");
            let shown: Vec<String> = gaps.iter().map(|g| g.describe(&t)).collect();
            assert_eq!(
                gaps.len(),
                1,
                "jobs={jobs}: expected exactly the weakest property, got {shown:?}"
            );
            assert!(
                dic_automata::equivalent(&gaps[0].formula, &weakest),
                "jobs={jobs}: expected G(p -> q U (r | l)), got {shown:?}"
            );
            assert!(
                !dic_automata::implies(&gaps[0].formula, &stronger),
                "jobs={jobs}: reported a property at least as strong as the \
                 order-dependent screen's G(p -> (q | l) U r)"
            );
            // The demonstrating run is a genuine bad run.
            assert!(!fa.holds_on(&gaps[0].witness));
        }
    }

    #[test]
    fn covered_spec_yields_no_candidates() {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config).expect("runs");
        assert!(terms.is_empty());
        let gaps = find_gap(fa, &terms, &rtl, &model, &config).expect("runs");
        assert!(gaps.is_empty());
    }
}
