//! Backend selection: explicit-state vs symbolic model checking.

use crate::spec::{ArchSpec, RtlSpec};
use std::fmt;

/// Number of state bits (latches + nondeterministic inputs) above which
/// [`Backend::Auto`] switches the primary coverage question to the
/// symbolic engine.
///
/// Below this the explicit engine's cache-friendly enumeration wins (its
/// product graphs have a few thousand nodes); above it the `2^bits`
/// state×input enumeration starts to dominate everything else in the
/// pipeline while BDD sizes stay polynomial for typical control logic.
/// The crossover was measured on the packaged designs: mal-26 (17 bits)
/// drops from ~45 s explicit to well under a second symbolically, while
/// the small fixtures (≤ 10 bits) stay fastest explicit.
pub const AUTO_SYMBOLIC_BITS: usize = 14;

/// Predicted product cost (total automaton code bits × conjunct count,
/// see [`predicted_product_cost`]) above which [`Backend::Auto`] prefers
/// the symbolic engine even for a *small* state space.
///
/// State bits are only one axis of the real cost: the explicit engine
/// explores the on-the-fly product of the design with *every* property
/// automaton, so a sufficiently wide conjunction over a small design can
/// be explicit-hostile on width alone. The crossover is re-derived from
/// **post-reduction** automaton sizes (the automaton reduction pipeline
/// shrinks every product, but it shrinks the explicit engine's
/// per-candidate closure products the most): amba-ahb — 7 state bits, 29
/// conjuncts, post-reduction cost ≈ 1980 — runs its full explicit gap
/// phase in ~8 s. The complement-edge BDD core (anchored primary
/// products, partitioned relations, budget-scale reorder trigger) cut
/// the same design's forced-symbolic run from ~230 s to ~40 s, but
/// explicit still wins by ~5×, so the threshold stays above amba-ahb
/// (pre-reduction it was 800, which sent amba-ahb symbolic). The cost
/// axis still guards genuinely wider suites; within Table 1 the
/// state-bit axis ([`AUTO_SYMBOLIC_BITS`], mal-26's trigger) is the
/// live one. As with every crossover constant here, n=4: the packaged
/// designs are the only tuning set, so treat the margin as coarse.
pub const AUTO_SYMBOLIC_PRODUCT_COST: usize = 2600;

/// The product-size axis of the [`Backend::Auto`] crossover: total
/// automaton code bits × conjunct count, maximized over the architectural
/// properties (each property's primary/gap queries run against
/// `R ∧ ¬fa`). The sizes are those of the *reduced* automata — the
/// translations go through [`dic_automata::translate_cached`], i.e. the
/// full reduction pipeline — and are memoized process-wide, so the
/// engines reuse them when they encode the very same automata later.
pub fn predicted_product_cost(arch: &ArchSpec, rtl: &RtlSpec) -> usize {
    let code_bits = |f: &dic_ltl::Ltl| -> usize {
        dic_automata::code_bits(dic_automata::translate_cached(f).num_states())
    };
    let rtl_bits: usize = rtl.formulas().iter().map(code_bits).sum();
    let conjuncts = rtl.formulas().len() + 1;
    arch.properties()
        .iter()
        .map(|p| (rtl_bits + code_bits(&dic_ltl::Ltl::not(p.formula().clone()))) * conjuncts)
        .max()
        .unwrap_or(0)
}

/// Which model-checking engine answers the primary coverage question
/// (Theorem 1) and related existential queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Explicit-state enumeration (`dic_fsm::Kripke` + Tarjan emptiness).
    /// Faithful to the paper; refuses models beyond
    /// [`dic_fsm::KRIPKE_BIT_LIMIT`] state bits.
    Explicit,
    /// BDD-based symbolic reachability and fair-cycle detection
    /// (`dic_symbolic`). Handles state spaces the explicit engine cannot;
    /// refuses past its node budget instead.
    Symbolic,
    /// Pick per model: explicit below [`AUTO_SYMBOLIC_BITS`] state bits,
    /// symbolic above. The explicit structure is still built alongside
    /// whenever it fits, because the gap-representation machinery
    /// (Algorithm 1) runs on it.
    #[default]
    Auto,
}

impl Backend {
    /// Parses a CLI-style backend name.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "explicit" => Some(Backend::Explicit),
            "symbolic" => Some(Backend::Symbolic),
            "auto" => Some(Backend::Auto),
            _ => None,
        }
    }

    /// How many of `workers` threads can run closure *fixpoints*
    /// concurrently on this backend.
    ///
    /// The explicit engine's per-candidate products are independent
    /// structures, so every worker fixpoints freely. The symbolic
    /// engine's `BddManager` scratch regions are single-threaded: its
    /// fixpoints serialize on the engine lock, effectively one at a time
    /// — the workers still overlap the word-level screens and act as the
    /// queue a coordinating thread drains. Reported in the run's jobs
    /// statistics so the serialization is visible, not silent.
    pub fn fixpoint_parallelism(self, workers: usize) -> usize {
        match self {
            Backend::Symbolic => workers.min(1),
            Backend::Explicit | Backend::Auto => workers,
        }
    }
}

/// Strict parse of the `SPECMATCHER_JOBS` worker-count override: unset
/// means "no override" (`Ok(None)`), a positive integer wins, and
/// anything else — empty, zero, negative, garbage — is rejected with a
/// message naming the variable, mirroring the fail-closed
/// `SPECMATCHER_BDD_NODE_LIMIT` contract. Entry points validate this
/// before building a model so a typo surfaces as a usage error instead
/// of a silently sequential run; library paths that merely *read* the
/// setting treat errors as "no override".
pub fn jobs_from_env() -> Result<Option<usize>, String> {
    let Ok(v) = std::env::var("SPECMATCHER_JOBS") else {
        return Ok(None);
    };
    match v.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(format!(
            "invalid SPECMATCHER_JOBS {v:?}: expected a positive worker count"
        )),
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Explicit => "explicit",
            Backend::Symbolic => "symbolic",
            Backend::Auto => "auto",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for b in [Backend::Explicit, Backend::Symbolic, Backend::Auto] {
            assert_eq!(Backend::parse(&b.to_string()), Some(b));
        }
        assert_eq!(Backend::parse("magic"), None);
        assert_eq!(Backend::default(), Backend::Auto);
    }

    #[test]
    fn symbolic_fixpoints_serialize() {
        assert_eq!(Backend::Explicit.fixpoint_parallelism(4), 4);
        assert_eq!(Backend::Auto.fixpoint_parallelism(4), 4);
        assert_eq!(Backend::Symbolic.fixpoint_parallelism(4), 1);
        assert_eq!(Backend::Symbolic.fixpoint_parallelism(0), 0);
    }
}
