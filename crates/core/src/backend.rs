//! Backend selection: explicit-state vs symbolic model checking.

use std::fmt;

/// Number of state bits (latches + nondeterministic inputs) above which
/// [`Backend::Auto`] switches the primary coverage question to the
/// symbolic engine.
///
/// Below this the explicit engine's cache-friendly enumeration wins (its
/// product graphs have a few thousand nodes); above it the `2^bits`
/// state×input enumeration starts to dominate everything else in the
/// pipeline while BDD sizes stay polynomial for typical control logic.
/// The crossover was measured on the packaged designs: mal-26 (17 bits)
/// drops from ~45 s explicit to well under a second symbolically, while
/// the small fixtures (≤ 10 bits) stay fastest explicit.
pub const AUTO_SYMBOLIC_BITS: usize = 14;

/// Which model-checking engine answers the primary coverage question
/// (Theorem 1) and related existential queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Explicit-state enumeration (`dic_fsm::Kripke` + Tarjan emptiness).
    /// Faithful to the paper; refuses models beyond
    /// [`dic_fsm::KRIPKE_BIT_LIMIT`] state bits.
    Explicit,
    /// BDD-based symbolic reachability and fair-cycle detection
    /// (`dic_symbolic`). Handles state spaces the explicit engine cannot;
    /// refuses past its node budget instead.
    Symbolic,
    /// Pick per model: explicit below [`AUTO_SYMBOLIC_BITS`] state bits,
    /// symbolic above. The explicit structure is still built alongside
    /// whenever it fits, because the gap-representation machinery
    /// (Algorithm 1) runs on it.
    #[default]
    Auto,
}

impl Backend {
    /// Parses a CLI-style backend name.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "explicit" => Some(Backend::Explicit),
            "symbolic" => Some(Backend::Symbolic),
            "auto" => Some(Backend::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Explicit => "explicit",
            Backend::Symbolic => "symbolic",
            Backend::Auto => "auto",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for b in [Backend::Explicit, Backend::Symbolic, Backend::Auto] {
            assert_eq!(Backend::parse(&b.to_string()), Some(b));
        }
        assert_eq!(Backend::parse("magic"), None);
        assert_eq!(Backend::default(), Backend::Auto);
    }
}
