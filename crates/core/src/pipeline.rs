//! The SpecMatcher pipeline: end-to-end coverage analysis with the
//! per-phase timing breakdown of the paper's Table 1.

use crate::backend::Backend;
use crate::bmc::BmcMode;
use crate::error::CoreError;
use crate::hole::exact_hole;
use crate::model::CoverageModel;
use crate::spec::{ArchSpec, RtlSpec};
use crate::terms::uncovered_terms_with_runs;
use crate::tm::{tm_for_modules, TmStyle};
use crate::weaken::{find_gap_outcome, GapConfig, GapProperty, UnknownGap};
use dic_logic::SignalTable;
use dic_ltl::{LassoWord, Ltl, TemporalCube};
use dic_symbolic::{PartitionMode, ReorderMode, ReorderStats, SymbolicOptions};
use std::fmt::Write as _;
use std::time::Duration;

/// Wall-clock spent in each phase of the analysis — the three timing
/// columns of the paper's Table 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Answering the primary coverage question (Theorem 1 model checking).
    pub primary: Duration,
    /// Building `T_M` for the concrete modules (Definition 4).
    pub tm_build: Duration,
    /// Finding and representing the coverage gap (Algorithm 1).
    pub gap_find: Duration,
}

impl PhaseTimings {
    fn add(&mut self, other: PhaseTimings) {
        self.primary += other.primary;
        self.tm_build += other.tm_build;
        self.gap_find += other.gap_find;
    }
}

/// Engine counter deltas attributed to each pipeline phase — the counter
/// analogue of [`PhaseTimings`], populated only when `dic_trace` is
/// enabled (the snapshots cost atomic reads per phase boundary, which the
/// disabled path must not pay).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Work answering the primary coverage questions (Theorem 1).
    pub primary: dic_trace::CounterSnapshot,
    /// Work building `T_M` (Definition 4).
    pub tm_build: dic_trace::CounterSnapshot,
    /// Work finding and representing the gap (Algorithm 1).
    pub gap_find: dic_trace::CounterSnapshot,
}

/// Worker-thread accounting for the run, per phase — the parallel
/// analogue of the reordering statistics: enough to see from a report
/// whether the closure fan-out actually ran and how wide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobsStats {
    /// The resolved worker count for candidate closure verification
    /// ([`GapConfig::effective_jobs`]).
    pub requested: usize,
    /// Workers on the primary coverage question — always 1 (one Theorem 1
    /// query per property; parallelizing across properties is a ROADMAP
    /// item, not this refactor).
    pub primary: usize,
    /// Workers fanned out over gap-phase candidate verification.
    pub gap_workers: usize,
    /// Closure *fixpoints* that can run concurrently on the gap backend:
    /// equals `gap_workers` on the explicit engine, 1 on the symbolic
    /// engine (`BddManager` scratch regions are single-threaded — workers
    /// still overlap the word-level screens). See
    /// [`Backend::fixpoint_parallelism`].
    pub gap_fixpoints: usize,
}

/// Coverage result for one architectural property.
#[derive(Clone, Debug)]
pub struct PropertyReport {
    /// Name of the architectural property.
    pub name: String,
    /// The property itself.
    pub formula: Ltl,
    /// Whether the RTL specification covers it (Theorem 1). Meaningless
    /// when [`PropertyReport::unknown`] is set — the question was never
    /// settled.
    pub covered: bool,
    /// Why the primary verdict could not be settled (resource refusal or
    /// deadline trip), when the run degraded instead of aborting. `None`
    /// for every settled verdict.
    pub unknown: Option<String>,
    /// A run refuting coverage, when not covered.
    pub witness: Option<LassoWord>,
    /// Uncovered terms `UM` (Algorithm 1 step 2(a)/(b)).
    pub uncovered_terms: Vec<TemporalCube>,
    /// Structure-preserving gap properties (steps 2(c)/(d)), weakest first.
    pub gap_properties: Vec<GapProperty>,
    /// Gap candidates whose closure verdict could not be settled before a
    /// resource refusal or deadline trip (empty on a complete run).
    pub unknown_gaps: Vec<UnknownGap>,
    /// The exact hole `FA ∨ ¬(R ∧ T_M)` of Theorem 2 (fallback form).
    pub exact_hole: Ltl,
    /// Per-phase wall-clock for this property.
    pub timings: PhaseTimings,
    /// The engine that answered the primary question for this property.
    pub backend: Backend,
    /// The engine that ran the gap phase (Algorithm 1) for this property.
    pub gap_backend: Backend,
}

impl PropertyReport {
    /// Human-readable report.
    pub fn render(&self, table: &SignalTable) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "property {}: {}", self.name, self.formula.display(table));
        if let Some(reason) = &self.unknown {
            let _ = writeln!(out, "  UNKNOWN — verdict not settled: {reason}");
            return out;
        }
        if self.covered {
            let _ = writeln!(out, "  COVERED by the RTL specification");
            return out;
        }
        let _ = writeln!(out, "  NOT covered — coverage gap exists");
        if let Some(w) = &self.witness {
            let _ = writeln!(
                out,
                "  witness run ({} states, loop at {}):",
                w.len(),
                w.loop_start()
            );
            for (i, st) in w.states().iter().enumerate() {
                let mark = if i == w.loop_start() { "->" } else { "  " };
                let _ = writeln!(out, "   {mark} t{i}: {}", st.display(table));
            }
        }
        if !self.uncovered_terms.is_empty() {
            let _ = writeln!(out, "  uncovered terms UM:");
            for term in &self.uncovered_terms {
                let _ = writeln!(out, "    {}", term.display(table));
            }
        }
        if self.gap_properties.is_empty() {
            let _ = writeln!(
                out,
                "  no structure-preserving gap property found; exact hole (Thm 2):"
            );
            let _ = writeln!(out, "    {}", self.exact_hole.display(table));
        } else {
            let _ = writeln!(out, "  gap properties (weakest first):");
            for g in &self.gap_properties {
                let _ = writeln!(out, "    {}", g.describe(table));
            }
        }
        if !self.unknown_gaps.is_empty() {
            let _ = writeln!(out, "  unverified gap candidates:");
            for u in &self.unknown_gaps {
                let _ = writeln!(
                    out,
                    "    unknown: {} — {}",
                    u.formula.display(table),
                    u.diagnostic
                );
            }
        }
        out
    }
}

/// Result of a full [`SpecMatcher::check`] run.
#[derive(Clone, Debug)]
pub struct CoverageRun {
    /// Per-property reports, in intent order.
    pub properties: Vec<PropertyReport>,
    /// `T_M` of the composed concrete modules.
    pub tm: Ltl,
    /// Aggregate timings (the Table 1 row for this design).
    pub timings: PhaseTimings,
    /// Number of RTL properties (Table 1's first column).
    pub num_rtl_properties: usize,
    /// The engine that answered the primary questions (resolved from the
    /// matcher's requested backend at model-build time).
    pub backend: Backend,
    /// The engine that ran the gap phases ([`Backend::Auto`] resolves per
    /// phase, so this can differ from [`CoverageRun::backend`]).
    pub gap_backend: Backend,
    /// Whether the bounded SAT refutation tier ran ahead of the closure
    /// fixpoints (the gap-property sets are identical either way).
    pub bmc: BmcMode,
    /// Dynamic-reordering statistics of the symbolic engine (`None` when
    /// no symbolic engine was built for this run).
    pub reorder: Option<ReorderStats>,
    /// Worker-thread accounting per phase.
    pub jobs: JobsStats,
    /// Per-phase engine counter deltas; `None` unless `dic_trace` was
    /// enabled for the run (e.g. the CLI's `--profile` / `--trace-out`).
    pub counters: Option<PhaseCounters>,
    /// Why the run degraded to a partial report (deadline trip or resource
    /// refusal mid-analysis), when it did. Every verdict in the report is
    /// still settled and sound — the reason names what was left undone.
    pub incomplete: Option<String>,
}

impl CoverageRun {
    /// Whether every architectural property is covered. Unsettled verdicts
    /// count as not covered — a partial run never claims full coverage.
    pub fn all_covered(&self) -> bool {
        self.properties.iter().all(|p| p.covered && p.unknown.is_none())
    }

    /// Whether at least one property was *settled* as not covered —
    /// unknown verdicts don't count. This is what decides exit 1 vs exit 3
    /// for an incomplete run: a confirmed gap is actionable even when the
    /// scan was cut short.
    pub fn has_confirmed_gap(&self) -> bool {
        self.properties.iter().any(|p| !p.covered && p.unknown.is_none())
    }

    /// Renders all reports plus the timing summary.
    pub fn render(&self, table: &SignalTable) -> String {
        let mut out = String::new();
        for p in &self.properties {
            out.push_str(&p.render(table));
        }
        let _ = writeln!(
            out,
            "timings (primary backend {}, gap backend {}, bmc {}): primary {:?}, TM build {:?}, gap finding {:?}",
            self.backend,
            self.gap_backend,
            self.bmc,
            self.timings.primary,
            self.timings.tm_build,
            self.timings.gap_find
        );
        if let Some(r) = &self.reorder {
            if r.count > 0 || r.compactions > 0 {
                let _ = writeln!(
                    out,
                    "reordering: {} sifting reorders ({} -> {} live nodes summed across sifts), {} compactions",
                    r.count, r.nodes_before, r.nodes_after, r.compactions
                );
            }
            if r.gc_collections > 0 || r.peak_nodes > 0 {
                let _ = writeln!(
                    out,
                    "bdd gc: {} generational collections freed {} nodes (peak {} nodes incl. scratch)",
                    r.gc_collections, r.gc_freed, r.peak_nodes
                );
            }
        }
        let _ = writeln!(
            out,
            "jobs: {} workers (primary {}, gap verification {}, gap fixpoints {})",
            self.jobs.requested, self.jobs.primary, self.jobs.gap_workers, self.jobs.gap_fixpoints
        );
        if let Some(reason) = &self.incomplete {
            let _ = writeln!(out, "incomplete: {reason}");
        }
        out
    }
}

/// The coverage checker (the paper's *SpecMatcher* tool).
///
/// See the [crate-level example](crate).
#[derive(Clone, Debug, Default)]
pub struct SpecMatcher {
    config: GapConfig,
    tm_style: TmStyle,
    backend: Backend,
    reorder: ReorderMode,
    partition: Option<PartitionMode>,
    bmc: BmcMode,
}

impl SpecMatcher {
    /// Creates a checker with the given gap-finding configuration (and the
    /// default [`Backend::Auto`] engine selection with dynamic reordering).
    pub fn new(config: GapConfig) -> Self {
        SpecMatcher {
            config,
            tm_style: TmStyle::default(),
            backend: Backend::default(),
            reorder: ReorderMode::default(),
            partition: None,
            bmc: BmcMode::default(),
        }
    }

    /// Overrides the `T_M` construction style (ablation hook).
    pub fn with_tm_style(mut self, style: TmStyle) -> Self {
        self.tm_style = style;
        self
    }

    /// Selects the model-checking backend for *both* phases: the primary
    /// coverage question (resolved at model-build time) and the gap phase
    /// (this also sets [`GapConfig::backend`], so forcing `explicit` or
    /// `symbolic` here is honored end to end). For a per-phase split,
    /// set [`GapConfig::backend`] on the configuration instead.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self.config.backend = backend;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &GapConfig {
        &self.config
    }

    /// The requested backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Selects the symbolic engine's dynamic-reordering mode
    /// ([`ReorderMode::Auto`] by default; `Off` pins the static
    /// registration order — mostly an A/B and debugging lever).
    pub fn with_reorder(mut self, reorder: ReorderMode) -> Self {
        self.reorder = reorder;
        self
    }

    /// The requested reorder mode.
    pub fn reorder(&self) -> ReorderMode {
        self.reorder
    }

    /// Overrides the symbolic engine's transition-relation partitioning
    /// (the CLI's `--partition`). When unset the mode comes from
    /// `SPECMATCHER_BDD_PARTITION`, defaulting to [`PartitionMode::Auto`]
    /// (greedy conjunctive clustering); `Off` keeps one conjunct per
    /// latch/automaton. The reported property sets are byte-identical
    /// either way — only node counts and time change.
    pub fn with_partition(mut self, partition: PartitionMode) -> Self {
        self.partition = Some(partition);
        self
    }

    /// The requested partition mode, if explicitly overridden.
    pub fn partition(&self) -> Option<PartitionMode> {
        self.partition
    }

    /// Selects the bounded-refutation mode (the CLI's `--bmc`;
    /// [`BmcMode::Auto`] by default). With `Auto`, every gap-phase closure
    /// query first asks the SAT tier for a `k`-bounded refuting run and
    /// only falls through to the fixpoint engines on an inconclusive
    /// bound; the reported gap-property sets are byte-identical across
    /// modes. Takes effect on the model [`SpecMatcher::check`] builds —
    /// when reusing a prebuilt model via [`SpecMatcher::check_with_model`],
    /// set [`CoverageModel::set_bmc_mode`] on it instead.
    pub fn with_bmc(mut self, bmc: BmcMode) -> Self {
        self.bmc = bmc;
        self
    }

    /// The requested bounded-refutation mode.
    pub fn bmc(&self) -> BmcMode {
        self.bmc
    }

    /// Overrides the closure-verification worker count (the CLI's
    /// `--jobs`). `0` keeps the default resolution:
    /// `SPECMATCHER_JOBS` when set, otherwise the machine's available
    /// parallelism. The reported property set is identical for every
    /// value; see [`GapConfig::jobs`].
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs;
        self
    }

    /// Runs the full analysis: primary coverage for every architectural
    /// property (Theorem 1), `T_M` construction (Definition 4), and — for
    /// every uncovered property — gap extraction and representation
    /// (Algorithm 1, with Theorem 2 as fallback).
    ///
    /// # Errors
    ///
    /// Model-construction failures; see [`CoverageModel::build`].
    pub fn check(
        &self,
        arch: &ArchSpec,
        rtl: &RtlSpec,
        table: &SignalTable,
    ) -> Result<CoverageRun, CoreError> {
        let mut options = SymbolicOptions::from_env()
            .map_err(CoreError::Symbolic)?
            .with_reorder(self.reorder);
        if let Some(partition) = self.partition {
            options = options.with_partition(partition);
        }
        let mut model =
            CoverageModel::build_with_symbolic_options(arch, rtl, table, self.backend, options)?;
        model.set_bmc_mode(self.bmc);
        self.check_with_model(arch, rtl, table, &model)
    }

    /// Like [`SpecMatcher::check`] but reusing a prebuilt model (the
    /// benchmark harness separates model construction from the timed
    /// phases).
    ///
    /// # Errors
    ///
    /// `T_M` construction can exceed the explicit state-space limit.
    pub fn check_with_model(
        &self,
        arch: &ArchSpec,
        rtl: &RtlSpec,
        table: &SignalTable,
        model: &CoverageModel,
    ) -> Result<CoverageRun, CoreError> {
        let mut counters = dic_trace::enabled().then(PhaseCounters::default);

        // Phase: TM building (Definition 4) — once per design.
        let base = counters.as_ref().map(|_| dic_trace::CounterSnapshot::capture());
        let tm_span = dic_trace::span("phase.tm_build");
        let tm_start = dic_trace::Stopwatch::start();
        let tm = tm_for_modules(rtl.concrete(), table, self.tm_style)?;
        let tm_build = tm_start.elapsed();
        drop(tm_span);
        if let (Some(c), Some(b)) = (counters.as_mut(), base.as_ref()) {
            c.tm_build.merge(&b.delta_since());
        }

        let gap_backend = model.gap_backend_choice(self.config.backend);
        let requested_jobs = self.config.effective_jobs();
        let jobs = JobsStats {
            requested: requested_jobs,
            primary: 1,
            gap_workers: requested_jobs,
            gap_fixpoints: gap_backend.fixpoint_parallelism(requested_jobs),
        };
        let mut reports = Vec::with_capacity(arch.len());
        let mut total = PhaseTimings {
            tm_build,
            ..PhaseTimings::default()
        };
        let mut incomplete: Option<String> = None;
        let mut deadline_hit = false;
        for prop in arch.properties() {
            let fa = prop.formula();

            // A deadline trip is terminal for the whole scan — later
            // properties would trip at their first checkpoint anyway, so
            // report them unknown without spinning the engines up again.
            if deadline_hit {
                reports.push(PropertyReport {
                    name: prop.name().to_owned(),
                    formula: fa.clone(),
                    covered: false,
                    unknown: Some("deadline exceeded before this property was analyzed".into()),
                    witness: None,
                    uncovered_terms: Vec::new(),
                    gap_properties: Vec::new(),
                    unknown_gaps: Vec::new(),
                    exact_hole: exact_hole(fa, rtl, &tm),
                    timings: PhaseTimings::default(),
                    backend: model.primary_backend(),
                    gap_backend,
                });
                continue;
            }

            // Phase: primary coverage question (Theorem 1), answered by
            // the backend the model was built with.
            let base = counters.as_ref().map(|_| dic_trace::CounterSnapshot::capture());
            let primary_span = dic_trace::span("phase.primary");
            let t0 = dic_trace::Stopwatch::start();
            let primary_result = crate::primary_coverage(fa, rtl, model);
            let primary = t0.elapsed();
            drop(primary_span);
            if let (Some(c), Some(b)) = (counters.as_mut(), base.as_ref()) {
                c.primary.merge(&b.delta_since());
            }
            let witness = match primary_result {
                Ok(w) => w,
                Err(e) if e.is_degradable() => {
                    // Degrade: the verdict stays unknown, the run keeps
                    // going (a deadline stops the scan, a per-model
                    // resource refusal may still let later properties
                    // settle — they drive different automata products).
                    deadline_hit = e.is_deadline();
                    let reason = e.to_string();
                    if incomplete.is_none() {
                        incomplete = Some(format!(
                            "{reason} while answering the primary question for {}",
                            prop.name()
                        ));
                    }
                    let timings = PhaseTimings {
                        primary,
                        ..PhaseTimings::default()
                    };
                    total.add(timings);
                    reports.push(PropertyReport {
                        name: prop.name().to_owned(),
                        formula: fa.clone(),
                        covered: false,
                        unknown: Some(reason),
                        witness: None,
                        uncovered_terms: Vec::new(),
                        gap_properties: Vec::new(),
                        unknown_gaps: Vec::new(),
                        exact_hole: exact_hole(fa, rtl, &tm),
                        timings,
                        backend: model.primary_backend(),
                        gap_backend,
                    });
                    continue;
                }
                Err(e) => return Err(e),
            };
            let covered = witness.is_none();

            // Phase: gap finding (Algorithm 1), on the per-phase gap
            // backend: the explicit factored products below the crossover,
            // the symbolic closure engine above it — so models past the
            // explicit state limit get structured gap reports too. The
            // enumeration runs seed the closure loop's bad-run pool.
            let base = counters.as_ref().map(|_| dic_trace::CounterSnapshot::capture());
            let gap_span = dic_trace::span("phase.gap_find");
            let t1 = dic_trace::Stopwatch::start();
            let mut gap_incomplete: Option<String> = None;
            let (terms, gaps, unknown_gaps) = if covered {
                (Vec::new(), Vec::new(), Vec::new())
            } else {
                match uncovered_terms_with_runs(fa, rtl, model, &self.config) {
                    Ok((terms, runs)) => {
                        match find_gap_outcome(fa, &terms, &runs, rtl, model, &self.config) {
                            Ok(outcome) => {
                                gap_incomplete = outcome.incomplete;
                                (terms, outcome.properties, outcome.unknown)
                            }
                            Err(e) if e.is_degradable() => {
                                gap_incomplete = Some(format!(
                                    "{e} during gap extraction for {}",
                                    prop.name()
                                ));
                                deadline_hit |= e.is_deadline();
                                (terms, Vec::new(), Vec::new())
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Err(e) if e.is_degradable() => {
                        gap_incomplete =
                            Some(format!("{e} while enumerating uncovered terms for {}", prop.name()));
                        deadline_hit |= e.is_deadline();
                        (Vec::new(), Vec::new(), Vec::new())
                    }
                    Err(e) => return Err(e),
                }
            };
            if let Some(reason) = &gap_incomplete {
                // A deadline trip is sticky (monotone wall clock), so ask
                // the governor directly rather than parsing the reason.
                deadline_hit |= dic_fault::deadline_expired();
                if incomplete.is_none() {
                    incomplete = Some(reason.clone());
                }
            }
            let gap_find = t1.elapsed();
            drop(gap_span);
            if let (Some(c), Some(b)) = (counters.as_mut(), base.as_ref()) {
                c.gap_find.merge(&b.delta_since());
            }

            let timings = PhaseTimings {
                primary,
                tm_build: Duration::ZERO,
                gap_find,
            };
            total.add(timings);
            reports.push(PropertyReport {
                name: prop.name().to_owned(),
                formula: fa.clone(),
                covered,
                unknown: None,
                witness,
                uncovered_terms: terms,
                gap_properties: gaps,
                unknown_gaps,
                exact_hole: exact_hole(fa, rtl, &tm),
                timings,
                backend: model.primary_backend(),
                gap_backend,
            });
        }

        Ok(CoverageRun {
            properties: reports,
            tm,
            timings: total,
            num_rtl_properties: rtl.num_properties(),
            backend: model.primary_backend(),
            gap_backend,
            bmc: model.bmc_mode(),
            reorder: model.reorder_stats(),
            jobs,
            counters,
            incomplete,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_netlist::ModuleBuilder;

    fn fixture(gap: bool) -> (SignalTable, ArchSpec, RtlSpec) {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_src = if gap {
            "G(req & en -> X a)"
        } else {
            "G(req -> X a)"
        };
        let r_prop = Ltl::parse(r_src, &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        if gap {
            b.input("en");
        }
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        (
            t,
            ArchSpec::new([("A1", a_prop)]),
            RtlSpec::new([("R1", r_prop)], [m]),
        )
    }

    #[test]
    fn covered_run() {
        let (t, arch, rtl) = fixture(false);
        let run = SpecMatcher::new(GapConfig::default())
            .check(&arch, &rtl, &t)
            .expect("runs");
        assert!(run.all_covered());
        assert!(run.properties[0].witness.is_none());
        assert!(run.properties[0].gap_properties.is_empty());
        let text = run.render(&t);
        assert!(text.contains("COVERED"));
    }

    #[test]
    fn uncovered_run_produces_gap() {
        let (t, arch, rtl) = fixture(true);
        let run = SpecMatcher::new(GapConfig::default())
            .check(&arch, &rtl, &t)
            .expect("runs");
        assert!(!run.all_covered());
        let rep = &run.properties[0];
        assert!(rep.witness.is_some());
        assert!(!rep.uncovered_terms.is_empty());
        assert!(!rep.gap_properties.is_empty());
        let text = run.render(&t);
        assert!(text.contains("NOT covered"));
        assert!(text.contains("gap properties"));
    }

    #[test]
    fn timings_are_populated() {
        let (t, arch, rtl) = fixture(true);
        let run = SpecMatcher::new(GapConfig::default())
            .check(&arch, &rtl, &t)
            .expect("runs");
        assert!(run.timings.primary > Duration::ZERO);
        assert!(run.timings.gap_find > Duration::ZERO);
        assert_eq!(run.num_rtl_properties, 1);
    }

    #[test]
    fn enumerated_style_also_works() {
        let (t, arch, rtl) = fixture(false);
        let run = SpecMatcher::new(GapConfig::default())
            .with_tm_style(TmStyle::Enumerated)
            .check(&arch, &rtl, &t)
            .expect("runs");
        assert!(run.all_covered());
        assert!(run.tm.size() > 1);
    }
}
