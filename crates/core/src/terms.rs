//! Uncovered terms: step 2(a)/2(b) of the paper's Algorithm 1.
//!
//! The hole `U = FA ∨ ¬(R ∧ T_M)` is approximated by a set `UM` of bounded
//! *uncovered terms* — temporal cubes like `r1 & X r2 & X X !hit` describing
//! scenarios on which the RTL spec can still violate the intent. Instead of
//! unfolding `U` symbolically to its fixpoint, we enumerate distinct
//! counterexample runs of `R ∧ ¬FA` in `M` (each is a lasso), truncate them
//! to depth-bounded cubes, and *generalize* each cube by dropping literals
//! while the scenario stays realizable-and-bad. Signals outside the
//! observable alphabet are then removed by universal quantification over
//! positioned variables (sound for bounded formulas), exactly as in the
//! paper's step 2(b).
//!
//! Every scenario query dispatches through the model's gap backend
//! ([`GapConfig::backend`]): the explicit engine answers it on memoized
//! factored products, the symbolic engine by pushing the scenario cube
//! through the cached base product's frontier BDDs — so term enumeration
//! works (and stays fast) on models far beyond the explicit state limit.

use crate::backend::Backend;
use crate::error::CoreError;
use crate::model::CoverageModel;
use crate::spec::RtlSpec;
use crate::weaken::GapConfig;
use dic_ltl::cube::{exists_eliminate, forall_eliminate};
use dic_ltl::{LassoWord, Ltl, LtlNode, TemporalCube};

/// Computes the uncovered terms `UM` for one architectural property.
///
/// Each returned cube `c` satisfies: some run of `M` consistent with `R`
/// matches `c` at time 0 and violates `fa` — i.e. the gap is non-empty on
/// the scenario `c` — and every literal of `c` is *essential*: flipping it
/// makes the (window-anchored) violation impossible. Together the cubes
/// cover every counterexample found within the enumeration budget.
///
/// # Errors
///
/// Backend resolution and symbolic-engine failures; see
/// [`CoverageModel::gap_backend`].
pub fn uncovered_terms(
    fa: &Ltl,
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Result<Vec<TemporalCube>, CoreError> {
    Ok(uncovered_terms_with_runs(fa, rtl, model, config)?.0)
}

/// Like [`uncovered_terms`], but also returns the counterexample runs the
/// terms were enumerated from. The runs are genuine runs of
/// `M ⊨ R ∧ ¬fa`: [`find_gap_with_runs`](crate::weaken::find_gap_with_runs)
/// seeds its bad-run pool with them, rejecting most non-closing weakening
/// candidates by word evaluation before any closure model check runs.
///
/// # Errors
///
/// As for [`uncovered_terms`].
pub fn uncovered_terms_with_runs(
    fa: &Ltl,
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Result<(Vec<TemporalCube>, Vec<LassoWord>), CoreError> {
    let backend = model.gap_backend(config.backend)?;
    let base: Vec<Ltl> = rtl
        .formulas()
        .iter()
        .cloned()
        .chain([Ltl::not(fa.clone())])
        .collect();
    let term_signals = model.term_signals();

    // Scenario enumeration by *probing*: after the first counterexample,
    // new scenarios are sought by pinning single literals to their opposite
    // values. (Excluding whole previous cubes with ¬cube conjuncts is
    // exponentially worse: each negated cube is a highly nondeterministic
    // automaton and the on-the-fly intersection multiplies them out.)
    let mut terms: Vec<TemporalCube> = Vec::new();
    let mut runs: Vec<LassoWord> = Vec::new();
    let mut probes: Vec<TemporalCube> = vec![TemporalCube::top()];
    let mut probed = 0usize;
    while let Some(probe) = probes.get(probed).cloned() {
        probed += 1;
        if terms.len() >= config.max_terms || probed > 4 * config.max_terms {
            break;
        }
        let Some(word) = model.gap_scenario_query(backend, &base, None, &probe)? else {
            continue;
        };
        // Anchor the violation: for G(body), locate the first window where
        // the body fails on this run; generalization then asks which
        // literals are necessary for *that* violation, not for a violation
        // somewhere (which every literal is irrelevant to).
        let (anchored, window) = anchor_violation(fa, &word);
        let depth = window + config.term_depth;
        let mut cube = TemporalCube::from_word_prefix(&word, depth, &term_signals);
        if config.generalize {
            cube = generalize(backend, cube, rtl, &anchored, model)?;
        }
        if terms.contains(&cube) {
            continue;
        }
        // Queue opposite-value probes for the literals of the new term.
        for &(t, l) in cube.lits() {
            let flipped = TemporalCube::from_lits([(t, l.negated())])
                .expect("single literal is consistent");
            probes.push(flipped);
        }
        terms.push(cube);
        runs.push(word);
    }

    if config.quantify {
        let hidden = model.hidden();
        if !hidden.is_empty() {
            let universal = forall_eliminate(&terms, hidden);
            // Universal elimination can collapse to `false` when scenarios
            // pin hidden signals; fall back to the existential projection,
            // which over-approximates but stays informative.
            if !universal.is_empty() {
                return Ok((universal, runs));
            }
            return Ok((exists_eliminate(&terms, hidden), runs));
        }
    }
    Ok((terms, runs))
}

/// For `fa = G(body)`, returns `X^w ¬body` where `w` is the first stored
/// position of `word` at which `body` fails (such a position exists because
/// the word refutes `fa`); otherwise `(¬fa, 0)`. The anchored formula
/// implies `¬fa`, so checks against it stay sound.
fn anchor_violation(fa: &Ltl, word: &LassoWord) -> (Ltl, usize) {
    if let LtlNode::Globally(body) = fa.node() {
        let vals = body.eval_positions(word);
        if let Some(w) = vals.iter().position(|ok| !ok) {
            return (Ltl::next_n(Ltl::not(body.clone()), w), w);
        }
    }
    (Ltl::not(fa.clone()), 0)
}

/// Flip-based generalization. A literal is dropped when either
///
/// * the scenario remains a realizable anchored violation with the literal
///   *negated* — its value is irrelevant to the gap — or
/// * the literal is on a signal *driven by the concrete modules* and the
///   flipped cube is unrealizable in `M` under `R` even without the
///   violation requirement — a model fact implied by the rest of the cube,
///   which the paper's unfolding absorbs into `T_M` rather than report.
///
/// The second test is deliberately not applied to free inputs: an input
/// literal whose flip kills the violation (e.g. `X X !hit` in Example 2)
/// is a genuine *cause* the designer must see, even where an output
/// literal would pin it; dropping causes in favour of effects would strip
/// `UM` of exactly the literals step 2(d) needs.
fn generalize(
    backend: Backend,
    cube: TemporalCube,
    rtl: &RtlSpec,
    anchored: &Ltl,
    model: &CoverageModel,
) -> Result<TemporalCube, CoreError> {
    let free = model.input_signals();
    let mut current = cube;
    // Iterate literals by decreasing time so late (usually incidental)
    // constraints go first.
    let mut lits: Vec<_> = current.lits().to_vec();
    lits.sort_by_key(|(t, l)| (usize::MAX - t, l.signal()));
    for (t, l) in lits {
        let without = current.without(t, l.signal());
        let Some(flipped) = without.and_lit(t, l.negated()) else {
            continue;
        };
        // Both tests share the `R`(-and-anchor) product of `M`; either
        // engine materializes it once and memoizes.
        if model.gap_scenario_sat(backend, rtl.formulas(), Some(anchored), &flipped)? {
            // Violation survives the flip: the literal is irrelevant.
            current = without;
            continue;
        }
        if free.contains(&l.signal()) {
            continue; // causes are kept even when effects pin them
        }
        if !model.gap_scenario_sat(backend, rtl.formulas(), None, &flipped)? {
            // The flip is impossible altogether: the literal is implied by
            // the rest of the cube on every R-consistent run of M.
            current = without;
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CoverageModel;
    use crate::spec::{ArchSpec, RtlSpec};
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    /// Gap fixture: R forwards req to a only under en.
    fn gapped() -> (SignalTable, ArchSpec, RtlSpec, CoverageModel) {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req & en -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        b.input("en");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        (t, arch, rtl, model)
    }

    #[test]
    fn terms_describe_bad_scenarios() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config).expect("runs");
        assert!(!terms.is_empty(), "the gap must produce terms");
        // Every term, conjoined with R ∧ ¬FA, is satisfiable in M.
        for term in &terms {
            let mut conj: Vec<Ltl> = rtl.formulas().to_vec();
            conj.push(Ltl::not(fa.clone()));
            conj.push(term.to_ltl());
            assert!(
                model.satisfiable(&conj).is_some(),
                "term {term:?} is not a realizable bad scenario"
            );
        }
    }

    #[test]
    fn runs_exhibit_their_terms() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig {
            quantify: false,
            ..GapConfig::default()
        };
        let (terms, runs) =
            uncovered_terms_with_runs(fa, &rtl, &model, &config).expect("runs");
        assert_eq!(terms.len(), runs.len());
        for (term, run) in terms.iter().zip(&runs) {
            assert!(term.holds_on(run, 0), "{term:?} must hold on its run");
            assert!(!fa.holds_on(run), "enumeration runs must refute fa");
        }
    }

    #[test]
    fn generalization_shrinks_terms() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let full = GapConfig {
            generalize: false,
            quantify: false,
            max_terms: 1,
            ..GapConfig::default()
        };
        let gen = GapConfig {
            generalize: true,
            quantify: false,
            max_terms: 1,
            ..GapConfig::default()
        };
        let raw = uncovered_terms(fa, &rtl, &model, &full).expect("runs");
        let small = uncovered_terms(fa, &rtl, &model, &gen).expect("runs");
        assert!(!raw.is_empty() && !small.is_empty());
        assert!(
            small[0].len() < raw[0].len(),
            "generalization must drop literals ({} vs {})",
            small[0].len(),
            raw[0].len()
        );
    }

    #[test]
    fn covered_property_has_no_terms() {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let terms = uncovered_terms(
            arch.properties()[0].formula(),
            &rtl,
            &model,
            &GapConfig::default(),
        )
        .expect("runs");
        assert!(terms.is_empty());
    }

    #[test]
    fn terms_mention_the_missing_condition() {
        // The gap is about `en` being low: after generalization and
        // quantification the terms should still mention `en` (it is a
        // module input, hence observable).
        let (t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let terms = uncovered_terms(fa, &rtl, &model, &GapConfig::default()).expect("runs");
        let en = t.lookup("en").unwrap();
        assert!(
            terms.iter().any(|c| c.signals().contains(&en)),
            "terms {terms:?} should mention en"
        );
    }

    #[test]
    fn symbolic_terms_agree_with_explicit() {
        // The same fixture, forced through the symbolic gap engine: the
        // generalized, quantified term set must coincide with the explicit
        // engine's (the backends share the algorithm, not the oracle).
        let (t, arch, rtl, _) = gapped();
        let fa = arch.properties()[0].formula();
        let explicit = CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Explicit)
            .expect("builds");
        let symbolic = CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Symbolic)
            .expect("builds");
        let config = GapConfig::default();
        let mut te = uncovered_terms(fa, &rtl, &explicit, &config).expect("explicit runs");
        let mut ts = uncovered_terms(fa, &rtl, &symbolic, &config).expect("symbolic runs");
        te.sort();
        ts.sort();
        assert_eq!(te, ts, "term sets must agree across backends");
    }
}
