//! Uncovered terms: step 2(a)/2(b) of the paper's Algorithm 1.
//!
//! The hole `U = FA ∨ ¬(R ∧ T_M)` is approximated by a set `UM` of bounded
//! *uncovered terms* — temporal cubes like `r1 & X r2 & X X !hit` describing
//! scenarios on which the RTL spec can still violate the intent. Instead of
//! unfolding `U` symbolically to its fixpoint, we enumerate distinct
//! counterexample runs of `R ∧ ¬FA` in `M` (each is a lasso), truncate them
//! to depth-bounded cubes, and *generalize* each cube by dropping literals
//! while the scenario stays realizable-and-bad. Signals outside the
//! observable alphabet are then removed by universal quantification over
//! positioned variables (sound for bounded formulas), exactly as in the
//! paper's step 2(b).

use crate::model::CoverageModel;
use crate::spec::RtlSpec;
use crate::weaken::GapConfig;
use dic_ltl::cube::{exists_eliminate, forall_eliminate};
use dic_ltl::{Ltl, LtlNode, TemporalCube};

/// Computes the uncovered terms `UM` for one architectural property.
///
/// Each returned cube `c` satisfies: some run of `M` consistent with `R`
/// matches `c` at time 0 and violates `fa` — i.e. the gap is non-empty on
/// the scenario `c` — and every literal of `c` is *essential*: flipping it
/// makes the (window-anchored) violation impossible. Together the cubes
/// cover every counterexample found within the enumeration budget.
///
/// Scenario enumeration runs on the explicit engine; for a symbolic-only
/// model (state space beyond the explicit limit) no terms can be
/// enumerated and the result is empty — callers fall back to Theorem 2's
/// [`exact_hole`](crate::exact_hole), as the pipeline does.
pub fn uncovered_terms(
    fa: &Ltl,
    rtl: &RtlSpec,
    model: &CoverageModel,
    config: &GapConfig,
) -> Vec<TemporalCube> {
    if !model.has_explicit() {
        return Vec::new();
    }
    let base: Vec<Ltl> = rtl
        .formulas()
        .iter()
        .cloned()
        .chain([Ltl::not(fa.clone())])
        .collect();
    let term_signals = model.term_signals();

    // Scenario enumeration by *probing*: after the first counterexample,
    // new scenarios are sought by pinning single literals to their opposite
    // values. (Excluding whole previous cubes with ¬cube conjuncts is
    // exponentially worse: each negated cube is a highly nondeterministic
    // automaton and the on-the-fly intersection multiplies them out.)
    let mut terms: Vec<TemporalCube> = Vec::new();
    let mut probes: Vec<Ltl> = vec![Ltl::tt()];
    let mut probed = 0usize;
    while let Some(probe) = probes.get(probed).cloned() {
        probed += 1;
        if terms.len() >= config.max_terms || probed > 4 * config.max_terms {
            break;
        }
        let Some(word) = model.satisfiable_factored(&base, &[probe]) else {
            continue;
        };
        // Anchor the violation: for G(body), locate the first window where
        // the body fails on this run; generalization then asks which
        // literals are necessary for *that* violation, not for a violation
        // somewhere (which every literal is irrelevant to).
        let (anchored, window) = anchor_violation(fa, &word);
        let depth = window + config.term_depth;
        let mut cube = TemporalCube::from_word_prefix(&word, depth, &term_signals);
        if config.generalize {
            cube = generalize(cube, rtl, &anchored, model);
        }
        if terms.contains(&cube) {
            continue;
        }
        // Queue opposite-value probes for the literals of the new term.
        for &(t, l) in cube.lits() {
            probes.push(Ltl::next_n(
                Ltl::literal(l.signal(), !l.polarity()),
                t,
            ));
        }
        terms.push(cube);
    }

    if config.quantify {
        let hidden = model.hidden();
        if !hidden.is_empty() {
            let universal = forall_eliminate(&terms, hidden);
            // Universal elimination can collapse to `false` when scenarios
            // pin hidden signals; fall back to the existential projection,
            // which over-approximates but stays informative.
            if !universal.is_empty() {
                return universal;
            }
            return exists_eliminate(&terms, hidden);
        }
    }
    terms
}

/// For `fa = G(body)`, returns `X^w ¬body` where `w` is the first stored
/// position of `word` at which `body` fails (such a position exists because
/// the word refutes `fa`); otherwise `(¬fa, 0)`. The anchored formula
/// implies `¬fa`, so checks against it stay sound.
fn anchor_violation(fa: &Ltl, word: &dic_ltl::LassoWord) -> (Ltl, usize) {
    if let LtlNode::Globally(body) = fa.node() {
        let vals = body.eval_positions(word);
        if let Some(w) = vals.iter().position(|ok| !ok) {
            return (Ltl::next_n(Ltl::not(body.clone()), w), w);
        }
    }
    (Ltl::not(fa.clone()), 0)
}

/// Flip-based generalization. A literal is dropped when either
///
/// * the scenario remains a realizable anchored violation with the literal
///   *negated* — its value is irrelevant to the gap — or
/// * the literal is on a signal *driven by the concrete modules* and the
///   flipped cube is unrealizable in `M` under `R` even without the
///   violation requirement — a model fact implied by the rest of the cube,
///   which the paper's unfolding absorbs into `T_M` rather than report.
///
/// The second test is deliberately not applied to free inputs: an input
/// literal whose flip kills the violation (e.g. `X X !hit` in Example 2)
/// is a genuine *cause* the designer must see, even where an output
/// literal would pin it; dropping causes in favour of effects would strip
/// `UM` of exactly the literals step 2(d) needs.
fn generalize(
    cube: TemporalCube,
    rtl: &RtlSpec,
    anchored: &Ltl,
    model: &CoverageModel,
) -> TemporalCube {
    let free = model.kripke().input_vars();
    let mut current = cube;
    // Iterate literals by decreasing time so late (usually incidental)
    // constraints go first.
    let mut lits: Vec<_> = current.lits().to_vec();
    lits.sort_by_key(|(t, l)| (usize::MAX - t, l.signal()));
    for (t, l) in lits {
        let without = current.without(t, l.signal());
        let Some(flipped) = without.and_lit(t, l.negated()) else {
            continue;
        };
        // Both tests share the `R`-product of `M`; the factored query
        // explores it once and memoizes.
        if model
            .satisfiable_factored(rtl.formulas(), &[anchored.clone(), flipped.to_ltl()])
            .is_some()
        {
            // Violation survives the flip: the literal is irrelevant.
            current = without;
            continue;
        }
        if free.contains(&l.signal()) {
            continue; // causes are kept even when effects pin them
        }
        if model
            .satisfiable_factored(rtl.formulas(), &[flipped.to_ltl()])
            .is_none()
        {
            // The flip is impossible altogether: the literal is implied by
            // the rest of the cube on every R-consistent run of M.
            current = without;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CoverageModel;
    use crate::spec::{ArchSpec, RtlSpec};
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    /// Gap fixture: R forwards req to a only under en.
    fn gapped() -> (SignalTable, ArchSpec, RtlSpec, CoverageModel) {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req & en -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        b.input("en");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        (t, arch, rtl, model)
    }

    #[test]
    fn terms_describe_bad_scenarios() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let config = GapConfig::default();
        let terms = uncovered_terms(fa, &rtl, &model, &config);
        assert!(!terms.is_empty(), "the gap must produce terms");
        // Every term, conjoined with R ∧ ¬FA, is satisfiable in M.
        for term in &terms {
            let mut conj: Vec<Ltl> = rtl.formulas().to_vec();
            conj.push(Ltl::not(fa.clone()));
            conj.push(term.to_ltl());
            assert!(
                model.satisfiable(&conj).is_some(),
                "term {term:?} is not a realizable bad scenario"
            );
        }
    }

    #[test]
    fn generalization_shrinks_terms() {
        let (_t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let full = GapConfig {
            generalize: false,
            quantify: false,
            max_terms: 1,
            ..GapConfig::default()
        };
        let gen = GapConfig {
            generalize: true,
            quantify: false,
            max_terms: 1,
            ..GapConfig::default()
        };
        let raw = uncovered_terms(fa, &rtl, &model, &full);
        let small = uncovered_terms(fa, &rtl, &model, &gen);
        assert!(!raw.is_empty() && !small.is_empty());
        assert!(
            small[0].len() < raw[0].len(),
            "generalization must drop literals ({} vs {})",
            small[0].len(),
            raw[0].len()
        );
    }

    #[test]
    fn covered_property_has_no_terms() {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let terms = uncovered_terms(
            arch.properties()[0].formula(),
            &rtl,
            &model,
            &GapConfig::default(),
        );
        assert!(terms.is_empty());
    }

    #[test]
    fn terms_mention_the_missing_condition() {
        // The gap is about `en` being low: after generalization and
        // quantification the terms should still mention `en` (it is a
        // module input, hence observable).
        let (t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        let terms = uncovered_terms(fa, &rtl, &model, &GapConfig::default());
        let en = t.lookup("en").unwrap();
        assert!(
            terms.iter().any(|c| c.signals().contains(&en)),
            "terms {terms:?} should mention en"
        );
    }
}
