//! Error type for the coverage pipeline.

use dic_fsm::FsmError;
use dic_netlist::NetlistError;
use dic_symbolic::SymbolicError;
use std::error::Error;
use std::fmt;

/// Errors produced by the coverage analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// Composing the concrete modules failed.
    Netlist(NetlistError),
    /// The composed model is too large for explicit exploration.
    Fsm(FsmError),
    /// The symbolic engine exceeded its resource budget (or was handed a
    /// signal it cannot interpret).
    Symbolic(SymbolicError),
    /// A phase was forced onto a backend whose engine is not available
    /// for this model (e.g. an explicit gap phase requested on a model
    /// built symbolic-only, past the explicit state limit).
    BackendUnavailable {
        /// The analysis phase that needed the engine (`"gap"`).
        phase: &'static str,
        /// The backend that was requested.
        requested: crate::backend::Backend,
    },
    /// An environment override (`SPECMATCHER_JOBS`,
    /// `SPECMATCHER_NO_REDUCE`, …) failed its strict parse. Fail-closed
    /// like the CLI's flag errors: a typo must not silently select a
    /// default.
    InvalidEnv(String),
    /// The paper's Assumption 1 (`AP_A ⊆ AP_R`) is violated: an
    /// architectural signal is neither constrained by an RTL property nor
    /// present in any concrete module, so no decomposition can ever cover
    /// behaviors of that signal.
    UnknownArchSignal {
        /// Name of the offending signal.
        name: String,
    },
}

impl CoreError {
    /// Whether the pipeline may *degrade* on this error instead of
    /// aborting: resource refusals (state-space and node-budget limits)
    /// and cooperative deadline trips stop cleanly between steps, so the
    /// run can keep every verdict settled before them and report the rest
    /// as unknown. Configuration and spec errors (`InvalidEnv`,
    /// `BackendUnavailable`, `UnknownArchSignal`, netlist failures) stay
    /// fatal — there is nothing partial about a run that was never valid.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            CoreError::Fsm(_)
                | CoreError::Symbolic(
                    SymbolicError::NodeLimit { .. } | SymbolicError::Deadline
                )
        )
    }

    /// Whether this error is a cooperative deadline trip — the signal for
    /// the gap scan to stop outright (later candidates would trip too)
    /// rather than mark one candidate unknown and continue.
    pub fn is_deadline(&self) -> bool {
        matches!(
            self,
            CoreError::Fsm(FsmError::Deadline) | CoreError::Symbolic(SymbolicError::Deadline)
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
            CoreError::Fsm(e) => write!(f, "state-space error: {e}"),
            CoreError::Symbolic(e) => write!(f, "symbolic-engine error: {e}"),
            CoreError::BackendUnavailable { phase, requested } => write!(
                f,
                "the {requested} backend is not available for the {phase} phase of this \
                 model (build the model with a backend that constructs it, or use auto)"
            ),
            CoreError::InvalidEnv(msg) => write!(f, "invalid environment option: {msg}"),
            CoreError::UnknownArchSignal { name } => write!(
                f,
                "architectural signal {name} does not appear in the RTL specification \
                 (Assumption 1 requires AP_A to be a subset of AP_R)"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Netlist(e) => Some(e),
            CoreError::Fsm(e) => Some(e),
            CoreError::Symbolic(e) => Some(e),
            CoreError::BackendUnavailable { .. } => None,
            CoreError::InvalidEnv(_) => None,
            CoreError::UnknownArchSignal { .. } => None,
        }
    }
}

impl From<SymbolicError> for CoreError {
    fn from(e: SymbolicError) -> Self {
        CoreError::Symbolic(e)
    }
}

impl From<NetlistError> for CoreError {
    fn from(e: NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<FsmError> for CoreError {
    fn from(e: FsmError) -> Self {
        CoreError::Fsm(e)
    }
}
