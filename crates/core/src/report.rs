//! Machine-readable coverage reports (JSON).
//!
//! [`CoverageRun::render`](crate::CoverageRun::render) prints the
//! human-facing report; this module serializes the same information as
//! JSON so the tool can sit inside a validation flow (regression
//! dashboards, CI gates on coverage verdicts). The writer is self-contained
//! — the schema is small and stable enough that a serializer dependency
//! would cost more than these hundred lines.
//!
//! # Schema
//!
//! ```json
//! {
//!   "num_rtl_properties": 6,
//!   "backend": "explicit",
//!   "jobs": {"requested": 4, "primary": 1, "gap_workers": 4, "gap_fixpoints": 4},
//!   "timings": {"primary_s": 0.01, "tm_build_s": 0.002, "gap_find_s": 1.9},
//!   "tm_size": 124,
//!   "all_covered": false,
//!   "incomplete": null,
//!   "properties": [{
//!     "name": "A",
//!     "formula": "G(!wait & r1 & ...)",
//!     "covered": false,
//!     "unknown": null,
//!     "witness": {"loop_start": 2, "states": ["r1 & !hit & ...", "..."]},
//!     "uncovered_terms": ["r1 & X r2 & X X !hit"],
//!     "gap_properties": [{
//!       "formula": "G(...)", "position": "ε.0.0.0.2.0.1",
//!       "literal": "!hit", "offset": 1
//!     }],
//!     "unknown_gaps": [{"formula": "G(...)", "diagnostic": "node limit ..."}],
//!     "exact_hole": "...",
//!     "timings": {"primary_s": 0.01, "tm_build_s": 0.0, "gap_find_s": 1.9}
//!   }]
//! }
//! ```

use crate::pipeline::{CoverageRun, PhaseTimings, PropertyReport};
use dic_logic::{SignalTable, Valuation};
use dic_ltl::LassoWord;
use std::fmt::Write as _;

impl CoverageRun {
    /// Serializes the run as a JSON document (see the [module docs](self)).
    pub fn to_json(&self, table: &SignalTable) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        w.field_u64("num_rtl_properties", self.num_rtl_properties as u64);
        w.field_str("backend", &self.backend.to_string());
        w.field_str("gap_backend", &self.gap_backend.to_string());
        w.key("reorder");
        match &self.reorder {
            None => w.null(),
            Some(r) => {
                w.open_object();
                w.field_u64("count", r.count as u64);
                w.field_u64("compactions", r.compactions as u64);
                // Summed across all sifting reorders (not a single pass).
                w.field_u64("nodes_before_total", r.nodes_before as u64);
                w.field_u64("nodes_after_total", r.nodes_after as u64);
                // Generational GC figures straight from the manager: how
                // many scratch rollbacks ran and how many nodes they
                // freed, plus the true node-count high-water mark (which
                // includes peaks inside rolled-back scratch scopes).
                w.field_u64("gc_collections", r.gc_collections as u64);
                w.field_u64("gc_freed", r.gc_freed as u64);
                w.field_u64("peak_nodes", r.peak_nodes as u64);
                w.close_object();
            }
        }
        w.key("jobs");
        w.open_object();
        w.field_u64("requested", self.jobs.requested as u64);
        w.field_u64("primary", self.jobs.primary as u64);
        w.field_u64("gap_workers", self.jobs.gap_workers as u64);
        w.field_u64("gap_fixpoints", self.jobs.gap_fixpoints as u64);
        w.close_object();
        w.key("timings");
        timings_json(&mut w, &self.timings);
        w.field_u64("tm_size", self.tm.size() as u64);
        w.field_bool("all_covered", self.all_covered());
        w.key("incomplete");
        match &self.incomplete {
            None => w.null(),
            Some(reason) => w.string(reason),
        }
        w.key("properties");
        w.open_array();
        for p in &self.properties {
            property_json(&mut w, p, table);
        }
        w.close_array();
        w.close_object();
        w.finish()
    }
}

fn property_json(w: &mut JsonWriter, p: &PropertyReport, table: &SignalTable) {
    w.open_object();
    w.field_str("name", &p.name);
    w.field_str("formula", &p.formula.display(table).to_string());
    w.field_bool("covered", p.covered);
    w.key("unknown");
    match &p.unknown {
        None => w.null(),
        Some(reason) => w.string(reason),
    }
    w.key("witness");
    match &p.witness {
        None => w.null(),
        Some(word) => witness_json(w, word, table),
    }
    w.key("uncovered_terms");
    w.open_array();
    for term in &p.uncovered_terms {
        w.string(&term.display(table).to_string());
    }
    w.close_array();
    w.key("gap_properties");
    w.open_array();
    for g in &p.gap_properties {
        w.open_object();
        w.field_str("formula", &g.formula.display(table).to_string());
        w.field_str("position", &g.position.to_string());
        w.field_str("literal", &g.literal.display(table).to_string());
        w.field_u64("offset", g.offset as u64);
        w.field_str("term", &g.term.display(table).to_string());
        w.key("witness");
        witness_json(w, &g.witness, table);
        w.close_object();
    }
    w.close_array();
    w.key("unknown_gaps");
    w.open_array();
    for u in &p.unknown_gaps {
        w.open_object();
        w.field_str("formula", &u.formula.display(table).to_string());
        w.field_str("diagnostic", &u.diagnostic);
        w.close_object();
    }
    w.close_array();
    w.field_str("exact_hole", &p.exact_hole.display(table).to_string());
    w.key("timings");
    timings_json(w, &p.timings);
    w.close_object();
}

fn witness_json(w: &mut JsonWriter, word: &LassoWord, table: &SignalTable) {
    w.open_object();
    w.field_u64("loop_start", word.loop_start() as u64);
    w.key("states");
    w.open_array();
    for st in word.states() {
        w.string(&state_display(st, table));
    }
    w.close_array();
    w.close_object();
}

fn state_display(v: &Valuation, table: &SignalTable) -> String {
    v.display(table).to_string()
}

fn timings_json(w: &mut JsonWriter, t: &PhaseTimings) {
    w.open_object();
    w.field_f64("primary_s", t.primary.as_secs_f64());
    w.field_f64("tm_build_s", t.tm_build.as_secs_f64());
    w.field_f64("gap_find_s", t.gap_find.as_secs_f64());
    w.close_object();
}

/// A minimal streaming JSON writer: tracks whether a comma is needed at
/// each nesting level and escapes strings per RFC 8259.
struct JsonWriter {
    out: String,
    /// One flag per open container: whether a value was already emitted.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            needs_comma: Vec::new(),
        }
    }

    fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unbalanced containers");
        self.out
    }

    fn pre_value(&mut self) {
        if let Some(flag) = self.needs_comma.last_mut() {
            if *flag {
                self.out.push(',');
            }
            *flag = true;
        }
    }

    fn open_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    fn close_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    fn open_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    fn close_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Emits an object key; the next emitted value becomes its value.
    fn key(&mut self, name: &str) {
        self.pre_value();
        self.escaped(name);
        self.out.push(':');
        // The value that follows must not get a comma.
        if let Some(flag) = self.needs_comma.last_mut() {
            *flag = false;
        }
    }

    fn string(&mut self, s: &str) {
        self.pre_value();
        self.escaped(s);
    }

    fn null(&mut self) {
        self.pre_value();
        self.out.push_str("null");
    }

    fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.string(value);
    }

    fn field_bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.pre_value();
        self.out.push_str(if value { "true" } else { "false" });
    }

    fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        self.pre_value();
        let _ = write!(self.out, "{value}");
    }

    fn field_f64(&mut self, name: &str, value: f64) {
        self.key(name);
        self.pre_value();
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    fn escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArchSpec, RtlSpec};
    use crate::weaken::GapConfig;
    use crate::SpecMatcher;
    use dic_ltl::Ltl;
    use dic_netlist::ModuleBuilder;

    fn run(gap: bool) -> (SignalTable, CoverageRun) {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_src = if gap {
            "G(req & en -> X a)"
        } else {
            "G(req -> X a)"
        };
        let r_prop = Ltl::parse(r_src, &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        if gap {
            b.input("en");
        }
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let run = SpecMatcher::new(GapConfig::default())
            .check(&arch, &rtl, &t)
            .expect("runs");
        (t, run)
    }

    #[test]
    fn covered_run_serializes() {
        let (t, run) = run(false);
        let json = run.to_json(&t);
        assert!(json.contains("\"all_covered\":true"));
        assert!(json.contains("\"witness\":null"));
        assert!(json.contains("\"name\":\"A1\""));
        assert_balanced(&json);
    }

    #[test]
    fn gapped_run_serializes_witness_and_gaps() {
        let (t, run) = run(true);
        let json = run.to_json(&t);
        assert!(json.contains("\"all_covered\":false"));
        assert!(json.contains("\"loop_start\""));
        assert!(json.contains("\"gap_properties\":[{"));
        assert!(json.contains("\"offset\""));
        assert_balanced(&json);
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.open_object();
        w.field_str("k", "a\"b\\c\nd\te\u{1}");
        w.close_object();
        assert_eq!(w.finish(), r#"{"k":"a\"b\\c\nd\te\u0001"}"#);
    }

    /// Structural sanity: balanced braces/brackets outside strings, no
    /// `,,`/`,}`/`,]` sequences.
    fn assert_balanced(json: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escape = false;
        let mut prev = ' ';
        for c in json.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev, ',', "dangling comma before {c}");
                    depth -= 1;
                }
                ',' => assert_ne!(prev, ',', "double comma"),
                _ => {}
            }
            if !c.is_whitespace() {
                prev = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced containers");
        assert!(!in_str, "unterminated string");
    }
}
