//! Specification containers: architectural intent and RTL specs.

use dic_ltl::Ltl;
use dic_netlist::Module;
use std::collections::BTreeSet;

/// A named LTL property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Property {
    name: String,
    formula: Ltl,
}

impl Property {
    /// Creates a named property.
    pub fn new(name: &str, formula: Ltl) -> Self {
        Property {
            name: name.to_owned(),
            formula,
        }
    }

    /// The property name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The formula.
    pub fn formula(&self) -> &Ltl {
        &self.formula
    }
}

/// The architectural intent `A`: the properties the designer wants on the
/// parent module but cannot model-check directly (paper Section 2).
#[derive(Clone, Debug, Default)]
pub struct ArchSpec {
    properties: Vec<Property>,
}

impl ArchSpec {
    /// Builds the intent from `(name, formula)` pairs.
    pub fn new<'a, I>(props: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, Ltl)>,
    {
        ArchSpec {
            properties: props
                .into_iter()
                .map(|(n, f)| Property::new(n, f))
                .collect(),
        }
    }

    /// The properties.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// `AP_A`: the signals the intent is written over.
    pub fn alphabet(&self) -> BTreeSet<dic_logic::SignalId> {
        let mut out = BTreeSet::new();
        for p in &self.properties {
            out.extend(p.formula().atoms());
        }
        out
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.properties.len()
    }

    /// Whether the intent is empty.
    pub fn is_empty(&self) -> bool {
        self.properties.is_empty()
    }
}

/// The RTL specification: properties `R` over some submodules plus the RTL
/// of the *concrete modules* (glue logic, pre-verified cells).
#[derive(Clone, Debug, Default)]
pub struct RtlSpec {
    properties: Vec<Property>,
    concrete: Vec<Module>,
    /// Cached conjunct list (property formulas in order).
    formulas: Vec<Ltl>,
}

impl RtlSpec {
    /// Builds the RTL spec from `(name, formula)` pairs and concrete
    /// modules.
    pub fn new<'a, I, M>(props: I, concrete: M) -> Self
    where
        I: IntoIterator<Item = (&'a str, Ltl)>,
        M: IntoIterator<Item = Module>,
    {
        let properties: Vec<Property> = props
            .into_iter()
            .map(|(n, f)| Property::new(n, f))
            .collect();
        let formulas = properties.iter().map(|p| p.formula().clone()).collect();
        RtlSpec {
            properties,
            concrete: concrete.into_iter().collect(),
            formulas,
        }
    }

    /// The RTL properties.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// The property formulas, in declaration order (the conjunction `R`).
    pub fn formulas(&self) -> &[Ltl] {
        &self.formulas
    }

    /// The concrete modules.
    pub fn concrete(&self) -> &[Module] {
        &self.concrete
    }

    /// `AP_R`: signals of the RTL properties plus every signal of the
    /// concrete modules.
    pub fn alphabet(&self) -> BTreeSet<dic_logic::SignalId> {
        let mut out = BTreeSet::new();
        for p in &self.properties {
            out.extend(p.formula().atoms());
        }
        for m in &self.concrete {
            out.extend(m.signals());
        }
        out
    }

    /// Number of RTL properties (the paper's Table 1 column).
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    #[test]
    fn alphabets() {
        let mut t = SignalTable::new();
        let a = Ltl::parse("G(p -> X q)", &mut t).unwrap();
        let arch = ArchSpec::new([("A1", a)]);
        assert_eq!(arch.alphabet().len(), 2);
        assert_eq!(arch.len(), 1);

        let r = Ltl::parse("G(p -> X s)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("m", &mut t);
        let s = b.input("s");
        let q = b.latch_from("q", s, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let rtl = RtlSpec::new([("R1", r)], [m]);
        // p, s from the property; s, q from the module.
        assert_eq!(rtl.alphabet().len(), 3);
        assert_eq!(rtl.num_properties(), 1);
        assert_eq!(rtl.formulas().len(), 1);
    }
}
