//! Coverage holes: Theorem 2 and gap-closure checks.

use crate::backend::Backend;
use crate::error::CoreError;
use crate::model::CoverageModel;
use crate::spec::RtlSpec;
use dic_ltl::Ltl;

/// Theorem 2: the unique weakest property over `AP_R` closing the coverage
/// gap is `RH = A ∨ ¬(R ∧ T_M)`.
///
/// This is exact but — as the paper's Example 4 stresses — "does not convey
/// a meaningful information to the designer"; it is reported as the sound
/// fallback next to the structure-preserving gap properties of
/// [`find_gap`](crate::find_gap).
pub fn exact_hole(fa: &Ltl, rtl: &RtlSpec, tm: &Ltl) -> Ltl {
    let r = Ltl::and(rtl.formulas().iter().cloned());
    Ltl::or([
        fa.clone(),
        Ltl::not(Ltl::and([r, tm.clone()])),
    ])
}

/// Whether adding `candidate` to the RTL properties closes the coverage
/// gap for `fa`: `(R ∧ candidate) ∧ ¬fa` must be false in `M`
/// (Definition 3).
///
/// Dispatches through the model's gap backend (explicit factored products
/// or the symbolic closure engine — [`CoverageModel::gap_backend`] with
/// [`Backend::Auto`]), so it works on models beyond the explicit state
/// limit.
///
/// # Errors
///
/// [`CoreError::Symbolic`] when the symbolic engine exceeds its node
/// budget mid-check.
pub fn closes_gap(
    candidate: &Ltl,
    fa: &Ltl,
    rtl: &RtlSpec,
    model: &CoverageModel,
) -> Result<bool, CoreError> {
    Ok(closure_witness(candidate, fa, rtl, model)?.is_none())
}

/// Like [`closes_gap`], but exposes the refuting run when the candidate
/// does *not* close the gap: a run of `M` satisfying `R ∧ candidate ∧ ¬fa`.
///
/// The witness is reusable — any later candidate that holds on it cannot
/// close the gap either, which lets [`find_gap`](crate::find_gap) reject
/// most candidates with a word evaluation instead of a model check.
///
/// # Errors
///
/// As for [`closes_gap`].
pub fn closure_witness(
    candidate: &Ltl,
    fa: &Ltl,
    rtl: &RtlSpec,
    model: &CoverageModel,
) -> Result<Option<dic_ltl::LassoWord>, CoreError> {
    let backend = model.gap_backend(Backend::Auto)?;
    // `R ∧ ¬fa` is shared by every closure query for `fa`; its product
    // with `M` is materialized once and memoized in the serving engine.
    let mut base: Vec<Ltl> = rtl.formulas().to_vec();
    base.push(Ltl::not(fa.clone()));
    model.gap_query(backend, &base, std::slice::from_ref(candidate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CoverageModel;
    use crate::spec::{ArchSpec, RtlSpec};
    use crate::tm::{tm_for_modules, TmStyle};
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    /// Fixture with a real gap: the glue latches `a` into `q`, the intent
    /// wants `req -> X X q`, but R only propagates `req` to `a` when `en`
    /// is high — without saying anything about `en`.
    fn gapped() -> (SignalTable, ArchSpec, RtlSpec, CoverageModel) {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req & en -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        b.input("en");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        (t, arch, rtl, model)
    }

    #[test]
    fn gap_exists_and_theorem2_hole_closes_it() {
        let (t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        // Gap: primary coverage fails.
        assert!(crate::primary_coverage(fa, &rtl, &model).expect("runs").is_some());
        // Theorem 2 hole closes it.
        let tm = tm_for_modules(rtl.concrete(), &t, TmStyle::Relational).unwrap();
        let hole = exact_hole(fa, &rtl, &tm);
        assert!(
            closes_gap(&hole, fa, &rtl, &model).expect("runs"),
            "RH must close the gap"
        );
    }

    #[test]
    fn trivial_candidates() {
        let (mut t, arch, rtl, model) = gapped();
        let fa = arch.properties()[0].formula();
        // `false` closes any gap (vacuously — it excludes all runs).
        assert!(closes_gap(&Ltl::ff(), fa, &rtl, &model).expect("runs"));
        // `true` closes nothing here.
        assert!(!closes_gap(&Ltl::tt(), fa, &rtl, &model).expect("runs"));
        // The missing environment fact closes the gap meaningfully.
        let en_always = Ltl::parse("G en", &mut t).unwrap();
        assert!(closes_gap(&en_always, fa, &rtl, &model).expect("runs"));
        // The architectural property itself always closes its own gap.
        assert!(closes_gap(fa, fa, &rtl, &model).expect("runs"));
    }

    #[test]
    fn closure_checks_agree_across_backends() {
        let (mut t, arch, rtl, _) = gapped();
        let fa = arch.properties()[0].formula();
        let sym = CoverageModel::build_with_backend(&arch, &rtl, &t, crate::Backend::Symbolic)
            .expect("builds");
        let en_always = Ltl::parse("G en", &mut t).unwrap();
        assert!(closes_gap(&en_always, fa, &rtl, &sym).expect("runs"));
        assert!(!closes_gap(&Ltl::tt(), fa, &rtl, &sym).expect("runs"));
        // The refuting run of a non-closing candidate satisfies R ∧ ¬fa.
        let run = closure_witness(&Ltl::tt(), fa, &rtl, &sym)
            .expect("runs")
            .expect("true closes nothing here");
        assert!(!fa.holds_on(&run));
        for p in rtl.properties() {
            assert!(p.formula().holds_on(&run));
        }
    }

    #[test]
    fn no_gap_when_rtl_complete() {
        let mut t = SignalTable::new();
        let a_prop = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r_prop = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        let arch = ArchSpec::new([("A1", a_prop)]);
        let rtl = RtlSpec::new([("R1", r_prop)], [m]);
        let model = CoverageModel::build(&arch, &rtl, &t).unwrap();
        let fa = arch.properties()[0].formula();
        assert!(crate::primary_coverage(fa, &rtl, &model).expect("runs").is_none());
    }
}
