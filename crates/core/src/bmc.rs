//! Bounded-refutation tier configuration: the `--bmc` mode and the
//! `SPECMATCHER_BMC_DEPTH` override.
//!
//! The tier itself lives in `dic_sat`; this module owns *when* it runs.
//! Every closure fixpoint of Algorithm 1 — the candidate verification of
//! [`find_gap`](crate::find_gap) and the [`closes_gap`](crate::closes_gap)
//! checks, on both engines — dispatches through
//! [`CoverageModel::gap_query`](crate::CoverageModel::gap_query); with
//! [`BmcMode::Auto`] that chokepoint first asks the SAT tier for a
//! `k`-bounded refuting lasso and only falls through to the unbounded
//! fixpoint engines on UNSAT/unknown. Because SAT answers are re-verified
//! runs and UNSAT proves nothing, verdicts — and therefore the reported
//! gap-property sets — are byte-identical across modes.
//!
//! `Auto` only fires when the resolved gap backend is symbolic: explicit
//! fixpoints cost milliseconds on the models that fit them, less than one
//! unrolled SAT query, so fronting them would be pure overhead (measured:
//! mal-ex2 2.4× slower with an ungated tier, mal-26 ~17% faster with the
//! gated one).

use dic_sat::DEFAULT_BMC_DEPTH;
use std::fmt;

/// Largest accepted `SPECMATCHER_BMC_DEPTH`: past a few hundred steps the
/// unrolled CNF stops being the *cheap* tier and the unbounded engines win
/// outright, so a huge depth is treated as a configuration error rather
/// than honored.
pub const MAX_BMC_DEPTH: usize = 256;

/// Whether the bounded SAT refutation tier runs ahead of the closure
/// fixpoints (the CLI's `--bmc`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BmcMode {
    /// Never consult the SAT tier; every closure query goes straight to
    /// the fixpoint engines. This is the reference behavior the `auto`
    /// mode must match byte-for-byte.
    Off,
    /// Try a `k`-bounded refutation first (default `k` =
    /// [`DEFAULT_BMC_DEPTH`], overridable via `SPECMATCHER_BMC_DEPTH`),
    /// falling through to the fixpoint engines when the bound is
    /// inconclusive. Fires only ahead of *symbolic* closure fixpoints —
    /// explicit ones are already cheaper than a bounded query (see the
    /// module docs).
    #[default]
    Auto,
}

impl BmcMode {
    /// Parses a CLI-style mode name.
    pub fn parse(s: &str) -> Option<BmcMode> {
        match s {
            "off" => Some(BmcMode::Off),
            "auto" => Some(BmcMode::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for BmcMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BmcMode::Off => "off",
            BmcMode::Auto => "auto",
        })
    }
}

/// Strict parse of the `SPECMATCHER_BMC_DEPTH` unroll-depth override:
/// unset means "no override" (`Ok(None)`), an integer in
/// `1..=`[`MAX_BMC_DEPTH`] wins, and anything else — empty, zero, huge,
/// garbage — is rejected with a message naming the variable, mirroring
/// the fail-closed [`jobs_from_env`](crate::backend::jobs_from_env)
/// contract. Entry points validate this before building a model so a typo
/// surfaces as a usage error instead of a silently defaulted depth;
/// library paths that merely *read* the setting treat errors as "no
/// override".
pub fn bmc_depth_from_env() -> Result<Option<usize>, String> {
    let Ok(v) = std::env::var("SPECMATCHER_BMC_DEPTH") else {
        return Ok(None);
    };
    match v.parse::<usize>() {
        Ok(n) if (1..=MAX_BMC_DEPTH).contains(&n) => Ok(Some(n)),
        _ => Err(format!(
            "invalid SPECMATCHER_BMC_DEPTH {v:?}: expected an unroll depth in 1..={MAX_BMC_DEPTH}"
        )),
    }
}

/// The unroll depth the tier runs at: the environment override when set
/// and valid, [`DEFAULT_BMC_DEPTH`] otherwise (entry points have already
/// rejected invalid settings fail-closed; see [`bmc_depth_from_env`]).
pub fn effective_bmc_depth() -> usize {
    match bmc_depth_from_env() {
        Ok(Some(n)) => n,
        _ => DEFAULT_BMC_DEPTH,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for m in [BmcMode::Off, BmcMode::Auto] {
            assert_eq!(BmcMode::parse(&m.to_string()), Some(m));
        }
        assert_eq!(BmcMode::parse("on"), None);
        assert_eq!(BmcMode::parse(""), None);
        assert_eq!(BmcMode::default(), BmcMode::Auto);
    }

    // The env-var parse itself is pinned end to end in tests/cli.rs (the
    // specmatcher binary) and crates/bench/tests/table1_cli.rs (the bench
    // binary); mutating the process environment from unit tests would
    // race the rest of the parallel suite.
}
