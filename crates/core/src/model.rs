//! The coverage model: composed concrete modules + free spec signals.

use crate::backend::{
    predicted_product_cost, Backend, AUTO_SYMBOLIC_BITS, AUTO_SYMBOLIC_PRODUCT_COST,
};
use crate::bmc::BmcMode;
use crate::error::CoreError;
use crate::spec::{ArchSpec, RtlSpec};
use dic_fsm::Kripke;
use dic_logic::{SignalId, SignalTable};
use dic_netlist::Module;
use dic_symbolic::{ReorderStats, SymbolicModel, SymbolicOptions};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// The model `M` of the paper's Definition 1: the synchronous composition
/// of the concrete modules, with every specification signal that the
/// modules do not drive left as a free (nondeterministic) input.
///
/// Its runs are exactly the runs "consistent with the concrete modules",
/// so satisfiability of `R ∧ ¬A` *within this model* is the paper's
/// "`¬A ∧ R` is true in M".
///
/// A model carries up to two engines for that question, selected by
/// [`Backend`]: the explicit Kripke structure and the symbolic BDD model.
/// Both the primary coverage question (Theorem 1) and the gap phase
/// (Algorithm 1) dispatch per phase: [`CoverageModel::build`] resolves
/// [`Backend::Auto`] by state-bit count at build time (see
/// [`CoverageModel::primary_backend`]), and the gap phase re-resolves its
/// own engine per run via [`CoverageModel::gap_backend`] (the symbolic
/// engine is built lazily when the gap phase asks for it on a model that
/// was built explicit).
#[derive(Debug)]
pub struct CoverageModel {
    composed: Module,
    table: SignalTable,
    free: Vec<SignalId>,
    /// The explicit Kripke structure. Populated at build time when the
    /// resolved backend wants it, or lazily by
    /// [`CoverageModel::ensure_explicit_fallback`] when a per-candidate
    /// symbolic refusal retries on the explicit engine. `Some(None)` in
    /// the cell records a *failed* lazy attempt, so it is not repeated.
    kripke: OnceLock<Option<Kripke>>,
    /// Build-time verdict of the explicit-hostility axes (state bits and
    /// predicted product cost) — gates the lazy explicit fallback.
    explicit_hostile: bool,
    symbolic: Mutex<Option<SymbolicModel>>,
    /// Options any lazily built symbolic engine is constructed with.
    sym_options: SymbolicOptions,
    /// The engine answering primary queries (`Explicit` or `Symbolic`).
    primary_backend: Backend,
    /// Auto resolution for the gap phase (`Explicit` or `Symbolic`).
    auto_gap_backend: Backend,
    /// Nondeterministic inputs: module primary inputs + free spec signals.
    inputs: Vec<SignalId>,
    observable: BTreeSet<SignalId>,
    hidden: BTreeSet<SignalId>,
    cache: dic_automata::GbaCache,
    /// Materialized base products, keyed by the baked-in conjunction.
    products: Mutex<HashMap<Vec<dic_ltl::Ltl>, Arc<dic_automata::ProductSystem>>>,
    /// Whether gap queries first try the bounded SAT refutation tier
    /// ([`BmcMode::Auto`] by default; see [`CoverageModel::gap_query`]).
    bmc_mode: BmcMode,
    /// Unroll depth of the SAT tier (`SPECMATCHER_BMC_DEPTH` override or
    /// [`dic_sat::DEFAULT_BMC_DEPTH`], resolved at build time).
    bmc_depth: usize,
}

impl CoverageModel {
    /// Builds the model with the default [`Backend::Auto`] selection.
    ///
    /// See [`CoverageModel::build_with_backend`].
    ///
    /// # Errors
    ///
    /// As for [`CoverageModel::build_with_backend`].
    pub fn build(
        arch: &ArchSpec,
        rtl: &RtlSpec,
        table: &SignalTable,
    ) -> Result<Self, CoreError> {
        Self::build_with_backend(arch, rtl, table, Backend::Auto)
    }

    /// Builds the model for a spec pair with an explicit backend choice.
    ///
    /// Free signals are all atoms of `A` and `R` not driven by the concrete
    /// modules. The *observable* alphabet — what uncovered terms may mention
    /// after quantification — defaults to `AP_A` plus the primary inputs of
    /// the composition (the paper eliminates `AP_R − AP_A`, which is the
    /// complement of this set among term signals).
    ///
    /// Backend resolution: [`Backend::Explicit`] and [`Backend::Symbolic`]
    /// build only their engine; [`Backend::Auto`] goes symbolic past
    /// [`AUTO_SYMBOLIC_BITS`] state bits **or**
    /// [`AUTO_SYMBOLIC_PRODUCT_COST`] predicted product cost (a wide
    /// conjunction over a small design is just as explicit-hostile as a
    /// large state space) — for *both* phases, since the gap engine
    /// (Algorithm 1) runs symbolically too. A model built explicit can
    /// still serve symbolic gap queries: the symbolic engine is built
    /// lazily on first demand ([`CoverageModel::gap_backend`]).
    ///
    /// Symbolic-engine options come from [`SymbolicOptions::from_env`]
    /// (with defaults: the stock node budget, dynamic reordering on); use
    /// [`CoverageModel::build_with_symbolic_options`] to override them.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Netlist`] if the concrete modules cannot be composed,
    /// * [`CoreError::Fsm`] if the explicit backend was requested and the
    ///   state space exceeds the explicit limit,
    /// * [`CoreError::Symbolic`] if the symbolic encoding exceeds its node
    ///   budget — or if `SPECMATCHER_BDD_NODE_LIMIT` is set to garbage,
    /// * [`CoreError::UnknownArchSignal`] if an architectural signal appears
    ///   nowhere in the RTL spec (Assumption 1).
    pub fn build_with_backend(
        arch: &ArchSpec,
        rtl: &RtlSpec,
        table: &SignalTable,
        backend: Backend,
    ) -> Result<Self, CoreError> {
        let options = SymbolicOptions::from_env().map_err(CoreError::Symbolic)?;
        Self::build_with_symbolic_options(arch, rtl, table, backend, options)
    }

    /// Like [`CoverageModel::build_with_backend`] with explicit symbolic
    /// engine options (node budget, reorder mode/trigger) instead of the
    /// environment defaults.
    ///
    /// # Errors
    ///
    /// As for [`CoverageModel::build_with_backend`].
    pub fn build_with_symbolic_options(
        arch: &ArchSpec,
        rtl: &RtlSpec,
        table: &SignalTable,
        backend: Backend,
        options: SymbolicOptions,
    ) -> Result<Self, CoreError> {
        // Strict environment validation, fail-closed like the symbolic
        // options' node-limit parse: a typo in an override must surface
        // as a usage error before any analysis runs, never silently
        // select a default pipeline or worker count.
        dic_automata::reduction_from_env().map_err(CoreError::InvalidEnv)?;
        crate::backend::jobs_from_env().map_err(CoreError::InvalidEnv)?;
        crate::bmc::bmc_depth_from_env().map_err(CoreError::InvalidEnv)?;

        // Assumption 1: AP_A ⊆ AP_R.
        let ap_r = rtl.alphabet();
        for &s in &arch.alphabet() {
            if !ap_r.contains(&s) {
                return Err(CoreError::UnknownArchSignal {
                    name: table.name(s).to_owned(),
                });
            }
        }

        let module_refs: Vec<&Module> = rtl.concrete().iter().collect();
        let composed = Module::compose("M", &module_refs, table)?;

        // Cone-of-influence reduction: only the logic that can affect a
        // signal some property mentions matters for coverage; unrelated
        // latches would inflate the explicit state space exponentially.
        let mut spec_signals: Vec<SignalId> = Vec::new();
        for p in arch.properties() {
            spec_signals.extend(p.formula().atoms());
        }
        for p in rtl.properties() {
            spec_signals.extend(p.formula().atoms());
        }
        spec_signals.sort();
        spec_signals.dedup();
        let composed = composed.cone_of_influence(&spec_signals, table);

        // Free signals: every *property* atom the (reduced) composition
        // does not drive. Signals that only ever appeared inside dropped
        // cone logic stay out entirely.
        let mut free: Vec<SignalId> = Vec::new();
        let driven = composed.driven_signals();
        for &s in &spec_signals {
            if !driven.contains(&s) && !free.contains(&s) {
                free.push(s);
            }
        }
        // State-bit count, by the same accounting both engines use.
        let input_vars = composed.nondet_inputs(&free);
        let state_bits = composed.state_signals().len() + input_vars.len();
        // The Auto crossover reflects both cost axes: the state space the
        // explicit engine must enumerate, and the width of the property
        // product it must explore on the fly (see
        // [`AUTO_SYMBOLIC_PRODUCT_COST`]).
        let explicit_hostile = state_bits > AUTO_SYMBOLIC_BITS
            || predicted_product_cost(arch, rtl) > AUTO_SYMBOLIC_PRODUCT_COST;

        let (kripke, symbolic, primary_backend) = match backend {
            Backend::Explicit => (
                Some(Kripke::from_module(&composed, table, &free)?),
                None,
                Backend::Explicit,
            ),
            Backend::Symbolic => (
                None,
                Some(SymbolicModel::from_module(&composed, table, &free, options)?),
                Backend::Symbolic,
            ),
            Backend::Auto => {
                if !explicit_hostile {
                    (
                        Some(Kripke::from_module(&composed, table, &free)?),
                        None,
                        Backend::Explicit,
                    )
                } else {
                    // Symbolic for both phases: the gap engine runs on the
                    // same BDD product caches, so the explicit structure no
                    // longer needs to ride along for Algorithm 1.
                    (
                        None,
                        Some(SymbolicModel::from_module(&composed, table, &free, options)?),
                        Backend::Symbolic,
                    )
                }
            }
        };
        // Per-phase Auto resolution for the gap phase: below the crossover
        // the explicit factored products win; above it (or whenever no
        // explicit structure exists) the symbolic gap engine takes over.
        let auto_gap_backend = if kripke.is_some() && !explicit_hostile {
            Backend::Explicit
        } else {
            Backend::Symbolic
        };

        // Observable: the architectural alphabet plus every nondeterministic
        // input of the model (design primary inputs and free environment
        // signals). This is why the paper's gap property U may mention
        // `hit`: it is an input of the concrete L1, not an internal signal.
        let mut observable: BTreeSet<SignalId> = arch.alphabet();
        observable.extend(input_vars.iter().copied());
        // Terms may mention anything the model constrains or the spec
        // names — but only signals the (cone-reduced) model actually
        // carries. A concrete-module signal whose logic fell outside every
        // property's cone is unconstrained in `M`: the explicit engine
        // would only ever record it as a pinned-false artifact (and drop
        // it again during generalization), and the symbolic engine fails
        // closed on it. The rest is quantified away.
        let mut term_signals: BTreeSet<SignalId> = observable.clone();
        term_signals.extend(
            rtl.alphabet()
                .into_iter()
                .filter(|s| driven.contains(s) || input_vars.contains(s)),
        );
        let hidden: BTreeSet<SignalId> = term_signals
            .difference(&observable)
            .copied()
            .collect();

        let kripke_cell = OnceLock::new();
        if let Some(k) = kripke {
            let _ = kripke_cell.set(Some(k));
        }
        Ok(CoverageModel {
            composed,
            table: table.clone(),
            free,
            kripke: kripke_cell,
            explicit_hostile,
            symbolic: Mutex::new(symbolic),
            sym_options: options,
            primary_backend,
            auto_gap_backend,
            inputs: input_vars,
            observable,
            hidden,
            cache: dic_automata::GbaCache::new(),
            products: Mutex::new(HashMap::new()),
            bmc_mode: BmcMode::default(),
            bmc_depth: crate::bmc::effective_bmc_depth(),
        })
    }

    /// Selects whether gap queries consult the bounded SAT refutation
    /// tier first (the CLI's `--bmc`; [`BmcMode::Auto`] by default). The
    /// reported gap-property sets are identical either way — the tier
    /// only ever short-circuits verdicts the fixpoint engines would reach
    /// themselves.
    pub fn set_bmc_mode(&mut self, mode: BmcMode) {
        self.bmc_mode = mode;
    }

    /// The bounded-refutation mode gap queries run with.
    pub fn bmc_mode(&self) -> BmcMode {
        self.bmc_mode
    }

    /// The engine answering primary coverage queries: [`Backend::Explicit`]
    /// or [`Backend::Symbolic`] (never `Auto` — resolution happens at build
    /// time).
    pub fn primary_backend(&self) -> Backend {
        self.primary_backend
    }

    /// Whether the explicit Kripke structure is available (required by the
    /// gap-representation machinery of Algorithm 1).
    pub fn has_explicit(&self) -> bool {
        matches!(self.kripke.get(), Some(Some(_)))
    }

    /// Builds the explicit Kripke structure on demand for a per-candidate
    /// retry after a symbolic resource refusal, when the explicit-
    /// hostility axes (state bits, predicted product cost) allow it.
    /// Returns whether the explicit engine is now available. A failed
    /// attempt (bit-limit refusal, deadline trip) is recorded and never
    /// repeated; an already-available structure returns `true` for free.
    pub fn ensure_explicit_fallback(&self) -> bool {
        if self.explicit_hostile {
            return false;
        }
        self.kripke
            .get_or_init(|| Kripke::from_module(&self.composed, &self.table, &self.free).ok())
            .is_some()
    }

    /// The nondeterministic inputs of the model: the composition's primary
    /// inputs plus every free spec signal — the stimulus alphabet a witness
    /// run must be driven with to replay on the simulator. Available for
    /// every backend (unlike `kripke().input_vars()`).
    pub fn input_signals(&self) -> &[SignalId] {
        &self.inputs
    }

    /// The free spec signals: property atoms the (cone-reduced)
    /// composition does not drive. Together with [`Module::inputs`] these
    /// are the unconstrained bits a bounded query must leave open —
    /// exactly the `free` argument of [`dic_sat::bounded_lasso`].
    pub fn free_signals(&self) -> &[SignalId] {
        &self.free
    }

    /// Backend-dispatched existential query: is some run of `M` satisfying
    /// every formula in `formulas`? The primitive behind the paper's
    /// Theorem 1.
    ///
    /// # Errors
    ///
    /// [`CoreError::Symbolic`] when the symbolic engine exceeds its node
    /// budget mid-analysis (the explicit path is infallible once built).
    pub fn primary_query(
        &self,
        formulas: &[dic_ltl::Ltl],
    ) -> Result<Option<dic_ltl::LassoWord>, CoreError> {
        match self.primary_backend {
            Backend::Symbolic => self.with_symbolic(|sym| sym.satisfiable_conj(formulas)),
            _ => Ok(self.satisfiable(formulas)),
        }
    }

    /// [`CoverageModel::primary_query`] for `base ++ [anchor]`, split so
    /// the symbolic engine can anchor the query: the `base` product (the
    /// RTL conjunction, shared by every architectural property) is built
    /// and fixpointed once, and each per-property `¬A` automaton becomes
    /// a cached extension restricted by the base's reachable set and
    /// seeded with its fair hull — the same sound projection argument the
    /// gap phase's closure extensions rest on. The explicit engine takes
    /// the flat conjunction as before; verdicts are identical either way.
    ///
    /// # Errors
    ///
    /// As for [`CoverageModel::primary_query`].
    pub fn primary_query_anchored(
        &self,
        base: &[dic_ltl::Ltl],
        anchor: &dic_ltl::Ltl,
    ) -> Result<Option<dic_ltl::LassoWord>, CoreError> {
        match self.primary_backend {
            Backend::Symbolic => self.with_symbolic(|sym| {
                sym.satisfiable_anchored(base, std::slice::from_ref(anchor))
            }),
            _ => {
                let mut conj = base.to_vec();
                conj.push(anchor.clone());
                Ok(self.satisfiable(&conj))
            }
        }
    }

    /// The engine [`CoverageModel::gap_backend`] would resolve `requested`
    /// to, *without* ensuring the engine is built — for reporting (the
    /// pipeline labels runs before knowing whether any property even needs
    /// a gap phase).
    pub fn gap_backend_choice(&self, requested: Backend) -> Backend {
        match requested {
            Backend::Auto => self.auto_gap_backend,
            forced => forced,
        }
    }

    /// Resolves the engine the gap phase (Algorithm 1) runs on and
    /// ensures it is available: [`Backend::Auto`] follows the build-time
    /// per-phase resolution (explicit below the crossover, symbolic above
    /// or when no explicit structure exists); a forced backend is honored
    /// when its engine is available — the symbolic engine is built lazily
    /// on first demand, the explicit one must have been built with the
    /// model.
    ///
    /// # Errors
    ///
    /// [`CoreError::BackendUnavailable`] when [`Backend::Explicit`] is
    /// forced on a model built without the explicit structure;
    /// [`CoreError::Symbolic`] when the lazy symbolic build exceeds its
    /// node budget.
    pub fn gap_backend(&self, requested: Backend) -> Result<Backend, CoreError> {
        match requested {
            Backend::Auto => {
                if self.auto_gap_backend == Backend::Symbolic {
                    self.ensure_symbolic()?;
                }
                Ok(self.auto_gap_backend)
            }
            Backend::Explicit => {
                if !self.has_explicit() {
                    return Err(CoreError::BackendUnavailable {
                        phase: "gap",
                        requested,
                    });
                }
                Ok(Backend::Explicit)
            }
            Backend::Symbolic => {
                self.ensure_symbolic()?;
                Ok(Backend::Symbolic)
            }
        }
    }

    /// Locks the symbolic engine, recovering from a poisoned lock: a gap
    /// worker that panicked (and was caught upstream) may have died while
    /// holding the engine mid-operation, so the engine it held is
    /// *discarded* — the BDD manager could be inconsistent — and lazily
    /// rebuilt by the next query. Correctness over warm caches.
    fn lock_symbolic(&self) -> MutexGuard<'_, Option<SymbolicModel>> {
        match self.symbolic.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.symbolic.clear_poison();
                let mut guard = poisoned.into_inner();
                *guard = None;
                guard
            }
        }
    }

    /// Runs `f` on the symbolic engine, building it on first use (a model
    /// built explicit can still serve symbolic gap queries).
    fn with_symbolic<T>(
        &self,
        f: impl FnOnce(&mut SymbolicModel) -> Result<T, dic_symbolic::SymbolicError>,
    ) -> Result<T, CoreError> {
        self.ensure_symbolic()?;
        let mut guard = self.lock_symbolic();
        let sym = match guard.as_mut() {
            Some(sym) => sym,
            // The engine was discarded between ensure and lock (poison
            // recovery on a racing worker); rebuild in place.
            None => {
                *guard = Some(SymbolicModel::from_module(
                    &self.composed,
                    &self.table,
                    &self.free,
                    self.sym_options,
                )?);
                guard.as_mut().expect("just built")
            }
        };
        Ok(f(sym)?)
    }

    fn ensure_symbolic(&self) -> Result<(), CoreError> {
        let mut guard = self.lock_symbolic();
        if guard.is_none() {
            *guard = Some(SymbolicModel::from_module(
                &self.composed,
                &self.table,
                &self.free,
                self.sym_options,
            )?);
        }
        Ok(())
    }

    /// Cumulative dynamic-reordering statistics of the symbolic engine:
    /// `None` when no symbolic engine was ever built, `Some(zeroed)` when
    /// it was but never reordered.
    pub fn reorder_stats(&self) -> Option<ReorderStats> {
        self.lock_symbolic().as_ref().map(|sym| sym.reorder_stats())
    }

    /// Backend-dispatched factored gap query: is some run of `M`
    /// satisfying `base` and every formula in `extra`? Both engines
    /// materialize the `base` product once and reuse it across calls —
    /// Algorithm 1's closure loop issues hundreds of these against the
    /// same base, which makes the product reuse the dominant performance
    /// lever of the whole gap phase.
    ///
    /// `backend` must be resolved ([`CoverageModel::gap_backend`]), never
    /// [`Backend::Auto`].
    ///
    /// With [`BmcMode::Auto`] (the default) a bounded SAT refutation runs
    /// *before* the symbolic fixpoint engine: if a lasso satisfying the
    /// whole conjunction exists within [`CoverageModel::bmc_depth`] steps,
    /// the SAT tier finds it, replays it through the netlist evaluator,
    /// and returns it without ever touching a fixpoint. An inconclusive
    /// bound (UNSAT within the depth, or the per-query conflict budget)
    /// falls through, so verdicts are identical across modes — only the
    /// engine that produces them changes. `Auto` deliberately skips the
    /// tier when the resolved gap backend is explicit: those models fit
    /// the enumerative engine precisely because their fixpoints cost
    /// milliseconds, less than a single unrolled SAT query, while each
    /// symbolic Emerson–Lei fixpoint costs seconds. The gate is a pure
    /// function of the resolved backend, so determinism is unaffected.
    ///
    /// # Errors
    ///
    /// [`CoreError::Symbolic`] when the symbolic engine exceeds its node
    /// budget mid-query.
    pub fn gap_query(
        &self,
        backend: Backend,
        base: &[dic_ltl::Ltl],
        extra: &[dic_ltl::Ltl],
    ) -> Result<Option<dic_ltl::LassoWord>, CoreError> {
        if self.bmc_mode == BmcMode::Auto && backend == Backend::Symbolic {
            let formulas: Vec<dic_ltl::Ltl> =
                base.iter().chain(extra.iter()).cloned().collect();
            if let Some(run) = self.bmc_refute(&formulas) {
                return Ok(Some(run));
            }
        }
        match backend {
            Backend::Symbolic => self.with_symbolic(|sym| sym.satisfiable_factored(base, extra)),
            _ => Ok(self.satisfiable_factored(base, extra)),
        }
    }

    /// The bounded tier of [`CoverageModel::gap_query`]: a `k`-step SAT
    /// query for a run of `M` satisfying the conjunction. `Some` is a
    /// genuine, re-verified run (sound to report as a closure refutation);
    /// `None` proves nothing.
    fn bmc_refute(&self, formulas: &[dic_ltl::Ltl]) -> Option<dic_ltl::LassoWord> {
        let _span = dic_trace::span("bmc.query");
        dic_trace::count(dic_trace::Counter::BmcQueries, 1);
        let run = dic_sat::bounded_lasso(
            &self.composed,
            &self.table,
            &self.free,
            formulas,
            self.bmc_depth,
        )?;
        dic_trace::count(dic_trace::Counter::BmcRefuted, 1);
        Some(run)
    }

    /// Backend-dispatched bounded-scenario query with witness: is some run
    /// of `M ⊨ base ∧ anchored` matching `cube` in its first cycles? On
    /// the symbolic engine the cube is pushed through the cached product's
    /// frontier BDDs (no automaton is ever built for it); on the explicit
    /// engine it becomes an extra conjunct of the factored query.
    ///
    /// # Errors
    ///
    /// As for [`CoverageModel::gap_query`].
    pub fn gap_scenario_query(
        &self,
        backend: Backend,
        base: &[dic_ltl::Ltl],
        anchored: Option<&dic_ltl::Ltl>,
        cube: &dic_ltl::TemporalCube,
    ) -> Result<Option<dic_ltl::LassoWord>, CoreError> {
        match backend {
            Backend::Symbolic => {
                let full = Self::anchored_base(base, anchored);
                self.with_symbolic(|sym| sym.satisfiable_factored_cube(&full, cube))
            }
            _ => {
                let extras = Self::anchored_extras(anchored, cube);
                Ok(self.satisfiable_factored(base, &extras))
            }
        }
    }

    /// Verdict-only variant of [`CoverageModel::gap_scenario_query`]: the
    /// generalization loop of Algorithm 1 needs thousands of these, and
    /// skipping witness extraction keeps each to a handful of constrained
    /// images on the symbolic engine.
    ///
    /// # Errors
    ///
    /// As for [`CoverageModel::gap_query`].
    pub fn gap_scenario_sat(
        &self,
        backend: Backend,
        base: &[dic_ltl::Ltl],
        anchored: Option<&dic_ltl::Ltl>,
        cube: &dic_ltl::TemporalCube,
    ) -> Result<bool, CoreError> {
        match backend {
            Backend::Symbolic => {
                self.with_symbolic(|sym| sym.factored_cube_sat(base, anchored, cube))
            }
            _ => {
                let extras = Self::anchored_extras(anchored, cube);
                Ok(self.satisfiable_factored(base, &extras).is_some())
            }
        }
    }

    fn anchored_base(
        base: &[dic_ltl::Ltl],
        anchored: Option<&dic_ltl::Ltl>,
    ) -> Vec<dic_ltl::Ltl> {
        base.iter().cloned().chain(anchored.cloned()).collect()
    }

    fn anchored_extras(
        anchored: Option<&dic_ltl::Ltl>,
        cube: &dic_ltl::TemporalCube,
    ) -> Vec<dic_ltl::Ltl> {
        anchored
            .cloned()
            .into_iter()
            .chain([cube.to_ltl()])
            .collect()
    }

    /// Existential query against the *explicit* model with memoized
    /// automaton translations: is some run of `M` satisfying every formula
    /// in `formulas`? Repeated conjuncts (the `R` suite, `¬FA`) are
    /// translated once per model.
    ///
    /// # Panics
    ///
    /// Panics if the model was built without the explicit backend; use
    /// [`CoverageModel::primary_query`] for backend-dispatched queries and
    /// [`CoverageModel::has_explicit`] to test availability.
    pub fn satisfiable(&self, formulas: &[dic_ltl::Ltl]) -> Option<dic_ltl::LassoWord> {
        dic_automata::satisfiable_in_conj_cached(formulas, self.kripke(), &self.cache)
    }

    /// Factored existential query: is some run of `M` satisfying `base`
    /// *and* `extra`?
    ///
    /// The sub-product of `M` with `base` is materialized on first use and
    /// memoized (see [`dic_automata::materialize_product`]); only the
    /// `extra` conjuncts are explored per call. Algorithm 1 issues hundreds
    /// of queries sharing the same base (`R ∧ ¬FA` for candidate closure,
    /// `R` for term generalization), which makes this the dominant
    /// performance lever of the whole pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the model was built without the explicit backend (like
    /// [`CoverageModel::satisfiable`]).
    pub fn satisfiable_factored(
        &self,
        base: &[dic_ltl::Ltl],
        extra: &[dic_ltl::Ltl],
    ) -> Option<dic_ltl::LassoWord> {
        let product = {
            // Poison-tolerant: the memo only ever holds fully-built
            // `Arc<ProductSystem>` values, so a worker that panicked while
            // holding the lock cannot have left a half-entry behind.
            let mut products = self
                .products
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match products.get(base) {
                Some(p) => Arc::clone(p),
                None => {
                    let p = Arc::new(dic_automata::materialize_product(
                        base,
                        self.kripke(),
                        &self.cache,
                    ));
                    products.insert(base.to_vec(), Arc::clone(&p));
                    p
                }
            }
        };
        dic_automata::satisfiable_in_conj_cached(extra, product.as_ref(), &self.cache)
    }

    /// The composed concrete module `M`.
    pub fn composed(&self) -> &Module {
        &self.composed
    }

    /// The explicit Kripke structure explored by the model checker.
    ///
    /// # Panics
    ///
    /// Panics if the model was built without the explicit backend (pure
    /// [`Backend::Symbolic`], or [`Backend::Auto`] past the explicit bit
    /// limit); guard with [`CoverageModel::has_explicit`].
    pub fn kripke(&self) -> &Kripke {
        self.kripke
            .get()
            .and_then(|k| k.as_ref())
            .expect("explicit backend not available for this model")
    }

    /// Signals that may appear in reported gap terms.
    pub fn observable(&self) -> &BTreeSet<SignalId> {
        &self.observable
    }

    /// Signals quantified out of gap terms (the paper's `AP_R − AP_A`
    /// step, keeping design primary inputs observable).
    pub fn hidden(&self) -> &BTreeSet<SignalId> {
        &self.hidden
    }

    /// Signals recorded in raw uncovered terms before quantification.
    pub fn term_signals(&self) -> Vec<SignalId> {
        let mut v: Vec<SignalId> = self
            .observable
            .union(&self.hidden)
            .copied()
            .collect();
        v.sort();
        v
    }

    /// Overrides the observable alphabet (ablation hook).
    pub fn set_observable(&mut self, observable: BTreeSet<SignalId>) {
        let all: BTreeSet<SignalId> = self.observable.union(&self.hidden).copied().collect();
        self.hidden = all.difference(&observable).copied().collect();
        self.observable = observable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_ltl::Ltl;
    use dic_netlist::ModuleBuilder;

    /// The closure workers of Algorithm 1 share `&CoverageModel` across
    /// threads; its interior mutability is all `Mutex`-wrapped, so the
    /// auto-traits must hold. Compile-time pin.
    #[test]
    fn coverage_model_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoverageModel>();
    }

    fn setup() -> (SignalTable, ArchSpec, RtlSpec) {
        let mut t = SignalTable::new();
        let a = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        (
            t,
            ArchSpec::new([("A1", a)]),
            RtlSpec::new([("R1", r)], [m]),
        )
    }

    #[test]
    fn builds_with_free_signals() {
        let (t, arch, rtl) = setup();
        let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        // Free signals: req (spec only) and a (module input).
        let req = t.lookup("req").unwrap();
        let a = t.lookup("a").unwrap();
        assert!(model.kripke().input_vars().contains(&req));
        assert!(model.kripke().input_vars().contains(&a));
        // q is driven, so it is not free.
        let q = t.lookup("q").unwrap();
        assert!(!model.kripke().input_vars().contains(&q));
    }

    #[test]
    fn assumption1_enforced() {
        let (mut t, _arch, rtl) = setup();
        let bogus = Ltl::parse("G phantom", &mut t).unwrap();
        let arch2 = ArchSpec::new([("A2", bogus)]);
        match CoverageModel::build(&arch2, &rtl, &t) {
            Err(CoreError::UnknownArchSignal { name }) => assert_eq!(name, "phantom"),
            other => panic!("expected Assumption 1 violation, got {other:?}"),
        }
    }

    #[test]
    fn backend_resolution_and_dispatch() {
        let (t, arch, rtl) = setup();
        // Small model: Auto resolves explicit.
        let auto = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        assert_eq!(auto.primary_backend(), Backend::Explicit);
        assert!(auto.has_explicit());

        // Forced symbolic: no explicit structure, primary still answers,
        // and the verdict matches the explicit engine's.
        let sym = CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Symbolic)
            .expect("builds");
        assert_eq!(sym.primary_backend(), Backend::Symbolic);
        assert!(!sym.has_explicit());
        let fa = arch.properties()[0].formula();
        let ve = crate::primary_coverage(fa, &rtl, &auto).expect("explicit total");
        let vs = crate::primary_coverage(fa, &rtl, &sym).expect("within budget");
        assert_eq!(ve.is_some(), vs.is_some());

        // Inputs are reported for every backend (witness replay needs them).
        assert_eq!(auto.input_signals(), sym.input_signals());
        let req = t.lookup("req").unwrap();
        assert!(sym.input_signals().contains(&req));
    }

    #[test]
    #[should_panic(expected = "explicit backend not available")]
    fn kripke_accessor_guards_symbolic_models() {
        let (t, arch, rtl) = setup();
        let sym = CoverageModel::build_with_backend(&arch, &rtl, &t, Backend::Symbolic)
            .expect("builds");
        let _ = sym.kripke();
    }

    #[test]
    fn observable_defaults() {
        let (t, arch, rtl) = setup();
        let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        let req = t.lookup("req").unwrap();
        let q = t.lookup("q").unwrap();
        let a = t.lookup("a").unwrap();
        assert!(model.observable().contains(&req));
        assert!(model.observable().contains(&q));
        // `a` is a module primary input → observable; nothing hidden here.
        assert!(model.observable().contains(&a));
        assert!(model.hidden().is_empty());
    }
}
