//! The coverage model: composed concrete modules + free spec signals.

use crate::error::CoreError;
use crate::spec::{ArchSpec, RtlSpec};
use dic_fsm::Kripke;
use dic_logic::{SignalId, SignalTable};
use dic_netlist::Module;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The model `M` of the paper's Definition 1: the synchronous composition
/// of the concrete modules, with every specification signal that the
/// modules do not drive left as a free (nondeterministic) input.
///
/// Its runs are exactly the runs "consistent with the concrete modules",
/// so satisfiability of `R ∧ ¬A` *within this model* is the paper's
/// "`¬A ∧ R` is true in M".
#[derive(Debug)]
pub struct CoverageModel {
    composed: Module,
    kripke: Kripke,
    observable: BTreeSet<SignalId>,
    hidden: BTreeSet<SignalId>,
    cache: dic_automata::GbaCache,
    /// Materialized base products, keyed by the baked-in conjunction.
    products: std::sync::Mutex<HashMap<Vec<dic_ltl::Ltl>, Arc<dic_automata::ProductSystem>>>,
}

impl CoverageModel {
    /// Builds the model for a spec pair.
    ///
    /// Free signals are all atoms of `A` and `R` not driven by the concrete
    /// modules. The *observable* alphabet — what uncovered terms may mention
    /// after quantification — defaults to `AP_A` plus the primary inputs of
    /// the composition (the paper eliminates `AP_R − AP_A`, which is the
    /// complement of this set among term signals).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Netlist`] if the concrete modules cannot be composed,
    /// * [`CoreError::Fsm`] if the state space exceeds the explicit limit,
    /// * [`CoreError::UnknownArchSignal`] if an architectural signal appears
    ///   nowhere in the RTL spec (Assumption 1).
    pub fn build(
        arch: &ArchSpec,
        rtl: &RtlSpec,
        table: &SignalTable,
    ) -> Result<Self, CoreError> {
        // Assumption 1: AP_A ⊆ AP_R.
        let ap_r = rtl.alphabet();
        for &s in &arch.alphabet() {
            if !ap_r.contains(&s) {
                return Err(CoreError::UnknownArchSignal {
                    name: table.name(s).to_owned(),
                });
            }
        }

        let module_refs: Vec<&Module> = rtl.concrete().iter().collect();
        let composed = Module::compose("M", &module_refs, table)?;

        // Cone-of-influence reduction: only the logic that can affect a
        // signal some property mentions matters for coverage; unrelated
        // latches would inflate the explicit state space exponentially.
        let mut spec_signals: Vec<SignalId> = Vec::new();
        for p in arch.properties() {
            spec_signals.extend(p.formula().atoms());
        }
        for p in rtl.properties() {
            spec_signals.extend(p.formula().atoms());
        }
        spec_signals.sort();
        spec_signals.dedup();
        let composed = composed.cone_of_influence(&spec_signals, table);

        // Free signals: every *property* atom the (reduced) composition
        // does not drive. Signals that only ever appeared inside dropped
        // cone logic stay out entirely.
        let mut free: Vec<SignalId> = Vec::new();
        let driven = composed.driven_signals();
        for &s in &spec_signals {
            if !driven.contains(&s) && !free.contains(&s) {
                free.push(s);
            }
        }
        let kripke = Kripke::from_module(&composed, table, &free)?;

        // Observable: the architectural alphabet plus every nondeterministic
        // input of the model (design primary inputs and free environment
        // signals). This is why the paper's gap property U may mention
        // `hit`: it is an input of the concrete L1, not an internal signal.
        let mut observable: BTreeSet<SignalId> = arch.alphabet();
        observable.extend(kripke.input_vars().iter().copied());
        // Terms may mention anything the model constrains or the spec names;
        // the rest is quantified away.
        let mut term_signals: BTreeSet<SignalId> = observable.clone();
        term_signals.extend(rtl.alphabet());
        let hidden: BTreeSet<SignalId> = term_signals
            .difference(&observable)
            .copied()
            .collect();

        Ok(CoverageModel {
            composed,
            kripke,
            observable,
            hidden,
            cache: dic_automata::GbaCache::new(),
            products: std::sync::Mutex::new(HashMap::new()),
        })
    }

    /// Existential query against this model with memoized automaton
    /// translations: is some run of `M` satisfying every formula in
    /// `formulas`? This is the primitive behind every coverage question;
    /// repeated conjuncts (the `R` suite, `¬FA`) are translated once per
    /// model.
    pub fn satisfiable(&self, formulas: &[dic_ltl::Ltl]) -> Option<dic_ltl::LassoWord> {
        dic_automata::satisfiable_in_conj_cached(formulas, &self.kripke, &self.cache)
    }

    /// Factored existential query: is some run of `M` satisfying `base`
    /// *and* `extra`?
    ///
    /// The sub-product of `M` with `base` is materialized on first use and
    /// memoized (see [`dic_automata::materialize_product`]); only the
    /// `extra` conjuncts are explored per call. Algorithm 1 issues hundreds
    /// of queries sharing the same base (`R ∧ ¬FA` for candidate closure,
    /// `R` for term generalization), which makes this the dominant
    /// performance lever of the whole pipeline.
    pub fn satisfiable_factored(
        &self,
        base: &[dic_ltl::Ltl],
        extra: &[dic_ltl::Ltl],
    ) -> Option<dic_ltl::LassoWord> {
        let product = {
            let mut products = self.products.lock().expect("product memo poisoned");
            match products.get(base) {
                Some(p) => Arc::clone(p),
                None => {
                    let p = Arc::new(dic_automata::materialize_product(
                        base,
                        &self.kripke,
                        &self.cache,
                    ));
                    products.insert(base.to_vec(), Arc::clone(&p));
                    p
                }
            }
        };
        dic_automata::satisfiable_in_conj_cached(extra, product.as_ref(), &self.cache)
    }

    /// The composed concrete module `M`.
    pub fn composed(&self) -> &Module {
        &self.composed
    }

    /// The Kripke structure explored by the model checker.
    pub fn kripke(&self) -> &Kripke {
        &self.kripke
    }

    /// Signals that may appear in reported gap terms.
    pub fn observable(&self) -> &BTreeSet<SignalId> {
        &self.observable
    }

    /// Signals quantified out of gap terms (the paper's `AP_R − AP_A`
    /// step, keeping design primary inputs observable).
    pub fn hidden(&self) -> &BTreeSet<SignalId> {
        &self.hidden
    }

    /// Signals recorded in raw uncovered terms before quantification.
    pub fn term_signals(&self) -> Vec<SignalId> {
        let mut v: Vec<SignalId> = self
            .observable
            .union(&self.hidden)
            .copied()
            .collect();
        v.sort();
        v
    }

    /// Overrides the observable alphabet (ablation hook).
    pub fn set_observable(&mut self, observable: BTreeSet<SignalId>) {
        let all: BTreeSet<SignalId> = self.observable.union(&self.hidden).copied().collect();
        self.hidden = all.difference(&observable).copied().collect();
        self.observable = observable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_ltl::Ltl;
    use dic_netlist::ModuleBuilder;

    fn setup() -> (SignalTable, ArchSpec, RtlSpec) {
        let mut t = SignalTable::new();
        let a = Ltl::parse("G(req -> X X q)", &mut t).unwrap();
        let r = Ltl::parse("G(req -> X a)", &mut t).unwrap();
        let mut b = ModuleBuilder::new("glue", &mut t);
        let ain = b.input("a");
        let q = b.latch_from("q", ain, false);
        b.mark_output(q);
        let m = b.finish().unwrap();
        (
            t,
            ArchSpec::new([("A1", a)]),
            RtlSpec::new([("R1", r)], [m]),
        )
    }

    #[test]
    fn builds_with_free_signals() {
        let (t, arch, rtl) = setup();
        let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        // Free signals: req (spec only) and a (module input).
        let req = t.lookup("req").unwrap();
        let a = t.lookup("a").unwrap();
        assert!(model.kripke().input_vars().contains(&req));
        assert!(model.kripke().input_vars().contains(&a));
        // q is driven, so it is not free.
        let q = t.lookup("q").unwrap();
        assert!(!model.kripke().input_vars().contains(&q));
    }

    #[test]
    fn assumption1_enforced() {
        let (mut t, _arch, rtl) = setup();
        let bogus = Ltl::parse("G phantom", &mut t).unwrap();
        let arch2 = ArchSpec::new([("A2", bogus)]);
        match CoverageModel::build(&arch2, &rtl, &t) {
            Err(CoreError::UnknownArchSignal { name }) => assert_eq!(name, "phantom"),
            other => panic!("expected Assumption 1 violation, got {other:?}"),
        }
    }

    #[test]
    fn observable_defaults() {
        let (t, arch, rtl) = setup();
        let model = CoverageModel::build(&arch, &rtl, &t).expect("builds");
        let req = t.lookup("req").unwrap();
        let q = t.lookup("q").unwrap();
        let a = t.lookup("a").unwrap();
        assert!(model.observable().contains(&req));
        assert!(model.observable().contains(&q));
        // `a` is a module primary input → observable; nothing hidden here.
        assert!(model.observable().contains(&a));
        assert!(model.hidden().is_empty());
    }
}
