//! Generalized-Büchi emptiness via Tarjan SCCs, with lasso extraction.
//!
//! The search works on an abstract rooted graph whose nodes carry
//! acceptance bitmasks. A counterexample exists iff some reachable
//! non-trivial SCC covers every acceptance bit; the witness is assembled as
//! a lasso: shortest path to the SCC, then a cycle inside it that touches
//! one state per acceptance set.

use crate::gba::Gba;
use crate::hashing::{FastMap, FastSet};
use crate::system::TransitionSystem;
use std::collections::VecDeque;
use std::hash::Hash;

/// An implicitly-represented rooted graph with per-node acceptance bits.
pub(crate) trait SccGraph {
    /// Node type (small and copyable).
    type Node: Copy + Eq + Hash;
    /// Root nodes the search starts from.
    fn roots(&self) -> Vec<Self::Node>;
    /// Successors of a node.
    fn succs(&self, n: Self::Node) -> Vec<Self::Node>;
    /// Acceptance bits of a node.
    fn bits(&self, n: Self::Node) -> u32;
}

/// The product of a transition system and a GBA.
pub(crate) struct Product<'a, S: TransitionSystem> {
    pub sys: &'a S,
    pub gba: &'a Gba,
}

impl<S: TransitionSystem> Product<'_, S> {
    /// The joint acceptance mask: system fairness bits first, then the
    /// automaton's acceptance sets.
    pub fn joint_mask(&self) -> u32 {
        let sys = self.sys.num_acc_sets();
        let total = sys + self.gba.num_acceptance_sets();
        assert!(total <= 32, "too many joint acceptance sets");
        mask_of(total)
    }
}

impl<S: TransitionSystem> SccGraph for Product<'_, S> {
    type Node = (u32, u32); // (system state, automaton state)

    fn roots(&self) -> Vec<Self::Node> {
        let mut out = Vec::new();
        for k in self.sys.initial_states() {
            let label = self.sys.label(k);
            for &q in self.gba.initial() {
                if self.gba.state(q).compatible(label) {
                    out.push((k, q));
                }
            }
        }
        out
    }

    fn succs(&self, (k, q): Self::Node) -> Vec<Self::Node> {
        let mut out = Vec::new();
        for k2 in self.sys.successors(k) {
            let label = self.sys.label(k2);
            for &q2 in self.gba.successors(q) {
                if self.gba.state(q2).compatible(label) {
                    out.push((k2, q2));
                }
            }
        }
        out
    }

    fn bits(&self, (k, q): Self::Node) -> u32 {
        self.sys.acc_bits(k) | self.gba.state(q).acc_bits() << self.sys.num_acc_sets()
    }
}

/// The bitmask with the low `n` bits set.
fn mask_of(n: u32) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// The synchronous product of a transition system with *several* GBAs at
/// once (one per specification property).
///
/// Translating a conjunction `R1 ∧ … ∧ Rn ∧ ¬A` through one GPVW call
/// explodes: the tableau enumerates subsets of the combined closure. This
/// product keeps one small automaton per conjunct instead, and controls the
/// remaining tuple blowup with *on-the-fly subset determinization* of the
/// safety conjuncts:
///
/// * an automaton with **no acceptance set** (no `Until` — the
///   `G(x -> X y)`-shaped bulk of RTL suites) accepts a word iff it has
///   *some* infinite run on it; by König's lemma that holds iff the set of
///   states reachable on each prefix stays non-empty, so the component can
///   be tracked as one deterministic bitmask — zero branching;
/// * automata **with** acceptance sets (liveness: `F`, `U`, `G F`) must
///   keep their explicit nondeterministic states, because acceptance
///   depends on *which* run is taken; their bits are packed side by side
///   into one generalized acceptance mask.
///
/// Safety automata wider than 64 states (rare) fall back to the explicit
/// branching representation.
pub(crate) struct MultiProduct<'a, S: TransitionSystem> {
    pub sys: &'a S,
    /// Subset-determinized safety components (≤ 64 states each).
    safety: Vec<&'a Gba>,
    /// Explicit components (liveness, or oversized safety).
    explicit: Vec<&'a Gba>,
    /// Bit offset of each explicit automaton's acceptance sets.
    offsets: Vec<u32>,
    /// Interned (safety bitmasks, explicit states) tuples.
    tuples: std::cell::RefCell<TupleTable>,
}

/// One interned product tuple: a bitmask per safety automaton, a state per
/// explicit automaton.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Tuple {
    safety: Vec<u64>,
    explicit: Vec<u32>,
}

/// Interning table for product tuples.
#[derive(Default)]
pub(crate) struct TupleTable {
    by_tuple: FastMap<Tuple, u32>,
    tuples: Vec<Tuple>,
}

impl TupleTable {
    fn intern(&mut self, t: Tuple) -> u32 {
        if let Some(&id) = self.by_tuple.get(&t) {
            return id;
        }
        let id = self.tuples.len() as u32;
        self.tuples.push(t.clone());
        self.by_tuple.insert(t, id);
        id
    }

    fn get(&self, id: u32) -> Tuple {
        self.tuples[id as usize].clone()
    }
}

impl<'a, S: TransitionSystem> MultiProduct<'a, S> {
    /// Builds the product; panics if the packed acceptance mask would
    /// exceed 32 bits (far beyond the suites this tool targets).
    pub fn new(sys: &'a S, gbas: &[&'a Gba]) -> Self {
        let mut safety = Vec::new();
        let mut explicit = Vec::new();
        for &g in gbas {
            if g.num_acceptance_sets() == 0 && g.num_states() <= 64 {
                safety.push(g);
            } else {
                explicit.push(g);
            }
        }
        let mut offsets = Vec::with_capacity(explicit.len());
        let mut total = sys.num_acc_sets();
        for g in &explicit {
            offsets.push(total);
            total += g.num_acceptance_sets();
        }
        assert!(total <= 32, "too many Until subformulas across the spec");
        MultiProduct {
            sys,
            safety,
            explicit,
            offsets,
            tuples: std::cell::RefCell::new(TupleTable::default()),
        }
    }

    /// The packed all-bits mask: system fairness bits first, then every
    /// explicit component's acceptance sets.
    pub fn full_mask(&self) -> u32 {
        let total: u32 = self.sys.num_acc_sets()
            + self
                .explicit
                .iter()
                .map(|g| g.num_acceptance_sets())
                .sum::<u32>();
        mask_of(total)
    }

    /// Advances one safety bitmask over an edge to a state labelled
    /// `label`; `from_initial` selects the automaton's initial states as
    /// sources. Returns `None` when the subset dies (word rejected).
    fn step_safety(
        g: &Gba,
        mask: u64,
        label: &dic_logic::Valuation,
        from_initial: bool,
    ) -> Option<u64> {
        let mut next = 0u64;
        if from_initial {
            for &q in g.initial() {
                if g.state(q).compatible(label) {
                    next |= 1 << q;
                }
            }
        } else {
            let mut m = mask;
            while m != 0 {
                let q = m.trailing_zeros();
                m &= m - 1;
                for &q2 in g.successors(q) {
                    if next >> q2 & 1 == 0 && g.state(q2).compatible(label) {
                        next |= 1 << q2;
                    }
                }
            }
        }
        (next != 0).then_some(next)
    }

    /// All explicit-component continuations compatible with `label`;
    /// `states` is `None` for the initial step.
    fn explicit_branches(&self, states: Option<&[u32]>, label: &dic_logic::Valuation) -> Vec<Vec<u32>> {
        let mut partial: Vec<Vec<u32>> = vec![Vec::with_capacity(self.explicit.len())];
        for (i, g) in self.explicit.iter().enumerate() {
            let sources: Vec<u32> = match states {
                None => g.initial().to_vec(),
                Some(t) => g.successors(t[i]).to_vec(),
            };
            let mut next = Vec::new();
            for t in &partial {
                for &q2 in &sources {
                    if g.state(q2).compatible(label) {
                        let mut t2 = t.clone();
                        t2.push(q2);
                        next.push(t2);
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        partial
    }

    /// Builds all product continuations into system state `k`.
    fn continuations(&self, k: u32, prev: Option<&Tuple>, out: &mut Vec<(u32, u32)>) {
        let label = self.sys.label(k);
        // Safety components are deterministic: advance every bitmask, give
        // up on this branch as soon as one dies.
        let mut safety = Vec::with_capacity(self.safety.len());
        for (i, g) in self.safety.iter().enumerate() {
            let (mask, initial) = match prev {
                None => (0, true),
                Some(t) => (t.safety[i], false),
            };
            match Self::step_safety(g, mask, label, initial) {
                Some(next) => safety.push(next),
                None => return,
            }
        }
        let branches = self.explicit_branches(prev.map(|t| t.explicit.as_slice()), label);
        let mut table = self.tuples.borrow_mut();
        for explicit in branches {
            let id = table.intern(Tuple {
                safety: safety.clone(),
                explicit,
            });
            out.push((k, id));
        }
    }
}

impl<S: TransitionSystem> SccGraph for MultiProduct<'_, S> {
    type Node = (u32, u32); // (system state, tuple id)

    fn roots(&self) -> Vec<Self::Node> {
        let mut out = Vec::new();
        for k in self.sys.initial_states() {
            self.continuations(k, None, &mut out);
        }
        out
    }

    fn succs(&self, (k, tid): Self::Node) -> Vec<Self::Node> {
        let tuple = self.tuples.borrow().get(tid);
        let mut out = Vec::new();
        for k2 in self.sys.successors(k) {
            self.continuations(k2, Some(&tuple), &mut out);
        }
        out
    }

    fn bits(&self, (k, tid): Self::Node) -> u32 {
        let tuple = self.tuples.borrow().get(tid);
        let mut bits = self.sys.acc_bits(k);
        for ((g, &q), &off) in self.explicit.iter().zip(&tuple.explicit).zip(&self.offsets) {
            bits |= g.state(q).acc_bits() << off;
        }
        bits
    }
}

/// The GBA alone as a graph (its states are internally consistent, so any
/// accepting lasso of the automaton denotes a real word — this decides LTL
/// satisfiability without building a 2^AP product).
pub(crate) struct GbaGraph<'a>(pub &'a Gba);

impl SccGraph for GbaGraph<'_> {
    type Node = u32;

    fn roots(&self) -> Vec<u32> {
        self.0.initial().to_vec()
    }

    fn succs(&self, n: u32) -> Vec<u32> {
        self.0.successors(n).to_vec()
    }

    fn bits(&self, n: u32) -> u32 {
        self.0.state(n).acc_bits()
    }
}

/// Searches for an accepting lasso: a path from a root to a cycle whose
/// states jointly cover `full_mask`. Returns `(states, loop_start)` where
/// `states[loop_start..]` is the cycle (the successor of the last state is
/// `states[loop_start]`).
pub(crate) fn find_accepting_lasso<G: SccGraph>(
    g: &G,
    full_mask: u32,
) -> Option<(Vec<G::Node>, usize)> {
    let scc = find_accepting_scc(g, full_mask)?;
    let scc_set: FastSet<G::Node> = scc.iter().copied().collect();
    let entry = scc[0];

    // Prefix: BFS from roots to the SCC entry node.
    let prefix = bfs_path(g.roots(), |n| n == entry, |n| g.succs(n))?;

    // Cycle inside the SCC covering all bits, returning to `entry`.
    let in_scc = |n: &G::Node| scc_set.contains(n);
    let mut cycle: Vec<G::Node> = vec![entry];
    let mut covered = g.bits(entry);
    let mut cur = entry;
    while covered & full_mask != full_mask {
        let missing = full_mask & !covered;
        // Walk to any node providing a missing bit, staying in the SCC.
        let hop = bfs_path(
            vec![cur],
            |n| g.bits(n) & missing != 0,
            |n| g.succs(n).into_iter().filter(in_scc).collect(),
        )
        .expect("SCC covers the mask, so a provider is reachable inside it");
        for n in hop.into_iter().skip(1) {
            covered |= g.bits(n);
            cycle.push(n);
        }
        cur = *cycle.last().expect("non-empty");
    }
    // Close the cycle back to `entry` with at least one edge.
    let back = bfs_path(
        g.succs(cur).into_iter().filter(in_scc).collect(),
        |n| n == entry,
        |n| g.succs(n).into_iter().filter(in_scc).collect(),
    )
    .expect("SCC is strongly connected");
    cycle.extend(back);
    // `cycle` now starts and ends at `entry`; drop the duplicate.
    debug_assert!(cycle[0] == *cycle.last().expect("non-empty"));
    cycle.pop();

    let mut states = prefix;
    states.pop(); // prefix ends at entry; the cycle re-adds it
    let loop_start = states.len();
    states.extend(cycle);
    Some((states, loop_start))
}

/// BFS from `starts` to the first node satisfying `goal`; returns the full
/// path including start and goal.
fn bfs_path<N, FG, FS>(starts: Vec<N>, goal: FG, succs: FS) -> Option<Vec<N>>
where
    N: Copy + Eq + Hash,
    FG: Fn(N) -> bool,
    FS: Fn(N) -> Vec<N>,
{
    let mut parent: FastMap<N, Option<N>> = FastMap::default();
    let mut queue = VecDeque::new();
    for s in starts {
        if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(s) {
            e.insert(None);
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        if goal(n) {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(Some(p)) = parent.get(&cur) {
                path.push(*p);
                cur = *p;
            }
            path.reverse();
            return Some(path);
        }
        for m in succs(n) {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(m) {
                e.insert(Some(n));
                queue.push_back(m);
            }
        }
    }
    None
}

/// Iterative Tarjan SCC search; returns the members of the first reachable
/// SCC that is non-trivial (contains an edge) and covers `full_mask`.
fn find_accepting_scc<G: SccGraph>(g: &G, full_mask: u32) -> Option<Vec<G::Node>> {
    #[derive(Clone)]
    struct Frame<N> {
        node: N,
        succs: Vec<N>,
        next_child: usize,
    }
    let mut index: FastMap<G::Node, u32> = FastMap::default();
    let mut lowlink: FastMap<G::Node, u32> = FastMap::default();
    let mut on_stack: FastSet<G::Node> = FastSet::default();
    let mut stack: Vec<G::Node> = Vec::new();
    let mut counter: u32 = 0;
    let mut call: Vec<Frame<G::Node>> = Vec::new();

    for root in g.roots() {
        if index.contains_key(&root) {
            continue;
        }
        // Push root frame.
        index.insert(root, counter);
        lowlink.insert(root, counter);
        counter += 1;
        stack.push(root);
        on_stack.insert(root);
        call.push(Frame {
            node: root,
            succs: g.succs(root),
            next_child: 0,
        });

        while let Some(frame) = call.last_mut() {
            if frame.next_child < frame.succs.len() {
                let child = frame.succs[frame.next_child];
                frame.next_child += 1;
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(child) {
                    e.insert(counter);
                    lowlink.insert(child, counter);
                    counter += 1;
                    stack.push(child);
                    on_stack.insert(child);
                    call.push(Frame {
                        node: child,
                        succs: g.succs(child),
                        next_child: 0,
                    });
                } else if on_stack.contains(&child) {
                    let node = frame.node;
                    let low = lowlink[&node].min(index[&child]);
                    lowlink.insert(node, low);
                }
            } else {
                // Post-order: pop frame, maybe emit SCC.
                let node = frame.node;
                let frame_done = call.pop().expect("non-empty");
                debug_assert!(frame_done.node == node);
                if let Some(parent) = call.last() {
                    let low = lowlink[&parent.node].min(lowlink[&node]);
                    lowlink.insert(parent.node, low);
                }
                if lowlink[&node] == index[&node] {
                    // Pop the SCC rooted at `node`.
                    let mut members = Vec::new();
                    loop {
                        let m = stack.pop().expect("scc member");
                        on_stack.remove(&m);
                        members.push(m);
                        if m == node {
                            break;
                        }
                    }
                    // Accepting? Needs all bits and at least one edge.
                    let mut bits = 0u32;
                    for &m in &members {
                        bits |= g.bits(m);
                    }
                    if bits & full_mask == full_mask {
                        let nontrivial = members.len() > 1
                            || g.succs(members[0]).contains(&members[0]);
                        if nontrivial {
                            // `counter` numbered every distinct state this
                            // search visited: flush it once, not per node.
                            if dic_trace::enabled() {
                                dic_trace::count(
                                    dic_trace::Counter::ExplicitStatesExpanded,
                                    u64::from(counter),
                                );
                            }
                            return Some(members);
                        }
                    }
                }
            }
        }
    }
    if dic_trace::enabled() {
        dic_trace::count(dic_trace::Counter::ExplicitStatesExpanded, u64::from(counter));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-built graph for direct SCC testing.
    struct Toy {
        roots: Vec<u32>,
        edges: Vec<Vec<u32>>,
        bits: Vec<u32>,
    }

    impl SccGraph for Toy {
        type Node = u32;
        fn roots(&self) -> Vec<u32> {
            self.roots.clone()
        }
        fn succs(&self, n: u32) -> Vec<u32> {
            self.edges[n as usize].clone()
        }
        fn bits(&self, n: u32) -> u32 {
            self.bits[n as usize]
        }
    }

    #[test]
    fn finds_self_loop() {
        // 0 -> 1 -> 1 (self loop with bit 0).
        let g = Toy {
            roots: vec![0],
            edges: vec![vec![1], vec![1]],
            bits: vec![0, 1],
        };
        let (states, loop_start) = find_accepting_lasso(&g, 1).expect("accepting");
        assert_eq!(states, vec![0, 1]);
        assert_eq!(loop_start, 1);
    }

    #[test]
    fn rejects_trivial_scc() {
        // 0 -> 1, no cycle at all.
        let g = Toy {
            roots: vec![0],
            edges: vec![vec![1], vec![]],
            bits: vec![1, 1],
        };
        assert!(find_accepting_lasso(&g, 1).is_none());
    }

    #[test]
    fn needs_all_bits_in_one_scc() {
        // Two separate loops, each with one bit: neither covers both.
        let g = Toy {
            roots: vec![0],
            edges: vec![vec![0, 1], vec![1]],
            bits: vec![0b01, 0b10],
        };
        assert!(find_accepting_lasso(&g, 0b11).is_none());
        // One loop containing both bits works.
        let g2 = Toy {
            roots: vec![0],
            edges: vec![vec![1], vec![0]],
            bits: vec![0b01, 0b10],
        };
        let (states, loop_start) = find_accepting_lasso(&g2, 0b11).expect("accepting");
        // Cycle must contain both states.
        let cycle: Vec<u32> = states[loop_start..].to_vec();
        assert!(cycle.contains(&0) && cycle.contains(&1));
    }

    #[test]
    fn zero_mask_accepts_any_cycle() {
        let g = Toy {
            roots: vec![0],
            edges: vec![vec![1], vec![0]],
            bits: vec![0, 0],
        };
        let (states, loop_start) = find_accepting_lasso(&g, 0).expect("any cycle");
        assert!(states.len() - loop_start >= 1);
    }

    #[test]
    fn unreachable_accepting_scc_ignored() {
        // Accepting loop at 2 is unreachable from root 0.
        let g = Toy {
            roots: vec![0],
            edges: vec![vec![0], vec![2], vec![2]],
            bits: vec![0, 0, 1],
        };
        assert!(find_accepting_lasso(&g, 1).is_none());
    }

    #[test]
    fn lasso_is_well_formed() {
        // Diamond into a 3-cycle with distributed bits.
        let g = Toy {
            roots: vec![0],
            edges: vec![vec![1, 2], vec![3], vec![3], vec![4], vec![5], vec![3]],
            bits: vec![0, 0, 0, 0b01, 0b10, 0],
        };
        let (states, loop_start) = find_accepting_lasso(&g, 0b11).expect("accepting");
        // Check edges along the path.
        for i in 0..states.len() - 1 {
            assert!(
                g.succs(states[i]).contains(&states[i + 1]),
                "broken edge {} -> {}",
                states[i],
                states[i + 1]
            );
        }
        // Loop closes.
        let last = *states.last().unwrap();
        assert!(g.succs(last).contains(&states[loop_start]));
        // Cycle covers both bits.
        let mut bits = 0;
        for &s in &states[loop_start..] {
            bits |= g.bits(s);
        }
        assert_eq!(bits & 0b11, 0b11);
    }
}
