//! LTL model checking for the SpecMatcher design-intent-coverage toolkit.
//!
//! The paper reduces every question it asks — the primary coverage question
//! of Theorem 1 (`¬A ∧ R` false in `M`?), gap-closure checks, property
//! strength comparisons (Definition 2) — to "is this LTL formula satisfiable
//! within this model?". This crate provides that engine, built from scratch:
//!
//! * [`translate`] — the GPVW on-the-fly tableau construction (Gerth,
//!   Peled, Vardi, Wolper 1995) from LTL to a generalized Büchi automaton
//!   ([`Gba`]),
//! * [`TransitionSystem`] — the interface the checker needs from a model
//!   (implemented by [`dic_fsm::Kripke`] and by [`WordSystem`], a
//!   single-word system used for testing and witness replay),
//! * [`satisfiable_in`] / [`holds_in`] — emptiness of the product with a
//!   Tarjan-SCC check over generalized acceptance, returning lasso-shaped
//!   witnesses ([`dic_ltl::LassoWord`]),
//! * [`is_satisfiable`], [`is_valid`], [`implies`], [`stronger_than`],
//!   [`equivalent`] — pure-formula decisions used by the weakening engine.
//!
//! # Example
//!
//! ```
//! use dic_logic::SignalTable;
//! use dic_ltl::Ltl;
//! use dic_automata::{implies, is_satisfiable, stronger_than};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut t = SignalTable::new();
//! let gp = Ltl::parse("G p", &mut t)?;
//! let fp = Ltl::parse("F p", &mut t)?;
//! assert!(implies(&gp, &fp));
//! assert!(stronger_than(&gp, &fp)); // Definition 2 of the paper
//! assert!(is_satisfiable(&Ltl::parse("G(p -> X q) & p", &mut t)?));
//! assert!(!is_satisfiable(&Ltl::parse("G p & F !p", &mut t)?));
//! # Ok(())
//! # }
//! ```

pub mod degeneralize;
pub mod gba;
pub mod hashing;
pub mod mc;
pub mod ndfs;
pub mod product;
pub mod reduce;
pub mod sat;
pub mod system;

pub use degeneralize::degeneralize;
pub use gba::{code_bits, translate, translate_unreduced, Gba};
pub use reduce::{reduce, reduce_with_stats, ReductionStats};
pub use mc::{
    holds_in, materialize_product, reduction_enabled, reduction_from_env, satisfiable_in,
    satisfiable_in_conj,
    satisfiable_in_conj_cached, satisfiable_in_conj_gbas, translate_cached,
    translation_reduction, GbaCache, ProductSystem, Verdict,
};
pub use sat::{
    equivalent, implies, is_satisfiable, is_satisfiable_ndfs, is_valid, stronger_than, witness,
};
pub use system::{TransitionSystem, WordSystem};
