//! Degeneralization: generalized Büchi → plain Büchi.
//!
//! The counter construction of Clarke, Grumberg & Peled (*Model Checking*,
//! the paper's reference [2]): a [`Gba`] with `k` acceptance sets becomes
//! an automaton over states `(q, i)` with `i ∈ 0..k` meaning "waiting for
//! a state in acceptance set `i`". When state `q` at level `i` belongs to
//! set `i`, the level advances; the states that satisfy the *last* wait
//! (`q ∈ F_{k−1}` at level `k−1`) form the single acceptance set of the
//! result. A run wraps through the levels infinitely often iff it visits
//! every original set infinitely often.
//!
//! The result is returned as a [`Gba`] with exactly one acceptance set
//! (zero if the input had none), so the whole emptiness machinery —
//! Tarjan or the [nested DFS](crate::ndfs) — applies unchanged. The
//! construction multiplies the state count by at most `k`, only for the
//! reachable part.

use crate::gba::{Gba, GbaState};
use std::collections::HashMap;

/// Degeneralizes a [`Gba`] into an equivalent automaton with at most one
/// acceptance set (see the [module docs](self)).
///
/// Automata without acceptance sets are returned as a (reachable-part)
/// copy: they are already plain safety automata.
pub fn degeneralize(gba: &Gba) -> Gba {
    let k = gba.num_acceptance_sets();
    if k == 0 {
        return gba.clone();
    }

    // The level advance at a state: starting from `level`, every
    // consecutive wait the state satisfies is discharged; wrapping past
    // the last set makes the state accepting in the result.
    let advance = |q: u32, level: u32| -> (u32, bool) {
        let mut next = level;
        while next < k && gba.state(q).acc_bits() >> next & 1 == 1 {
            next += 1;
        }
        if next == k {
            (0, true)
        } else {
            (next, false)
        }
    };

    // Interned (state, level) pairs, explored from the initial states.
    let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
    let mut states: Vec<GbaState> = Vec::new();
    let mut work: Vec<((u32, u32), u32)> = Vec::new();

    let mut intern = |node: (u32, u32),
                      states: &mut Vec<GbaState>,
                      work: &mut Vec<((u32, u32), u32)>| {
        if let Some(&id) = ids.get(&node) {
            return id;
        }
        let id = states.len() as u32;
        ids.insert(node, id);
        let (q, level) = node;
        let (_, wraps) = advance(q, level);
        states.push(GbaState::new(
            gba.state(q).literals().to_vec(),
            u32::from(wraps),
        ));
        work.push((node, id));
        id
    };

    let mut initial = Vec::new();
    for &q in gba.initial() {
        let id = intern((q, 0), &mut states, &mut work);
        if !initial.contains(&id) {
            initial.push(id);
        }
    }

    let mut succs: Vec<Vec<u32>> = Vec::new();
    while let Some(((q, level), id)) = work.pop() {
        let (next_level, _) = advance(q, level);
        let mut edges = Vec::new();
        for &q2 in gba.successors(q) {
            let id2 = intern((q2, next_level), &mut states, &mut work);
            edges.push(id2);
        }
        edges.sort_unstable();
        edges.dedup();
        let id = id as usize;
        if succs.len() <= id {
            succs.resize(id + 1, Vec::new());
        }
        succs[id] = edges;
    }
    succs.resize(states.len(), Vec::new());

    Gba::from_parts(states, initial, succs, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gba::translate;
    use crate::product::{find_accepting_lasso, GbaGraph};
    use dic_logic::SignalTable;
    use dic_ltl::Ltl;

    fn parse(t: &mut SignalTable, src: &str) -> Ltl {
        Ltl::parse(src, t).expect("parse")
    }

    /// Emptiness of the degeneralized automaton must agree with the
    /// generalized one (formula satisfiability).
    #[test]
    fn degeneralized_emptiness_matches() {
        let mut t = SignalTable::new();
        for src in [
            "p U q",
            "G F p & G F !p",
            "G p & F !p", // unsatisfiable
            "(p U q) & G !q", // unsatisfiable
            "(p U q) & (!p U r)",
            "G(p -> F q) & G(q -> F r)",
            "F G p & G F q",
        ] {
            let f = parse(&mut t, src);
            let gba = translate(&f);
            let ba = degeneralize(&gba);
            assert!(ba.num_acceptance_sets() <= 1);
            let gba_nonempty =
                find_accepting_lasso(&GbaGraph(&gba), gba.full_acc_mask()).is_some();
            let ba_nonempty = find_accepting_lasso(&GbaGraph(&ba), ba.full_acc_mask()).is_some();
            assert_eq!(gba_nonempty, ba_nonempty, "disagreement on {src}");
        }
    }

    #[test]
    fn safety_automata_pass_through() {
        let mut t = SignalTable::new();
        let f = parse(&mut t, "G(p -> X q)");
        let gba = translate(&f);
        assert_eq!(gba.num_acceptance_sets(), 0);
        let ba = degeneralize(&gba);
        assert_eq!(ba.num_acceptance_sets(), 0);
        assert_eq!(ba.num_states(), gba.num_states());
    }

    #[test]
    fn blowup_is_bounded_by_k() {
        let mut t = SignalTable::new();
        let f = parse(&mut t, "G F p & G F q & G F r");
        let gba = translate(&f);
        let k = gba.num_acceptance_sets() as usize;
        assert!(k >= 2);
        let ba = degeneralize(&gba);
        assert!(
            ba.num_states() <= gba.num_states() * k.max(1),
            "{} > {} * {}",
            ba.num_states(),
            gba.num_states(),
            k
        );
    }

    #[test]
    fn accepting_states_only_at_last_level() {
        let mut t = SignalTable::new();
        let f = parse(&mut t, "G F p & G F q");
        let ba = degeneralize(&translate(&f));
        assert_eq!(ba.num_acceptance_sets(), 1);
        // There must be accepting states, and an accepting lasso.
        assert!(ba.states().iter().any(|s| s.acc_bits() == 1));
        assert!(find_accepting_lasso(&GbaGraph(&ba), 1).is_some());
    }
}
