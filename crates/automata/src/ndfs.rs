//! Nested depth-first search: Büchi emptiness for single-set automata.
//!
//! The classic algorithm of Courcoubetis, Vardi, Wolper & Yannakakis: a
//! *blue* DFS explores the graph; at the post-order visit of every
//! accepting state a *red* DFS looks for a cycle back to it. Runs in
//! `O(|V| + |E|)` with two bits per state, and finds lassos on the fly —
//! historically the memory-lean alternative to SCC-based emptiness, which
//! is why it is the reference algorithm in explicit-state checkers like
//! SPIN.
//!
//! This crate's default engine is the Tarjan search in
//! [`product`](crate::product) (it handles *generalized* acceptance
//! natively); the nested DFS is provided for single-acceptance-set graphs
//! — plain Büchi automata, e.g. after
//! [`degeneralize`](crate::degeneralize::degeneralize) — and serves as an
//! independent cross-check of the Tarjan verdicts in the test suite and as
//! an ablation point in the benchmarks.

use crate::hashing::{FastMap, FastSet};
use crate::product::SccGraph;

/// State colors of the blue search.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Color {
    White,
    Cyan,
    Blue,
}

/// Searches for a lasso whose cycle contains a state with `bits & 1 != 0`
/// (the single acceptance set); `(states, loop_start)` as in
/// [`find_accepting_lasso`](crate::product::find_accepting_lasso).
///
/// Graphs with *no* acceptance obligation (mask 0) accept on any cycle;
/// callers with generalized (multi-set) obligations must degeneralize
/// first — this function only consults bit 0.
pub(crate) fn find_accepting_lasso_ndfs<G: SccGraph>(
    g: &G,
    any_cycle: bool,
) -> Option<(Vec<G::Node>, usize)> {
    let mut color: FastMap<G::Node, Color> = FastMap::default();
    let mut red: FastSet<G::Node> = FastSet::default();

    /// One decision of the blue DFS, extracted so the stack borrow ends
    /// before the stack is inspected or grown.
    enum Step<N> {
        Advance(N),
        Postorder(N),
    }

    for root in g.roots() {
        if color.get(&root).copied().unwrap_or(Color::White) != Color::White {
            continue;
        }
        // Iterative blue DFS; the stack holds (node, successors, cursor).
        let mut stack: Vec<(G::Node, Vec<G::Node>, usize)> = Vec::new();
        color.insert(root, Color::Cyan);
        stack.push((root, g.succs(root), 0));

        while !stack.is_empty() {
            let step = {
                let (node, succs, cursor) = stack.last_mut().expect("non-empty");
                match succs.get(*cursor) {
                    Some(&next) => {
                        *cursor += 1;
                        Step::Advance(next)
                    }
                    None => Step::Postorder(*node),
                }
            };
            match step {
                Step::Advance(next) => {
                    let c = color.get(&next).copied().unwrap_or(Color::White);
                    // Early detection: an edge into the cyan path closes a
                    // cycle — exactly the stack suffix from `next` — which
                    // accepts iff that suffix carries an accepting state.
                    if c == Color::Cyan {
                        let on_path: Vec<G::Node> =
                            stack.iter().map(|(n, _, _)| *n).collect();
                        let start = on_path
                            .iter()
                            .position(|&n| n == next)
                            .expect("cyan states are on the path");
                        let accepting =
                            any_cycle || on_path[start..].iter().any(|&n| g.bits(n) & 1 != 0);
                        if accepting {
                            return Some((on_path, start));
                        }
                        continue;
                    }
                    if c == Color::White {
                        color.insert(next, Color::Cyan);
                        stack.push((next, g.succs(next), 0));
                    }
                }
                Step::Postorder(node) => {
                    // Red search from accepting states, in blue post-order.
                    stack.pop();
                    color.insert(node, Color::Blue);
                    if !(g.bits(node) & 1 != 0 || any_cycle) {
                        continue;
                    }
                    let Some(mut path) = red_search(g, node, &color, &mut red) else {
                        continue;
                    };
                    // `path` is seed -> … -> hit, where `hit` is cyan (an
                    // ancestor on the blue path) or the seed itself.
                    let blue_path: Vec<G::Node> = stack.iter().map(|(n, _, _)| *n).collect();
                    let hit = *path.last().expect("non-empty red path");
                    if hit == node {
                        // Cycle through the seed alone: prefix = blue
                        // ancestors, cycle = red path minus its repeated
                        // endpoint.
                        path.pop();
                        let mut states = blue_path;
                        let loop_start = states.len();
                        states.extend(path);
                        return Some((states, loop_start));
                    }
                    // Cycle: hit ..blue tree.. node ..red.. hit.
                    let start = blue_path
                        .iter()
                        .position(|&n| n == hit)
                        .expect("cyan states are on the path");
                    let mut states = blue_path;
                    states.push(node);
                    path.pop(); // drop the repeated `hit`
                    states.extend(path.into_iter().skip(1)); // drop the seed copy
                    return Some((states, start));
                }
            }
        }
    }
    None
}

/// Red DFS from `seed`: looks for an edge back to `seed` or to any cyan
/// state (a state on the blue stack — which by the NDFS invariant closes
/// an accepting cycle). Returns the path `seed -> … -> hit` on success.
fn red_search<G: SccGraph>(
    g: &G,
    seed: G::Node,
    color: &FastMap<G::Node, Color>,
    red: &mut FastSet<G::Node>,
) -> Option<Vec<G::Node>> {
    let mut stack: Vec<(Vec<G::Node>, usize)> = vec![(g.succs(seed), 0)];
    let mut on_path: Vec<G::Node> = vec![seed];
    red.insert(seed);

    while !stack.is_empty() {
        let advance = {
            let (succs, cursor) = stack.last_mut().expect("non-empty");
            match succs.get(*cursor) {
                Some(&next) => {
                    *cursor += 1;
                    Some(next)
                }
                None => None,
            }
        };
        match advance {
            Some(next) => {
                if next == seed || color.get(&next).copied() == Some(Color::Cyan) {
                    on_path.push(next);
                    return Some(on_path);
                }
                if !red.contains(&next) {
                    red.insert(next);
                    stack.push((g.succs(next), 0));
                    on_path.push(next);
                }
            }
            None => {
                stack.pop();
                on_path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneralize::degeneralize;
    use crate::gba::translate;
    use crate::product::{find_accepting_lasso, GbaGraph};
    use dic_logic::SignalTable;
    use dic_ltl::random::{random_formula, XorShift64};
    use dic_ltl::Ltl;

    fn parse(t: &mut SignalTable, src: &str) -> Ltl {
        Ltl::parse(src, t).expect("parse")
    }

    /// NDFS on the degeneralized automaton agrees with Tarjan on the GBA,
    /// on a battery of patterns.
    #[test]
    fn ndfs_matches_tarjan_on_patterns() {
        let mut t = SignalTable::new();
        for src in [
            "p U q",
            "G F p & G F !p",
            "G p & F !p",
            "(p U q) & G !q",
            "G(p -> F q)",
            "F G p & G F !p",
            "p & !p",
            "G(p -> X q) & p & X !q",
        ] {
            let f = parse(&mut t, src);
            let gba = translate(&f);
            let ba = degeneralize(&gba);
            let tarjan = find_accepting_lasso(&GbaGraph(&gba), gba.full_acc_mask()).is_some();
            let any_cycle = ba.num_acceptance_sets() == 0;
            let ndfs = find_accepting_lasso_ndfs(&GbaGraph(&ba), any_cycle).is_some();
            assert_eq!(tarjan, ndfs, "disagreement on {src}");
        }
    }

    /// Randomized cross-validation: satisfiability via NDFS ≡ via Tarjan.
    #[test]
    fn ndfs_matches_tarjan_on_random_formulas() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
        let mut rng = XorShift64::new(0xBDF5);
        for _ in 0..120 {
            let f = random_formula(&mut rng, &atoms, 8);
            let gba = translate(&f);
            let ba = degeneralize(&gba);
            let tarjan = find_accepting_lasso(&GbaGraph(&gba), gba.full_acc_mask()).is_some();
            let any_cycle = ba.num_acceptance_sets() == 0;
            let ndfs = find_accepting_lasso_ndfs(&GbaGraph(&ba), any_cycle).is_some();
            assert_eq!(tarjan, ndfs, "disagreement on {f:?}");
        }
    }

    /// The returned lasso is well-formed: consecutive edges exist, the
    /// loop closes, and the cycle carries an accepting state.
    #[test]
    fn ndfs_lasso_is_well_formed() {
        let mut t = SignalTable::new();
        for src in ["G F p", "p U q", "F(p & X q)", "G(p -> F q) & G F p"] {
            let f = parse(&mut t, src);
            let ba = degeneralize(&translate(&f));
            let any_cycle = ba.num_acceptance_sets() == 0;
            let Some((states, loop_start)) =
                find_accepting_lasso_ndfs(&GbaGraph(&ba), any_cycle)
            else {
                panic!("{src} is satisfiable");
            };
            let g = GbaGraph(&ba);
            for w in states.windows(2) {
                assert!(g.succs(w[0]).contains(&w[1]), "broken edge in {src}");
            }
            let last = *states.last().expect("non-empty");
            assert!(
                g.succs(last).contains(&states[loop_start]),
                "loop does not close in {src}"
            );
            if !any_cycle {
                assert!(
                    states[loop_start..].iter().any(|&q| g.bits(q) & 1 != 0),
                    "cycle misses the acceptance set in {src}"
                );
            }
        }
    }
}
