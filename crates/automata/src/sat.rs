//! Pure-formula decisions: satisfiability, validity, implication, strength.
//!
//! These run directly on the GPVW automaton (its states are internally
//! consistent, so automaton non-emptiness coincides with formula
//! satisfiability) — no 2^AP product is ever built.

use crate::mc::translate_cached;
use crate::product::{find_accepting_lasso, GbaGraph};
use dic_logic::Valuation;
use dic_ltl::{LassoWord, Ltl};

/// Whether some infinite word satisfies `formula`.
pub fn is_satisfiable(formula: &Ltl) -> bool {
    witness(formula, 0).is_some()
}

/// A satisfying lasso word over a table of `n_signals` signals, if any.
/// Signals unconstrained by the automaton run are set low.
pub fn witness(formula: &Ltl, n_signals: usize) -> Option<LassoWord> {
    let gba = translate_cached(formula);
    let graph = GbaGraph(&gba);
    let (states, loop_start) = find_accepting_lasso(&graph, gba.full_acc_mask())?;
    let n = n_signals.max(
        formula
            .atoms()
            .iter()
            .map(|s| s.index() + 1)
            .max()
            .unwrap_or(0),
    );
    let vals: Vec<Valuation> = states
        .iter()
        .map(|&q| gba.state(q).witness_valuation(n))
        .collect();
    Some(LassoWord::new(vals, loop_start).expect("lasso has a loop"))
}

/// Whether every infinite word satisfies `formula`.
pub fn is_valid(formula: &Ltl) -> bool {
    !is_satisfiable(&Ltl::not(formula.clone()))
}

/// [`is_satisfiable`] decided by the independent engine: degeneralization
/// ([`crate::degeneralize`]) followed by nested-DFS emptiness
/// ([`crate::ndfs`]) instead of Tarjan over generalized acceptance.
///
/// Same verdicts by construction; exercised against [`is_satisfiable`]
/// throughout the test suite as an engine cross-check, and available to
/// callers who want a second opinion from a disjoint code path.
pub fn is_satisfiable_ndfs(formula: &Ltl) -> bool {
    let gba = translate_cached(formula);
    let ba = crate::degeneralize::degeneralize(&gba);
    let any_cycle = ba.num_acceptance_sets() == 0;
    crate::ndfs::find_accepting_lasso_ndfs(&GbaGraph(&ba), any_cycle).is_some()
}

/// Whether `f ⇒ g` is valid (every word satisfying `f` satisfies `g`).
pub fn implies(f: &Ltl, g: &Ltl) -> bool {
    !is_satisfiable(&Ltl::and([f.clone(), Ltl::not(g.clone())]))
}

/// The paper's Definition 2: `f` is *stronger* than `g` iff `f ⇒ g` and
/// not `g ⇒ f`.
pub fn stronger_than(f: &Ltl, g: &Ltl) -> bool {
    implies(f, g) && !implies(g, f)
}

/// Whether `f` and `g` have the same models.
pub fn equivalent(f: &Ltl, g: &Ltl) -> bool {
    implies(f, g) && implies(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::SignalTable;

    fn parse(t: &mut SignalTable, src: &str) -> Ltl {
        Ltl::parse(src, t).expect("parse")
    }

    #[test]
    fn satisfiability_basics() {
        let mut t = SignalTable::new();
        assert!(is_satisfiable(&parse(&mut t, "p")));
        assert!(is_satisfiable(&parse(&mut t, "G F p & G F !p")));
        assert!(!is_satisfiable(&parse(&mut t, "p & !p")));
        assert!(!is_satisfiable(&parse(&mut t, "G p & F !p")));
        assert!(!is_satisfiable(&parse(&mut t, "(p U q) & G !q")));
        assert!(is_satisfiable(&parse(&mut t, "(p U q) & G !p")));
    }

    #[test]
    fn validity_basics() {
        let mut t = SignalTable::new();
        assert!(is_valid(&parse(&mut t, "p | !p")));
        assert!(is_valid(&parse(&mut t, "G p -> p")));
        assert!(is_valid(&parse(&mut t, "G p -> F p")));
        assert!(is_valid(&parse(&mut t, "p U q -> F q")));
        assert!(!is_valid(&parse(&mut t, "F p -> G p")));
        // Expansion law as a validity.
        assert!(is_valid(&parse(&mut t, "(p U q) <-> (q | p & X(p U q))")));
        // Distribution of X over U.
        assert!(is_valid(&parse(&mut t, "X(p U q) <-> (X p) U (X q)")));
    }

    #[test]
    fn implication_lattice() {
        let mut t = SignalTable::new();
        let gp = parse(&mut t, "G p");
        let p = parse(&mut t, "p");
        let fp = parse(&mut t, "F p");
        assert!(implies(&gp, &p));
        assert!(implies(&p, &fp));
        assert!(implies(&gp, &fp));
        assert!(!implies(&fp, &p));
        assert!(!implies(&p, &gp));
    }

    #[test]
    fn strength_is_strict() {
        let mut t = SignalTable::new();
        let gp = parse(&mut t, "G p");
        let fp = parse(&mut t, "F p");
        assert!(stronger_than(&gp, &fp));
        assert!(!stronger_than(&fp, &gp));
        // Not strictly stronger than itself.
        assert!(!stronger_than(&gp, &gp));
    }

    #[test]
    fn equivalences() {
        let mut t = SignalTable::new();
        let a = parse(&mut t, "!(p U q)");
        let b = parse(&mut t, "(!p R !q)");
        assert!(equivalent(&a, &b));
        let c = parse(&mut t, "G(p & q)");
        let d = parse(&mut t, "G p & G q");
        assert!(equivalent(&c, &d));
        let e = parse(&mut t, "F(p | q)");
        let f = parse(&mut t, "F p | F q");
        assert!(equivalent(&e, &f));
        assert!(!equivalent(&parse(&mut t, "F(p & q)"), &parse(&mut t, "F p & F q")));
    }

    #[test]
    fn witness_satisfies_formula() {
        let mut t = SignalTable::new();
        for src in [
            "p U q",
            "G F p",
            "(X X p) & G(p -> X !p)",
            "F(p & X q) & G(q -> r)",
        ] {
            let f = parse(&mut t, src);
            let w = witness(&f, t.len()).expect("satisfiable");
            assert!(f.holds_on(&w), "witness for {src} does not satisfy it");
        }
    }

    #[test]
    fn ndfs_engine_agrees_with_tarjan() {
        let mut t = SignalTable::new();
        for src in [
            "p U q",
            "G F p & G F !p",
            "G p & F !p",
            "(p U q) & G !q",
            "G(p -> F q) & F G p",
            "p & !p",
        ] {
            let f = parse(&mut t, src);
            assert_eq!(
                is_satisfiable(&f),
                is_satisfiable_ndfs(&f),
                "engines disagree on {src}"
            );
        }
    }

    #[test]
    fn paper_strength_example() {
        // The paper's Example 4: U is stronger than the raw hole formula,
        // here checked in miniature: strengthening an antecedent weakens
        // the property.
        let mut t = SignalTable::new();
        let a = parse(&mut t, "G(r1 & X(r1 U r2) -> X(!d2 U d1))");
        let u = parse(&mut t, "G(r1 & X(r1 U (r2 & X !hit)) -> X(!d2 U d1))");
        assert!(implies(&a, &u), "A must imply the weakened U");
        assert!(stronger_than(&a, &u));
    }
}
