//! The model interface: transition systems over signal valuations.

use dic_fsm::Kripke;
use dic_logic::Valuation;
use dic_ltl::LassoWord;

/// What the model checker needs from a model: initial states, successors
/// and signal-valuation labels.
///
/// Implemented by [`dic_fsm::Kripke`] (netlist semantics) and by
/// [`WordSystem`] (a single lasso word, used to replay witnesses and as a
/// test oracle bridge).
pub trait TransitionSystem {
    /// The initial states.
    fn initial_states(&self) -> Vec<u32>;
    /// The successors of `state`.
    fn successors(&self, state: u32) -> Vec<u32>;
    /// The valuation labelling `state`.
    fn label(&self, state: u32) -> &Valuation;

    /// Number of *fairness* (generalized acceptance) sets the system itself
    /// imposes: a path of the system counts as a run only if it visits each
    /// set infinitely often. Plain models have none; a
    /// [`ProductSystem`](crate::ProductSystem) carries the acceptance bits
    /// of the automata folded into it.
    fn num_acc_sets(&self) -> u32 {
        0
    }

    /// Membership bitmask of `state` in the system fairness sets
    /// (bit `j` ⇔ member of set `j`); always `0` for plain models.
    fn acc_bits(&self, _state: u32) -> u32 {
        0
    }
}

impl TransitionSystem for Kripke {
    fn initial_states(&self) -> Vec<u32> {
        Kripke::initial_states(self).collect()
    }

    fn successors(&self, state: u32) -> Vec<u32> {
        Kripke::successors(self, state).collect()
    }

    fn label(&self, state: u32) -> &Valuation {
        Kripke::label(self, state)
    }
}

/// A transition system with exactly one run: the given lasso word.
///
/// State `i` is position `i` of the word; the last stored position loops
/// back to `loop_start`. Model-checking a formula existentially against a
/// `WordSystem` therefore decides `w ⊨ φ`, which is how the automaton
/// construction is validated against the bounded semantics oracle.
///
/// # Example
///
/// ```
/// use dic_logic::{SignalTable, Valuation};
/// use dic_ltl::{LassoWord, Ltl};
/// use dic_automata::{satisfiable_in, WordSystem};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = SignalTable::new();
/// let p = t.intern("p");
/// let mut hi = Valuation::all_false(1);
/// hi.set(p, true);
/// let w = LassoWord::new(vec![Valuation::all_false(1), hi], 1).expect("word");
/// let sys = WordSystem::new(w);
/// let fp = Ltl::parse("F p", &mut t)?;
/// assert!(satisfiable_in(&fp, &sys).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct WordSystem {
    word: LassoWord,
}

impl WordSystem {
    /// Wraps a lasso word as a single-run transition system.
    pub fn new(word: LassoWord) -> Self {
        WordSystem { word }
    }

    /// The underlying word.
    pub fn word(&self) -> &LassoWord {
        &self.word
    }
}

impl TransitionSystem for WordSystem {
    fn initial_states(&self) -> Vec<u32> {
        vec![0]
    }

    fn successors(&self, state: u32) -> Vec<u32> {
        vec![self.word.succ(state as usize) as u32]
    }

    fn label(&self, state: u32) -> &Valuation {
        self.word.at(state as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::SignalTable;

    #[test]
    fn word_system_wraps_positions() {
        let mut t = SignalTable::new();
        let p = t.intern("p");
        let mut hi = Valuation::all_false(t.len());
        hi.set(p, true);
        let w = LassoWord::new(vec![Valuation::all_false(t.len()), hi], 1).expect("word");
        let sys = WordSystem::new(w);
        assert_eq!(sys.initial_states(), vec![0]);
        assert_eq!(sys.successors(0), vec![1]);
        assert_eq!(sys.successors(1), vec![1], "last position loops");
        assert!(sys.label(1).get(p));
    }
}
