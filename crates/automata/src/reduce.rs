//! Post-translation automaton reduction — the third stage of the
//! reduction pipeline.
//!
//! [`reduce`] shrinks a [`Gba`] without changing its language:
//!
//! 1. **Trimming** — states unreachable from the initial set, and *dead*
//!    states (no path to a non-trivial SCC covering every acceptance set,
//!    i.e. states with an empty language) are removed. Dead-state removal
//!    is what keeps doomed postponement branches of the tableau out of
//!    every design × GBA product downstream.
//! 2. **Direct-simulation quotienting** (Etessami–Holzmann, extended
//!    componentwise to generalized acceptance): `q` simulates `r` when
//!    `q`'s literal constraints are a subset of `r`'s, its acceptance bits
//!    a superset, and every successor of `r` is simulated by some
//!    successor of `q`. Mutually simulating states merge; a transition
//!    whose target is strictly simulated by a sibling target is dominated
//!    and deleted (the maximal sibling survives, so the simulation-built
//!    replacement run always has surviving edges to follow); dominated
//!    initial states drop the same way.
//! 3. **Acceptance-set minimization** — a set every cycle intersects
//!    (its complement induces an acyclic subgraph) constrains nothing and
//!    is dropped; a set containing another set is implied by it and is
//!    dropped too (equal sets keep the earliest).
//!
//! The result is **renumbered canonically** (BFS from the initial states,
//! successors in ascending order), so the reduced automaton is a
//! deterministic function of the input automaton alone. Both engines
//! translate through the same cache ([`crate::translate_cached`]), which
//! is one of the two ingredients of the byte-identical cross-backend gap
//! sets (the other being the witness-independent candidate enumeration).

use crate::gba::{Gba, GbaState, GbaStats};

/// Size accounting of one [`reduce_with_stats`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReductionStats {
    /// Automaton size before reduction.
    pub pre: GbaStats,
    /// Automaton size after reduction.
    pub post: GbaStats,
}

/// Reduces a [`Gba`] to a language-equivalent, canonically numbered
/// automaton (see the [module docs](self)).
pub fn reduce(gba: &Gba) -> Gba {
    reduce_with_stats(gba).0
}

/// [`reduce`], also reporting the pre/post sizes.
pub fn reduce_with_stats(gba: &Gba) -> (Gba, ReductionStats) {
    let pre = gba.stats();
    let mut cur = trim(gba);
    // Quotienting can orphan states (edge dominance removes transitions),
    // trimming can expose new mergeable pairs, and dropping a vacuous
    // acceptance set lets states differing only in that bit merge;
    // iterate the three passes to their joint fixpoint. Every pass only
    // ever shrinks (states, transitions or acceptance sets), so this
    // terminates.
    loop {
        let next = minimize_acceptance(&trim(&quotient(&cur)));
        if next.num_states() == cur.num_states()
            && next.num_transitions() == cur.num_transitions()
            && next.initial().len() == cur.initial().len()
            && next.num_acceptance_sets() == cur.num_acceptance_sets()
        {
            cur = next;
            break;
        }
        cur = next;
    }
    let out = renumber(&cur);
    let post = out.stats();
    (out, ReductionStats { pre, post })
}

/// The empty automaton (no states, no words).
fn empty(n_acc: u32) -> Gba {
    Gba::from_parts(Vec::new(), Vec::new(), Vec::new(), n_acc)
}

/// Keeps exactly the states in `keep` (a bool per state), remapping
/// indices in order.
fn restrict(g: &Gba, keep: &[bool]) -> Gba {
    let n = g.num_states();
    let mut remap = vec![u32::MAX; n];
    let mut states = Vec::new();
    for q in 0..n {
        if keep[q] {
            remap[q] = states.len() as u32;
            states.push(g.state(q as u32).clone());
        }
    }
    if states.is_empty() {
        return empty(g.num_acceptance_sets());
    }
    let mut succs = Vec::with_capacity(states.len());
    for q in 0..n {
        if !keep[q] {
            continue;
        }
        let mut edges: Vec<u32> = g
            .successors(q as u32)
            .iter()
            .filter(|&&r| keep[r as usize])
            .map(|&r| remap[r as usize])
            .collect();
        edges.sort_unstable();
        edges.dedup();
        succs.push(edges);
    }
    let mut initial: Vec<u32> = g
        .initial()
        .iter()
        .filter(|&&q| keep[q as usize])
        .map(|&q| remap[q as usize])
        .collect();
    initial.sort_unstable();
    initial.dedup();
    Gba::from_parts(states, initial, succs, g.num_acceptance_sets())
}

/// Strongly connected components by iterative Tarjan over all states;
/// returns `scc_of[q]` (component ids in reverse topological order of
/// discovery — only membership is used here).
fn sccs(g: &Gba) -> Vec<u32> {
    let n = g.num_states();
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut counter = 0u32;
    let mut n_sccs = 0u32;
    // Call frames: (node, next successor position).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSEEN {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = counter;
        lowlink[root as usize] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        while let Some(&mut (v, ref mut next)) = call.last_mut() {
            if let Some(&w) = g.successors(v).get(*next) {
                *next += 1;
                if index[w as usize] == UNSEEN {
                    index[w as usize] = counter;
                    lowlink[w as usize] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("scc member");
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = n_sccs;
                        if w == v {
                            break;
                        }
                    }
                    n_sccs += 1;
                }
            }
        }
    }
    scc_of
}

/// Removes unreachable and dead states: a state survives iff it is
/// forward-reachable from some initial state *and* some non-trivial SCC
/// covering the full acceptance mask is reachable from it.
fn trim(g: &Gba) -> Gba {
    let n = g.num_states();
    if n == 0 || g.initial().is_empty() {
        return empty(g.num_acceptance_sets());
    }
    // Forward reachability.
    let mut reachable = vec![false; n];
    let mut work: Vec<u32> = g.initial().to_vec();
    for &q in g.initial() {
        reachable[q as usize] = true;
    }
    while let Some(q) = work.pop() {
        for &r in g.successors(q) {
            if !reachable[r as usize] {
                reachable[r as usize] = true;
                work.push(r);
            }
        }
    }
    // Good SCCs: non-trivial and jointly covering every acceptance bit.
    let scc_of = g.sccs_of();
    let n_sccs = scc_of.iter().copied().max().map_or(0, |m| m as usize + 1);
    let full = g.full_acc_mask();
    let mut scc_bits = vec![0u32; n_sccs];
    let mut scc_size = vec![0usize; n_sccs];
    let mut scc_has_edge = vec![false; n_sccs];
    for q in 0..n {
        let c = scc_of[q] as usize;
        scc_bits[c] |= g.state(q as u32).acc_bits();
        scc_size[c] += 1;
        if g.successors(q as u32).iter().any(|&r| scc_of[r as usize] == scc_of[q]) {
            scc_has_edge[c] = true;
        }
    }
    let mut live = vec![false; n];
    let mut work: Vec<u32> = Vec::new();
    for q in 0..n {
        let c = scc_of[q] as usize;
        let nontrivial = scc_size[c] > 1 || scc_has_edge[c];
        if nontrivial && scc_bits[c] & full == full {
            live[q] = true;
            work.push(q as u32);
        }
    }
    // Backward closure of liveness.
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for q in 0..n {
        for &r in g.successors(q as u32) {
            preds[r as usize].push(q as u32);
        }
    }
    while let Some(q) = work.pop() {
        for &p in &preds[q as usize] {
            if !live[p as usize] {
                live[p as usize] = true;
                work.push(p);
            }
        }
    }
    let keep: Vec<bool> = (0..n).map(|q| reachable[q] && live[q]).collect();
    restrict(g, &keep)
}

/// Whether `a`'s literal constraints are a subset of `b`'s (both sorted).
fn lits_subset(a: &GbaState, b: &GbaState) -> bool {
    let (a, b) = (a.literals(), b.literals());
    let mut i = 0;
    for l in a {
        while i < b.len() && b[i] < *l {
            i += 1;
        }
        if i == b.len() || b[i] != *l {
            return false;
        }
        i += 1;
    }
    true
}

/// The direct-simulation relation: `sim[q * n + r]` ⇔ `q` simulates `r`.
fn direct_simulation(g: &Gba) -> Vec<bool> {
    let n = g.num_states();
    let mut sim = vec![false; n * n];
    for q in 0..n {
        for r in 0..n {
            let (sq, sr) = (g.state(q as u32), g.state(r as u32));
            // q must accept at least r's words: weaker literal
            // constraints, stronger acceptance membership.
            sim[q * n + r] = lits_subset(sq, sr)
                && sq.acc_bits() & sr.acc_bits() == sr.acc_bits();
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for q in 0..n {
            for r in 0..n {
                if !sim[q * n + r] {
                    continue;
                }
                let ok = g.successors(r as u32).iter().all(|&r2| {
                    g.successors(q as u32)
                        .iter()
                        .any(|&q2| sim[q2 as usize * n + r2 as usize])
                });
                if !ok {
                    sim[q * n + r] = false;
                    changed = true;
                }
            }
        }
    }
    sim
}

/// Drops every element of `targets` whose representative is strictly
/// simulated by another element's representative (keeping maximal
/// elements, which the language-preservation argument needs).
fn prune_dominated(targets: &mut Vec<u32>, rep: &[u32], sim: &[bool], n: usize) {
    let snapshot = targets.clone();
    targets.retain(|&t| {
        !snapshot.iter().any(|&t2| {
            t2 != t && {
                let (a, b) = (rep[t2 as usize] as usize, rep[t as usize] as usize);
                sim[a * n + b] && !sim[b * n + a]
            }
        })
    });
}

/// Simulation quotient with edge/initial dominance pruning.
fn quotient(g: &Gba) -> Gba {
    let n = g.num_states();
    if n == 0 {
        return empty(g.num_acceptance_sets());
    }
    let sim = direct_simulation(g);
    // Class representative: the smallest mutually simulating state.
    let mut rep = vec![0u32; n];
    for q in 0..n {
        rep[q] = (0..=q)
            .find(|&r| sim[q * n + r] && sim[r * n + q])
            .expect("q simulates itself") as u32;
    }
    let mut class_ids: Vec<u32> = rep.clone();
    class_ids.sort_unstable();
    class_ids.dedup();
    let class_index = |q: u32| -> u32 {
        class_ids
            .binary_search(&rep[q as usize])
            .expect("representative is a class id") as u32
    };

    let states: Vec<GbaState> = class_ids
        .iter()
        .map(|&r| g.state(r).clone())
        .collect();
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); class_ids.len()];
    for q in 0..n as u32 {
        let c = class_index(q) as usize;
        for &r in g.successors(q) {
            succs[c].push(rep[r as usize]);
        }
    }
    let mut initial: Vec<u32> = g.initial().iter().map(|&q| rep[q as usize]).collect();
    initial.sort_unstable();
    initial.dedup();
    prune_dominated(&mut initial, &rep, &sim, n);
    let mut initial: Vec<u32> = initial.into_iter().map(class_index).collect();
    initial.sort_unstable();

    let succs = succs
        .into_iter()
        .map(|mut edges| {
            edges.sort_unstable();
            edges.dedup();
            prune_dominated(&mut edges, &rep, &sim, n);
            let mut edges: Vec<u32> = edges.into_iter().map(class_index).collect();
            edges.sort_unstable();
            edges
        })
        .collect();
    Gba::from_parts(states, initial, succs, g.num_acceptance_sets())
}

/// Whether the subgraph induced by `in_sub` contains a cycle.
fn has_cycle(g: &Gba, in_sub: &[bool]) -> bool {
    // Kahn peeling: repeatedly remove nodes without in-subgraph
    // predecessors; a cycle is exactly a non-empty remainder.
    let n = g.num_states();
    let mut indeg = vec![0usize; n];
    for q in 0..n {
        if !in_sub[q] {
            continue;
        }
        for &r in g.successors(q as u32) {
            if in_sub[r as usize] {
                indeg[r as usize] += 1;
            }
        }
    }
    let mut work: Vec<u32> = (0..n as u32)
        .filter(|&q| in_sub[q as usize] && indeg[q as usize] == 0)
        .collect();
    let mut removed = 0usize;
    let total = in_sub.iter().filter(|&&b| b).count();
    while let Some(q) = work.pop() {
        removed += 1;
        for &r in g.successors(q) {
            if in_sub[r as usize] {
                indeg[r as usize] -= 1;
                if indeg[r as usize] == 0 {
                    work.push(r);
                }
            }
        }
    }
    removed < total
}

/// Drops acceptance sets that constrain nothing: sets every cycle
/// intersects, and sets containing another (surviving) set.
fn minimize_acceptance(g: &Gba) -> Gba {
    let k = g.num_acceptance_sets() as usize;
    if k == 0 || g.num_states() == 0 {
        return g.clone();
    }
    let n = g.num_states();
    let members: Vec<Vec<bool>> = (0..k)
        .map(|j| {
            (0..n)
                .map(|q| g.state(q as u32).acc_bits() >> j & 1 == 1)
                .collect()
        })
        .collect();
    let mut keep = vec![true; k];
    // A set whose complement is acyclic holds on every cycle.
    for j in 0..k {
        let complement: Vec<bool> = members[j].iter().map(|&b| !b).collect();
        if !has_cycle(g, &complement) {
            keep[j] = false;
        }
    }
    // F_i ⊆ F_k makes F_k redundant (equal sets keep the earliest).
    for b in 0..k {
        if !keep[b] {
            continue;
        }
        for a in 0..k {
            if a == b || !keep[a] {
                continue;
            }
            let a_subset = members[a].iter().zip(&members[b]).all(|(&x, &y)| !x || y);
            if a_subset {
                let b_subset =
                    members[b].iter().zip(&members[a]).all(|(&x, &y)| !x || y);
                if !b_subset || a < b {
                    keep[b] = false;
                    break;
                }
            }
        }
    }
    let kept: Vec<usize> = (0..k).filter(|&j| keep[j]).collect();
    if kept.len() == k {
        return g.clone();
    }
    let states: Vec<GbaState> = (0..n)
        .map(|q| {
            let old = g.state(q as u32);
            let mut acc = 0u32;
            for (new_j, &old_j) in kept.iter().enumerate() {
                if old.acc_bits() >> old_j & 1 == 1 {
                    acc |= 1 << new_j;
                }
            }
            GbaState::new(old.literals().to_vec(), acc)
        })
        .collect();
    let succs = (0..n as u32).map(|q| g.successors(q).to_vec()).collect();
    Gba::from_parts(states, g.initial().to_vec(), succs, kept.len() as u32)
}

/// Canonical state numbering: BFS from the (sorted) initial states,
/// visiting successors in ascending order. The output is a deterministic
/// function of the abstract automaton, independent of tableau node order.
fn renumber(g: &Gba) -> Gba {
    let n = g.num_states();
    if n == 0 {
        return g.clone();
    }
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut new_id = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut initial_sorted: Vec<u32> = g.initial().to_vec();
    initial_sorted.sort_unstable();
    for &q in &initial_sorted {
        if new_id[q as usize] == u32::MAX {
            new_id[q as usize] = order.len() as u32;
            order.push(q);
            queue.push_back(q);
        }
    }
    while let Some(q) = queue.pop_front() {
        for &r in g.successors(q) {
            if new_id[r as usize] == u32::MAX {
                new_id[r as usize] = order.len() as u32;
                order.push(r);
                queue.push_back(r);
            }
        }
    }
    // Trimming already removed unreachable states, so `order` covers all.
    debug_assert_eq!(order.len(), n, "renumber expects a trimmed automaton");
    let states: Vec<GbaState> = order.iter().map(|&q| g.state(q).clone()).collect();
    let succs: Vec<Vec<u32>> = order
        .iter()
        .map(|&q| {
            let mut edges: Vec<u32> = g
                .successors(q)
                .iter()
                .map(|&r| new_id[r as usize])
                .collect();
            edges.sort_unstable();
            edges
        })
        .collect();
    let mut initial: Vec<u32> = g.initial().iter().map(|&q| new_id[q as usize]).collect();
    initial.sort_unstable();
    Gba::from_parts(states, initial, succs, g.num_acceptance_sets())
}

impl Gba {
    /// SCC membership per state (used by [`trim`]; exposed on `Gba` so the
    /// borrow of `self` stays simple).
    fn sccs_of(&self) -> Vec<u32> {
        sccs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gba::translate;
    use crate::product::{find_accepting_lasso, GbaGraph};
    use dic_logic::SignalTable;
    use dic_ltl::random::{random_formula, XorShift64};
    use dic_ltl::Ltl;

    fn parse(t: &mut SignalTable, src: &str) -> Ltl {
        Ltl::parse(src, t).expect("parse")
    }

    /// Language check by word sampling: every automaton run denotes the
    /// words compatible with its states' literals, so emptiness and
    /// witness agreement with the unreduced automaton over many formulas
    /// is the practical oracle here (full equivalence is exercised by the
    /// cross-engine suites).
    #[test]
    fn reduction_preserves_emptiness_on_random_formulas() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
        for seed in 1..300u64 {
            let f = random_formula(&mut XorShift64::new(seed), &atoms, 12);
            let gba = translate(&f.core_nnf());
            let red = reduce(&gba);
            assert!(red.num_states() <= gba.num_states(), "grew on {f:?}");
            assert!(
                red.num_acceptance_sets() <= gba.num_acceptance_sets(),
                "acceptance grew on {f:?}"
            );
            let full = find_accepting_lasso(&GbaGraph(&gba), gba.full_acc_mask()).is_some();
            let small = find_accepting_lasso(&GbaGraph(&red), red.full_acc_mask()).is_some();
            assert_eq!(full, small, "emptiness diverged on {f:?}");
        }
    }

    /// Witnesses from the reduced automaton must satisfy the original
    /// formula — the reduced states' literal constraints stay sound.
    #[test]
    fn reduced_witnesses_satisfy_the_formula() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q")];
        for seed in 1..200u64 {
            let f = random_formula(&mut XorShift64::new(seed), &atoms, 10);
            let red = reduce(&translate(&f.core_nnf()));
            let Some((states, loop_start)) =
                find_accepting_lasso(&GbaGraph(&red), red.full_acc_mask())
            else {
                continue;
            };
            let vals: Vec<dic_logic::Valuation> = states
                .iter()
                .map(|&q| red.state(q).witness_valuation(t.len()))
                .collect();
            let w = dic_ltl::LassoWord::new(vals, loop_start).expect("lasso");
            assert!(f.holds_on(&w), "reduced witness violates {f:?}");
        }
    }

    #[test]
    fn known_patterns_shrink() {
        let mut t = SignalTable::new();
        for (src, max_states) in [
            ("G(req -> F grant)", 3usize),
            ("p U q", 3),
            ("G F p", 2),
            ("G(p -> X q)", 4),
            ("F(p & X q)", 4),
        ] {
            let f = parse(&mut t, src);
            let gba = translate(&f.core_nnf());
            let red = reduce(&gba);
            assert!(
                red.num_states() <= max_states,
                "{src}: {} states reduced to {}, want <= {max_states}",
                gba.num_states(),
                red.num_states()
            );
            assert!(red.num_states() <= gba.num_states());
        }
    }

    #[test]
    fn unsatisfiable_formulas_reduce_to_empty() {
        let mut t = SignalTable::new();
        for src in ["p & !p", "G p & F !p", "(p U q) & G !q"] {
            let f = parse(&mut t, src);
            let red = reduce(&translate(&f.core_nnf()));
            assert_eq!(red.num_states(), 0, "{src} should reduce to empty");
            assert!(red.initial().is_empty());
        }
    }

    #[test]
    fn vacuous_acceptance_sets_dropped() {
        // G p ∧ F p: the F-postponement branch is simulation-dominated by
        // the immediate discharge (both demand p forever), after which the
        // Until's acceptance set holds on every remaining cycle and drops.
        let mut t = SignalTable::new();
        let f = parse(&mut t, "G p & F p");
        let red = reduce(&translate(&f.core_nnf()));
        assert_eq!(red.num_acceptance_sets(), 0, "G p & F p needs no fairness");
        assert_eq!(red.num_states(), 1);
        // F p alone genuinely needs its set (the not-yet branch must not
        // loop forever), and so does G F p.
        let g = parse(&mut t, "F p");
        assert_eq!(reduce(&translate(&g.core_nnf())).num_acceptance_sets(), 1);
        let h = parse(&mut t, "G F p");
        assert_eq!(reduce(&translate(&h.core_nnf())).num_acceptance_sets(), 1);
    }

    #[test]
    fn reduction_is_deterministic_and_idempotent() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
        for seed in 1..100u64 {
            let f = random_formula(&mut XorShift64::new(seed), &atoms, 12);
            let gba = translate(&f.core_nnf());
            let a = reduce(&gba);
            let b = reduce(&gba);
            assert_eq!(a.num_states(), b.num_states());
            assert_eq!(a.initial(), b.initial());
            for q in 0..a.num_states() as u32 {
                assert_eq!(a.successors(q), b.successors(q));
                assert_eq!(a.state(q).literals(), b.state(q).literals());
                assert_eq!(a.state(q).acc_bits(), b.state(q).acc_bits());
            }
            let again = reduce(&a);
            assert_eq!(
                again.num_states(),
                a.num_states(),
                "reduce not idempotent on {f:?}"
            );
            assert_eq!(again.num_transitions(), a.num_transitions());
        }
    }
}
