//! A fast non-cryptographic hasher for the emptiness search.
//!
//! The Tarjan/BFS working sets are keyed by small `Copy` node ids
//! (`u32` pairs). `std`'s default SipHash is DoS-resistant but an order of
//! magnitude slower than needed for these hot loops; this multiplicative
//! mixer (the classic Fibonacci-hashing construction) is more than
//! sufficient for graph-search working sets, where keys are program-chosen
//! and adversarial collisions are not a concern.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`NodeHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<NodeHasher>>;

/// A `HashSet` using [`NodeHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<NodeHasher>>;

/// Multiplicative mixing hasher for small fixed-size keys.
///
/// Writes fold the input into a single `u64` with multiply-rotate steps;
/// `finish` applies a final avalanche. Collisions degrade performance, not
/// correctness.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeHasher {
    state: u64,
}

/// 2^64 / φ, the usual Fibonacci-hashing multiplier (odd, high entropy).
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

impl NodeHasher {
    #[inline]
    fn mix(&mut self, value: u64) {
        self.state = (self.state ^ value).wrapping_mul(PHI).rotate_left(23);
    }
}

impl Hasher for NodeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche (xor-shift folding) so that high bits depend on
        // every input bit; HashMap uses the top bits for its control bytes.
        let mut z = self.state;
        z ^= z >> 33;
        z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
        z ^= z >> 33;
        z
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback: fold 8 bytes at a time.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        // Not a cryptographic requirement — just sanity that consecutive
        // node ids spread out.
        let mut seen = FastSet::default();
        for k in 0u32..10_000 {
            for q in 0u32..4 {
                assert!(seen.insert((k, q)));
            }
        }
        assert_eq!(seen.len(), 40_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(u32, u32), u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i ^ 7), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i ^ 7)), Some(&i));
        }
    }

    #[test]
    fn hasher_is_deterministic() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<NodeHasher> = BuildHasherDefault::default();
        let h1 = b.hash_one((42u32, 7u32));
        let h2 = b.hash_one((42u32, 7u32));
        assert_eq!(h1, h2);
        assert_ne!(b.hash_one((42u32, 8u32)), h1);
    }
}
