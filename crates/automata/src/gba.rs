//! GPVW translation: LTL → generalized Büchi automaton.
//!
//! This is the node-splitting tableau of Gerth, Peled, Vardi & Wolper,
//! *Simple on-the-fly automatic verification of linear temporal logic*
//! (PSTV 1995), operating on formulas in U/R-core negation normal form
//! ([`Ltl::core_nnf`]). States carry the conjunction of literals that must
//! hold while the automaton sits in them; acceptance is generalized, one
//! set per `Until` subformula.

use dic_logic::{Lit, SignalId, Valuation};
use dic_ltl::{Ltl, LtlNode};
use std::collections::{BTreeSet, HashMap};

/// Interned subformula id inside the translator.
type Fid = u32;

/// Structure of an interned subformula.
#[derive(Clone, Debug, PartialEq, Eq)]
enum FKind {
    True,
    False,
    Lit(SignalId, bool),
    And(Vec<Fid>),
    Or(Vec<Fid>),
    Next(Fid),
    Until(Fid, Fid),
    Release(Fid, Fid),
}

/// A state of the generalized Büchi automaton.
#[derive(Clone, Debug)]
pub struct GbaState {
    /// Literals that must hold at any position where this state is visited.
    /// Consistent by construction (contradictory tableau nodes are pruned).
    literals: Vec<Lit>,
    /// Bit `j` set ⇔ this state belongs to acceptance set `j`.
    acc: u32,
}

impl GbaState {
    /// Creates a state from its literal constraints and acceptance-set
    /// bitmask (used by the [degeneralization](crate::degeneralize)).
    pub fn new(literals: Vec<Lit>, acc: u32) -> Self {
        GbaState { literals, acc }
    }

    /// The literal constraints of this state.
    pub fn literals(&self) -> &[Lit] {
        &self.literals
    }

    /// Acceptance-set membership bitmask.
    pub fn acc_bits(&self) -> u32 {
        self.acc
    }

    /// Whether this state belongs to acceptance set `m`.
    pub fn in_acceptance_set(&self, m: u32) -> bool {
        self.acc & (1 << m) != 0
    }

    /// Whether a valuation satisfies all literal constraints.
    pub fn compatible(&self, v: &Valuation) -> bool {
        self.literals.iter().all(|l| l.eval(v))
    }

    /// A minimal valuation (unconstrained signals low) satisfying the state
    /// over a table of `n_signals` signals.
    pub fn witness_valuation(&self, n_signals: usize) -> Valuation {
        let mut v = Valuation::all_false(n_signals);
        for l in &self.literals {
            v.set(l.signal(), l.polarity());
        }
        v
    }
}

/// A generalized Büchi automaton produced by [`translate`].
///
/// A run over an infinite word `w` is a sequence of states `q0 q1 …` with
/// `q0` initial, `q_{i+1}` a successor of `q_i`, and `w_i` satisfying the
/// literals of `q_i`. The run accepts iff it visits every acceptance set
/// infinitely often; the automaton accepts exactly the words satisfying the
/// translated formula.
#[derive(Clone, Debug)]
pub struct Gba {
    states: Vec<GbaState>,
    initial: Vec<u32>,
    succs: Vec<Vec<u32>>,
    n_acc: u32,
}

impl Gba {
    /// Assembles an automaton from explicit parts (used by the
    /// [degeneralization](crate::degeneralize)).
    ///
    /// # Panics
    ///
    /// Panics if a successor list length disagrees with the state count,
    /// or an edge/initial index is out of range.
    pub fn from_parts(
        states: Vec<GbaState>,
        initial: Vec<u32>,
        succs: Vec<Vec<u32>>,
        n_acc: u32,
    ) -> Self {
        assert_eq!(states.len(), succs.len(), "one successor list per state");
        let n = states.len() as u32;
        assert!(initial.iter().all(|&q| q < n), "initial state in range");
        assert!(
            succs.iter().flatten().all(|&q| q < n),
            "successors in range"
        );
        Gba {
            states,
            initial,
            succs,
            n_acc,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Number of acceptance sets (one per `Until` subformula).
    pub fn num_acceptance_sets(&self) -> u32 {
        self.n_acc
    }

    /// The bitmask with every acceptance bit set.
    pub fn full_acc_mask(&self) -> u32 {
        if self.n_acc == 32 {
            u32::MAX
        } else {
            (1u32 << self.n_acc) - 1
        }
    }

    /// Initial state indices.
    pub fn initial(&self) -> &[u32] {
        &self.initial
    }

    /// Whether `q` is an initial state. The initial list is a handful of
    /// entries, so a scan beats materializing a set — the SAT encoder
    /// asks this once per state per query.
    pub fn is_initial(&self, q: u32) -> bool {
        self.initial.contains(&q)
    }

    /// Successor state indices of `q`.
    pub fn successors(&self, q: u32) -> &[u32] {
        &self.succs[q as usize]
    }

    /// The state `q`.
    pub fn state(&self, q: u32) -> &GbaState {
        &self.states[q as usize]
    }

    /// All states.
    pub fn states(&self) -> &[GbaState] {
        &self.states
    }

    /// Renders the automaton in Graphviz DOT format: states are labelled
    /// with their literal constraints, accepting-set membership is shown
    /// as `∈{j,…}`, initial states are double circles.
    pub fn to_dot(&self, table: &dic_logic::SignalTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph gba {\n  rankdir=LR;\n");
        for (i, st) in self.states.iter().enumerate() {
            let lits = if st.literals.is_empty() {
                "true".to_owned()
            } else {
                st.literals
                    .iter()
                    .map(|l| l.display(table).to_string())
                    .collect::<Vec<_>>()
                    .join(" & ")
            };
            let mut acc = String::new();
            if self.n_acc > 0 && st.acc != 0 {
                let sets: Vec<String> = (0..self.n_acc)
                    .filter(|j| st.acc >> j & 1 == 1)
                    .map(|j| j.to_string())
                    .collect();
                acc = format!("\\n∈{{{}}}", sets.join(","));
            }
            let shape = if self.initial.contains(&(i as u32)) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  q{i} [label=\"{lits}{acc}\", shape={shape}];");
        }
        for (i, succs) in self.succs.iter().enumerate() {
            for &j in succs {
                let _ = writeln!(out, "  q{i} -> q{j};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Summary statistics, used by the benchmark reports.
    pub fn stats(&self) -> GbaStats {
        GbaStats {
            states: self.num_states(),
            transitions: self.num_transitions(),
            acceptance_sets: self.n_acc as usize,
            initial: self.initial.len(),
        }
    }
}

/// Number of binary code bits a symbolic encoding allocates for an
/// `n`-state automaton (⌈log₂ n⌉, minimum 1) — the single source of
/// truth shared by the symbolic encoder, the `Backend::Auto` cost
/// predictor and the benchmark accounting.
pub fn code_bits(states: usize) -> usize {
    let mut bits = 1;
    while (1usize << bits) < states {
        bits += 1;
    }
    bits
}

/// Size summary of a [`Gba`]; produced by [`Gba::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GbaStats {
    /// Number of states.
    pub states: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Number of generalized acceptance sets.
    pub acceptance_sets: usize,
    /// Number of initial states.
    pub initial: usize,
}

/// Translates an LTL formula into a [`Gba`], with the on-the-fly tableau
/// prunes (cover-equivalent node merging, subsumed-branch and
/// literal-contradiction skipping) active.
///
/// The formula is first brought into U/R-core NNF, so any [`Ltl`] is
/// accepted. See the [crate-level example](crate).
pub fn translate(formula: &Ltl) -> Gba {
    Translator::new(true).run(&formula.core_nnf())
}

/// The legacy GPVW translation: tableau nodes keyed by their full
/// `(Old, Next)` sets, no branch subsumption. This is the pre-reduction
/// baseline — what the engines consumed before the automaton reduction
/// pipeline existed, restored by `SPECMATCHER_NO_REDUCE=1` and used as
/// the `pre` side of the benchmark accounting.
pub fn translate_unreduced(formula: &Ltl) -> Gba {
    Translator::new(false).run(&formula.core_nnf())
}

/// A tableau node during construction.
#[derive(Clone, Debug)]
struct Node {
    incoming: BTreeSet<usize>, // node ids; INIT marks initial edges
    new: BTreeSet<Fid>,
    old: BTreeSet<Fid>,
    next: BTreeSet<Fid>,
}

/// Pseudo node id marking "incoming from init".
const INIT: usize = usize::MAX;

struct Translator {
    formulas: Vec<FKind>,
    ids: HashMap<Ltl, Fid>,
    /// Finished tableau nodes keyed by their *cover*: the literal
    /// constraints, acceptance bits and next-obligations that determine
    /// the emitted state. Two nodes whose `Old` sets differ only in
    /// discharged Boolean structure (`And`/`Or`/`True` entries, or
    /// `Until`s whose acceptance status coincides) are cover-equivalent
    /// and merge here — the original GPVW `(Old, Next)` key keeps them
    /// apart and emits duplicate states.
    done: HashMap<(Vec<Lit>, u32, Vec<Fid>), usize>,
    /// Legacy `(Old, Next)` node key, used when pruning is off.
    done_legacy: HashMap<(Vec<Fid>, Vec<Fid>), usize>,
    nodes: Vec<Node>,
    /// Until subformulas (fid of the Until, fid of its right operand).
    untils: Vec<(Fid, Fid)>,
    /// Whether the on-the-fly prunes (cover merging, branch subsumption,
    /// early contradiction drops) are active.
    prune: bool,
}

impl Translator {
    fn new(prune: bool) -> Self {
        Translator {
            formulas: Vec::new(),
            ids: HashMap::new(),
            done: HashMap::new(),
            done_legacy: HashMap::new(),
            nodes: Vec::new(),
            untils: Vec::new(),
            prune,
        }
    }

    /// Interns a core-NNF formula, decomposing it structurally.
    fn intern(&mut self, f: &Ltl) -> Fid {
        if let Some(&id) = self.ids.get(f) {
            return id;
        }
        let kind = match f.node() {
            LtlNode::True => FKind::True,
            LtlNode::False => FKind::False,
            LtlNode::Atom(s) => FKind::Lit(*s, true),
            LtlNode::Not(inner) => match inner.node() {
                LtlNode::Atom(s) => FKind::Lit(*s, false),
                _ => unreachable!("input must be in NNF"),
            },
            LtlNode::And(fs) => FKind::And(fs.iter().map(|g| self.intern(g)).collect()),
            LtlNode::Or(fs) => FKind::Or(fs.iter().map(|g| self.intern(g)).collect()),
            LtlNode::Next(g) => FKind::Next(self.intern(g)),
            LtlNode::Until(a, b) => {
                let (ia, ib) = (self.intern(a), self.intern(b));
                FKind::Until(ia, ib)
            }
            LtlNode::Release(a, b) => {
                let (ia, ib) = (self.intern(a), self.intern(b));
                FKind::Release(ia, ib)
            }
            LtlNode::Globally(_) | LtlNode::Finally(_) => {
                unreachable!("input must be in U/R-core form")
            }
        };
        let id = self.formulas.len() as Fid;
        self.formulas.push(kind.clone());
        self.ids.insert(f.clone(), id);
        if let FKind::Until(_, b) = kind {
            self.untils.push((id, b));
        }
        id
    }

    fn run(mut self, formula: &Ltl) -> Gba {
        let root = self.intern(formula);
        let start = Node {
            incoming: BTreeSet::from([INIT]),
            new: BTreeSet::from([root]),
            old: BTreeSet::new(),
            next: BTreeSet::new(),
        };
        // Explicit worklist: the recursive formulation of GPVW nests one
        // stack frame per processed formula *and* per generated node, which
        // overflows the native stack on moderately sized formulas.
        let mut work = vec![start];
        while let Some(node) = work.pop() {
            self.expand_step(node, &mut work);
        }
        self.finish()
    }

    /// The literal constraints a finished node's `Old` set induces.
    fn literals_of(&self, old: &BTreeSet<Fid>) -> Vec<Lit> {
        let mut literals: Vec<Lit> = old
            .iter()
            .filter_map(|&f| match self.formulas[f as usize] {
                FKind::Lit(s, p) => Some(Lit::new(s, p)),
                _ => None,
            })
            .collect();
        literals.sort();
        literals
    }

    /// The acceptance bits a finished node's `Old` set induces: for Until
    /// θ = aUb with index j, the state is in F_j iff θ ∉ Old or b ∈ Old.
    fn acc_of(&self, old: &BTreeSet<Fid>) -> u32 {
        let mut acc = 0u32;
        for (j, &(theta, b)) in self.untils.iter().enumerate() {
            if !old.contains(&theta) || old.contains(&b) {
                acc |= 1 << j;
            }
        }
        acc
    }

    /// Finishes a fully expanded node: merge with an equivalent finished
    /// node (cover key when pruning, the legacy `(Old, Next)` key
    /// otherwise) or emit it and queue its successor seed.
    fn finish_node(&mut self, mut node: Node, work: &mut Vec<Node>) {
        let found = if self.prune {
            let key = (
                self.literals_of(&node.old),
                self.acc_of(&node.old),
                node.next.iter().copied().collect::<Vec<_>>(),
            );
            self.done.get(&key).copied()
        } else {
            let key = (
                node.old.iter().copied().collect::<Vec<_>>(),
                node.next.iter().copied().collect::<Vec<_>>(),
            );
            self.done_legacy.get(&key).copied()
        };
        if let Some(existing) = found {
            let incoming = std::mem::take(&mut node.incoming);
            self.nodes[existing].incoming.extend(incoming);
            return;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        if self.prune {
            let key = (
                self.literals_of(&node.old),
                self.acc_of(&node.old),
                node.next.iter().copied().collect::<Vec<_>>(),
            );
            self.done.insert(key, id);
        } else {
            let key = (
                node.old.iter().copied().collect::<Vec<_>>(),
                node.next.iter().copied().collect::<Vec<_>>(),
            );
            self.done_legacy.insert(key, id);
        }
        work.push(Node {
            incoming: BTreeSet::from([id]),
            new: node.next.clone(),
            old: BTreeSet::new(),
            next: BTreeSet::new(),
        });
    }

    /// One GPVW expansion step; pushes follow-up nodes on `work`.
    fn expand_step(&mut self, mut node: Node, work: &mut Vec<Node>) {
        let Some(&eta) = node.new.iter().next() else {
            self.finish_node(node, work);
            return;
        };
        node.new.remove(&eta);
        match self.formulas[eta as usize].clone() {
            FKind::False => { /* contradiction: drop the node */ }
            FKind::True => {
                work.push(node);
            }
            FKind::Lit(sig, pol) => {
                // Contradiction with Old?
                if self.lit_contradicts(&node.old, sig, pol) {
                    return;
                }
                node.old.insert(eta);
                work.push(node);
            }
            FKind::And(parts) => {
                // A part whose negation is already in Old kills the whole
                // node — drop it before expanding the rest.
                if parts.iter().any(|&p| self.fid_contradicts(&node.old, p)) {
                    return;
                }
                for p in parts {
                    if !node.old.contains(&p) {
                        node.new.insert(p);
                    }
                }
                node.old.insert(eta);
                work.push(node);
            }
            FKind::Or(parts) => {
                node.old.insert(eta);
                for p in parts {
                    // Literal-contradictory alternatives die later anyway;
                    // skipping them here avoids expanding their subtree.
                    if self.fid_contradicts(&node.old, p) {
                        continue;
                    }
                    let mut branch = node.clone();
                    if !branch.old.contains(&p) {
                        branch.new.insert(p);
                    }
                    work.push(branch);
                }
            }
            FKind::Next(g) => {
                node.old.insert(eta);
                node.next.insert(g);
                work.push(node);
            }
            FKind::Until(a, b) => {
                node.old.insert(eta);
                let b_known = self.prune && node.old.contains(&b);
                // Branch 1: b holds now.
                if !self.fid_contradicts(&node.old, b) {
                    let mut sat = node.clone();
                    if !sat.old.contains(&b) {
                        sat.new.insert(b);
                    }
                    work.push(sat);
                }
                // Branch 2: a holds now, Until postponed. When b already
                // holds, branch 1 is this very node with strictly weaker
                // obligations — the postponement is subsumed and skipped.
                if !b_known && !self.fid_contradicts(&node.old, a) {
                    let mut wait = node;
                    if !wait.old.contains(&a) {
                        wait.new.insert(a);
                    }
                    wait.next.insert(eta);
                    work.push(wait);
                }
            }
            FKind::Release(a, b) => {
                node.old.insert(eta);
                let discharged =
                    self.prune && node.old.contains(&a) && node.old.contains(&b);
                // Branch 1: a & b hold now (release discharged).
                if ![a, b]
                    .iter()
                    .any(|&p| self.fid_contradicts(&node.old, p))
                {
                    let mut done = node.clone();
                    for p in [a, b] {
                        if !done.old.contains(&p) {
                            done.new.insert(p);
                        }
                    }
                    work.push(done);
                }
                // Branch 2: b holds now, Release postponed — subsumed by
                // branch 1 when the release is already discharged.
                if !discharged && !self.fid_contradicts(&node.old, b) {
                    let mut wait = node;
                    if !wait.old.contains(&b) {
                        wait.new.insert(b);
                    }
                    wait.next.insert(eta);
                    work.push(wait);
                }
            }
        }
    }

    /// Whether adding the literal `(sig, pol)` to a node with `Old = old`
    /// would contradict an already-recorded literal.
    fn lit_contradicts(&self, old: &BTreeSet<Fid>, sig: SignalId, pol: bool) -> bool {
        self.lookup_lit(sig, !pol)
            .is_some_and(|neg| old.contains(&neg))
    }

    /// Whether the interned formula `f` is a literal contradicting `old`
    /// (an early-drop prune; always false in legacy mode, where the
    /// contradiction surfaces when the literal is processed).
    fn fid_contradicts(&self, old: &BTreeSet<Fid>, f: Fid) -> bool {
        if !self.prune {
            return false;
        }
        match self.formulas[f as usize] {
            FKind::Lit(s, p) => self.lit_contradicts(old, s, p),
            FKind::False => true,
            _ => false,
        }
    }

    /// Finds the interned id of a literal if it exists.
    fn lookup_lit(&self, sig: SignalId, pol: bool) -> Option<Fid> {
        // Linear scan is fine: formula closures are small.
        self.formulas.iter().position(|k| match k {
            FKind::Lit(s, p) => *s == sig && *p == pol,
            _ => false,
        }).map(|i| i as Fid)
    }

    fn finish(self) -> Gba {
        let n = self.nodes.len();
        let n_acc = self.untils.len() as u32;
        assert!(n_acc <= 32, "more than 32 Until subformulas");
        let mut states = Vec::with_capacity(n);
        for node in &self.nodes {
            states.push(GbaState {
                literals: self.literals_of(&node.old),
                acc: self.acc_of(&node.old),
            });
        }
        let mut initial = Vec::new();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter().enumerate() {
            for &inc in &node.incoming {
                if inc == INIT {
                    initial.push(id as u32);
                } else {
                    succs[inc].push(id as u32);
                }
            }
        }
        for s in &mut succs {
            s.sort_unstable();
            s.dedup();
        }
        initial.sort_unstable();
        initial.dedup();
        Gba {
            states,
            initial,
            succs,
            n_acc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::SignalTable;

    fn tr(src: &str) -> (Gba, SignalTable) {
        let mut t = SignalTable::new();
        let f = Ltl::parse(src, &mut t).expect("parse");
        (translate(&f), t)
    }

    #[test]
    fn translate_atom() {
        let (gba, _t) = tr("p");
        // One state requiring p (then anything), plus the "anything" sink.
        assert!(gba.num_states() >= 1);
        assert!(!gba.initial().is_empty());
        assert_eq!(gba.num_acceptance_sets(), 0);
        // Every initial state requires p.
        for &q in gba.initial() {
            assert!(gba.state(q).literals().iter().any(|l| l.polarity()));
        }
    }

    #[test]
    fn translate_globally() {
        let (gba, _t) = tr("G p");
        assert_eq!(gba.num_acceptance_sets(), 0); // G == false R p, no Until
        // All reachable states require p and loop.
        for &q in gba.initial() {
            assert_eq!(gba.state(q).literals().len(), 1);
            assert!(!gba.successors(q).is_empty());
        }
    }

    #[test]
    fn translate_until_has_acceptance() {
        let (gba, _t) = tr("p U q");
        assert_eq!(gba.num_acceptance_sets(), 1);
        // There must exist a state satisfying the acceptance bit (q seen).
        assert!(gba.states().iter().any(|s| s.acc_bits() == 1));
        // And a pending state not in the acceptance set.
        assert!(gba.states().iter().any(|s| s.acc_bits() == 0));
    }

    #[test]
    fn contradictory_nodes_pruned() {
        let (gba, _t) = tr("p & !p");
        assert_eq!(gba.initial().len(), 0, "unsatisfiable boolean has no states");
    }

    #[test]
    fn gf_has_one_acceptance_set() {
        let (gba, _t) = tr("G F p");
        assert_eq!(gba.num_acceptance_sets(), 1);
        assert!(gba.num_states() >= 2);
    }

    #[test]
    fn literal_sets_are_consistent() {
        let (gba, _t) = tr("(p U q) & (!p U r) & F(p & q)");
        for s in gba.states() {
            for w in s.literals().windows(2) {
                assert!(
                    w[0].signal() != w[1].signal(),
                    "state carries contradictory or duplicate literals"
                );
            }
        }
    }

    #[test]
    fn dot_export_shape() {
        let mut t = dic_logic::SignalTable::new();
        let f = Ltl::parse("p U q", &mut t).expect("parse");
        let gba = translate(&f);
        let dot = gba.to_dot(&t);
        assert!(dot.contains("digraph gba"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("->"));
        let stats = gba.stats();
        assert_eq!(stats.acceptance_sets, 1);
        assert!(stats.states >= 2);
        assert!(stats.initial >= 1);
    }

    #[test]
    fn state_count_reasonable_for_patterns() {
        // GPVW is not minimal, but known patterns must stay small.
        let (g1, _) = tr("G(req -> F grant)");
        assert!(g1.num_states() <= 16, "got {}", g1.num_states());
        let (g2, _) = tr("p U (q U r)");
        assert!(g2.num_states() <= 16);
    }
}
