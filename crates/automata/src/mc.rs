//! The model checker: universal and existential LTL queries over a model.

use crate::gba::{translate, Gba};
use crate::hashing::FastMap;
use crate::product::{find_accepting_lasso, Product};
use crate::reduce::{reduce, reduce_with_stats, ReductionStats};
use crate::system::TransitionSystem;
use dic_ltl::{LassoWord, Ltl};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Strict parse of the `SPECMATCHER_NO_REDUCE` escape hatch: unset or
/// `"0"` keeps the reduction pipeline on (`Ok(true)`), `"1"` disables it
/// (`Ok(false)`), and anything else — a typo like `"yes"` or `"  1"` —
/// is rejected with a message naming the variable. Entry points validate
/// this fail-closed (the `SPECMATCHER_BDD_NODE_LIMIT` contract), so a
/// misspelled escape hatch surfaces as a usage error instead of silently
/// picking a pipeline.
pub fn reduction_from_env() -> Result<bool, String> {
    match std::env::var("SPECMATCHER_NO_REDUCE") {
        Err(_) => Ok(true),
        Ok(v) if v == "0" => Ok(true),
        Ok(v) if v == "1" => Ok(false),
        Ok(v) => Err(format!(
            "invalid SPECMATCHER_NO_REDUCE {v:?}: expected 0 (reduce) or 1 (raw GPVW)"
        )),
    }
}

/// Whether the automaton reduction pipeline (formula rewriting before the
/// tableau, simulation-based reduction after it) is active. On by
/// default; `SPECMATCHER_NO_REDUCE=1` disables it — the escape hatch for
/// bisecting miscompares back to raw GPVW output. Read once per process;
/// library callers reaching this point treat an unparseable value as the
/// default (entry points have already rejected it via
/// [`reduction_from_env`]).
pub fn reduction_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| reduction_from_env().unwrap_or(true))
}

/// The canonical cache key for a formula: its rewritten form when the
/// reduction pipeline is on (so syntactically distinct but rewrite-equal
/// formulas share one translation), the formula itself otherwise.
fn canonical_key(formula: &Ltl) -> Ltl {
    if reduction_enabled() {
        formula.simplify()
    } else {
        formula.clone()
    }
}

/// The full translation pipeline on an already-canonical formula:
/// GPVW tableau (with on-the-fly cover merging), then post-translation
/// reduction ([`crate::reduce`]). With `SPECMATCHER_NO_REDUCE=1` this is
/// the raw tableau.
fn translate_canonical(canonical: &Ltl) -> Gba {
    if reduction_enabled() {
        reduce(&translate(canonical))
    } else {
        crate::gba::translate_unreduced(canonical)
    }
}

/// Pre/post sizes of the full reduction pipeline for `formula`: `pre` is
/// the legacy GPVW tableau of the formula as written (what the engines
/// consumed before the pipeline existed, and consume again under
/// `SPECMATCHER_NO_REDUCE=1`), `post` the automaton they consume now
/// (rewritten, tableau-pruned, reduced). Used by the benchmark reports;
/// independent of the cache.
pub fn translation_reduction(formula: &Ltl) -> ReductionStats {
    let pre = crate::gba::translate_unreduced(formula).stats();
    let (_, stats) = reduce_with_stats(&translate(&formula.simplify()));
    ReductionStats {
        pre,
        post: stats.post,
    }
}

/// A memo table for LTL → GBA translations.
///
/// Coverage analysis model-checks conjunctions sharing most conjuncts (the
/// RTL properties `R` and `¬FA` appear in every candidate-closure query of
/// Algorithm 1), so the translations are interned once and shared. The
/// table is keyed by formula hash through [`crate::hashing`]'s
/// multiplicative hasher — formula keys are program-built structures, not
/// adversarial input, so the DoS-resistant default hasher buys nothing on
/// this hot path — and is internally synchronized.
///
/// # Examples
///
/// ```
/// use dic_automata::GbaCache;
/// use dic_ltl::Ltl;
/// use dic_logic::SignalTable;
///
/// let mut t = SignalTable::new();
/// let f = Ltl::parse("G(p -> X q)", &mut t).unwrap();
/// let cache = GbaCache::new();
/// let first = cache.get(&f);
/// let again = cache.get(&f);
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// ```
#[derive(Debug, Default)]
pub struct GbaCache {
    map: Mutex<FastMap<Ltl, Arc<Gba>>>,
}

impl GbaCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The translation of `formula`, computed on first use.
    ///
    /// Misses are resolved through the formula's *canonical rewritten
    /// form* (when the reduction pipeline is on), so syntactically
    /// distinct but rewrite-equal formulas — common in the enumerated
    /// candidate class of Algorithm 1, step 2(c) — share one tableau run
    /// and one reduced automaton. The as-written formula is memoized as
    /// an alias afterwards: repeat lookups (Algorithm 1's hottest path
    /// issues thousands against the same few formulas) are a single hash,
    /// never a rewrite.
    pub fn get(&self, formula: &Ltl) -> Arc<Gba> {
        let mut map = self.map.lock().expect("cache poisoned");
        if let Some(g) = map.get(formula) {
            if dic_trace::enabled() {
                dic_trace::count(dic_trace::Counter::GbaCacheHits, 1);
            }
            return Arc::clone(g);
        }
        let key = canonical_key(formula);
        let g = match map.get(&key) {
            Some(g) => {
                if dic_trace::enabled() {
                    dic_trace::count(dic_trace::Counter::GbaCacheHits, 1);
                }
                Arc::clone(g)
            }
            None => {
                if dic_trace::enabled() {
                    dic_trace::count(dic_trace::Counter::GbaCacheMisses, 1);
                }
                let _span = dic_trace::span("automata.translate");
                let g = Arc::new(translate_canonical(&key));
                map.insert(key.clone(), Arc::clone(&g));
                g
            }
        };
        if *formula != key {
            map.insert(formula.clone(), Arc::clone(&g));
        }
        g
    }

    /// Number of cache entries so far (distinct translations plus
    /// as-written aliases of rewritten formulas).
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Process-wide translation memo backing [`translate_cached`].
static SHARED_TRANSLATIONS: OnceLock<GbaCache> = OnceLock::new();

/// [`translate`](crate::translate) through a process-shared memo keyed by
/// formula hash.
///
/// The pure-formula decision procedures ([`crate::implies`],
/// [`crate::is_satisfiable`], …) are called hundreds of times per
/// coverage run on a small set of recurring formulas (every candidate of
/// Algorithm 1 is compared against the same intent and siblings); caching
/// here means each distinct formula runs the GPVW tableau exactly once
/// **per process** — the memo was per-thread once, which made N closure
/// workers re-run the tableau N times on the same candidates. The
/// [`GbaCache`] is internally synchronized (it holds its lock across a
/// miss, so concurrent first lookups of one formula also translate once);
/// it is append-only for the life of the process — formula closures are
/// small, so this trades a bounded amount of memory for the dominant
/// translation cost.
pub fn translate_cached(formula: &Ltl) -> Arc<Gba> {
    SHARED_TRANSLATIONS.get_or_init(GbaCache::new).get(formula)
}

/// Result of a universal check ([`holds_in`]).
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Every run of the model satisfies the property.
    Holds,
    /// Some run violates the property; the witness is attached.
    Fails(LassoWord),
}

impl Verdict {
    /// Whether the property holds on all runs.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// The counterexample run, if any.
    pub fn counterexample(&self) -> Option<&LassoWord> {
        match self {
            Verdict::Holds => None,
            Verdict::Fails(w) => Some(w),
        }
    }
}

/// Existential query: is there a run of `sys` satisfying `formula`?
/// Returns a witness lasso if so.
///
/// This is the primitive behind the paper's Theorem 1: the RTL spec fails
/// to cover the intent iff `¬A ∧ R` is satisfiable in `M`, i.e.
/// `satisfiable_in(&and([not(a), r]), m)` returns a witness.
pub fn satisfiable_in<S: TransitionSystem>(formula: &Ltl, sys: &S) -> Option<LassoWord> {
    let gba = translate_cached(formula);
    let product = Product {
        sys,
        gba: gba.as_ref(),
    };
    let mask = product.joint_mask();
    let (states, loop_start) = find_accepting_lasso(&product, mask)?;
    let word_states = states
        .iter()
        .map(|&(k, _q)| sys.label(k).clone())
        .collect();
    Some(LassoWord::new(word_states, loop_start).expect("lasso has a loop"))
}

/// Existential query for a *conjunction*: is there a run of `sys` satisfying
/// every formula in `formulas` simultaneously?
///
/// Semantically identical to `satisfiable_in(&Ltl::and(formulas), sys)`, but
/// each conjunct is translated to its own small automaton and the
/// intersection is explored on the fly, which scales to the paper's
/// 26–29-property RTL suites where a single GPVW translation of the
/// conjunction would explode.
pub fn satisfiable_in_conj<S: TransitionSystem>(
    formulas: &[Ltl],
    sys: &S,
) -> Option<LassoWord> {
    let gbas: Vec<Arc<Gba>> = formulas.iter().map(translate_cached).collect();
    let refs: Vec<&Gba> = gbas.iter().map(Arc::as_ref).collect();
    conj_product_lasso(&refs, sys)
}

/// [`satisfiable_in_conj`] with memoized translations: repeated conjuncts
/// (the `R` suite, `¬FA`) are translated once across all queries sharing
/// `cache`.
pub fn satisfiable_in_conj_cached<S: TransitionSystem>(
    formulas: &[Ltl],
    sys: &S,
    cache: &GbaCache,
) -> Option<LassoWord> {
    let gbas: Vec<Arc<Gba>> = formulas.iter().map(|f| cache.get(f)).collect();
    let refs: Vec<&Gba> = gbas.iter().map(Arc::as_ref).collect();
    conj_product_lasso(&refs, sys)
}

/// Existential conjunction query over caller-supplied automata — the hook
/// the reduction-equivalence suite uses to run raw and reduced
/// translations of the same conjunction against one system and compare.
pub fn satisfiable_in_conj_gbas<S: TransitionSystem>(
    gbas: &[&Gba],
    sys: &S,
) -> Option<LassoWord> {
    conj_product_lasso(gbas, sys)
}

fn conj_product_lasso<S: TransitionSystem>(gbas: &[&Gba], sys: &S) -> Option<LassoWord> {
    use crate::product::MultiProduct;
    // Single-conjunct queries (the candidate-closure hot path) skip the
    // tuple-interning machinery entirely.
    if let [gba] = gbas {
        let product = Product { sys, gba };
        let mask = product.joint_mask();
        let (states, loop_start) = find_accepting_lasso(&product, mask)?;
        let word_states = states.iter().map(|&(k, _q)| sys.label(k).clone()).collect();
        return Some(LassoWord::new(word_states, loop_start).expect("lasso has a loop"));
    }
    let product = MultiProduct::new(sys, gbas);
    let mask = product.full_mask();
    let (states, loop_start) = find_accepting_lasso(&product, mask)?;
    let word_states = states
        .iter()
        .map(|&(k, _t)| sys.label(k).clone())
        .collect();
    Some(LassoWord::new(word_states, loop_start).expect("lasso has a loop"))
}

/// A transition system materialized from the product of a base system with
/// a conjunction of LTL constraints.
///
/// Its paths are exactly the base-system runs that *can* satisfy the
/// constraints; the constraints' generalized acceptance obligations are
/// carried as system fairness sets ([`TransitionSystem::acc_bits`]), so any
/// later query over this system implicitly conjoins the baked-in formulas.
///
/// This is the workhorse of Algorithm 1's candidate verification: the
/// expensive shared sub-product `M ⊗ R ⊗ A(¬FA)` is explored **once**, and
/// each of the hundreds of candidate-closure queries runs against this
/// small explicit graph instead of rebuilding the full product.
///
/// # Examples
///
/// ```
/// use dic_logic::{SignalTable, Valuation};
/// use dic_ltl::{LassoWord, Ltl};
/// use dic_automata::{materialize_product, satisfiable_in, GbaCache, WordSystem};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = SignalTable::new();
/// let p = t.intern("p");
/// let mut hi = Valuation::all_false(1);
/// hi.set(p, true);
/// // A two-position word: !p then p forever.
/// let w = LassoWord::new(vec![Valuation::all_false(1), hi], 1).expect("loop in range");
/// let sys = WordSystem::new(w);
/// let cache = GbaCache::new();
/// let base = materialize_product(&[Ltl::parse("F p", &mut t)?], &sys, &cache);
/// // Querying against the base conjoins its constraint.
/// assert!(satisfiable_in(&Ltl::parse("!p", &mut t)?, &base).is_some());
/// assert!(satisfiable_in(&Ltl::parse("G !p", &mut t)?, &base).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ProductSystem {
    initial: Vec<u32>,
    succs: Vec<Vec<u32>>,
    /// Shared label pool (one entry per distinct base state seen).
    labels: Vec<dic_logic::Valuation>,
    label_of: Vec<u32>,
    bits: Vec<u32>,
    n_acc: u32,
}

impl ProductSystem {
    /// Number of materialized product states.
    pub fn num_states(&self) -> usize {
        self.succs.len()
    }

    /// Number of materialized transitions.
    pub fn num_transitions(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Whether the product is empty (the base system cannot satisfy the
    /// baked-in constraints along any path — note satisfaction also needs
    /// the fairness bits, so non-emptiness here is necessary, not
    /// sufficient).
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
    }
}

impl TransitionSystem for ProductSystem {
    fn initial_states(&self) -> Vec<u32> {
        self.initial.clone()
    }

    fn successors(&self, state: u32) -> Vec<u32> {
        self.succs[state as usize].clone()
    }

    fn label(&self, state: u32) -> &dic_logic::Valuation {
        &self.labels[self.label_of[state as usize] as usize]
    }

    fn num_acc_sets(&self) -> u32 {
        self.n_acc
    }

    fn acc_bits(&self, state: u32) -> u32 {
        self.bits[state as usize]
    }
}

/// Materializes the reachable product of `sys` with the automata of
/// `formulas` into an explicit [`ProductSystem`].
///
/// Satisfiability queries against the result are equivalent to queries
/// against `sys` with `formulas` conjoined — the shared exploration is paid
/// once. See [`ProductSystem`].
pub fn materialize_product<S: TransitionSystem>(
    formulas: &[Ltl],
    sys: &S,
    cache: &GbaCache,
) -> ProductSystem {
    use crate::product::{MultiProduct, SccGraph};

    let gbas: Vec<Arc<Gba>> = formulas.iter().map(|f| cache.get(f)).collect();
    let refs: Vec<&Gba> = gbas.iter().map(Arc::as_ref).collect();
    let product = MultiProduct::new(sys, &refs);
    let n_acc = product.full_mask().count_ones();

    let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
    let mut label_ids: HashMap<u32, u32> = HashMap::new();
    let mut out = ProductSystem {
        initial: Vec::new(),
        succs: Vec::new(),
        labels: Vec::new(),
        label_of: Vec::new(),
        bits: Vec::new(),
        n_acc,
    };
    // Worklist entries carry (product node, interned id).
    let mut work: Vec<((u32, u32), u32)> = Vec::new();
    let mut intern = |node: (u32, u32),
                      out: &mut ProductSystem,
                      work: &mut Vec<((u32, u32), u32)>| {
        if let Some(&id) = ids.get(&node) {
            return id;
        }
        let id = out.succs.len() as u32;
        ids.insert(node, id);
        let label_id = *label_ids.entry(node.0).or_insert_with(|| {
            out.labels.push(sys.label(node.0).clone());
            (out.labels.len() - 1) as u32
        });
        out.succs.push(Vec::new());
        out.label_of.push(label_id);
        out.bits.push(product.bits(node));
        work.push((node, id));
        id
    };

    for root in product.roots() {
        let id = intern(root, &mut out, &mut work);
        if !out.initial.contains(&id) {
            out.initial.push(id);
        }
    }
    while let Some((node, id)) = work.pop() {
        let mut edges: Vec<u32> = product
            .succs(node)
            .into_iter()
            .map(|m| intern(m, &mut out, &mut work))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        out.succs[id as usize] = edges;
    }
    out
}

/// Universal query: do *all* runs of `sys` satisfy `formula`?
///
/// Implemented as emptiness of `sys ⊗ A(¬formula)`; the paper's "φ is false
/// in M" is `holds_in(&not(φ), m).holds()`.
pub fn holds_in<S: TransitionSystem>(formula: &Ltl, sys: &S) -> Verdict {
    match satisfiable_in(&Ltl::not(formula.clone()), sys) {
        None => Verdict::Holds,
        Some(w) => Verdict::Fails(w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::WordSystem;
    use dic_fsm::Kripke;
    use dic_logic::{BoolExpr, SignalTable, Valuation};
    use dic_netlist::ModuleBuilder;

    /// One-latch module: c' = a & b (paper Example 3).
    fn simple_kripke() -> (SignalTable, Kripke) {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("simple", &mut t);
        let a = b.input("a");
        let bb = b.input("b");
        b.latch("c", BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]), false);
        let m = b.finish().expect("valid");
        let k = Kripke::from_module(&m, &t, &[]).expect("fits");
        (t, k)
    }

    fn parse(t: &mut SignalTable, src: &str) -> Ltl {
        Ltl::parse(src, t).expect("parse")
    }

    #[test]
    fn translate_cached_memoizes_across_threads() {
        let mut t = SignalTable::new();
        let f = parse(&mut t, "G(p -> X q)");
        let first = translate_cached(&f);
        // A structurally equal but freshly built formula hits the cache.
        let rebuilt = parse(&mut t, "G(p -> X q)");
        let again = translate_cached(&rebuilt);
        assert!(Arc::ptr_eq(&first, &again));
        // The memo is process-shared: a worker thread's lookup returns
        // the very same translation instead of re-running the tableau.
        let from_worker = std::thread::scope(|s| {
            s.spawn(|| translate_cached(&f)).join().expect("worker")
        });
        assert!(Arc::ptr_eq(&first, &from_worker));
    }

    #[test]
    fn reduction_env_parses_strictly() {
        // Can't mutate the process environment safely under the parallel
        // test harness; `reduction_from_env` reads the ambient value, so
        // only the unset/default path is assertable here. The rejection
        // paths are pinned end-to-end in tests/cli.rs, where each case
        // runs in its own process.
        assert_eq!(reduction_from_env(), Ok(true));
        assert!(reduction_enabled());
    }

    #[test]
    fn latch_follows_and_of_inputs() {
        let (mut t, k) = simple_kripke();
        // G(a & b -> X c) holds: whenever a&b now, c is 1 next cycle.
        let f = parse(&mut t, "G(a & b -> X c)");
        assert!(holds_in(&f, &k).holds());
        // G(a -> X c) fails (b may be low); a counterexample is produced.
        let g = parse(&mut t, "G(a -> X c)");
        let v = holds_in(&g, &k);
        assert!(!v.holds());
        let w = v.counterexample().expect("witness");
        // The witness must genuinely violate g.
        assert!(!g.holds_on(w));
    }

    #[test]
    fn initial_value_checkable() {
        let (mut t, k) = simple_kripke();
        let f = parse(&mut t, "!c");
        assert!(holds_in(&f, &k).holds(), "latch resets to 0");
        assert!(satisfiable_in(&parse(&mut t, "c"), &k).is_none());
    }

    #[test]
    fn existential_witness_satisfies_formula() {
        let (mut t, k) = simple_kripke();
        let f = parse(&mut t, "a & b & X c & X X !c");
        let w = satisfiable_in(&f, &k).expect("satisfiable");
        assert!(f.holds_on(&w), "witness must satisfy the formula");
    }

    #[test]
    fn unsatisfiable_in_model_but_satisfiable_generally() {
        let (mut t, k) = simple_kripke();
        // c without a&b in the previous cycle cannot happen.
        let f = parse(&mut t, "!a & X c");
        assert!(satisfiable_in(&f, &k).is_none());
    }

    #[test]
    fn until_properties() {
        let (mut t, k) = simple_kripke();
        // There is a run where !c holds until c (inputs can make c rise).
        let f = parse(&mut t, "!c U c");
        assert!(satisfiable_in(&f, &k).is_some());
        // And a run where c never rises.
        let g = parse(&mut t, "G !c");
        assert!(satisfiable_in(&g, &k).is_some());
    }

    #[test]
    fn conjunction_product_matches_single_translation() {
        let (mut t, k) = simple_kripke();
        let cases: Vec<Vec<&str>> = vec![
            vec!["G(a & b -> X c)", "F c"],
            vec!["G !c", "F c"],                 // contradictory
            vec!["a", "b", "X c", "X X !c"],
            vec!["G(a -> X c)", "G F a", "F !c"],
            vec!["G F b", "!c U c"],
        ];
        for case in cases {
            let fs: Vec<Ltl> = case.iter().map(|s| parse(&mut t, s)).collect();
            let single = satisfiable_in(&Ltl::and(fs.clone()), &k);
            let multi = satisfiable_in_conj(&fs, &k);
            assert_eq!(
                single.is_some(),
                multi.is_some(),
                "disagreement on {case:?}"
            );
            if let Some(w) = multi {
                for f in &fs {
                    assert!(f.holds_on(&w), "witness misses conjunct in {case:?}");
                }
            }
        }
    }

    #[test]
    fn many_safety_conjuncts_stay_tractable() {
        // 24 safety properties at once: the subset-determinized product
        // must solve this instantly (the naive tuple product would explode
        // combinatorially).
        let (mut t, k) = simple_kripke();
        let mut fs = Vec::new();
        for _ in 0..12 {
            fs.push(parse(&mut t, "G(a & b -> X c)"));
            fs.push(parse(&mut t, "G(!a -> X !c)"));
        }
        // Satisfiable: the constraints restate the model.
        assert!(satisfiable_in_conj(&fs, &k).is_some());
        // Add one falsifying liveness conjunct: c never rises but must.
        fs.push(parse(&mut t, "G !c"));
        fs.push(parse(&mut t, "F c"));
        assert!(satisfiable_in_conj(&fs, &k).is_none());
    }

    #[test]
    fn safety_subset_death_is_detected() {
        // A safety conjunct that the model violates on every extension:
        // G(a -> X !c) conflicts with a&b -> c next; runs choosing a&b
        // must be pruned, but a-free runs survive.
        let (mut t, k) = simple_kripke();
        let fs = vec![
            parse(&mut t, "G(a -> X !c)"),
            parse(&mut t, "F (a & b)"),
        ];
        let w = satisfiable_in_conj(&fs, &k);
        // a&b forces c next, contradicting G(a -> X !c) *only if* a holds
        // then — a&b at time t with !a at t+1.. is fine unless c's rise
        // meets another a. A witness must satisfy both formulas.
        if let Some(w) = w {
            for f in &fs {
                assert!(f.holds_on(&w));
            }
        }
        // Fully contradictory: demand a&b always and a -> X !c.
        let fs2 = vec![
            parse(&mut t, "G(a & b)"),
            parse(&mut t, "G(a -> X !c)"),
        ];
        assert!(satisfiable_in_conj(&fs2, &k).is_none());
    }

    #[test]
    fn word_system_matches_bounded_semantics() {
        let mut t = SignalTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let mk = |bits: &[(bool, bool)]| -> Vec<Valuation> {
            bits.iter()
                .map(|&(vp, vq)| {
                    let mut v = Valuation::all_false(t.len());
                    v.set(p, vp);
                    v.set(q, vq);
                    v
                })
                .collect()
        };
        // w = (p,!q) (!p,q) then loop (!p,!q)
        let w = LassoWord::new(mk(&[(true, false), (false, true), (false, false)]), 2)
            .expect("word");
        let sys = WordSystem::new(w.clone());
        for src in ["p U q", "G p", "F q", "X q", "G(p -> X q)", "F G !p"] {
            let f = parse(&mut t, src);
            let expected = f.holds_on(&w);
            let got = satisfiable_in(&f, &sys).is_some();
            assert_eq!(got, expected, "disagreement on {src}");
        }
    }
}
