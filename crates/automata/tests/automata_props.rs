//! The acid test for the model checker: on random formulas and random lasso
//! words, the automaton pipeline (GPVW → product → SCC emptiness) must agree
//! exactly with the executable bounded semantics of `dic_ltl`.

use dic_automata::{
    holds_in, is_satisfiable, is_valid, satisfiable_in, satisfiable_in_conj, witness, WordSystem,
};
use dic_logic::SignalTable;
use dic_ltl::random::{random_formula, random_word, XorShift64};
use dic_ltl::Ltl;
use proptest::prelude::*;

fn universe() -> (SignalTable, Vec<dic_logic::SignalId>) {
    let mut t = SignalTable::new();
    let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
    (t, atoms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Single most important property in the workspace: automaton acceptance
    /// of a concrete word == bounded LTL semantics.
    #[test]
    fn automaton_agrees_with_bounded_semantics(
        seed in 1u64..100_000,
        budget in 1usize..18,
        prefix in 0usize..4,
        loop_len in 1usize..5,
    ) {
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        let w = random_word(&mut rng, atoms.len(), prefix, loop_len);
        let sys = WordSystem::new(w.clone());
        let expected = f.holds_on(&w);
        let got = satisfiable_in(&f, &sys).is_some();
        prop_assert_eq!(got, expected, "formula {:?} on {:?}", f, w);
    }

    /// `holds_in` is the dual of `satisfiable_in` on a single-run system.
    #[test]
    fn universal_is_dual_of_existential(
        seed in 1u64..100_000,
        budget in 1usize..15,
    ) {
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        let w = random_word(&mut rng, atoms.len(), 2, 3);
        let sys = WordSystem::new(w);
        let holds = holds_in(&f, &sys).holds();
        let neg_sat = satisfiable_in(&Ltl::not(f), &sys).is_some();
        prop_assert_eq!(holds, !neg_sat);
    }

    /// Satisfiability witnesses really satisfy the formula.
    #[test]
    fn witnesses_are_sound(seed in 1u64..100_000, budget in 1usize..15) {
        let (t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        match witness(&f, t.len()) {
            Some(w) => prop_assert!(f.holds_on(&w), "bogus witness for {:?}", f),
            None => {
                // Unsatisfiable: its negation must be valid.
                prop_assert!(is_valid(&Ltl::not(f)));
            }
        }
    }

    /// `f | !f` is always valid; `f & !f` never satisfiable.
    #[test]
    fn excluded_middle(seed in 1u64..100_000, budget in 1usize..15) {
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        prop_assert!(is_valid(&Ltl::or([f.clone(), Ltl::not(f.clone())])));
        prop_assert!(!is_satisfiable(&Ltl::and([f.clone(), Ltl::not(f)])));
    }

    /// The multi-automaton product (with subset-determinized safety
    /// components) agrees with translating the conjunction as one formula.
    #[test]
    fn conj_product_matches_conjunction(
        seed in 1u64..100_000,
        b1 in 1usize..10,
        b2 in 1usize..10,
        b3 in 1usize..8,
    ) {
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let fs = vec![
            random_formula(&mut rng, &atoms, b1),
            random_formula(&mut rng, &atoms, b2),
            random_formula(&mut rng, &atoms, b3),
        ];
        let w = random_word(&mut rng, atoms.len(), 2, 3);
        let sys = WordSystem::new(w);
        let single = satisfiable_in(&Ltl::and(fs.clone()), &sys).is_some();
        let multi = satisfiable_in_conj(&fs, &sys);
        prop_assert_eq!(single, multi.is_some(), "conjuncts {:?}", fs);
        if let Some(witness_word) = multi {
            for f in &fs {
                prop_assert!(f.holds_on(&witness_word));
            }
        }
    }

    /// Counterexamples returned by holds_in violate the property.
    #[test]
    fn counterexamples_are_sound(seed in 1u64..100_000, budget in 1usize..15) {
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        let w = random_word(&mut rng, atoms.len(), 2, 3);
        let sys = WordSystem::new(w);
        if let Some(cex) = holds_in(&f, &sys).counterexample() {
            prop_assert!(!f.holds_on(cex), "counterexample satisfies {:?}", f);
        }
    }
}
