//! Regenerates the paper's Table 1: per-design runtimes of the three
//! SpecMatcher phases, printed next to the published 2006 numbers.
//!
//! Run with: `cargo run --release -p dic-bench --bin table1 [-- --backend auto|explicit|symbolic] [--bmc off|auto] [--json]`
//!
//! With `--json`, also writes `BENCH_table1.json`: the measured per-phase
//! wall times plus the pre/post-reduction automaton sizes of every spec
//! conjunct (CI's nightly benchmark-trajectory artifact).

use dic_bench::{
    bench_table1_json, design_reductions, measure_design, paper_reference, BENCH_TABLE1_PATH,
};
use dic_core::{Backend, BmcMode};
use dic_designs::table1_designs;

fn main() {
    // Fail-closed env audit, mirroring the specmatcher binary: a typoed
    // SPECMATCHER_* override is a usage error (exit 2), never a silently
    // defaulted measurement.
    if let Err(msg) = dic_core::validate_env() {
        eprintln!("table1: {msg}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut json_rows = Vec::new();
    let backend = args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(|s| Backend::parse(s).expect("--backend explicit|symbolic|auto"))
        .unwrap_or(Backend::Explicit);
    let bmc = args
        .iter()
        .position(|a| a == "--bmc")
        .and_then(|i| args.get(i + 1))
        .map(|s| BmcMode::parse(s).expect("--bmc off|auto"))
        .unwrap_or_default();
    println!(
        "Table 1 — SpecMatcher runtimes (measured on this machine vs DATE 2006, 2 GHz P4; requested backend: {backend}, bmc: {bmc})"
    );
    println!();
    println!(
        "{:<18} {:>5} {:>9} {:>9}  {:>12} {:>12} {:>12}   {:>8} {:>8} {:>8}",
        "Circuit", "props", "primary", "gap", "Primary (s)", "TM (s)", "Gap (s)", "P4 Prim", "P4 TM", "P4 Gap"
    );
    let reference = paper_reference();
    for (design, paper) in table1_designs().iter().zip(reference) {
        let row = measure_design(design, backend, bmc);
        let reorder = match &row.reorder {
            Some(r) if r.count > 0 || r.compactions > 0 => {
                format!("  [{} sifts, {} compactions]", r.count, r.compactions)
            }
            _ => String::new(),
        };
        println!(
            "{:<18} {:>5} {:>9} {:>9}  {:>12.4} {:>12.4} {:>12.4}   {:>8.2} {:>8.2} {:>8.2}{}",
            row.circuit,
            row.num_rtl,
            row.backend.to_string(),
            row.gap_backend.to_string(),
            row.primary.as_secs_f64(),
            row.tm_build.as_secs_f64(),
            row.gap_find.as_secs_f64(),
            paper.2,
            paper.3,
            paper.4,
            reorder,
        );
        // The three real designs carry exactly the published property
        // counts. The toy example is published with its 2 illustrative
        // properties; our suite adds the 4 well-posedness properties
        // (completions, reset, cache fairness) that EXPERIMENTS.md
        // documents, so its count is compared against 2 + 4.
        let expected = if row.circuit == "mal-ex2" {
            paper.1 + 4
        } else {
            paper.1
        };
        assert_eq!(
            row.num_rtl, expected,
            "property count must match the documented accounting"
        );
        if json {
            json_rows.push((row, design_reductions(design)));
        }
    }
    if json {
        std::fs::write(BENCH_TABLE1_PATH, bench_table1_json(backend, &json_rows))
            .expect("write BENCH_table1.json");
        println!();
        println!("wrote {BENCH_TABLE1_PATH}");
    }
    println!();
    println!("shape check: gap finding dominates the other phases, as in the paper;");
    println!("absolute values differ (explicit-state checker on a modern CPU vs 2006 tool on a P4).");
    println!("the toy example row carries 2 published + 4 well-posedness properties (see EXPERIMENTS.md).");
    println!("rerun with `-- --backend symbolic` (or `auto`) for the BDD engine's primary-phase numbers.");
}
