//! Shared measurement helpers for the benchmark harness.
//!
//! The paper's Table 1 decomposes SpecMatcher runtime into three phases per
//! design: answering the primary coverage question, building `T_M`, and
//! finding the gap. These helpers run exactly one phase so Criterion can
//! time them in isolation, and [`measure_design`] reproduces a full table
//! row with wall-clock timings.

use dic_core::tm::{tm_for_modules, TmStyle};
use dic_core::{
    find_gap, primary_coverage, uncovered_terms, Backend, BmcMode, CoverageModel, CoverageRun,
    GapConfig, SpecMatcher,
};
use dic_logic::SignalTable;
use dic_designs::Design;
use dic_ltl::Ltl;
use std::time::Duration;

/// Builds the coverage model of a design (untimed setup shared by phases)
/// with the explicit backend, preserving the paper-faithful measurement.
pub fn build_model(design: &Design) -> CoverageModel {
    build_model_with_backend(design, Backend::Explicit)
}

/// Builds the coverage model of a design with a chosen backend.
pub fn build_model_with_backend(design: &Design, backend: Backend) -> CoverageModel {
    CoverageModel::build_with_backend(&design.arch, &design.rtl, &design.table, backend)
        .expect("packaged designs fit the backend limits")
}

/// Phase 1: the primary coverage question (Theorem 1) for the first
/// architectural property, answered by the model's backend. Returns the
/// refuting witness, if any.
pub fn phase_primary(design: &Design, model: &CoverageModel) -> Option<dic_ltl::LassoWord> {
    let fa = design.arch.properties()[0].formula();
    primary_coverage(fa, &design.rtl, model).expect("within backend limits")
}

/// Phase 2: `T_M` construction (Definition 4, enumerated — what the paper
/// times; pass [`TmStyle::Relational`] for the ablation).
pub fn phase_tm(design: &Design, style: TmStyle) -> Ltl {
    tm_for_modules(design.rtl.concrete(), &design.table, style)
        .expect("packaged designs fit the explicit limits")
}

/// Phase 3: gap finding (Algorithm 1) for the first architectural property,
/// on the model's gap backend.
pub fn phase_gap(
    design: &Design,
    model: &CoverageModel,
    config: &GapConfig,
) -> (Vec<dic_ltl::TemporalCube>, usize) {
    let fa = design.arch.properties()[0].formula();
    let terms =
        uncovered_terms(fa, &design.rtl, model, config).expect("within backend limits");
    let gaps =
        find_gap(fa, &terms, &design.rtl, model, config).expect("within backend limits");
    (terms, gaps.len())
}

/// One measured Table 1 row.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Design name.
    pub circuit: String,
    /// Number of RTL properties.
    pub num_rtl: usize,
    /// Primary coverage time.
    pub primary: Duration,
    /// `T_M` build time (enumerated).
    pub tm_build: Duration,
    /// Gap finding time.
    pub gap_find: Duration,
    /// The backend that answered the primary questions.
    pub backend: Backend,
    /// The backend that ran the gap phase (per-phase `Auto` resolution).
    pub gap_backend: Backend,
    /// Dynamic-reordering statistics of the symbolic engine, if one ran.
    pub reorder: Option<dic_core::ReorderStats>,
    /// Worker-thread accounting of the run (resolved `--jobs` /
    /// `SPECMATCHER_JOBS`, gap-phase fan-out, fixpoint concurrency).
    pub jobs: dic_core::JobsStats,
    /// Per-phase engine counter deltas, when the run was traced
    /// (`dic_trace` enabled); `None` keeps the historical JSON shape.
    pub counters: Option<dic_core::PhaseCounters>,
    /// The bounded-refutation mode of the run (`--bmc`).
    pub bmc: BmcMode,
    /// The gap fingerprint: every reported gap property, rendered in
    /// report order ([`gap_fingerprint`]). The determinism contract says
    /// this list is byte-identical across `--bmc` modes, backends and
    /// `--jobs` counts; CI diffs it between nightly lanes.
    pub gap_fingerprint: Vec<String>,
}

/// The ordered gap-property fingerprint of a run: for every architectural
/// property, each reported gap property's formula rendered against the
/// design's signal table. Two runs with equal fingerprints reported the
/// same gap content in the same order — the byte-identity CI pins across
/// `--bmc on/off`, backends, and worker counts.
pub fn gap_fingerprint(run: &CoverageRun, table: &SignalTable) -> Vec<String> {
    run.properties
        .iter()
        .flat_map(|p| {
            p.gap_properties
                .iter()
                .map(|g| format!("{}: {}", p.name, g.formula.display(table)))
        })
        .collect()
}

/// The gap budget used for the Table 1 rows: enough to find the
/// structure-preserving gap properties on every packaged design while
/// keeping the wall clock in the tens of seconds, like the published runs.
pub fn table1_config() -> GapConfig {
    GapConfig {
        max_terms: 3,
        max_candidates: 32,
        max_gap_properties: 4,
        ..GapConfig::default()
    }
}

/// Runs the full pipeline once and reports the row (used by `bin/table1`).
pub fn measure_design(design: &Design, backend: Backend, bmc: BmcMode) -> TableRow {
    let matcher = SpecMatcher::new(table1_config())
        .with_tm_style(TmStyle::Enumerated)
        .with_backend(backend)
        .with_bmc(bmc);
    let run = design.check(&matcher).expect("packaged design runs");
    let fingerprint = gap_fingerprint(&run, &design.table);
    TableRow {
        circuit: design.name.to_owned(),
        num_rtl: run.num_rtl_properties,
        primary: run.timings.primary,
        tm_build: run.timings.tm_build,
        gap_find: run.timings.gap_find,
        backend: run.backend,
        gap_backend: run.gap_backend,
        reorder: run.reorder,
        jobs: run.jobs,
        counters: run.counters,
        bmc: run.bmc,
        gap_fingerprint: fingerprint,
    }
}

/// The paper's published Table 1 rows (2 GHz Pentium 4, seconds), for the
/// shape comparison printed next to the measured values.
pub fn paper_reference() -> Vec<(&'static str, usize, f64, f64, f64)> {
    vec![
        ("Memory Arb. Logic", 26, 4.7, 2.3, 26.1),
        ("Intel Design", 12, 8.2, 0.9, 15.2),
        ("ARM AMBA AHB", 29, 12.07, 9.8, 22.5),
        ("Paper Ex. (Fig 1)", 2, 0.18, 0.06, 1.2),
    ]
}

/// Where `table1 --json` (CLI and bench binary alike) writes its
/// machine-readable row dump; CI uploads it as the nightly benchmark
/// trajectory artifact.
pub const BENCH_TABLE1_PATH: &str = "BENCH_table1.json";

/// Automaton accounting for one spec conjunct: its name and the pre/post
/// sizes of the reduction pipeline ([`dic_automata::translation_reduction`]).
#[derive(Clone, Debug)]
pub struct ConjunctReduction {
    /// Property name (`R1`, …) or `!<name>` for a negated intent.
    pub name: String,
    /// Pre/post automaton sizes.
    pub stats: dic_automata::ReductionStats,
}

pub use dic_automata::code_bits;

/// Pre/post reduction accounting for every spec conjunct of a design:
/// each RTL property and the negation of each architectural property —
/// exactly the automata the primary and gap products are built from.
pub fn design_reductions(design: &Design) -> Vec<ConjunctReduction> {
    let mut out: Vec<ConjunctReduction> = design
        .rtl
        .properties()
        .iter()
        .map(|p| ConjunctReduction {
            name: p.name().to_owned(),
            stats: dic_automata::translation_reduction(p.formula()),
        })
        .collect();
    for p in design.arch.properties() {
        let neg = Ltl::not(p.formula().clone());
        out.push(ConjunctReduction {
            name: format!("!{}", p.name()),
            stats: dic_automata::translation_reduction(&neg),
        });
    }
    out
}

/// Renders the `BENCH_table1.json` document: per design, the measured
/// phase wall times and the pre/post-reduction automaton sizes (states,
/// transitions, acceptance sets, symbolic code bits) of every spec
/// conjunct, plus per-design totals.
pub fn bench_table1_json(
    requested: Backend,
    rows: &[(TableRow, Vec<ConjunctReduction>)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"specmatcher-bench-table1/1\",\"requested_backend\":\"{requested}\",\
         \"reduction_enabled\":{},\"designs\":[",
        dic_automata::reduction_enabled()
    );
    for (i, (row, conjuncts)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"rtl_properties\":{},\"primary_backend\":\"{}\",\
             \"gap_backend\":\"{}\",\"bmc\":\"{}\",\"jobs\":{{\"requested\":{},\
             \"gap_workers\":{},\"gap_fixpoints\":{}}},\"phase_s\":{{\"primary\":{},\
             \"tm_build\":{},\"gap_find\":{}}},",
            row.circuit,
            row.num_rtl,
            row.backend,
            row.gap_backend,
            row.bmc,
            row.jobs.requested,
            row.jobs.gap_workers,
            row.jobs.gap_fixpoints,
            row.primary.as_secs_f64(),
            row.tm_build.as_secs_f64(),
            row.gap_find.as_secs_f64(),
        );
        // The ordered gap fingerprint: what the byte-identity contract
        // quantifies over. The nightly CI lane diffs this list between
        // `--bmc off` and `--bmc auto` documents.
        out.push_str("\"gap_fingerprint\":[");
        for (j, g) in row.gap_fingerprint.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:?}", g);
        }
        out.push_str("],");
        // Per-phase engine counters ride next to the wall times when the
        // run was traced; untraced runs keep the historical document
        // shape (no "phase_counters" key at all).
        if let Some(c) = &row.counters {
            out.push_str("\"phase_counters\":{");
            for (i, (phase, snap)) in [
                ("primary", &c.primary),
                ("tm_build", &c.tm_build),
                ("gap_find", &c.gap_find),
            ]
            .into_iter()
            .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{phase}\":{{");
                for (j, (name, value)) in snap.nonzero().into_iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{name}\":{value}");
                }
                out.push('}');
            }
            out.push_str("},");
        }
        out.push_str("\"automata\":[");
        let mut totals = (0usize, 0usize, 0usize, 0usize); // pre/post states, pre/post bits
        for (j, c) in conjuncts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let (pre, post) = (c.stats.pre, c.stats.post);
            let (pre_bits, post_bits) = (code_bits(pre.states), code_bits(post.states));
            totals.0 += pre.states;
            totals.1 += post.states;
            totals.2 += pre_bits;
            totals.3 += post_bits;
            let _ = write!(
                out,
                "{{\"conjunct\":\"{}\",\"pre\":{{\"states\":{},\"transitions\":{},\
                 \"acceptance_sets\":{},\"code_bits\":{}}},\"post\":{{\"states\":{},\
                 \"transitions\":{},\"acceptance_sets\":{},\"code_bits\":{}}}}}",
                c.name,
                pre.states,
                pre.transitions,
                pre.acceptance_sets,
                pre_bits,
                post.states,
                post.transitions,
                post.acceptance_sets,
                post_bits,
            );
        }
        let _ = write!(
            out,
            "],\"totals\":{{\"pre_states\":{},\"post_states\":{},\"pre_code_bits\":{},\
             \"post_code_bits\":{}}}}}",
            totals.0, totals.1, totals.2, totals.3
        );
    }
    out.push_str("]}");
    out
}
