//! Shared measurement helpers for the benchmark harness.
//!
//! The paper's Table 1 decomposes SpecMatcher runtime into three phases per
//! design: answering the primary coverage question, building `T_M`, and
//! finding the gap. These helpers run exactly one phase so Criterion can
//! time them in isolation, and [`measure_design`] reproduces a full table
//! row with wall-clock timings.

use dic_core::tm::{tm_for_modules, TmStyle};
use dic_core::{
    find_gap, primary_coverage, uncovered_terms, Backend, CoverageModel, GapConfig, SpecMatcher,
};
use dic_designs::Design;
use dic_ltl::Ltl;
use std::time::Duration;

/// Builds the coverage model of a design (untimed setup shared by phases)
/// with the explicit backend, preserving the paper-faithful measurement.
pub fn build_model(design: &Design) -> CoverageModel {
    build_model_with_backend(design, Backend::Explicit)
}

/// Builds the coverage model of a design with a chosen backend.
pub fn build_model_with_backend(design: &Design, backend: Backend) -> CoverageModel {
    CoverageModel::build_with_backend(&design.arch, &design.rtl, &design.table, backend)
        .expect("packaged designs fit the backend limits")
}

/// Phase 1: the primary coverage question (Theorem 1) for the first
/// architectural property, answered by the model's backend. Returns the
/// refuting witness, if any.
pub fn phase_primary(design: &Design, model: &CoverageModel) -> Option<dic_ltl::LassoWord> {
    let fa = design.arch.properties()[0].formula();
    primary_coverage(fa, &design.rtl, model).expect("within backend limits")
}

/// Phase 2: `T_M` construction (Definition 4, enumerated — what the paper
/// times; pass [`TmStyle::Relational`] for the ablation).
pub fn phase_tm(design: &Design, style: TmStyle) -> Ltl {
    tm_for_modules(design.rtl.concrete(), &design.table, style)
        .expect("packaged designs fit the explicit limits")
}

/// Phase 3: gap finding (Algorithm 1) for the first architectural property,
/// on the model's gap backend.
pub fn phase_gap(
    design: &Design,
    model: &CoverageModel,
    config: &GapConfig,
) -> (Vec<dic_ltl::TemporalCube>, usize) {
    let fa = design.arch.properties()[0].formula();
    let terms =
        uncovered_terms(fa, &design.rtl, model, config).expect("within backend limits");
    let gaps =
        find_gap(fa, &terms, &design.rtl, model, config).expect("within backend limits");
    (terms, gaps.len())
}

/// One measured Table 1 row.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Design name.
    pub circuit: String,
    /// Number of RTL properties.
    pub num_rtl: usize,
    /// Primary coverage time.
    pub primary: Duration,
    /// `T_M` build time (enumerated).
    pub tm_build: Duration,
    /// Gap finding time.
    pub gap_find: Duration,
    /// The backend that answered the primary questions.
    pub backend: Backend,
    /// The backend that ran the gap phase (per-phase `Auto` resolution).
    pub gap_backend: Backend,
    /// Dynamic-reordering statistics of the symbolic engine, if one ran.
    pub reorder: Option<dic_core::ReorderStats>,
}

/// The gap budget used for the Table 1 rows: enough to find the
/// structure-preserving gap properties on every packaged design while
/// keeping the wall clock in the tens of seconds, like the published runs.
pub fn table1_config() -> GapConfig {
    GapConfig {
        max_terms: 3,
        max_candidates: 32,
        max_gap_properties: 4,
        ..GapConfig::default()
    }
}

/// Runs the full pipeline once and reports the row (used by `bin/table1`).
pub fn measure_design(design: &Design, backend: Backend) -> TableRow {
    let matcher = SpecMatcher::new(table1_config())
        .with_tm_style(TmStyle::Enumerated)
        .with_backend(backend);
    let run = design.check(&matcher).expect("packaged design runs");
    TableRow {
        circuit: design.name.to_owned(),
        num_rtl: run.num_rtl_properties,
        primary: run.timings.primary,
        tm_build: run.timings.tm_build,
        gap_find: run.timings.gap_find,
        backend: run.backend,
        gap_backend: run.gap_backend,
        reorder: run.reorder,
    }
}

/// The paper's published Table 1 rows (2 GHz Pentium 4, seconds), for the
/// shape comparison printed next to the measured values.
pub fn paper_reference() -> Vec<(&'static str, usize, f64, f64, f64)> {
    vec![
        ("Memory Arb. Logic", 26, 4.7, 2.3, 26.1),
        ("Intel Design", 12, 8.2, 0.9, 15.2),
        ("ARM AMBA AHB", 29, 12.07, 9.8, 22.5),
        ("Paper Ex. (Fig 1)", 2, 0.18, 0.06, 1.2),
    ]
}
