//! Ablation bench for the design choices in the gap pipeline (Algorithm 1):
//! term generalization on/off, hidden-signal quantification on/off, and
//! candidate-budget sensitivity, measured on the paper's Example 2.

use criterion::{criterion_group, criterion_main, Criterion};
use dic_bench::{build_model, phase_gap};
use dic_core::GapConfig;
use dic_designs::pipeline;
use std::hint::black_box;

fn bench_gap_ablation(c: &mut Criterion) {
    // The pipeline design has the smallest model of the Table 1 set, so
    // every knob can be swept with sub-second iterations; the knobs behave
    // identically on the larger designs (only slower).
    let design = pipeline::pipeline12();
    let model = build_model(&design);

    let mut group = c.benchmark_group("gap_ablation/pipeline");
    group.sample_size(10);

    // A bounded base budget so each Criterion iteration stays in seconds.
    let base = GapConfig {
        max_terms: 2,
        max_candidates: 16,
        max_gap_properties: 4,
        ..GapConfig::default()
    };
    let configs = [
        ("base", base.clone()),
        (
            "no_generalize",
            GapConfig {
                generalize: false,
                ..base.clone()
            },
        ),
        (
            "no_quantify",
            GapConfig {
                quantify: false,
                ..base.clone()
            },
        ),
        (
            "more_terms",
            GapConfig {
                max_terms: 4,
                ..base.clone()
            },
        ),
        (
            "more_candidates",
            GapConfig {
                max_candidates: 48,
                ..base
            },
        ),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| black_box(phase_gap(&design, &model, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gap_ablation);
criterion_main!(benches);
