//! Explicit vs symbolic backend on the primary coverage question.
//!
//! Two sweeps: the packaged designs both engines can handle (head-to-head
//! crossover data behind `Backend::Auto`'s threshold), and the latch-chain
//! scaling family where only the symbolic engine survives past the
//! explicit bit limit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dic_bench::{build_model_with_backend, phase_primary};
use dic_core::Backend;
use dic_designs::scaling::chain_design;
use dic_designs::{mal, pipeline};
use std::hint::black_box;

fn bench_backend_head_to_head(c: &mut Criterion) {
    let mut group = c.benchmark_group("backends/head_to_head");
    group.sample_size(10);
    // mal-26 is explicit-minutes-scale; bin/table1 reports it. These two
    // stay comfortably inside both engines. The model is rebuilt inside
    // every iteration: the symbolic engine memoizes fixpoints in its BDD
    // manager, so a shared model would measure cache hits from the second
    // iteration on — build+query is the honest end-to-end unit for the
    // crossover data behind `Backend::Auto`'s threshold.
    for design in [mal::ex2(), pipeline::pipeline12()] {
        for backend in [Backend::Explicit, Backend::Symbolic] {
            group.bench_with_input(
                BenchmarkId::new(design.name, backend.to_string()),
                &backend,
                |b, &backend| {
                    b.iter(|| {
                        let model = build_model_with_backend(&design, backend);
                        black_box(phase_primary(&design, &model))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_symbolic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("backends/chain_scaling");
    group.sample_size(10);
    // 16 fits the explicit engine; 24 and 32 do not — the rows the paper's
    // Section 5 warns about, now measurable. Fresh model per iteration,
    // for the same cache-hit reason as the head-to-head group.
    for n in [16usize, 24, 32] {
        let design = chain_design(n, false);
        group.bench_with_input(BenchmarkId::new("symbolic", n), &n, |b, _| {
            b.iter(|| {
                let model = build_model_with_backend(&design, Backend::Symbolic);
                black_box(phase_primary(&design, &model))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backend_head_to_head, bench_symbolic_scaling);
criterion_main!(benches);
