//! Model-checking state-explosion bench (paper Section 5: "the primary
//! coverage question requires model checking on the RTL blocks"): the
//! primary coverage question on MAL variants of growing width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dic_bench::{build_model, phase_primary};
use dic_designs::scaling::wide_mal;
use std::hint::black_box;

fn bench_mc_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_scaling/wide_mal");
    group.sample_size(10);
    // Width 4 is the Table 1 MAL; its primary question is minutes-scale and
    // is reported by `bin/table1` — Criterion sweeps the widths below.
    for n in [2usize, 3] {
        let design = wide_mal(n);
        let model = build_model(&design);
        group.bench_with_input(
            BenchmarkId::new("primary_coverage", n),
            &n,
            |b, _| b.iter(|| black_box(phase_primary(&design, &model))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mc_scaling);
criterion_main!(benches);
