//! Criterion benches for the paper's Table 1: each design × each phase
//! (primary coverage question, `T_M` building, gap finding).

use criterion::{criterion_group, criterion_main, Criterion};
use dic_bench::{build_model, phase_gap, phase_primary, phase_tm};
use dic_core::tm::TmStyle;
use dic_core::GapConfig;
use dic_designs::table1_designs;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    for design in table1_designs() {
        let model = build_model(&design);
        // Tightly bounded gap budget so a Criterion iteration stays in
        // seconds; the full-budget wall-clock rows come from `bin/table1`.
        let config = GapConfig {
            max_terms: 1,
            max_candidates: 6,
            ..GapConfig::default()
        };

        let mut group = c.benchmark_group(format!("table1/{}", design.name));
        group.sample_size(10);

        // The widest model (mal-26) takes ~1 min per *single* primary
        // query and minutes per gap search — Criterion's repeated
        // iterations would turn the suite into hours. Its full-budget
        // wall-clock row comes from `cargo run -p dic-bench --bin table1`;
        // Criterion covers the phases that iterate in seconds.
        if design.name != "mal-26" {
            group.bench_function("primary_coverage", |b| {
                b.iter(|| black_box(phase_primary(&design, &model)))
            });
        }
        group.bench_function("tm_build", |b| {
            b.iter(|| black_box(phase_tm(&design, TmStyle::Enumerated)))
        });
        if design.name != "mal-26" && design.name != "amba-ahb" {
            group.bench_function("gap_finding", |b| {
                b.iter(|| black_box(phase_gap(&design, &model, &config)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
