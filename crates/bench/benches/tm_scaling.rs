//! `T_M` state-explosion bench (paper Section 5: "the building time for TM
//! will go up"): enumerated vs relational construction on growing latch
//! chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dic_core::tm::{enumerated_tm, relational_tm};
use dic_designs::scaling::{latch_chain, twin_chain};
use std::hint::black_box;

fn bench_tm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tm_scaling/latch_chain");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let (t, m) = latch_chain(n);
        group.bench_with_input(BenchmarkId::new("enumerated", n), &n, |b, _| {
            b.iter(|| black_box(enumerated_tm(&m, &t, true).expect("fits")))
        });
        group.bench_with_input(BenchmarkId::new("relational", n), &n, |b, _| {
            b.iter(|| black_box(relational_tm(&m)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tm_scaling/twin_chain");
    group.sample_size(10);
    for n in [1usize, 2, 3, 4] {
        let (t, m) = twin_chain(n);
        group.bench_with_input(BenchmarkId::new("enumerated", n), &n, |b, _| {
            b.iter(|| black_box(enumerated_tm(&m, &t, true).expect("fits")))
        });
        group.bench_with_input(BenchmarkId::new("enumerated_unmerged", n), &n, |b, _| {
            b.iter(|| black_box(enumerated_tm(&m, &t, false).expect("fits")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tm_scaling);
criterion_main!(benches);
