//! Benchmarks for the LTL→Büchi substrate: GPVW translation time/size on
//! the specification patterns the coverage pipeline actually translates.

use criterion::{criterion_group, criterion_main, Criterion};
use dic_automata::translate;
use dic_logic::SignalTable;
use dic_ltl::random::{random_formula, XorShift64};
use dic_ltl::Ltl;
use std::hint::black_box;

fn bench_translate_patterns(c: &mut Criterion) {
    let mut t = SignalTable::new();
    let patterns = [
        ("request_response", "G(req -> X grant)"),
        ("priority_intent", "G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))"),
        ("paper_gap_u", "G(!wait & r1 & X(r1 U (r2 & X !hit)) -> X(!d2 U d1))"),
        ("fairness", "G F hit"),
        ("nested_until", "(a U b) U (c U d)"),
        ("strong_release", "(a R b) & (c R d) & G(e -> F f)"),
    ];
    let mut group = c.benchmark_group("automata/translate");
    for (name, src) in patterns {
        let f = Ltl::parse(src, &mut t).expect("pattern parses");
        group.bench_function(name, |b| b.iter(|| black_box(translate(&f))));
    }
    group.finish();
}

fn bench_translate_random(c: &mut Criterion) {
    let mut t = SignalTable::new();
    let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r"), t.intern("s")];
    let mut group = c.benchmark_group("automata/translate_random");
    group.sample_size(20);
    for budget in [8usize, 16, 24] {
        let formulas: Vec<Ltl> = (1..=20)
            .map(|seed| random_formula(&mut XorShift64::new(seed), &atoms, budget))
            .collect();
        group.bench_function(format!("budget_{budget}"), |b| {
            b.iter(|| {
                for f in &formulas {
                    black_box(translate(f));
                }
            })
        });
    }
    group.finish();
}

fn bench_emptiness_engines(c: &mut Criterion) {
    use dic_automata::{is_satisfiable, is_satisfiable_ndfs};

    // Engine ablation: Tarjan over generalized acceptance vs the classic
    // degeneralize + nested-DFS pipeline, on liveness-heavy formulas.
    let mut t = SignalTable::new();
    let liveness = Ltl::parse("G(p -> F q) & G F p & G F !q", &mut t).expect("parses");
    let mut group = c.benchmark_group("automata/emptiness");
    group.bench_function("tarjan_gba", |b| {
        b.iter(|| black_box(is_satisfiable(&liveness)))
    });
    group.bench_function("ndfs_degeneralized", |b| {
        b.iter(|| black_box(is_satisfiable_ndfs(&liveness)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_translate_patterns,
    bench_translate_random,
    bench_emptiness_engines
);
criterion_main!(benches);
