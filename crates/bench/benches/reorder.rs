//! Group-sifting reorder costs and payoff at the `dic_logic` level.
//!
//! Two measurements: the cost of one sifting pass over a banked
//! conjunction (the classic order-sensitive function — all `x` variables
//! registered before all `y` variables, so the static order is
//! exponentially bad and sifting must interleave the pairs), and the
//! operation-level payoff of running on the sifted order vs the banked
//! one. The symbolic-engine-level effect (amba-ahb fitting the default
//! node budget) is covered by the nightly CI lane, not a bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dic_logic::{Bdd, BddManager, ReorderGroup, SignalTable};
use std::hint::black_box;

/// Builds `⋁_i x_i ∧ y_i` with the banks-apart registration order.
fn banked(n: usize) -> (BddManager, Bdd) {
    let mut t = SignalTable::new();
    let xs: Vec<_> = (0..n).map(|i| t.intern(&format!("x{i}"))).collect();
    let ys: Vec<_> = (0..n).map(|i| t.intern(&format!("y{i}"))).collect();
    let mut m = BddManager::new();
    let xv: Vec<_> = xs.iter().map(|&s| m.var_for_signal(s)).collect();
    let yv: Vec<_> = ys.iter().map(|&s| m.var_for_signal(s)).collect();
    let mut f = Bdd::FALSE;
    for i in 0..n {
        let pair = m.and(xv[i], yv[i]);
        f = m.or(f, pair);
    }
    (m, f)
}

fn singleton_groups(n: u32) -> Vec<ReorderGroup> {
    (0..n)
        .map(|v| ReorderGroup {
            vars: vec![v],
            top: false,
        })
        .collect()
}

fn bench_sifting_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder/sift_banked");
    group.sample_size(10);
    // The banked function has 2^(n+1)-2 nodes before sifting and 3n after
    // — every extra bank bit doubles the work a sifting pass must undo.
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("pairs", n), &n, |b, &n| {
            b.iter(|| {
                let (mut m, f) = banked(n);
                let outcome = m.reorder_groups(&singleton_groups(2 * n as u32), &[f]);
                black_box(outcome.live_after)
            })
        });
    }
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder/compact");
    group.sample_size(10);
    // Compaction is the garbage-collection half of a reorder: O(live),
    // independent of how much garbage the append-only store carries.
    for n in [12usize, 16] {
        group.bench_with_input(BenchmarkId::new("pairs", n), &n, |b, &n| {
            b.iter(|| {
                let (mut m, f) = banked(n);
                let outcome = m.compact(&[f]);
                black_box(outcome.live_after)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sifting_pass, bench_compaction);
criterion_main!(benches);
