//! The `table1` bench binary shares the fail-closed startup environment
//! audit with `specmatcher`: a typo'd `SPECMATCHER_*` override must exit 2
//! with a message naming the variable *before* any measurement starts —
//! a silently defaulted knob would poison a nightly benchmark trajectory.
//!
//! Only the rejection paths are exercised here (they return in
//! milliseconds); the accepting paths run the full table and are covered
//! by tests/cli.rs via the `specmatcher table1` subcommand.

use std::process::Command;

fn table1_with_env(var: &str, value: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_table1"))
        .env(var, value)
        .output()
        .expect("binary runs")
}

#[test]
fn invalid_env_is_rejected_at_startup() {
    for (var, bad, needle) in [
        ("SPECMATCHER_NO_REDUCE", "yes", "invalid SPECMATCHER_NO_REDUCE"),
        ("SPECMATCHER_NO_REDUCE", "2", "invalid SPECMATCHER_NO_REDUCE"),
        ("SPECMATCHER_JOBS", "0", "invalid SPECMATCHER_JOBS"),
        ("SPECMATCHER_JOBS", "four", "invalid SPECMATCHER_JOBS"),
        ("SPECMATCHER_BMC_DEPTH", "0", "invalid SPECMATCHER_BMC_DEPTH"),
        ("SPECMATCHER_BMC_DEPTH", "257", "invalid SPECMATCHER_BMC_DEPTH"),
        ("SPECMATCHER_BMC_DEPTH", "sixteen", "invalid SPECMATCHER_BMC_DEPTH"),
    ] {
        let out = table1_with_env(var, bad);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{var}={bad:?} must be rejected at startup"
        );
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains(needle), "{var}={bad:?}: {stderr}");
        // Exit 2 means nothing was measured: no table header on stdout.
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            !stdout.contains("Table 1"),
            "{var}={bad:?} must fail before measuring: {stdout}"
        );
    }
}
