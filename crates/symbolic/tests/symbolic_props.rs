//! Property tests: the symbolic engine must agree with the explicit
//! automata-theoretic engine on verdicts, and its witnesses must satisfy
//! the bounded-semantics oracle.

use dic_automata::satisfiable_in_conj;
use dic_fsm::Kripke;
use dic_logic::{BoolExpr, SignalId, SignalTable};
use dic_ltl::random::{random_formula, XorShift64};
use dic_ltl::Ltl;
use dic_netlist::{Module, ModuleBuilder};
use dic_symbolic::{SymbolicModel, SymbolicOptions};

/// A small random netlist: `n_latch` latches over `n_in` inputs with
/// random AND/OR/XOR next-state functions (depth 1 over signals seen so
/// far), mirroring the generators in the netlist property suites.
fn random_module(rng: &mut XorShift64, n_in: usize, n_latch: usize) -> (SignalTable, Module) {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("rand", &mut t);
    let mut pool: Vec<SignalId> = (0..n_in).map(|i| b.input(&format!("i{i}"))).collect();
    for l in 0..n_latch {
        let a = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let (ea, ec) = (BoolExpr::var(a), BoolExpr::var(c));
        let f = match rng.below(4) {
            0 => BoolExpr::and([ea, ec]),
            1 => BoolExpr::or([ea, ec]),
            2 => BoolExpr::xor(ea, ec),
            _ => ea.not(),
        };
        let q = b.latch(&format!("q{l}"), f, rng.flip());
        pool.push(q);
    }
    let out = *pool.last().expect("non-empty");
    b.mark_output(out);
    let m = b.finish().expect("generated netlist is valid");
    (t, m)
}

#[test]
fn symbolic_agrees_with_explicit_on_random_instances() {
    let mut rng = XorShift64::new(0xD1C_5EED);
    let mut checked = 0;
    for case in 0..40 {
        let (mut t, m) = random_module(&mut rng, 2, 2);
        let atoms: Vec<SignalId> = m.signals().into_iter().collect();
        let formulas: Vec<Ltl> = (0..1 + case % 2)
            .map(|_| random_formula(&mut rng, &atoms, 5))
            .collect();
        // Free signals: atoms the module does not drive (none here, atoms
        // come from the module), plus one synthetic spec signal sometimes.
        let free = if case % 3 == 0 {
            vec![t.intern("spec_only")]
        } else {
            Vec::new()
        };
        let k = Kripke::from_module(&m, &t, &free).expect("small module fits");
        let explicit = satisfiable_in_conj(&formulas, &k);

        let mut sym = SymbolicModel::from_module(&m, &t, &free, SymbolicOptions::default())
            .expect("builds");
        let symbolic = sym.satisfiable_conj(&formulas).expect("within limits");

        assert_eq!(
            explicit.is_some(),
            symbolic.is_some(),
            "verdict disagreement on case {case}: formulas {:?}",
            formulas
                .iter()
                .map(|f| f.display(&t).to_string())
                .collect::<Vec<_>>()
        );
        if let Some(w) = symbolic {
            for f in &formulas {
                assert!(
                    f.holds_on(&w),
                    "symbolic witness violates {} on case {case}",
                    f.display(&t)
                );
            }
        }
        checked += 1;
    }
    assert_eq!(checked, 40);
}

#[test]
fn agreement_on_handwritten_suite() {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("simple", &mut t);
    let a = b.input("a");
    let bb = b.input("b");
    b.latch(
        "c",
        BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]),
        false,
    );
    let m = b.finish().expect("valid");
    let k = Kripke::from_module(&m, &t, &[]).expect("fits");
    let mut sym =
        SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");

    let cases = [
        "G(a & b -> X c)",
        "G(a -> X c)",
        "c",
        "!c",
        "!a & X c",
        "!c U c",
        "G !c",
        "F c & G !a",
        "G F (a & b) & G F !c",
        "X X c & !a",
    ];
    for src in cases {
        let f = Ltl::parse(src, &mut t).expect("parses");
        let explicit = satisfiable_in_conj(std::slice::from_ref(&f), &k);
        let symbolic = sym
            .satisfiable_conj(std::slice::from_ref(&f))
            .expect("within limits");
        assert_eq!(
            explicit.is_some(),
            symbolic.is_some(),
            "verdict disagreement on {src}"
        );
        if let Some(w) = symbolic {
            assert!(f.holds_on(&w), "witness violates {src}");
        }
    }
}

#[test]
fn conjunction_suites_agree() {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("simple", &mut t);
    let a = b.input("a");
    let bb = b.input("b");
    b.latch(
        "c",
        BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]),
        false,
    );
    let m = b.finish().expect("valid");
    let k = Kripke::from_module(&m, &t, &[]).expect("fits");
    let mut sym =
        SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");

    let suites: Vec<Vec<&str>> = vec![
        vec!["G(a & b -> X c)", "F c"],
        vec!["G !c", "F c"],
        vec!["a", "b", "X c", "X X !c"],
        vec!["G(a -> X c)", "G F a", "F !c"],
        vec!["G F b", "!c U c"],
        vec![],
    ];
    for case in suites {
        let fs: Vec<Ltl> = case
            .iter()
            .map(|s| Ltl::parse(s, &mut t).expect("parses"))
            .collect();
        let explicit = satisfiable_in_conj(&fs, &k);
        let symbolic = sym.satisfiable_conj(&fs).expect("within limits");
        assert_eq!(
            explicit.is_some(),
            symbolic.is_some(),
            "verdict disagreement on {case:?}"
        );
        if let Some(w) = symbolic {
            for f in &fs {
                assert!(f.holds_on(&w), "witness misses a conjunct of {case:?}");
            }
        }
    }
}

#[test]
fn handles_models_beyond_the_explicit_limit() {
    // A 24-stage latch chain: 25 state bits, rejected by the explicit
    // engine (KRIPKE_BIT_LIMIT = 20) but trivial symbolically.
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("chain", &mut t);
    let mut prev = b.input("a");
    let n = 24usize;
    for i in 1..=n {
        prev = b.latch_from(&format!("q{i}"), prev, false);
    }
    b.mark_output(prev);
    let m = b.finish().expect("valid");
    assert!(
        Kripke::from_module(&m, &t, &[]).is_err(),
        "chain-24 must exceed the explicit limit for this test to mean anything"
    );

    let mut sym =
        SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");
    assert_eq!(sym.state_bits(), 25);

    // a propagates to q24 after 24 cycles: G(a -> X^24 q24) is
    // unfalsifiable, its negation's satisfiability query returns None.
    let xs = "X ".repeat(n);
    let holds = Ltl::parse(&format!("G(a -> {xs}q{n})"), &mut t).expect("parses");
    let refute = Ltl::not(holds);
    assert!(sym.satisfiable_conj(&[refute]).expect("fits").is_none());

    // The converse claim is falsified, with a replayable witness.
    let wrong = Ltl::parse(&format!("G(a -> {xs}!q{n})"), &mut t).expect("parses");
    let refute_wrong = Ltl::not(wrong);
    let w = sym
        .satisfiable_conj(std::slice::from_ref(&refute_wrong))
        .expect("fits")
        .expect("counterexample exists");
    assert!(refute_wrong.holds_on(&w));
}

#[test]
fn node_limit_fails_closed_mid_analysis() {
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("twin", &mut t);
    let mut pa = b.input("a");
    let mut pb = b.input("b");
    for i in 1..=6 {
        pa = b.latch_from(&format!("qa{i}"), pa, false);
        pb = b.latch_from(&format!("qb{i}"), pb, i % 2 == 1);
    }
    let eq = b.wire(
        "match",
        BoolExpr::xor(BoolExpr::var(pa), BoolExpr::var(pb)).not(),
    );
    b.mark_output(eq);
    let m = b.finish().expect("valid");
    // The encoding itself fits in a few hundred nodes; the reachability
    // and fixpoint phases do not.
    let mut sym = SymbolicModel::from_module(&m, &t, &[], SymbolicOptions { node_limit: 400, ..SymbolicOptions::default() })
        .expect("encoding fits the tiny budget");
    let f = Ltl::parse("G F match & G F !match", &mut t).expect("parses");
    let err = sym
        .satisfiable_conj(&[f])
        .expect_err("analysis must refuse at 400 nodes");
    assert!(matches!(
        err,
        dic_symbolic::SymbolicError::NodeLimit { limit: 400, .. }
    ));
}

#[test]
fn forced_reorders_preserve_verdicts_and_order_invariants() {
    // A trigger of 1 fires a reorder at (almost) every fixpoint step, the
    // harshest schedule possible: every cached product, memoized fixpoint
    // and in-flight local must be remapped correctly or the engine
    // corrupts silently. Verdicts and witnesses must match the
    // reorder-free engine's, and the aut-bits-on-top / curr-next
    // adjacency invariants must survive every single reorder.
    let mut rng = XorShift64::new(0x0051_17ED);
    let mut total_reorders = 0usize;
    for case in 0..25 {
        let (t, m) = random_module(&mut rng, 2, 3);
        let atoms: Vec<SignalId> = m.signals().into_iter().collect();
        let formulas: Vec<Ltl> = (0..1 + case % 3)
            .map(|_| random_formula(&mut rng, &atoms, 5))
            .collect();
        let mut plain = SymbolicModel::from_module(
            &m,
            &t,
            &[],
            SymbolicOptions::default().with_reorder(dic_symbolic::ReorderMode::Off),
        )
        .expect("builds");
        let baseline = plain.satisfiable_conj(&formulas).expect("within limits");

        let mut stressed = SymbolicModel::from_module(
            &m,
            &t,
            &[],
            SymbolicOptions {
                reorder_trigger: 1,
                ..SymbolicOptions::default()
            },
        )
        .expect("builds");
        let verdict = stressed.satisfiable_conj(&formulas).expect("within limits");
        stressed.assert_order_invariants();
        // A conjunct unsatisfiable before translation builds no product,
        // so not every case reorders — but the batch must.
        total_reorders += stressed.reorder_stats().count;
        assert_eq!(
            baseline.is_some(),
            verdict.is_some(),
            "reordering changed a verdict on case {case}: {:?}",
            formulas
                .iter()
                .map(|f| f.display(&t).to_string())
                .collect::<Vec<_>>()
        );
        if let Some(w) = verdict {
            for f in &formulas {
                assert!(
                    f.holds_on(&w),
                    "witness after reorders violates {} (case {case})",
                    f.display(&t)
                );
            }
        }
        // Querying again reuses the (remapped) cached product.
        let again = stressed.satisfiable_conj(&formulas).expect("within limits");
        assert_eq!(again.is_some(), baseline.is_some(), "repeat query (case {case})");
    }
    assert!(
        total_reorders > 0,
        "trigger 1 must fire reorders across the batch"
    );
}
