//! Symbolic gap-phase queries: factored satisfiability against a cached
//! base product.
//!
//! Algorithm 1 of the paper decomposes into queries of two shapes, both
//! issued hundreds of times per uncovered property against the *same* base
//! conjunction:
//!
//! * **bounded-scenario queries** — "does some run of `M ⊨ base` match
//!   this [`TemporalCube`] in its first cycles (and continue fairly)?" —
//!   used for scenario probing and for the literal-flip generalization of
//!   step 2(a). These never build an automaton for the cube: the cube's
//!   per-cycle constraints are intersected into the base product's
//!   forward frontier BDDs ([`cube_frames`]), and the suffix obligation is
//!   one intersection with the memoized hull-reaching set. Existential
//!   quantification over the non-cube variables happens inside the
//!   relational product, which is exactly the paper's step 2(b) performed
//!   by the BDD engine.
//! * **closure queries** — "does some run of `M ⊨ base` also satisfy this
//!   weakening candidate?" (Definition 3) — answered by an *extended*
//!   product: the cached base encoding is reused wholesale, only the
//!   (small) candidate automaton is encoded on top, and the extended
//!   reachability is restricted by the base's memoized reachable set.
//!
//! Both reuse the fixpoints the primary coverage question already paid
//! for, which is what collapses the explicit engine's minutes-scale gap
//! phase to seconds on wide models.

use crate::check::{translate_all, ProductData};
use crate::error::SymbolicError;
use crate::model::SymbolicModel;
use dic_logic::{Bdd, Lit, SignalId};
use dic_ltl::{LassoWord, Ltl, TemporalCube};

impl SymbolicModel {
    /// Factored existential query: is there a run of the model satisfying
    /// every formula in `base` *and* every formula in `extra`? The base
    /// product (automata encodings, reachable set, fair hull) is cached
    /// and shared across calls; only the `extra` automata are encoded per
    /// call — the symbolic counterpart of
    /// `dic_core::CoverageModel::satisfiable_factored`.
    ///
    /// # Errors
    ///
    /// As for [`SymbolicModel::satisfiable_conj`].
    pub fn satisfiable_factored(
        &mut self,
        base: &[Ltl],
        extra: &[Ltl],
    ) -> Result<Option<LassoWord>, SymbolicError> {
        let Some(base_gbas) = translate_all(base) else {
            return Ok(None);
        };
        let Some(extra_gbas) = translate_all(extra) else {
            return Ok(None);
        };
        self.with_product(base, &base_gbas, |m, pd| {
            // Hull first (it forces reachability): both can reorder, and
            // the handles captured here must postdate that.
            let base_hull = pd.hull(m)?;
            let base_reach = pd.reachable(m)?;
            // The whole extended product is scratch: its verdict is a
            // plain bool and its witness a plain valuation sequence, so
            // nothing it creates must outlive the call — without
            // reclamation, each closure check would permanently consume
            // node budget in the append-only manager. Collection is
            // batched ([`SymbolicModel::scratch`]): consecutive checks
            // share one region, so the operation memos over the common
            // base conjuncts stay warm across candidates.
            m.scratch(|m| {
                let mut ext = ProductData::build(m, &extra_gbas, Some(pd))?;
                ext.set_care(base_reach);
                ext.set_hull_seed(base_hull);
                ext.decide(m)
            })
        })
    }

    /// Bounded-scenario query with witness: is there a run of the model
    /// satisfying every formula in `base` that matches `cube` at positions
    /// `0..=cube.depth()`? Returns a replayable lasso witness (prefix
    /// through the constrained frontiers, completed deterministically into
    /// the fair hull).
    ///
    /// # Errors
    ///
    /// As for [`SymbolicModel::satisfiable_conj`].
    pub fn satisfiable_factored_cube(
        &mut self,
        base: &[Ltl],
        cube: &TemporalCube,
    ) -> Result<Option<LassoWord>, SymbolicError> {
        let Some(gbas) = translate_all(base) else {
            return Ok(None);
        };
        self.with_product(base, &gbas, |m, pd| {
            pd.ensure_fixpoints(m, true)?;
            m.scratch(|m| {
                let Some((frames, goal)) = cube_frames(m, pd, cube)? else {
                    return Ok(None);
                };
                cube_witness(m, pd, &frames, goal).map(Some)
            })
        })
    }

    /// Like [`SymbolicModel::satisfiable_factored_cube`] but without
    /// witness extraction — the generalization loop of Algorithm 1 only
    /// needs the verdict, and skipping the lasso walk makes each
    /// literal-flip test a handful of constrained images. An `anchored`
    /// conjunct (the window-anchored violation the loop tests against) is
    /// encoded as a cached *extension* of the `base` product: one extra
    /// automaton, reachability and hull seeded from the base.
    ///
    /// # Errors
    ///
    /// As for [`SymbolicModel::satisfiable_conj`].
    pub fn factored_cube_sat(
        &mut self,
        base: &[Ltl],
        anchored: Option<&Ltl>,
        cube: &TemporalCube,
    ) -> Result<bool, SymbolicError> {
        let Some(base_gbas) = translate_all(base) else {
            return Ok(false);
        };
        let run = |m: &mut SymbolicModel, pd: &mut ProductData| {
            pd.ensure_fixpoints(m, false)?;
            m.scratch(|m| Ok(cube_frames(m, pd, cube)?.is_some()))
        };
        match anchored {
            None => self.with_product(base, &base_gbas, run),
            Some(a) => {
                let extra = [a.clone()];
                let Some(extra_gbas) = translate_all(&extra) else {
                    return Ok(false);
                };
                self.with_extended_product(base, &base_gbas, &extra, &extra_gbas, run)
            }
        }
    }

    /// Enumerates up to `limit` temporal cubes describing the reachable
    /// `base`-accepting region over the first `depth + 1` cycles, read
    /// directly off the frontier BDDs: for each time step, the frontier is
    /// intersected with the hull-reaching set and its satisfying cubes are
    /// projected onto `signals` (a literal is reported only where the
    /// region cube determines the signal's value). This is the symbolic
    /// view of the paper's uncovered-term region — a scenario catalogue
    /// needing no lasso replay at all.
    ///
    /// # Errors
    ///
    /// As for [`SymbolicModel::satisfiable_conj`].
    pub fn bad_region_cubes(
        &mut self,
        base: &[Ltl],
        signals: &[SignalId],
        depth: usize,
        limit: usize,
    ) -> Result<Vec<TemporalCube>, SymbolicError> {
        let Some(gbas) = translate_all(base) else {
            return Ok(Vec::new());
        };
        self.with_product(base, &gbas, |m, pd| {
            let cf = pd.can_fair(m)?;
            let mut out: Vec<TemporalCube> = Vec::new();
            let mut frame = pd.init;
            for t in 0..=depth {
                if t > 0 {
                    frame = pd.image(m, frame)?;
                }
                let bad = m.man.and(frame, cf);
                for region in m.man.sat_cubes(bad, limit) {
                    let mut lits: Vec<(usize, Lit)> = Vec::new();
                    for &s in signals {
                        let mut g = m.signal_bdd(s)?;
                        for l in region.lits() {
                            g = m.man.restrict(g, l.signal(), l.polarity());
                        }
                        if g.is_true() {
                            lits.push((t, Lit::pos(s)));
                        } else if g.is_false() {
                            lits.push((t, Lit::neg(s)));
                        }
                    }
                    let cube = TemporalCube::from_lits(lits)
                        .expect("projection of a consistent region cube");
                    if !cube.is_empty() && !out.contains(&cube) {
                        out.push(cube);
                        if out.len() >= limit {
                            return Ok(out);
                        }
                    }
                }
            }
            Ok(out)
        })
    }
}

/// Pushes the base product's forward frontiers through the per-cycle
/// constraints of `cube`, returning the constrained frames and the goal
/// set (final frame ∩ hull-reaching states), or `None` when the scenario
/// is unrealizable.
fn cube_frames(
    m: &mut SymbolicModel,
    pd: &mut ProductData,
    cube: &TemporalCube,
) -> Result<Option<(Vec<Bdd>, Bdd)>, SymbolicError> {
    if pd.init.is_false() {
        return Ok(None);
    }
    let depth = cube.depth();
    let mut constraints = vec![Bdd::TRUE; depth + 1];
    for &(t, l) in cube.lits() {
        let f = m.signal_bdd(l.signal())?;
        let lit = if l.polarity() { f } else { m.man.not(f) };
        constraints[t] = m.man.and(constraints[t], lit);
    }
    let mut frames = Vec::with_capacity(depth + 1);
    let mut cur = pd.init;
    for (t, &c) in constraints.iter().enumerate() {
        if t > 0 {
            cur = pd.image(m, cur)?;
        }
        cur = m.man.and(cur, c);
        if cur.is_false() {
            return Ok(None);
        }
        frames.push(cur);
    }
    let cf = pd.can_fair(m)?;
    let goal = m.man.and(cur, cf);
    if goal.is_false() {
        return Ok(None);
    }
    Ok(Some((frames, goal)))
}

/// Extracts a replayable lasso matching constrained frames: backward-prune
/// the frames to states that still reach `goal`, walk forward picking one
/// concrete state per frame, then complete deterministically into the fair
/// hull and close the loop there.
fn cube_witness(
    m: &mut SymbolicModel,
    pd: &mut ProductData,
    frames: &[Bdd],
    goal: Bdd,
) -> Result<LassoWord, SymbolicError> {
    let depth = frames.len() - 1;
    // Backward prune: targets[t] = states of frames[t] on a path to goal.
    let mut targets = vec![goal];
    for t in (0..depth).rev() {
        let pre = pd.preimage(m, *targets.last().expect("non-empty"))?;
        targets.push(m.man.and(frames[t], pre));
    }
    targets.reverse();
    // Forward walk through the pruned frames.
    let mut seq = vec![pd.pick(m, targets[0])];
    for target in targets.iter().skip(1) {
        let cube = pd.state_cube(m, seq.last().expect("non-empty"));
        let img = pd.image(m, cube)?;
        let succ = m.man.and(img, *target);
        seq.push(pd.pick(m, succ));
    }
    // Complete the prefix into the hull, then close a fair loop there.
    pd.walk_to_hull(m, &mut seq)?;
    let z = pd.hull(m)?;
    let last = pd.state_cube(m, seq.last().expect("non-empty"));
    let start = m.man.and(last, z);
    let (lasso, loop_at) = pd.extract_lasso(m, start, z)?;
    let prefix = seq.len() - 1;
    seq.pop(); // lasso[0] repeats the hull entry state
    seq.extend(lasso);
    Ok(pd.to_word(m, &seq, prefix + loop_at))
}
