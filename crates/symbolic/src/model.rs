//! Symbolic encoding of a netlist: transition relation over BDD variable
//! banks, never materializing states.
//!
//! A *symbolic state* is an assignment to the **state signals** — the
//! module's latches plus its nondeterministic inputs (declared inputs and
//! the spec signals passed as `extra_free`), exactly the state notion of
//! the explicit [`dic_fsm::Kripke`] structure. Every state signal gets two
//! BDD variables, a *current* and a *next* one, allocated interleaved
//! (`curr(s) < next(s) < curr(s')`) so that swapping banks is an
//! order-preserving rename ([`dic_logic::BddManager::rename`]).
//!
//! Combinational wires never get variables: their functions are built once
//! as BDDs over the current bank and substituted wherever a property or
//! automaton literal mentions them. The transition relation stays
//! *partitioned* — one conjunct `next(l) ↔ f_l(current)` per latch — so
//! image computation can interleave conjunction with early quantification
//! through the combined and-exists operator instead of ever building the
//! monolithic relation.

use crate::check::ProductData;
use crate::error::SymbolicError;
use dic_logic::{Bdd, BddManager, BoolExpr, ReorderGroup, SignalId, SignalTable};
use dic_ltl::Ltl;
use dic_netlist::Module;
use std::collections::HashMap;
use std::fmt;

/// Default budget for live BDD nodes (see [`SymbolicOptions::node_limit`]).
///
/// At roughly 60 bytes per node (node store + unique table entry) this
/// bounds the manager around 1.5 GB before the engine refuses — sized so
/// every packaged design fits the full pipeline with headroom under the
/// complement-edge core's defaults (amba-ahb forced-symbolic, the
/// heaviest packaged run, peaks near 12 M nodes including scratch with
/// the static variable order; mal-26's gap phase peaks near 10 M, with
/// scratch reclaimed between closure checks via
/// [`dic_logic::BddManager::rollback`]) while still failing closed long
/// before a development container OOMs. The margin also hosts the
/// reorder safety valve: [`REORDER_FIRST_TRIGGER`] sits between the
/// measured peaks and this budget, so runs that fit statically never
/// pay a sift and runs that would refuse get one reorder first.
pub const DEFAULT_NODE_LIMIT: usize = 24_000_000;

/// Automaton state bits pre-allocated *above* the module variable banks.
///
/// BDD variable order is registration order, and sets produced by the
/// fair-cycle fixpoints are typically "multiplexers": a disjunction over
/// automaton codes of per-code signal conditions. With the code bits at
/// the top of the order such a set is the disjoint union of its branches
/// (linear); with the code bits at the bottom every signal combination
/// must be remembered before the code is read (exponential). Queries
/// needing more bits than this still work — overflow bits are allocated
/// below the banks — they just lose the good ordering.
pub const AUT_BITS_ON_TOP: usize = 160;

/// Node-count threshold arming the first automatic reorder (and the
/// minimum growth between consecutive reorders).
///
/// Deliberately high — a safety valve short of the default node budget
/// ([`DEFAULT_NODE_LIMIT`]), not an eager policy: every rebuild clears
/// the operation memos, and on fixpoint-heavy runs recomputing those
/// dwarfs what the tighter order saves (amba-ahb forced-symbolic runs
/// ~2.5× slower with an eager 1M trigger than with the static order,
/// which peaks at ~12M nodes and fits the budget outright). Runs that
/// genuinely outgrow the static order still sift before refusing;
/// smaller explicit budgets (below this threshold) refuse without
/// reordering, as they always have.
pub const REORDER_FIRST_TRIGGER: usize = 1 << 24;

/// Minimum *live* node count before a triggered reorder runs the sifting
/// search instead of a plain compaction. Below this, ordering cannot cost
/// enough to repay a sifting pass; above it, sifting runs once per
/// doubling of the live size.
const REORDER_SIFT_MIN: usize = 1 << 16;

/// Default cluster-size cap (BDD nodes) for the conjunctively partitioned
/// transition relation (see [`PartitionMode`]).
///
/// The per-latch/per-automaton conjunct list is greedily merged into
/// clusters no larger than this many nodes: each image step then runs one
/// `and_exists` sweep per *cluster* instead of one per conjunct, cutting
/// the number of passes over the (large) frontier set by an order of
/// magnitude while keeping each cluster small enough that the combined
/// conjoin-and-quantify step stays local. Tuned on the packaged designs
/// (the 20K–100K range is flat on amba-ahb, smaller caps ~15% slower,
/// `off` ~2× slower; see DESIGN.md § "BDD core") — the n=4 caveat of
/// every other crossover constant applies.
pub const DEFAULT_CLUSTER_SIZE: usize = 60_000;

/// How the symbolic engine represents the product transition relation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PartitionMode {
    /// One conjunct per latch and per automaton, uncombined — the maximal
    /// partition (most early quantification, most passes per image).
    Off,
    /// Greedily cluster adjacent conjuncts up to
    /// [`SymbolicOptions::cluster_size`] nodes each, re-deriving the
    /// early-quantification schedules over the clusters.
    #[default]
    Auto,
}

impl PartitionMode {
    /// Parses a CLI-style mode name.
    pub fn parse(s: &str) -> Option<PartitionMode> {
        match s {
            "off" => Some(PartitionMode::Off),
            "auto" => Some(PartitionMode::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for PartitionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartitionMode::Off => "off",
            PartitionMode::Auto => "auto",
        })
    }
}

/// When the symbolic engine runs dynamic variable reordering
/// (constrained group sifting — see [`dic_logic::BddManager::reorder_groups`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReorderMode {
    /// Never reorder: the static registration order (automaton bits on
    /// top, interleaved current/next banks) is used throughout.
    Off,
    /// Reorder automatically on node-growth thresholds between fixpoint
    /// steps, outside scratch scopes.
    #[default]
    Auto,
}

impl ReorderMode {
    /// Parses a CLI-style mode name.
    pub fn parse(s: &str) -> Option<ReorderMode> {
        match s {
            "off" => Some(ReorderMode::Off),
            "auto" => Some(ReorderMode::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for ReorderMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReorderMode::Off => "off",
            ReorderMode::Auto => "auto",
        })
    }
}

/// Cumulative dynamic-reordering statistics for one symbolic model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Number of sifting reorders performed.
    pub count: usize,
    /// Number of plain compactions (garbage-collecting rebuilds without a
    /// sifting search — triggered growth that was garbage, not ordering).
    pub compactions: usize,
    /// Total live nodes across sifting reorders, before sifting.
    pub nodes_before: usize,
    /// Total live nodes across sifting reorders, after sifting.
    pub nodes_after: usize,
    /// Generational scratch-region collections: rollbacks that actually
    /// freed nodes (O(freed) each — see
    /// [`dic_logic::BddManager::rollback`]).
    pub gc_collections: usize,
    /// Total nodes freed by those rollbacks.
    pub gc_freed: usize,
    /// Honest node-store high-water mark, *including* scratch regions
    /// rolled back since (the `bdd.peak_nodes` trace gauge only records
    /// peaks while tracing is enabled, and the post-rollback node count
    /// understates what was actually allocated).
    pub peak_nodes: usize,
}

/// Tuning knobs for the symbolic engine.
#[derive(Clone, Copy, Debug)]
pub struct SymbolicOptions {
    /// Fail-closed budget for live BDD nodes, checked between fixpoint
    /// steps (the symbolic analogue of `dic_fsm::KRIPKE_BIT_LIMIT`).
    pub node_limit: usize,
    /// Dynamic variable reordering policy.
    pub reorder: ReorderMode,
    /// Node count arming the first automatic reorder (tests lower it to
    /// exercise reordering on small models).
    pub reorder_trigger: usize,
    /// Legacy stderr logging of reorder outcomes (the old
    /// `SPECMATCHER_REORDER_LOG=1` behaviour). Deprecated in favour of
    /// the structured `bdd.reorder`/`bdd.compact` trace events
    /// (`--trace-out`); kept as a line-oriented escape hatch.
    pub reorder_log: bool,
    /// Transition-relation representation (clustered vs per-conjunct).
    pub partition: PartitionMode,
    /// Cluster-size cap (BDD nodes) under [`PartitionMode::Auto`].
    pub cluster_size: usize,
}

impl Default for SymbolicOptions {
    /// The baked-in defaults: [`DEFAULT_NODE_LIMIT`], automatic
    /// reordering. Environment overrides (which can be *invalid* and must
    /// error, not silently fall back) live in
    /// [`SymbolicOptions::from_env`].
    fn default() -> Self {
        SymbolicOptions {
            node_limit: DEFAULT_NODE_LIMIT,
            reorder: ReorderMode::default(),
            reorder_trigger: REORDER_FIRST_TRIGGER,
            reorder_log: false,
            partition: PartitionMode::default(),
            cluster_size: DEFAULT_CLUSTER_SIZE,
        }
    }
}

impl SymbolicOptions {
    /// The default options with the `SPECMATCHER_BDD_NODE_LIMIT`
    /// environment override applied (an escape hatch for models just past
    /// [`DEFAULT_NODE_LIMIT`] on machines with memory to spare — the limit
    /// exists to fail closed, not to cap capability). The value is a node
    /// count, optionally with a `K`/`M` suffix (`24M`, `96m`, `500K`).
    ///
    /// # Errors
    ///
    /// [`SymbolicError::InvalidNodeLimit`] when the variable is set but
    /// does not parse — a typo'd limit must not silently become the
    /// default it was meant to replace.
    pub fn from_env() -> Result<Self, SymbolicError> {
        let mut opts = SymbolicOptions::default();
        if let Ok(v) = std::env::var("SPECMATCHER_BDD_NODE_LIMIT") {
            opts.node_limit = parse_node_limit(&v)?;
        }
        opts.reorder_log = reorder_log_from_env()?;
        if let Some(mode) = partition_from_env()? {
            opts.partition = mode;
        }
        if let Some(n) = cluster_size_from_env()? {
            opts.cluster_size = n;
        }
        Ok(opts)
    }

    /// Returns the options with the given reorder mode.
    pub fn with_reorder(mut self, mode: ReorderMode) -> Self {
        self.reorder = mode;
        self
    }

    /// Returns the options with the given transition-relation partition
    /// mode.
    pub fn with_partition(mut self, mode: PartitionMode) -> Self {
        self.partition = mode;
        self
    }
}

/// Strict parse of `SPECMATCHER_BDD_PARTITION` (`off`/`auto`; unset means
/// no override). Typos are errors, not silent defaults.
///
/// # Errors
///
/// [`SymbolicError::InvalidPartitionMode`] for any other value.
pub fn partition_from_env() -> Result<Option<PartitionMode>, SymbolicError> {
    match std::env::var("SPECMATCHER_BDD_PARTITION") {
        Err(_) => Ok(None),
        Ok(v) => match PartitionMode::parse(&v) {
            Some(mode) => Ok(Some(mode)),
            None => Err(SymbolicError::InvalidPartitionMode { value: v }),
        },
    }
}

/// Strict parse of `SPECMATCHER_BDD_CLUSTER_SIZE` (positive node count
/// with an optional `K`/`M` suffix; unset means the default).
///
/// # Errors
///
/// [`SymbolicError::InvalidClusterSize`] when set but unparsable.
pub fn cluster_size_from_env() -> Result<Option<usize>, SymbolicError> {
    match std::env::var("SPECMATCHER_BDD_CLUSTER_SIZE") {
        Err(_) => Ok(None),
        Ok(v) => match parse_scaled_count(&v) {
            Some(n) => Ok(Some(n)),
            None => Err(SymbolicError::InvalidClusterSize { value: v }),
        },
    }
}

/// Strict parse of the deprecated `SPECMATCHER_REORDER_LOG` stderr log
/// switch: unset or `"0"` is off, `"1"` turns it on (with a one-time
/// deprecation note pointing at `--trace-out`), anything else is
/// rejected — the `SPECMATCHER_NO_REDUCE`/`SPECMATCHER_JOBS` contract.
///
/// # Errors
///
/// [`SymbolicError::InvalidReorderLog`] for any other value.
pub fn reorder_log_from_env() -> Result<bool, SymbolicError> {
    match std::env::var("SPECMATCHER_REORDER_LOG") {
        Err(_) => Ok(false),
        Ok(v) if v == "0" => Ok(false),
        Ok(v) if v == "1" => {
            static DEPRECATION: std::sync::Once = std::sync::Once::new();
            DEPRECATION.call_once(|| {
                eprintln!(
                    "note: SPECMATCHER_REORDER_LOG is deprecated; reorder/compaction \
                     events are part of the structured trace — prefer --trace-out <path>"
                );
            });
            Ok(true)
        }
        Ok(v) => Err(SymbolicError::InvalidReorderLog { value: v }),
    }
}

/// Parses a node-limit value: a positive integer with an optional `K`/`M`
/// (×10³/×10⁶) suffix, case-insensitive.
fn parse_node_limit(v: &str) -> Result<usize, SymbolicError> {
    parse_scaled_count(v).ok_or_else(|| SymbolicError::InvalidNodeLimit { value: v.to_owned() })
}

/// Parses a positive count with an optional `K`/`M` (×10³/×10⁶) suffix,
/// case-insensitive; `None` on anything else.
fn parse_scaled_count(v: &str) -> Option<usize> {
    let s = v.trim();
    let (digits, scale) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 1_000usize),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 1_000_000usize),
        _ => (s, 1),
    };
    let n: usize = digits.trim().parse().ok()?;
    let limit = n.checked_mul(scale)?;
    if limit == 0 {
        return None;
    }
    Some(limit)
}

/// A netlist encoded as BDDs: variable banks, partitioned transition
/// relation, initial states and wire functions.
///
/// Build one per model with [`SymbolicModel::from_module`], then answer
/// existential LTL queries with
/// [`SymbolicModel::satisfiable_conj`](crate::check). The BDD manager is
/// owned by the model and shared across queries, so repeated checks reuse
/// node structure and operation caches.
#[derive(Debug)]
pub struct SymbolicModel {
    pub(crate) man: BddManager,
    pub(crate) module: Module,
    /// Snapshot of the signal table at build time (diagnostics + word
    /// reconstruction; the model is only meaningful for formulas whose
    /// atoms were interned before the snapshot).
    pub(crate) table: SignalTable,
    /// State signals: latch outputs first, then nondeterministic inputs.
    pub(crate) state_signals: Vec<SignalId>,
    pub(crate) n_latches: usize,
    /// Current/next variable index per state signal (parallel to
    /// `state_signals`).
    pub(crate) curr_var: Vec<u32>,
    pub(crate) next_var: Vec<u32>,
    /// Signal → BDD over the current bank, for every signal a literal may
    /// mention: latches and inputs map to their variable, wires to their
    /// substituted function.
    pub(crate) sig_bdd: HashMap<SignalId, Bdd>,
    /// One conjunct `next(l) ↔ f_l(current)` per latch, in latch order.
    pub(crate) trans_latches: Vec<Bdd>,
    /// Reset states: latches at their init values, inputs free.
    pub(crate) init: Bdd,
    /// Synthetic ids handed to the manager for next-bank and automaton
    /// variables; the next fresh one is `table.len() + synth_count`.
    pub(crate) synth_count: usize,
    /// Pool of automaton state bits, `(curr var, next var)` per bit,
    /// reused across queries (bit `i` always maps to the same variables).
    pub(crate) aut_pool: Vec<(u32, u32)>,
    /// Symbolic products cached per conjunct list: encoded automata,
    /// quantification schedules and memoized fixpoints (reachable set,
    /// fair hull, onion rings). The gap phase issues hundreds of queries
    /// against the same base (`R ∧ ¬FA`), so this cache is the symbolic
    /// counterpart of the explicit engine's materialized sub-products.
    pub(crate) products: HashMap<Vec<Ltl>, ProductData>,
    /// Start of the current reusable-scratch region: nodes above this mark
    /// belong to queries whose results were extracted to non-BDD form and
    /// can be reclaimed wholesale once the region outgrows its budget.
    /// `None` whenever persistent state (a memoized product fixpoint) was
    /// created since the last mark — see [`SymbolicModel::scratch`].
    pub(crate) scratch_base: Option<dic_logic::BddCheckpoint>,
    /// Nesting depth of active [`SymbolicModel::scratch`] closures. While
    /// positive, reordering is disabled: a reorder invalidates the scratch
    /// checkpoint *and* every intermediate handle the running query holds.
    pub(crate) scratch_depth: usize,
    /// Persistent-base node count arming the next automatic reorder
    /// (grows after each).
    reorder_next: usize,
    /// Live node count at which a triggered reorder sifts instead of just
    /// compacting (doubles after every sift).
    sift_next: usize,
    reorder_stats: ReorderStats,
    pub(crate) options: SymbolicOptions,
}

impl SymbolicModel {
    /// Encodes `module` with `extra_free` signals (spec signals the module
    /// does not drive) as additional nondeterministic inputs — the same
    /// contract as [`dic_fsm::Kripke::from_module`], without the explicit
    /// state-space limit.
    ///
    /// # Errors
    ///
    /// [`SymbolicError::NodeLimit`] if encoding the next-state functions
    /// alone exceeds the node budget (pathological netlists only).
    pub fn from_module(
        module: &Module,
        table: &SignalTable,
        extra_free: &[SignalId],
        options: SymbolicOptions,
    ) -> Result<Self, SymbolicError> {
        let mut m = SymbolicModel {
            man: BddManager::new(),
            module: module.clone(),
            table: table.clone(),
            state_signals: Vec::new(),
            n_latches: 0,
            curr_var: Vec::new(),
            next_var: Vec::new(),
            sig_bdd: HashMap::new(),
            trans_latches: Vec::new(),
            init: Bdd::TRUE,
            synth_count: 0,
            aut_pool: Vec::new(),
            products: HashMap::new(),
            scratch_base: None,
            scratch_depth: 0,
            reorder_next: options.reorder_trigger,
            sift_next: REORDER_SIFT_MIN.min(options.reorder_trigger),
            reorder_stats: ReorderStats::default(),
            options,
        };

        // Automaton bits first: the top of the variable order (see
        // [`AUT_BITS_ON_TOP`]).
        m.ensure_aut_bits(AUT_BITS_ON_TOP);

        // State signals: latches, then declared inputs, then free spec
        // signals (dedup'd, driven ones ignored) — the same accounting as
        // the explicit Kripke constructor.
        let latch_signals = module.state_signals();
        m.n_latches = latch_signals.len();
        let inputs = module.nondet_inputs(extra_free);
        m.state_signals = latch_signals.into_iter().chain(inputs).collect();

        // Interleaved variable banks: curr(s) immediately above next(s).
        for i in 0..m.state_signals.len() {
            let s = m.state_signals[i];
            let curr = m.man.var_index(s);
            let next = m.fresh_var();
            m.curr_var.push(curr);
            m.next_var.push(next);
            let v = m.man.var_for_signal(s);
            m.sig_bdd.insert(s, v);
        }

        // Wire functions over the current bank, in dependency order.
        for &wi in module.wire_order() {
            let w = &module.wires()[wi];
            let f = m.expr_bdd(w.func())?;
            m.sig_bdd.insert(w.output(), f);
        }

        // Partitioned transition relation and initial states.
        for (li, latch) in module.latches().iter().enumerate() {
            let f = m.expr_bdd(latch.next())?;
            let nv = m.var_bdd(m.next_var[li]);
            let conjunct = m.man.iff(nv, f);
            m.trans_latches.push(conjunct);

            let cv = m.var_bdd(m.curr_var[li]);
            let lit = if latch.init() { cv } else { m.man.not(cv) };
            m.init = m.man.and(m.init, lit);
        }
        m.check_limit()?;
        Ok(m)
    }

    /// Number of state bits (latches + nondeterministic inputs) — the
    /// quantity the explicit engine compares against its bit limit, and
    /// what `Backend::Auto` thresholds on.
    pub fn state_bits(&self) -> usize {
        self.state_signals.len()
    }

    /// Number of latch bits.
    pub fn num_latches(&self) -> usize {
        self.n_latches
    }

    /// Live BDD nodes in the owned manager.
    pub fn node_count(&self) -> usize {
        self.man.node_count()
    }

    /// Operation-cache entries in the owned manager.
    pub fn cache_entries(&self) -> usize {
        self.man.cache_entries()
    }

    /// The configured node budget.
    pub fn node_limit(&self) -> usize {
        self.options.node_limit
    }

    /// Marks that persistent BDD state (a memoized product fixpoint) was
    /// just created: the current scratch region, if any, must not be
    /// rolled back past it.
    pub(crate) fn mark_persistent(&mut self) {
        self.scratch_base = None;
    }

    /// Runs `f` as a *reusable-scratch* computation: its result is
    /// extracted to non-BDD form (a verdict, a witness valuation
    /// sequence), so the nodes it creates are garbage — but warm operation
    /// memos make consecutive queries much faster, so collection is
    /// batched: the nodes of many queries accumulate in one scratch
    /// region, and the whole region is rolled back once it outgrows a
    /// quarter of the node budget (rollback keeps memo entries over
    /// surviving nodes, so frequent collection stays cheap while keeping
    /// the node store — and with it every operation — small). Any persistent fixpoint computed mid-query
    /// re-bases the region (see [`SymbolicModel::mark_persistent`]).
    pub(crate) fn scratch<T>(
        &mut self,
        f: impl FnOnce(&mut SymbolicModel) -> Result<T, SymbolicError>,
    ) -> Result<T, SymbolicError> {
        if self.scratch_base.is_none() {
            self.scratch_base = Some(self.man.checkpoint());
        }
        self.scratch_depth += 1;
        let result = f(self);
        self.scratch_depth -= 1;
        if let Some(base) = self.scratch_base {
            if self.man.node_count() - base.nodes() > self.options.node_limit / 4 {
                self.man.rollback(&base);
                // Rollback keeps memo entries over surviving nodes warm;
                // if even those outgrow the node budget's order of
                // magnitude, trade the warmth for the memory.
                if self.man.cache_entries() > self.options.node_limit {
                    self.man.clear_op_caches();
                }
            }
        }
        result
    }

    /// Fails closed once the manager outgrows its budget; called between
    /// fixpoint steps so the error surfaces before memory pressure does.
    /// (Operation memos are not part of the refusal: they are trimmed at
    /// scratch-rollback boundaries — see [`SymbolicModel::scratch`] — and
    /// a single query's cache growth is collateral of its node growth,
    /// which this limit bounds.)
    pub(crate) fn check_limit(&self) -> Result<(), SymbolicError> {
        match dic_fault::hit(dic_fault::Site::BddAlloc) {
            Some(dic_fault::FaultKind::NodeLimit) => {
                return Err(SymbolicError::NodeLimit {
                    nodes: self.man.node_count(),
                    cache_entries: self.man.cache_entries(),
                    limit: self.options.node_limit,
                })
            }
            Some(dic_fault::FaultKind::Deadline) => return Err(SymbolicError::Deadline),
            Some(dic_fault::FaultKind::Panic) => dic_fault::injected_panic(),
            Some(dic_fault::FaultKind::SatUnknown) | None => {}
        }
        let nodes = self.man.node_count();
        if nodes > self.options.node_limit {
            return Err(SymbolicError::NodeLimit {
                nodes,
                cache_entries: self.man.cache_entries(),
                limit: self.options.node_limit,
            });
        }
        Ok(())
    }

    /// Cooperative governance checkpoint at every fixpoint loop head
    /// (`reachable`/`until`/`hull`/`rings_to`): polls the process-wide
    /// deadline and hosts the `symbolic.fixpoint_step` injection site.
    /// Raised between steps like [`SymbolicModel::check_limit`], so a trip
    /// leaves the manager consistent and the query resumable-from-scratch.
    pub(crate) fn check_governance(&self) -> Result<(), SymbolicError> {
        match dic_fault::hit(dic_fault::Site::SymbolicFixpointStep) {
            Some(dic_fault::FaultKind::NodeLimit) => {
                return Err(SymbolicError::NodeLimit {
                    nodes: self.man.node_count(),
                    cache_entries: self.man.cache_entries(),
                    limit: self.options.node_limit,
                })
            }
            Some(dic_fault::FaultKind::Deadline) => return Err(SymbolicError::Deadline),
            Some(dic_fault::FaultKind::Panic) => dic_fault::injected_panic(),
            Some(dic_fault::FaultKind::SatUnknown) | None => {}
        }
        if dic_fault::deadline_expired() {
            return Err(SymbolicError::Deadline);
        }
        Ok(())
    }

    /// Cumulative dynamic-reordering and node-store statistics (the
    /// sifting counters are zero under [`ReorderMode::Off`]; the GC and
    /// peak figures come straight from the manager and are always live).
    pub fn reorder_stats(&self) -> ReorderStats {
        ReorderStats {
            gc_collections: self.man.gc_collections(),
            gc_freed: self.man.gc_freed_nodes(),
            peak_nodes: self.man.peak_node_count(),
            ..self.reorder_stats
        }
    }

    /// Asserts the variable-order invariants the engine's correctness and
    /// performance rest on, for tests and debugging:
    ///
    /// * every pre-allocated automaton bit pair sits inside the reserved
    ///   top block of the order (aut-bits-on-top), and
    /// * every current/next pair — automaton and module state alike — is
    ///   level-adjacent in current-above-next order (what keeps bank
    ///   renaming a linear rebuild).
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn assert_order_invariants(&self) {
        let top_pairs = self.aut_pool.len().min(AUT_BITS_ON_TOP);
        let top_levels = 2 * top_pairs as u32;
        for (i, &(c, n)) in self.aut_pool.iter().enumerate() {
            let (lc, ln) = (self.man.level_of(c), self.man.level_of(n));
            assert_eq!(ln, lc + 1, "aut pair {i} lost curr/next adjacency");
            if i < AUT_BITS_ON_TOP {
                assert!(
                    ln < top_levels,
                    "aut pair {i} left the top block (levels {lc}/{ln} >= {top_levels})"
                );
            }
        }
        for i in 0..self.state_signals.len() {
            let (lc, ln) = (
                self.man.level_of(self.curr_var[i]),
                self.man.level_of(self.next_var[i]),
            );
            assert_eq!(ln, lc + 1, "state pair {i} lost curr/next adjacency");
            assert!(
                lc >= top_levels,
                "state pair {i} intruded into the automaton top block"
            );
        }
    }

    /// Reorders the BDD variables by constrained group sifting when the
    /// manager has outgrown the current trigger — the hook every symbolic
    /// fixpoint loop calls between steps.
    ///
    /// Safety contract (see the module docs of [`crate::check`]): this may
    /// only run where the complete set of live handles is known — the
    /// model's encodings, every cached product, the product currently
    /// taken out of the cache (`pd`), and the running fixpoint's local
    /// handles (`live`), which are remapped in place. It therefore never
    /// fires inside a scratch scope (the running query holds untracked
    /// intermediates, and a reorder would invalidate the scratch
    /// checkpoint). A reorder drops every handle outside the root set —
    /// the only garbage collection the append-only manager has — and
    /// re-bases the scratch region.
    pub(crate) fn maybe_reorder(
        &mut self,
        pd: &mut ProductData,
        live: &mut [Bdd],
    ) -> Result<(), SymbolicError> {
        if self.options.reorder == ReorderMode::Off || self.scratch_depth > 0 {
            return Ok(());
        }
        // Trigger on the *persistent base*: the prefix of the store below
        // any open scratch region. Growth inside the region is batched
        // scratch the rollback machinery will reclaim with its memos kept
        // warm — collecting it here would defeat that batching and pay a
        // rebuild for it. But the batch budget is `node_limit / 4`
        // (see [`SymbolicModel::scratch`]): anything past that is not
        // healthy batching — it is a persistent fixpoint ballooning above
        // a stale checkpoint (a lazily-forced `hull_rings`, say) — so the
        // effective base tracks it and reordering re-arms.
        let base_nodes = match self.scratch_base {
            None => self.man.node_count(),
            Some(cp) => cp.nodes().max(
                self.man
                    .node_count()
                    .saturating_sub(self.options.node_limit / 4),
            ),
        };
        if base_nodes < self.reorder_next {
            return Ok(());
        }

        let t0 = dic_trace::Stopwatch::start();
        // One extract-and-rebuild pass: it always collects garbage (the
        // only collection this manager has), and runs the sifting search
        // only when the *live* size has at least doubled since the last
        // sift — ordering cost grows with live nodes, garbage does not.
        let outcome = self.run_rebuild(pd, live);
        if outcome.sifted {
            self.sift_next = outcome.live_after.saturating_mul(2).max(REORDER_SIFT_MIN);
            self.reorder_stats.count += 1;
            self.reorder_stats.nodes_before += outcome.live_before;
            self.reorder_stats.nodes_after += outcome.live_after;
        } else {
            self.reorder_stats.compactions += 1;
        }
        if dic_trace::enabled() {
            // Every rebuild compacts; a sifting search on top is a reorder.
            dic_trace::count(dic_trace::Counter::BddCompactions, 1);
            if outcome.sifted {
                dic_trace::count(dic_trace::Counter::BddReorders, 1);
            }
            dic_trace::event(
                if outcome.sifted { "bdd.reorder" } else { "bdd.compact" },
                &[
                    ("store_before", outcome.store_before as u64),
                    ("live_before", outcome.live_before as u64),
                    ("live_after", outcome.live_after as u64),
                    ("dur_ns", t0.elapsed().as_nanos() as u64),
                ],
            );
        }
        // Legacy line-oriented diagnostics (`SPECMATCHER_REORDER_LOG=1`,
        // deprecated); off by default.
        if self.options.reorder_log {
            eprintln!(
                "reorder: store {} -> live {} -> {}{} in {:.2?}",
                outcome.store_before,
                outcome.live_before,
                outcome.live_after,
                if outcome.sifted { " (sifted)" } else { "" },
                t0.elapsed(),
            );
        }

        // Checkpoints into the old node store are meaningless now; the
        // rebuild already collected everything outside the root set.
        self.scratch_base = None;
        self.reorder_next = outcome
            .live_after
            .saturating_mul(2)
            .max(outcome.live_after + self.options.reorder_trigger);
        self.check_limit()
    }

    /// One rebuild pass over the full root set — every handle the model,
    /// the cached products, the taken-out product `pd` and the running
    /// fixpoint (`live`) hold — sifting when the live size warrants it
    /// (`sift_next`), remapping every root in place.
    fn run_rebuild(&mut self, pd: &mut ProductData, live: &mut [Bdd]) -> dic_logic::ReorderOutcome {
        let mut roots: Vec<Bdd> = Vec::new();
        self.visit_model_roots(&mut |b| roots.push(*b));
        for cached in self.products.values_mut() {
            cached.visit_roots(&mut |b| roots.push(*b));
        }
        pd.visit_roots(&mut |b| roots.push(*b));
        roots.extend_from_slice(live);

        // Sifting groups: every current/next pair moves as one adjacent
        // block; the pre-allocated automaton pairs only sift within their
        // reserved top block (the aut-bits-on-top invariant the
        // Emerson–Lei fixpoints depend on). Overflow automaton bits (past
        // the pool) live below the banks and sift freely.
        let mut groups = Vec::with_capacity(self.aut_pool.len() + self.state_signals.len());
        for (i, &(c, n)) in self.aut_pool.iter().enumerate() {
            groups.push(ReorderGroup {
                vars: vec![c, n],
                top: i < AUT_BITS_ON_TOP,
            });
        }
        for i in 0..self.state_signals.len() {
            groups.push(ReorderGroup {
                vars: vec![self.curr_var[i], self.next_var[i]],
                top: false,
            });
        }
        let outcome = self
            .man
            .reorder_groups_min_live(&groups, &roots, self.sift_next);

        self.visit_model_roots(&mut |b| outcome.remap(b));
        for cached in self.products.values_mut() {
            cached.visit_roots(&mut |b| outcome.remap(b));
        }
        pd.visit_roots(&mut |b| outcome.remap(b));
        for b in live.iter_mut() {
            outcome.remap(b);
        }
        outcome
    }

    /// Visits every BDD handle the model itself keeps (product handles are
    /// visited via [`ProductData::visit_roots`]).
    fn visit_model_roots(&mut self, f: &mut dyn FnMut(&mut Bdd)) {
        f(&mut self.init);
        for c in &mut self.trans_latches {
            f(c);
        }
        for b in self.sig_bdd.values_mut() {
            f(b);
        }
    }

    /// Allocates a fresh manager variable backed by a synthetic signal id
    /// (next-bank and automaton variables have no table entry).
    pub(crate) fn fresh_var(&mut self) -> u32 {
        let id = SignalId::from_index(self.table.len() + self.synth_count);
        self.synth_count += 1;
        self.man.var_index(id)
    }

    /// Ensures the automaton bit pool holds at least `n` bits and returns
    /// nothing; bit `i` is stable across queries, so reusing the pool keeps
    /// the variable count bounded no matter how many queries run.
    pub(crate) fn ensure_aut_bits(&mut self, n: usize) {
        while self.aut_pool.len() < n {
            let curr = self.fresh_var();
            let next = self.fresh_var();
            self.aut_pool.push((curr, next));
        }
    }

    /// The single-variable function for a raw variable index.
    pub(crate) fn var_bdd(&mut self, var: u32) -> Bdd {
        let sig = self.man.signal_of_var(var);
        self.man.var_for_signal(sig)
    }

    /// The BDD of a signal over the current bank (latch/input variable or
    /// substituted wire function).
    pub(crate) fn signal_bdd(&self, s: SignalId) -> Result<Bdd, SymbolicError> {
        self.sig_bdd
            .get(&s)
            .copied()
            .ok_or_else(|| SymbolicError::UnknownSignal {
                name: if s.index() < self.table.len() {
                    self.table.name(s).to_owned()
                } else {
                    format!("{s:?}")
                },
            })
    }

    /// Builds the BDD of a wire/latch function, substituting state
    /// variables and previously built wire functions.
    fn expr_bdd(&mut self, e: &BoolExpr) -> Result<Bdd, SymbolicError> {
        Ok(match e {
            BoolExpr::Const(true) => Bdd::TRUE,
            BoolExpr::Const(false) => Bdd::FALSE,
            BoolExpr::Var(s) => self.signal_bdd(*s)?,
            BoolExpr::Not(inner) => {
                let f = self.expr_bdd(inner)?;
                self.man.not(f)
            }
            BoolExpr::And(parts) => {
                let mut acc = Bdd::TRUE;
                for p in parts {
                    let f = self.expr_bdd(p)?;
                    acc = self.man.and(acc, f);
                    if acc.is_false() {
                        break;
                    }
                }
                acc
            }
            BoolExpr::Or(parts) => {
                let mut acc = Bdd::FALSE;
                for p in parts {
                    let f = self.expr_bdd(p)?;
                    acc = self.man.or(acc, f);
                    if acc.is_true() {
                        break;
                    }
                }
                acc
            }
            BoolExpr::Xor(a, b) => {
                let fa = self.expr_bdd(a)?;
                let fb = self.expr_bdd(b)?;
                self.man.xor(fa, fb)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_netlist::ModuleBuilder;

    fn simple() -> (SignalTable, Module) {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("simple", &mut t);
        let a = b.input("a");
        let bb = b.input("b");
        b.latch(
            "c",
            BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]),
            false,
        );
        let m = b.finish().expect("valid");
        (t, m)
    }

    #[test]
    fn banks_are_interleaved() {
        let (t, m) = simple();
        let sm =
            SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");
        assert_eq!(sm.state_bits(), 3); // c, a, b
        assert_eq!(sm.num_latches(), 1);
        for i in 0..sm.state_bits() {
            assert_eq!(sm.next_var[i], sm.curr_var[i] + 1, "curr/next adjacent");
        }
        assert_eq!(sm.trans_latches.len(), 1);
        assert!(!sm.init.is_false());
    }

    #[test]
    fn extra_free_extends_the_state() {
        let (mut t, m) = simple();
        let r = t.intern("r_free");
        let c = t.lookup("c").unwrap();
        let sm = SymbolicModel::from_module(&m, &t, &[r, c], SymbolicOptions::default())
            .expect("builds");
        // r is free (added); c is driven (ignored).
        assert_eq!(sm.state_bits(), 4);
        assert!(sm.state_signals.contains(&r));
    }

    #[test]
    fn wire_functions_are_substituted() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        let c = b.table().intern("c");
        b.latch("c", BoolExpr::var(a), false);
        let w = b.or_gate("w", [a, c], []);
        let m = b.finish().expect("valid");
        let mut sm =
            SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");
        let wf = sm.signal_bdd(w).expect("wire known");
        let va = sm.man.var_for_signal(a);
        let vc = sm.man.var_for_signal(c);
        let expect = sm.man.or(va, vc);
        assert_eq!(wf, expect, "w = a | c over the current bank");
    }

    #[test]
    fn unknown_signal_is_reported() {
        let (mut t, m) = simple();
        let ghost = t.intern("ghost");
        let sm =
            SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");
        match sm.signal_bdd(ghost) {
            Err(SymbolicError::UnknownSignal { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected UnknownSignal, got {other:?}"),
        }
    }

    #[test]
    fn tiny_node_limit_fails_closed() {
        let (t, m) = simple();
        let err = SymbolicModel::from_module(&m, &t, &[], SymbolicOptions { node_limit: 2, ..SymbolicOptions::default() })
            .expect_err("limit of 2 nodes cannot hold the relation");
        assert!(matches!(err, SymbolicError::NodeLimit { limit: 2, .. }));
    }
}
