//! Symbolic encoding of a netlist: transition relation over BDD variable
//! banks, never materializing states.
//!
//! A *symbolic state* is an assignment to the **state signals** — the
//! module's latches plus its nondeterministic inputs (declared inputs and
//! the spec signals passed as `extra_free`), exactly the state notion of
//! the explicit [`dic_fsm::Kripke`] structure. Every state signal gets two
//! BDD variables, a *current* and a *next* one, allocated interleaved
//! (`curr(s) < next(s) < curr(s')`) so that swapping banks is an
//! order-preserving rename ([`dic_logic::BddManager::rename`]).
//!
//! Combinational wires never get variables: their functions are built once
//! as BDDs over the current bank and substituted wherever a property or
//! automaton literal mentions them. The transition relation stays
//! *partitioned* — one conjunct `next(l) ↔ f_l(current)` per latch — so
//! image computation can interleave conjunction with early quantification
//! through the combined and-exists operator instead of ever building the
//! monolithic relation.

use crate::check::ProductData;
use crate::error::SymbolicError;
use dic_logic::{Bdd, BddManager, BoolExpr, SignalId, SignalTable};
use dic_ltl::Ltl;
use dic_netlist::Module;
use std::collections::HashMap;

/// Default budget for live BDD nodes (see [`SymbolicOptions::node_limit`]).
///
/// At roughly 60 bytes per node (node store + unique table entry) this
/// bounds the manager around 1.5 GB before the engine refuses — sized so
/// every packaged design fits the full pipeline with headroom (mal-26's
/// primary question peaks near 2.5 M nodes; its *gap phase* retains about
/// 5 M nodes of memoized product fixpoints and peaks near 8 M during a
/// closure check, with scratch nodes reclaimed between checks via
/// [`dic_logic::BddManager::rollback`]) while still failing closed long
/// before a development container OOMs.
pub const DEFAULT_NODE_LIMIT: usize = 24_000_000;

/// Automaton state bits pre-allocated *above* the module variable banks.
///
/// BDD variable order is registration order, and sets produced by the
/// fair-cycle fixpoints are typically "multiplexers": a disjunction over
/// automaton codes of per-code signal conditions. With the code bits at
/// the top of the order such a set is the disjoint union of its branches
/// (linear); with the code bits at the bottom every signal combination
/// must be remembered before the code is read (exponential). Queries
/// needing more bits than this still work — overflow bits are allocated
/// below the banks — they just lose the good ordering.
pub const AUT_BITS_ON_TOP: usize = 160;

/// Tuning knobs for the symbolic engine.
#[derive(Clone, Copy, Debug)]
pub struct SymbolicOptions {
    /// Fail-closed budget for live BDD nodes, checked between fixpoint
    /// steps (the symbolic analogue of `dic_fsm::KRIPKE_BIT_LIMIT`).
    pub node_limit: usize,
}

impl Default for SymbolicOptions {
    /// The default budget, overridable through the
    /// `SPECMATCHER_BDD_NODE_LIMIT` environment variable (an escape hatch
    /// for models just past [`DEFAULT_NODE_LIMIT`] on machines with memory
    /// to spare — the limit exists to fail closed, not to cap capability).
    fn default() -> Self {
        let node_limit = std::env::var("SPECMATCHER_BDD_NODE_LIMIT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_NODE_LIMIT);
        SymbolicOptions { node_limit }
    }
}

/// A netlist encoded as BDDs: variable banks, partitioned transition
/// relation, initial states and wire functions.
///
/// Build one per model with [`SymbolicModel::from_module`], then answer
/// existential LTL queries with
/// [`SymbolicModel::satisfiable_conj`](crate::check). The BDD manager is
/// owned by the model and shared across queries, so repeated checks reuse
/// node structure and operation caches.
#[derive(Debug)]
pub struct SymbolicModel {
    pub(crate) man: BddManager,
    pub(crate) module: Module,
    /// Snapshot of the signal table at build time (diagnostics + word
    /// reconstruction; the model is only meaningful for formulas whose
    /// atoms were interned before the snapshot).
    pub(crate) table: SignalTable,
    /// State signals: latch outputs first, then nondeterministic inputs.
    pub(crate) state_signals: Vec<SignalId>,
    pub(crate) n_latches: usize,
    /// Current/next variable index per state signal (parallel to
    /// `state_signals`).
    pub(crate) curr_var: Vec<u32>,
    pub(crate) next_var: Vec<u32>,
    /// Signal → BDD over the current bank, for every signal a literal may
    /// mention: latches and inputs map to their variable, wires to their
    /// substituted function.
    pub(crate) sig_bdd: HashMap<SignalId, Bdd>,
    /// One conjunct `next(l) ↔ f_l(current)` per latch, in latch order.
    pub(crate) trans_latches: Vec<Bdd>,
    /// Reset states: latches at their init values, inputs free.
    pub(crate) init: Bdd,
    /// Synthetic ids handed to the manager for next-bank and automaton
    /// variables; the next fresh one is `table.len() + synth_count`.
    pub(crate) synth_count: usize,
    /// Pool of automaton state bits, `(curr var, next var)` per bit,
    /// reused across queries (bit `i` always maps to the same variables).
    pub(crate) aut_pool: Vec<(u32, u32)>,
    /// Symbolic products cached per conjunct list: encoded automata,
    /// quantification schedules and memoized fixpoints (reachable set,
    /// fair hull, onion rings). The gap phase issues hundreds of queries
    /// against the same base (`R ∧ ¬FA`), so this cache is the symbolic
    /// counterpart of the explicit engine's materialized sub-products.
    pub(crate) products: HashMap<Vec<Ltl>, ProductData>,
    /// Start of the current reusable-scratch region: nodes above this mark
    /// belong to queries whose results were extracted to non-BDD form and
    /// can be reclaimed wholesale once the region outgrows its budget.
    /// `None` whenever persistent state (a memoized product fixpoint) was
    /// created since the last mark — see [`SymbolicModel::scratch`].
    pub(crate) scratch_base: Option<dic_logic::BddCheckpoint>,
    pub(crate) options: SymbolicOptions,
}

impl SymbolicModel {
    /// Encodes `module` with `extra_free` signals (spec signals the module
    /// does not drive) as additional nondeterministic inputs — the same
    /// contract as [`dic_fsm::Kripke::from_module`], without the explicit
    /// state-space limit.
    ///
    /// # Errors
    ///
    /// [`SymbolicError::NodeLimit`] if encoding the next-state functions
    /// alone exceeds the node budget (pathological netlists only).
    pub fn from_module(
        module: &Module,
        table: &SignalTable,
        extra_free: &[SignalId],
        options: SymbolicOptions,
    ) -> Result<Self, SymbolicError> {
        let mut m = SymbolicModel {
            man: BddManager::new(),
            module: module.clone(),
            table: table.clone(),
            state_signals: Vec::new(),
            n_latches: 0,
            curr_var: Vec::new(),
            next_var: Vec::new(),
            sig_bdd: HashMap::new(),
            trans_latches: Vec::new(),
            init: Bdd::TRUE,
            synth_count: 0,
            aut_pool: Vec::new(),
            products: HashMap::new(),
            scratch_base: None,
            options,
        };

        // Automaton bits first: the top of the variable order (see
        // [`AUT_BITS_ON_TOP`]).
        m.ensure_aut_bits(AUT_BITS_ON_TOP);

        // State signals: latches, then declared inputs, then free spec
        // signals (dedup'd, driven ones ignored) — the same accounting as
        // the explicit Kripke constructor.
        let latch_signals = module.state_signals();
        m.n_latches = latch_signals.len();
        let inputs = module.nondet_inputs(extra_free);
        m.state_signals = latch_signals.into_iter().chain(inputs).collect();

        // Interleaved variable banks: curr(s) immediately above next(s).
        for i in 0..m.state_signals.len() {
            let s = m.state_signals[i];
            let curr = m.man.var_index(s);
            let next = m.fresh_var();
            m.curr_var.push(curr);
            m.next_var.push(next);
            let v = m.man.var_for_signal(s);
            m.sig_bdd.insert(s, v);
        }

        // Wire functions over the current bank, in dependency order.
        for &wi in module.wire_order() {
            let w = &module.wires()[wi];
            let f = m.expr_bdd(w.func())?;
            m.sig_bdd.insert(w.output(), f);
        }

        // Partitioned transition relation and initial states.
        for (li, latch) in module.latches().iter().enumerate() {
            let f = m.expr_bdd(latch.next())?;
            let nv = m.var_bdd(m.next_var[li]);
            let conjunct = m.man.iff(nv, f);
            m.trans_latches.push(conjunct);

            let cv = m.var_bdd(m.curr_var[li]);
            let lit = if latch.init() { cv } else { m.man.not(cv) };
            m.init = m.man.and(m.init, lit);
        }
        m.check_limit()?;
        Ok(m)
    }

    /// Number of state bits (latches + nondeterministic inputs) — the
    /// quantity the explicit engine compares against its bit limit, and
    /// what `Backend::Auto` thresholds on.
    pub fn state_bits(&self) -> usize {
        self.state_signals.len()
    }

    /// Number of latch bits.
    pub fn num_latches(&self) -> usize {
        self.n_latches
    }

    /// Live BDD nodes in the owned manager.
    pub fn node_count(&self) -> usize {
        self.man.node_count()
    }

    /// Operation-cache entries in the owned manager.
    pub fn cache_entries(&self) -> usize {
        self.man.cache_entries()
    }

    /// The configured node budget.
    pub fn node_limit(&self) -> usize {
        self.options.node_limit
    }

    /// Marks that persistent BDD state (a memoized product fixpoint) was
    /// just created: the current scratch region, if any, must not be
    /// rolled back past it.
    pub(crate) fn mark_persistent(&mut self) {
        self.scratch_base = None;
    }

    /// Runs `f` as a *reusable-scratch* computation: its result is
    /// extracted to non-BDD form (a verdict, a witness valuation
    /// sequence), so the nodes it creates are garbage — but warm operation
    /// memos make consecutive queries much faster, so collection is
    /// batched: the nodes of many queries accumulate in one scratch
    /// region, and the whole region is rolled back once it outgrows a
    /// quarter of the node budget (rollback keeps memo entries over
    /// surviving nodes, so frequent collection stays cheap while keeping
    /// the node store — and with it every operation — small). Any persistent fixpoint computed mid-query
    /// re-bases the region (see [`SymbolicModel::mark_persistent`]).
    pub(crate) fn scratch<T>(
        &mut self,
        f: impl FnOnce(&mut SymbolicModel) -> Result<T, SymbolicError>,
    ) -> Result<T, SymbolicError> {
        if self.scratch_base.is_none() {
            self.scratch_base = Some(self.man.checkpoint());
        }
        let result = f(self);
        if let Some(base) = self.scratch_base {
            if self.man.node_count() - base.nodes() > self.options.node_limit / 4 {
                self.man.rollback(&base);
                // Rollback keeps memo entries over surviving nodes warm;
                // if even those outgrow the node budget's order of
                // magnitude, trade the warmth for the memory.
                if self.man.cache_entries() > self.options.node_limit {
                    self.man.clear_op_caches();
                }
            }
        }
        result
    }

    /// Fails closed once the manager outgrows its budget; called between
    /// fixpoint steps so the error surfaces before memory pressure does.
    /// (Operation memos are not part of the refusal: they are trimmed at
    /// scratch-rollback boundaries — see [`SymbolicModel::scratch`] — and
    /// a single query's cache growth is collateral of its node growth,
    /// which this limit bounds.)
    pub(crate) fn check_limit(&self) -> Result<(), SymbolicError> {
        let nodes = self.man.node_count();
        if nodes > self.options.node_limit {
            return Err(SymbolicError::NodeLimit {
                nodes,
                cache_entries: self.man.cache_entries(),
                limit: self.options.node_limit,
            });
        }
        Ok(())
    }

    /// Allocates a fresh manager variable backed by a synthetic signal id
    /// (next-bank and automaton variables have no table entry).
    pub(crate) fn fresh_var(&mut self) -> u32 {
        let id = SignalId::from_index(self.table.len() + self.synth_count);
        self.synth_count += 1;
        self.man.var_index(id)
    }

    /// Ensures the automaton bit pool holds at least `n` bits and returns
    /// nothing; bit `i` is stable across queries, so reusing the pool keeps
    /// the variable count bounded no matter how many queries run.
    pub(crate) fn ensure_aut_bits(&mut self, n: usize) {
        while self.aut_pool.len() < n {
            let curr = self.fresh_var();
            let next = self.fresh_var();
            self.aut_pool.push((curr, next));
        }
    }

    /// The single-variable function for a raw variable index.
    pub(crate) fn var_bdd(&mut self, var: u32) -> Bdd {
        let sig = self.man.signal_of_var(var);
        self.man.var_for_signal(sig)
    }

    /// The BDD of a signal over the current bank (latch/input variable or
    /// substituted wire function).
    pub(crate) fn signal_bdd(&self, s: SignalId) -> Result<Bdd, SymbolicError> {
        self.sig_bdd
            .get(&s)
            .copied()
            .ok_or_else(|| SymbolicError::UnknownSignal {
                name: if s.index() < self.table.len() {
                    self.table.name(s).to_owned()
                } else {
                    format!("{s:?}")
                },
            })
    }

    /// Builds the BDD of a wire/latch function, substituting state
    /// variables and previously built wire functions.
    fn expr_bdd(&mut self, e: &BoolExpr) -> Result<Bdd, SymbolicError> {
        Ok(match e {
            BoolExpr::Const(true) => Bdd::TRUE,
            BoolExpr::Const(false) => Bdd::FALSE,
            BoolExpr::Var(s) => self.signal_bdd(*s)?,
            BoolExpr::Not(inner) => {
                let f = self.expr_bdd(inner)?;
                self.man.not(f)
            }
            BoolExpr::And(parts) => {
                let mut acc = Bdd::TRUE;
                for p in parts {
                    let f = self.expr_bdd(p)?;
                    acc = self.man.and(acc, f);
                    if acc.is_false() {
                        break;
                    }
                }
                acc
            }
            BoolExpr::Or(parts) => {
                let mut acc = Bdd::FALSE;
                for p in parts {
                    let f = self.expr_bdd(p)?;
                    acc = self.man.or(acc, f);
                    if acc.is_true() {
                        break;
                    }
                }
                acc
            }
            BoolExpr::Xor(a, b) => {
                let fa = self.expr_bdd(a)?;
                let fb = self.expr_bdd(b)?;
                self.man.xor(fa, fb)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_netlist::ModuleBuilder;

    fn simple() -> (SignalTable, Module) {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("simple", &mut t);
        let a = b.input("a");
        let bb = b.input("b");
        b.latch(
            "c",
            BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]),
            false,
        );
        let m = b.finish().expect("valid");
        (t, m)
    }

    #[test]
    fn banks_are_interleaved() {
        let (t, m) = simple();
        let sm =
            SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");
        assert_eq!(sm.state_bits(), 3); // c, a, b
        assert_eq!(sm.num_latches(), 1);
        for i in 0..sm.state_bits() {
            assert_eq!(sm.next_var[i], sm.curr_var[i] + 1, "curr/next adjacent");
        }
        assert_eq!(sm.trans_latches.len(), 1);
        assert!(!sm.init.is_false());
    }

    #[test]
    fn extra_free_extends_the_state() {
        let (mut t, m) = simple();
        let r = t.intern("r_free");
        let c = t.lookup("c").unwrap();
        let sm = SymbolicModel::from_module(&m, &t, &[r, c], SymbolicOptions::default())
            .expect("builds");
        // r is free (added); c is driven (ignored).
        assert_eq!(sm.state_bits(), 4);
        assert!(sm.state_signals.contains(&r));
    }

    #[test]
    fn wire_functions_are_substituted() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        let c = b.table().intern("c");
        b.latch("c", BoolExpr::var(a), false);
        let w = b.or_gate("w", [a, c], []);
        let m = b.finish().expect("valid");
        let mut sm =
            SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");
        let wf = sm.signal_bdd(w).expect("wire known");
        let va = sm.man.var_for_signal(a);
        let vc = sm.man.var_for_signal(c);
        let expect = sm.man.or(va, vc);
        assert_eq!(wf, expect, "w = a | c over the current bank");
    }

    #[test]
    fn unknown_signal_is_reported() {
        let (mut t, m) = simple();
        let ghost = t.intern("ghost");
        let sm =
            SymbolicModel::from_module(&m, &t, &[], SymbolicOptions::default()).expect("builds");
        match sm.signal_bdd(ghost) {
            Err(SymbolicError::UnknownSignal { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected UnknownSignal, got {other:?}"),
        }
    }

    #[test]
    fn tiny_node_limit_fails_closed() {
        let (t, m) = simple();
        let err = SymbolicModel::from_module(&m, &t, &[], SymbolicOptions { node_limit: 2 })
            .expect_err("limit of 2 nodes cannot hold the relation");
        assert!(matches!(err, SymbolicError::NodeLimit { limit: 2, .. }));
    }
}
