//! Error type for the symbolic engine.

use std::error::Error;
use std::fmt;

/// Errors produced while building or exploring symbolic models.
///
/// Mirrors the fail-closed philosophy of `dic_fsm::FsmError`: when a
/// BDD-based analysis would exceed its resource budget, the engine refuses
/// with an error instead of degrading into swap-thrashing — the caller can
/// retry with a larger limit, a different backend, or report the model as
/// out of reach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymbolicError {
    /// The BDD manager grew past the configured node budget.
    ///
    /// `BddManager` never garbage-collects and memoizes every operation, so
    /// node count plus cache entries is a faithful proxy for its memory
    /// footprint; this error is raised between fixpoint steps, never
    /// mid-operation, so the manager is left in a consistent state.
    NodeLimit {
        /// Live BDD nodes at the time of the check.
        nodes: usize,
        /// Entries across the operation memo tables.
        cache_entries: usize,
        /// The configured limit on `nodes`.
        limit: usize,
    },
    /// The cooperative wall-clock deadline (`--timeout` /
    /// `SPECMATCHER_TIMEOUT`, armed through `dic_fault`) expired at a
    /// fixpoint-step or node-budget checkpoint. Like `NodeLimit`, this is
    /// raised *between* steps, never mid-operation, so the manager stays
    /// consistent; the pipeline treats it as a degradable refusal and
    /// reports what it settled before the trip.
    Deadline,
    /// The `SPECMATCHER_BDD_NODE_LIMIT` environment variable is set to
    /// something that is not a node count. Refusing beats silently falling
    /// back to the default the user was trying to replace.
    InvalidNodeLimit {
        /// The offending value, verbatim.
        value: String,
    },
    /// The `SPECMATCHER_REORDER_LOG` environment variable is set to
    /// something other than `0` or `1`. Same fail-closed contract as the
    /// node limit: a typo must not silently pick a behaviour.
    InvalidReorderLog {
        /// The offending value, verbatim.
        value: String,
    },
    /// The `SPECMATCHER_BDD_PARTITION` environment variable is set to
    /// something other than `off` or `auto`. A typo'd mode must not
    /// silently pick a transition-relation representation.
    InvalidPartitionMode {
        /// The offending value, verbatim.
        value: String,
    },
    /// The `SPECMATCHER_BDD_CLUSTER_SIZE` environment variable is set to
    /// something that is not a positive node count.
    InvalidClusterSize {
        /// The offending value, verbatim.
        value: String,
    },
    /// A formula mentions a signal the model neither drives nor declares
    /// free, so the engine cannot assign it a meaning.
    ///
    /// `dic_core::CoverageModel` prevents this by construction (every
    /// property atom is driven or declared free); standalone users must
    /// pass such signals as `extra_free`.
    UnknownSignal {
        /// Name of the offending signal.
        name: String,
    },
}

impl fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicError::NodeLimit {
                nodes,
                cache_entries,
                limit,
            } => write!(
                f,
                "symbolic state space too large: {nodes} BDD nodes \
                 (+{cache_entries} cache entries) exceeds the node limit of {limit}"
            ),
            SymbolicError::Deadline => write!(
                f,
                "deadline exceeded during symbolic analysis (cooperative \
                 checkpoint between fixpoint steps)"
            ),
            SymbolicError::InvalidNodeLimit { value } => write!(
                f,
                "invalid SPECMATCHER_BDD_NODE_LIMIT value {value:?}: expected a \
                 positive node count, optionally with a K or M suffix (e.g. 96M)"
            ),
            SymbolicError::InvalidReorderLog { value } => write!(
                f,
                "invalid SPECMATCHER_REORDER_LOG value {value:?}: expected 0 (off) or \
                 1 (log reorders to stderr; deprecated — prefer --trace-out <path>)"
            ),
            SymbolicError::InvalidPartitionMode { value } => write!(
                f,
                "invalid SPECMATCHER_BDD_PARTITION value {value:?}: expected off \
                 (one conjunct per latch/automaton) or auto (greedy clustering)"
            ),
            SymbolicError::InvalidClusterSize { value } => write!(
                f,
                "invalid SPECMATCHER_BDD_CLUSTER_SIZE value {value:?}: expected a \
                 positive node count, optionally with a K or M suffix (e.g. 5K)"
            ),
            SymbolicError::UnknownSignal { name } => write!(
                f,
                "signal {name} is neither driven by the model nor declared free; \
                 pass it in extra_free to make it a nondeterministic input"
            ),
        }
    }
}

impl Error for SymbolicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_limit() {
        let e = SymbolicError::NodeLimit {
            nodes: 10,
            cache_entries: 3,
            limit: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("10 BDD nodes"));
        assert!(msg.contains("limit of 5"));
        let u = SymbolicError::UnknownSignal { name: "x".into() };
        assert!(u.to_string().contains("x"));
    }
}
