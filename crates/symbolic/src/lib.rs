//! **Symbolic model checking backend** for design intent coverage.
//!
//! The explicit-state engine (`dic_fsm::Kripke` + `dic_automata`) is
//! faithful to the paper but enumerates every latch×input valuation, which
//! dies around twenty state bits. This crate answers the *same* existential
//! LTL queries — "is there a run of the concrete modules satisfying
//! `R ∧ ¬A`?" (Theorem 1) — without ever materializing a state:
//!
//! * [`SymbolicModel`] encodes a netlist's transition relation directly as
//!   BDDs over current/next/input variable banks, with combinational wires
//!   substituted as functions;
//! * [`SymbolicModel::satisfiable_conj`] encodes the generalized Büchi
//!   product symbolically, runs forward reachability and an Emerson–Lei
//!   fair-cycle fixpoint, and extracts replayable lasso counterexamples —
//!   the same [`dic_ltl::LassoWord`] contract as the explicit engine;
//! * [`SymbolicError`] mirrors `dic_fsm::FsmError`'s fail-closed
//!   philosophy: past the configured BDD [node budget](SymbolicOptions)
//!   the engine refuses rather than degrades.
//!
//! `dic_core` selects between the engines via its `Backend` enum; this
//! crate has no opinion on *when* to go symbolic, only *how*.
//!
//! # Example
//!
//! ```
//! use dic_logic::SignalTable;
//! use dic_ltl::Ltl;
//! use dic_netlist::parse_snl;
//! use dic_symbolic::{SymbolicModel, SymbolicOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut t = SignalTable::new();
//! let m = parse_snl(
//!     "module glue\n input a\n output q\n latch q = a init 0\nendmodule\n",
//!     &mut t,
//! )?.remove(0);
//! let req = t.intern("req");
//!
//! let mut sym = SymbolicModel::from_module(&m, &t, &[req], SymbolicOptions::default())?;
//! // q rises exactly one cycle after a: a ∧ X ¬q is impossible…
//! let f = Ltl::parse("a & X !q", &mut t)?;
//! assert!(sym.satisfiable_conj(&[f])?.is_none());
//! // …but a ∧ X q happens, with a replayable witness.
//! let g = Ltl::parse("a & X q", &mut t)?;
//! let w = sym.satisfiable_conj(&[g.clone()])?.expect("satisfiable");
//! assert!(g.holds_on(&w));
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod error;
pub mod model;
pub mod terms;

pub use check::translate_all;
pub use error::SymbolicError;
pub use model::{
    cluster_size_from_env, partition_from_env, reorder_log_from_env, PartitionMode, ReorderMode,
    ReorderStats, SymbolicModel, SymbolicOptions, DEFAULT_CLUSTER_SIZE, DEFAULT_NODE_LIMIT,
    REORDER_FIRST_TRIGGER,
};
