//! Symbolic LTL checking: GBA product encoding, Emerson–Lei fair-cycle
//! detection and replayable lasso counterexamples.
//!
//! The existential query "is there a run of `M` satisfying every formula?"
//! is answered fully symbolically:
//!
//! 1. each conjunct is translated to a (small, explicit) generalized Büchi
//!    automaton — the same GPVW translation the explicit engine uses — and
//!    its state space is *encoded in binary* over fresh BDD variables: the
//!    automaton transition structure, its literal obligations, its initial
//!    states and its acceptance sets all become BDDs;
//! 2. the product of the module's transition relation with every automaton
//!    relation is never built as a graph: images and preimages run over the
//!    partitioned conjunct list with early quantification
//!    ([`dic_logic::BddManager::and_exists`]);
//! 3. forward reachability restricts the search, and an Emerson–Lei
//!    greatest fixpoint `νZ. ⋀_j EX E[Z U (Z ∧ F_j)]` finds the states
//!    with a fair path (one fairness set per acceptance set of every
//!    automaton);
//! 4. when the intersection with the initial states is non-empty, a
//!    deterministic walk through the fixpoint — guided by backward
//!    "onion-ring" distances to each fairness set — extracts a concrete
//!    lasso, which is replayed into full signal valuations
//!    ([`dic_ltl::LassoWord`]) exactly like the explicit engine's
//!    counterexamples.
//!
//! The per-query machinery lives in [`ProductData`], which is **cached per
//! conjunct list** on the model: repeated queries against the same base
//! formulas (the gap phase issues hundreds sharing `R ∧ ¬FA`) reuse the
//! encoded automata, the reachable set, the fair hull and the onion rings
//! instead of recomputing any of them. Extended products (a cached base
//! plus a few extra conjuncts, used for gap-closure checks) re-encode only
//! the extra automata and restrict their reachability by the base's
//! reachable set — see [`crate::terms`].
//!
//! # Dynamic reordering and the handle-safety contract
//!
//! Between fixpoint steps the engine may **reorder** the BDD variables
//! ([`SymbolicModel::maybe_reorder`]), which rebuilds the manager and
//! invalidates every [`Bdd`] handle not explicitly remapped. The contract
//! every function in this module follows:
//!
//! * only the fixpoint loops ([`ProductData::reachable`],
//!   [`ProductData::until`], [`ProductData::hull`],
//!   [`ProductData::rings_to`]) trigger reordering, at their loop heads,
//!   passing every local handle in a `live` vector to be remapped;
//! * [`ProductData::image`]/[`ProductData::preimage`] and the encoding
//!   paths never reorder, so straight-line code may hold handles across
//!   them;
//! * a caller holding a handle across a *fixpoint-running* call must
//!   either pass it through the callee's `live` vector or re-fetch it from
//!   a memoized product field afterwards (memoized fields are remapped in
//!   place). This is why e.g. [`ProductData::can_fair`] forces the hull
//!   *before* capturing the reachable set, and why
//!   [`ProductData::decide`] forces every fixpoint before extracting a
//!   witness;
//! * inside [`SymbolicModel::scratch`] reordering is disabled outright —
//!   a scratch query's intermediates are untracked (and a reorder would
//!   invalidate the region checkpoint), so extended closure products run
//!   under whatever order the persistent fixpoints settled on.

use crate::error::SymbolicError;
use crate::model::{PartitionMode, SymbolicModel};
use dic_automata::{translate_cached, Gba};
use dic_logic::{Bdd, PairingId, SignalId, Valuation, VarSetId};
use dic_ltl::{LassoWord, Ltl};
use std::collections::HashMap;
use std::sync::Arc;

/// One automaton encoded over a slice of the shared bit pool.
pub(crate) struct AutEnc {
    /// Transition structure over this automaton's current/next bits only
    /// (literal obligations live in `inv`, not here).
    trans: Bdd,
    /// `⋁_q enc(q) ∧ literals(q)`: every position must pick a valid state
    /// code *and* satisfy its literal obligations.
    inv: Bdd,
    /// `⋁_{q initial} enc(q)`.
    init: Bdd,
    /// One fairness set per acceptance set: `⋁_{q ∈ F_j} enc(q)`.
    fair: Vec<Bdd>,
}

/// A symbolic product: the module plus encoded automata, with precomputed
/// quantification schedules for image/preimage and memoized fixpoint
/// results (reachable set, fair hull, hull-reaching set, onion rings).
///
/// Everything inside is a plain handle (BDDs, registered var sets and
/// pairings), so a product is cheap to keep around; the model caches one
/// per distinct conjunct list (see [`SymbolicModel::with_product`]).
#[derive(Debug)]
pub(crate) struct ProductData {
    /// Transition conjuncts. Under [`PartitionMode::Off`] one per latch,
    /// then one per automaton; under [`PartitionMode::Auto`] the same
    /// list greedily merged into clusters of at most
    /// [`crate::model::SymbolicOptions::cluster_size`] nodes each, so an
    /// image step runs one `and_exists` sweep per cluster instead of one
    /// per conjunct. Extended products reuse the base's clusters verbatim
    /// and cluster only their extension tail.
    conjuncts: Vec<Bdd>,
    /// Whether `conjuncts` went through clustering (drives the
    /// `bdd.partition_images` trace counter).
    partitioned: bool,
    /// Support variables per conjunct (memoized: extended products reuse
    /// the base's supports instead of re-walking every conjunct BDD).
    supports: Vec<Vec<u32>>,
    /// Current-bank variables whose last occurrence is conjunct `i`
    /// (image schedule).
    img_sets: Vec<VarSetId>,
    /// Current-bank variables no conjunct mentions (quantified up front).
    img_tail: VarSetId,
    /// Next-bank variables whose last occurrence is conjunct `i`
    /// (preimage schedule).
    pre_sets: Vec<VarSetId>,
    /// Next-bank variables no conjunct mentions (free inputs).
    pre_tail: VarSetId,
    next_to_curr: PairingId,
    curr_to_next: PairingId,
    /// Conjunction of every automaton's `inv`.
    pub(crate) inv: Bdd,
    /// Module reset ∧ automata initial ∧ `inv`.
    pub(crate) init: Bdd,
    /// All fairness sets, flattened across automata.
    pub(crate) fair: Vec<Bdd>,
    /// Every current-bank variable of the product (module + automaton).
    all_curr: Vec<u32>,
    /// Every next-bank variable of the product.
    all_next: Vec<u32>,
    /// Length for product-state valuations (covers synthetic ids).
    val_len: usize,
    /// Automaton bit-pool cursor after this product's automata; extended
    /// products allocate their extra automata from here.
    pub(crate) bits_used: usize,
    /// Care set intersected into every reachability frontier (`TRUE` for
    /// base products; the base's reachable set for extended products — a
    /// sound restriction, since any extended-reachable state projects to a
    /// base-reachable one).
    care: Bdd,
    /// Upper bound seeding the Emerson–Lei fixpoint (`TRUE` for base
    /// products; the base's fair hull for extended products — every fair
    /// extended run projects to a fair base run, so the extended hull
    /// lives inside the lifted base hull and the greatest fixpoint can
    /// start there instead of at the full reachable set).
    hull_seed: Bdd,
    /// Memoized forward-reachable set.
    reach: Option<Bdd>,
    /// Memoized fair hull `νZ. ⋀_j EX E[Z U (Z ∧ F_j)]` within `reach`.
    hull: Option<Bdd>,
    /// Memoized `E[reach U hull]`: states with some fair continuation.
    can_fair: Option<Bdd>,
    /// Memoized onion rings from `can_fair` down to the hull.
    hull_rings: Option<Vec<Bdd>>,
    /// Memoized per-fairness-set onion rings within the hull.
    fair_rings: Option<Vec<Vec<Bdd>>>,
    /// Whether this product is cached on the model (its memoized
    /// fixpoints then pin the scratch region — see
    /// [`SymbolicModel::mark_persistent`]). Extended closure products are
    /// throwaway scratch and never mark.
    persistent: bool,
}

impl SymbolicModel {
    /// Existential query: is there a run of the model satisfying every
    /// formula in `formulas` simultaneously? Returns a replayable witness
    /// lasso if so — the symbolic counterpart of
    /// [`dic_automata::satisfiable_in_conj`].
    ///
    /// The product for `formulas` is cached on the model, so repeating the
    /// query (or issuing factored gap queries against the same base — see
    /// [`SymbolicModel::satisfiable_factored`](crate::terms)) reuses its
    /// encoding and fixpoints.
    ///
    /// # Errors
    ///
    /// [`SymbolicError::NodeLimit`] when the BDDs outgrow the configured
    /// budget, [`SymbolicError::UnknownSignal`] for formula atoms the model
    /// does not know.
    pub fn satisfiable_conj(
        &mut self,
        formulas: &[Ltl],
    ) -> Result<Option<LassoWord>, SymbolicError> {
        let Some(gbas) = translate_all(formulas) else {
            // Some conjunct is unsatisfiable on its own (e.g. `p ∧ ¬p`).
            return Ok(None);
        };
        self.with_product(formulas, &gbas, |m, pd| pd.decide(m))
    }

    /// Like [`SymbolicModel::satisfiable_conj`] for `base ++ extra`, but
    /// building — and caching — the product as an *extension* of the
    /// shared `base` product. The expensive base fixpoints (reachable
    /// set, fair hull) are computed once and restrict every anchored
    /// extension, so queries differing only in `extra` (the primary
    /// coverage questions: one `¬A` automaton each over the same RTL
    /// conjunction) stop re-running full-product fixpoints. The anchored
    /// product is cached under the full conjunct list, exactly the key
    /// the gap phase later anchors *its* candidate extensions to.
    ///
    /// # Errors
    ///
    /// As for [`SymbolicModel::satisfiable_conj`].
    pub fn satisfiable_anchored(
        &mut self,
        base: &[Ltl],
        extra: &[Ltl],
    ) -> Result<Option<LassoWord>, SymbolicError> {
        let Some(base_gbas) = translate_all(base) else {
            return Ok(None);
        };
        let Some(extra_gbas) = translate_all(extra) else {
            return Ok(None);
        };
        self.with_extended_product(base, &base_gbas, extra, &extra_gbas, |m, pd| pd.decide(m))
    }

    /// Runs `f` with the cached product for `key` (building it on first
    /// use), returning the product to the cache afterwards — the take/put
    /// dance keeps the borrow checker happy while `f` mutates both the
    /// model and the product's memoized fixpoints.
    pub(crate) fn with_product<T>(
        &mut self,
        key: &[Ltl],
        gbas: &[Arc<Gba>],
        f: impl FnOnce(&mut SymbolicModel, &mut ProductData) -> Result<T, SymbolicError>,
    ) -> Result<T, SymbolicError> {
        let mut pd = match self.products.remove(key) {
            Some(pd) => pd,
            None => {
                let mut pd = ProductData::build(self, gbas, None)?;
                pd.persistent = true;
                self.mark_persistent();
                pd
            }
        };
        let result = f(self, &mut pd);
        self.products.insert(key.to_vec(), pd);
        result
    }

    /// Like [`SymbolicModel::with_product`] for the conjunct list
    /// `base ++ extra`, but building the product — on first use — as an
    /// *extension* of the cached `base` product: only the `extra` automata
    /// are encoded, reachability is restricted by the base's reachable set
    /// and the fair-hull fixpoint is seeded with the base's hull. The
    /// extension is cached like any product, so repeated gap queries
    /// against the same anchored conjunction pay the cheap build once.
    ///
    /// `base` and `extra` must each have translated successfully
    /// (non-empty initial states); callers check via [`translate_all`].
    pub(crate) fn with_extended_product<T>(
        &mut self,
        base: &[Ltl],
        base_gbas: &[Arc<Gba>],
        extra: &[Ltl],
        extra_gbas: &[Arc<Gba>],
        f: impl FnOnce(&mut SymbolicModel, &mut ProductData) -> Result<T, SymbolicError>,
    ) -> Result<T, SymbolicError> {
        let full: Vec<Ltl> = base.iter().cloned().chain(extra.iter().cloned()).collect();
        if !self.products.contains_key(&full) {
            let mut ext = self.with_product(base, base_gbas, |m, pd| {
                // Hull first (it forces reachability): both can reorder,
                // and the handles captured here must postdate that.
                let hull = pd.hull(m)?;
                let reach = pd.reachable(m)?;
                let mut ext = ProductData::build(m, extra_gbas, Some(pd))?;
                ext.set_care(reach);
                ext.set_hull_seed(hull);
                ext.assume_care_reachable(m);
                Ok(ext)
            })?;
            ext.persistent = true;
            self.mark_persistent();
            self.products.insert(full.clone(), ext);
        }
        self.with_product(&full, &[], f)
    }
}

/// Translates every conjunct, or `None` when some conjunct has no initial
/// state (unsatisfiable on its own).
///
/// The translations go through [`translate_cached`], so the symbolic
/// engine, the explicit engine, and the bounded SAT refutation tier
/// (`dic_sat::bounded_lasso`, which `dic_core` runs ahead of the closure
/// fixpoints) all encode the *same* reduced automata — that sharing is
/// what makes the tiers' verdicts comparable automaton-for-automaton, not
/// just language-for-language. Public so callers layering their own query
/// tiers can reuse the screen.
pub fn translate_all(formulas: &[Ltl]) -> Option<Vec<Arc<Gba>>> {
    let gbas: Vec<Arc<Gba>> = formulas.iter().map(translate_cached).collect();
    if gbas.iter().any(|g| g.initial().is_empty()) {
        return None;
    }
    Some(gbas)
}

/// Number of binary code bits for an `n`-state automaton (the shared
/// accounting in [`dic_automata::code_bits`]).
fn bits_for(n: usize) -> usize {
    dic_automata::code_bits(n)
}

impl ProductData {
    /// Encodes the automata of `gbas` and assembles the product plan. With
    /// `base`, builds an *extended* product: the base's conjuncts,
    /// invariant, initial set and fairness are reused as-is and only the
    /// new automata are encoded, over bit-pool slices above the base's.
    pub(crate) fn build(
        m: &mut SymbolicModel,
        gbas: &[Arc<Gba>],
        base: Option<&ProductData>,
    ) -> Result<ProductData, SymbolicError> {
        let mut build_span = dic_trace::span("symbolic.product_build");
        build_span.meta("automata", gbas.len() as u64);
        if base.is_some() {
            build_span.meta("extended", 1);
        }
        // Allocate a stable slice of the bit pool per automaton.
        let mut ranges = Vec::with_capacity(gbas.len());
        let mut cursor = base.map_or(0, |b| b.bits_used);
        for g in gbas {
            let nbits = bits_for(g.num_states());
            ranges.push((cursor, nbits));
            cursor += nbits;
        }
        m.ensure_aut_bits(cursor);

        let mut encs = Vec::with_capacity(gbas.len());
        for (g, &(start, nbits)) in gbas.iter().zip(&ranges) {
            let bits = m.aut_pool[start..start + nbits].to_vec();
            encs.push(encode_gba(m, g, &bits)?);
        }

        // Assemble the plan: conjuncts, invariant, init, fairness. Base
        // conjuncts (already clustered at the base's build) are reused
        // with their memoized supports; only the new tail is clustered
        // and re-walked below.
        let (mut conjuncts, mut supports, mut inv, mut init, mut fair, mut all_curr, mut all_next) =
            match base {
                None => (
                    m.trans_latches.clone(),
                    Vec::new(),
                    Bdd::TRUE,
                    m.init,
                    Vec::new(),
                    m.curr_var.clone(),
                    m.next_var.clone(),
                ),
                Some(b) => (
                    b.conjuncts.clone(),
                    b.supports.clone(),
                    b.inv,
                    b.init,
                    b.fair.clone(),
                    b.all_curr.clone(),
                    b.all_next.clone(),
                ),
            };
        let base_len = supports.len();
        debug_assert!(base_len <= conjuncts.len());
        for e in &encs {
            conjuncts.push(e.trans);
            inv = m.man.and(inv, e.inv);
            init = m.man.and(init, e.init);
            fair.extend(e.fair.iter().copied());
        }
        init = m.man.and(init, inv);

        // Keep even fairness sets the invariant implies (`inv ⊆ F_j`):
        // their Emerson–Lei term degenerates to `EX Z`, but the hull loop
        // applies its terms *sequentially* (Gauss–Seidel), so the cheap
        // `EX Z` trims shrink `Z` before the expensive `until` fixpoints
        // of the non-trivial sets run — dropping them was measured ~2.5×
        // slower on amba-ahb's primary hull despite the identical fixpoint.
        build_span.meta("fair", fair.len() as u64);

        // Conjunctive partitioning: greedily merge the new conjuncts into
        // clusters capped at `cluster_size` nodes, then derive the
        // quantification schedules from the clusters. Fewer clusters mean
        // fewer and_exists sweeps over the (large) frontier per image —
        // the merge order is the fixed conjunct order, so the clustering
        // (and with it every downstream set) is deterministic.
        let partitioned = m.options.partition == PartitionMode::Auto;
        if partitioned && conjuncts.len() - base_len > 1 {
            let tail = conjuncts.split_off(base_len);
            let clustered = cluster_conjuncts(m, tail, m.options.cluster_size);
            conjuncts.extend(clustered);
        }
        for &c in &conjuncts[base_len..] {
            supports.push(m.man.support_vars(c));
        }
        build_span.meta("conjuncts", conjuncts.len() as u64);

        let first_new_bit = base.map_or(0, |b| b.bits_used);
        for &(c, n) in &m.aut_pool[first_new_bit..cursor] {
            all_curr.push(c);
            all_next.push(n);
        }

        // Early-quantification schedules: a variable can be summed out as
        // soon as the last conjunct mentioning it has been conjoined.
        let img_groups = last_occurrence_groups(&supports, &all_curr);
        let pre_groups = last_occurrence_groups(&supports, &all_next);
        let img_sets: Vec<VarSetId> = img_groups
            .per_conjunct
            .iter()
            .map(|vars| m.man.register_var_set(vars))
            .collect();
        let img_tail = m.man.register_var_set(&img_groups.unmentioned);
        let pre_sets: Vec<VarSetId> = pre_groups
            .per_conjunct
            .iter()
            .map(|vars| m.man.register_var_set(vars))
            .collect();
        let pre_tail = m.man.register_var_set(&pre_groups.unmentioned);

        let pairs_n2c: Vec<(u32, u32)> =
            all_next.iter().copied().zip(all_curr.iter().copied()).collect();
        let pairs_c2n: Vec<(u32, u32)> =
            all_curr.iter().copied().zip(all_next.iter().copied()).collect();
        let next_to_curr = m.man.register_pairing(&pairs_n2c);
        let curr_to_next = m.man.register_pairing(&pairs_c2n);

        let val_len = m.table.len() + m.synth_count;
        m.check_limit()?;
        Ok(ProductData {
            conjuncts,
            partitioned,
            supports,
            img_sets,
            img_tail,
            pre_sets,
            pre_tail,
            next_to_curr,
            curr_to_next,
            inv,
            init,
            fair,
            all_curr,
            all_next,
            val_len,
            bits_used: cursor,
            care: Bdd::TRUE,
            hull_seed: Bdd::TRUE,
            reach: None,
            hull: None,
            can_fair: None,
            hull_rings: None,
            fair_rings: None,
            persistent: false,
        })
    }

    /// Visits every BDD handle this product keeps, for collection and
    /// remapping around a reorder. Registered variable sets and pairings
    /// are id-based and survive a reorder on their own; `supports` holds
    /// variable ids, not handles.
    pub(crate) fn visit_roots(&mut self, f: &mut dyn FnMut(&mut Bdd)) {
        for c in &mut self.conjuncts {
            f(c);
        }
        f(&mut self.inv);
        f(&mut self.init);
        for fr in &mut self.fair {
            f(fr);
        }
        f(&mut self.care);
        f(&mut self.hull_seed);
        for b in [&mut self.reach, &mut self.hull, &mut self.can_fair]
            .into_iter()
            .flatten()
        {
            f(b);
        }
        if let Some(rings) = &mut self.hull_rings {
            for b in rings {
                f(b);
            }
        }
        if let Some(rings) = &mut self.fair_rings {
            for ring in rings {
                for b in ring {
                    f(b);
                }
            }
        }
    }

    /// Marks a freshly memoized fixpoint as persistent when this product
    /// is cached on the model; throwaway extended products skip the mark,
    /// so their nodes stay collectable scratch.
    fn mark(&self, m: &mut SymbolicModel) {
        if self.persistent {
            m.mark_persistent();
        }
    }

    /// Restricts reachability to `care` (an extended product passes the
    /// base product's reachable set). Must be set before the first
    /// [`ProductData::reachable`] call.
    pub(crate) fn set_care(&mut self, care: Bdd) {
        debug_assert!(self.reach.is_none(), "care set after reachability ran");
        self.care = care;
    }

    /// Seeds the fair-hull fixpoint with a known upper bound (an extended
    /// product passes the base product's hull). Must be set before the
    /// first [`ProductData::hull`] call.
    pub(crate) fn set_hull_seed(&mut self, seed: Bdd) {
        debug_assert!(self.hull.is_none(), "seed set after the hull ran");
        self.hull_seed = seed;
    }

    /// Skips the extension's reachability fixpoint altogether, memoizing
    /// the over-approximation `R' = care ∧ inv` (the base's reachable
    /// states, every valid extension-automaton code) in its place.
    ///
    /// Every downstream query stays exact, because each one only ever
    /// *follows real transitions* and uses the reachable set to restrict,
    /// never to assert reachability:
    ///
    /// * the hull within `R'` contains exactly the `R'`-states with a
    ///   genuine fair path (the fixpoint's `EX`/`EU` steps are real
    ///   preimages), and true fair paths from `init ⊆ R'` never leave
    ///   `reach ⊆ R'` — so `init ∧ hull'` is non-empty iff `init ∧ hull`
    ///   is ([`ProductData::decide`] is unchanged);
    /// * `can_fair' = E[R' U hull']` states reach a genuine fair path via
    ///   real transitions, and the bounded-scenario frontiers intersected
    ///   with it ([`super::SymbolicModel::factored_cube_sat`]) are forward
    ///   images of `init`, hence genuinely reachable — the intersection
    ///   verdicts coincide;
    /// * witness walks start at `init` (or at a forward frame) and step
    ///   through images, so every state they emit is reachable.
    ///
    /// What changes is only *which* witness the deterministic walk picks —
    /// never a verdict, so gap sets are untouched. What it saves is the
    /// extension's full forward fixpoint, the single most expensive step
    /// of an anchored query (~40 s of amba-ahb's forced-symbolic run).
    pub(crate) fn assume_care_reachable(&mut self, m: &mut SymbolicModel) {
        debug_assert!(self.reach.is_none(), "reachability already ran");
        self.reach = Some(m.man.and(self.care, self.inv));
    }

    /// The full decision procedure: reachability, fair states, witness.
    pub(crate) fn decide(
        &mut self,
        m: &mut SymbolicModel,
    ) -> Result<Option<LassoWord>, SymbolicError> {
        if self.init.is_false() {
            return Ok(None);
        }
        let z = self.hull(m)?;
        let start = m.man.and(self.init, z);
        if start.is_false() {
            return Ok(None);
        }
        // A witness exists. Force the guidance rings *before* extracting
        // it: their fixpoints may reorder, which would invalidate
        // `start`/`z` — re-derive both afterwards (the memoized hull is
        // remapped in place; the walk itself only runs images and never
        // reorders).
        self.ensure_fair_rings(m)?;
        let z = self.hull(m)?;
        let start = m.man.and(self.init, z);
        let product_lasso = self.extract_lasso(m, start, z)?;
        Ok(Some(self.to_word(m, &product_lasso.0, product_lasso.1)))
    }

    /// Successor image of `s` (a set over the current bank), restricted to
    /// the invariant.
    pub(crate) fn image(&self, m: &mut SymbolicModel, s: Bdd) -> Result<Bdd, SymbolicError> {
        if self.partitioned && dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::BddPartitionImages, 1);
        }
        let mut acc = m.man.and_exists(s, Bdd::TRUE, self.img_tail);
        for i in 0..self.conjuncts.len() {
            acc = m.man.and_exists(acc, self.conjuncts[i], self.img_sets[i]);
        }
        let renamed = m.man.rename(acc, self.next_to_curr);
        let out = m.man.and(renamed, self.inv);
        m.check_limit()?;
        Ok(out)
    }

    /// Predecessor image of `s`, restricted to the invariant.
    pub(crate) fn preimage(&self, m: &mut SymbolicModel, s: Bdd) -> Result<Bdd, SymbolicError> {
        if self.partitioned && dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::BddPartitionImages, 1);
        }
        let shifted = m.man.rename(s, self.curr_to_next);
        let mut acc = m.man.and_exists(shifted, Bdd::TRUE, self.pre_tail);
        for i in 0..self.conjuncts.len() {
            acc = m.man.and_exists(acc, self.conjuncts[i], self.pre_sets[i]);
        }
        let out = m.man.and(acc, self.inv);
        m.check_limit()?;
        Ok(out)
    }

    /// Forward reachability from the initial states (frontier-based,
    /// memoized, restricted to the care set).
    pub(crate) fn reachable(&mut self, m: &mut SymbolicModel) -> Result<Bdd, SymbolicError> {
        if let Some(r) = self.reach {
            return Ok(r);
        }
        let _span = dic_trace::span("symbolic.reachable");
        let init = m.man.and(self.init, self.care);
        let mut reach = init;
        let mut frontier = init;
        let mut live: Vec<Bdd> = Vec::new();
        loop {
            m.check_governance()?;
            live.clear();
            live.push(reach);
            live.push(frontier);
            m.maybe_reorder(self, &mut live)?;
            frontier = live.pop().expect("pushed frontier");
            reach = live.pop().expect("pushed reach");
            let img = self.image(m, frontier)?;
            let img = m.man.and(img, self.care);
            let fresh = diff(m, img, reach);
            if fresh.is_false() {
                self.reach = Some(reach);
                self.mark(m);
                return Ok(reach);
            }
            reach = m.man.or(reach, fresh);
            frontier = fresh;
        }
    }

    /// `E[inside U target]` (both already restricted to the product
    /// invariant): least fixpoint of backward steps within `inside`.
    ///
    /// `live` carries the caller's fixpoint-local handles through any
    /// reorder (see the [module docs](self)); the callee's own locals ride
    /// on top of it and are popped off before returning.
    fn until(
        &mut self,
        m: &mut SymbolicModel,
        inside: Bdd,
        target: Bdd,
        live: &mut Vec<Bdd>,
    ) -> Result<Bdd, SymbolicError> {
        let base = live.len();
        live.push(inside);
        let mut y = target;
        loop {
            m.check_governance()?;
            live.push(y);
            m.maybe_reorder(self, live)?;
            y = live.pop().expect("pushed y");
            let inside = live[base];
            let pre = self.preimage(m, y)?;
            let step = m.man.and(inside, pre);
            let next = m.man.or(y, step);
            if next == y {
                live.truncate(base);
                return Ok(y);
            }
            y = next;
        }
    }

    /// The Emerson–Lei greatest fixpoint within the reachable states:
    /// `νZ. ⋀_j EX E[Z U (Z ∧ F_j)]` — or `νZ. EX Z` when no fairness
    /// sets exist (all conjuncts are safety; any cycle will do). Memoized.
    pub(crate) fn hull(&mut self, m: &mut SymbolicModel) -> Result<Bdd, SymbolicError> {
        if let Some(z) = self.hull {
            return Ok(z);
        }
        let reach = self.reachable(m)?;
        let _span = dic_trace::span("symbolic.fair_hull");
        let mut z = m.man.and(reach, self.hull_seed);
        let nfair = self.fair.len();
        let mut live: Vec<Bdd> = Vec::new();
        loop {
            m.check_governance()?;
            live.clear();
            live.push(z); // the round's starting point, [0]
            if nfair == 0 {
                // Safety-only products have no until() below to host the
                // reorder hook, so the loop head hosts it directly.
                m.maybe_reorder(self, &mut live)?;
                z = live[0];
                let pre = self.preimage(m, z)?;
                z = m.man.and(z, pre);
            } else {
                for j in 0..nfair {
                    let fj = self.fair[j]; // re-read: remapped in place
                    let target = m.man.and(z, fj);
                    live.push(z);
                    let eu = self.until(m, z, target, &mut live)?;
                    z = live.pop().expect("pushed z");
                    let pre = self.preimage(m, eu)?;
                    z = m.man.and(z, pre);
                }
            }
            // live[0] was remapped alongside z by any reorder, so handle
            // equality still decides convergence.
            if z == live[0] {
                self.hull = Some(z);
                self.mark(m);
                return Ok(z);
            }
        }
    }

    /// States with *some* fair continuation: `E[reach U hull]`. Every
    /// bounded-prefix query ends here — a prefix matters only if it can be
    /// continued into a fair lasso. Memoized.
    pub(crate) fn can_fair(&mut self, m: &mut SymbolicModel) -> Result<Bdd, SymbolicError> {
        if let Some(cf) = self.can_fair {
            return Ok(cf);
        }
        // Force the hull (and with it reachability) *first*: both may
        // reorder, and the handles captured below must postdate that.
        let z = self.hull(m)?;
        let reach = self.reachable(m)?;
        let mut live: Vec<Bdd> = Vec::new();
        let cf = self.until(m, reach, z, &mut live)?;
        self.can_fair = Some(cf);
        self.mark(m);
        Ok(cf)
    }

    /// Backward BFS "onion rings" from `target` within `z`: `rings[0]` is
    /// the target, `rings[d]` the states first reaching it in `d` steps.
    /// Every state of `z` with a path to the target lands in some ring.
    fn rings_to(
        &mut self,
        m: &mut SymbolicModel,
        z: Bdd,
        target: Bdd,
    ) -> Result<Vec<Bdd>, SymbolicError> {
        let mut z = z;
        let t0 = m.man.and(z, target);
        let mut rings = vec![t0];
        let mut covered = t0;
        let mut live: Vec<Bdd> = Vec::new();
        loop {
            m.check_governance()?;
            live.clear();
            live.push(z);
            live.push(covered);
            live.extend_from_slice(&rings);
            m.maybe_reorder(self, &mut live)?;
            z = live[0];
            covered = live[1];
            rings.copy_from_slice(&live[2..]);
            let last = *rings.last().expect("non-empty");
            let pre = self.preimage(m, last)?;
            let in_z = m.man.and(pre, z);
            let fresh = diff(m, in_z, covered);
            if fresh.is_false() {
                return Ok(rings);
            }
            covered = m.man.or(covered, fresh);
            rings.push(fresh);
        }
    }

    /// Onion rings from the hull-reaching set down to the hull, memoized —
    /// the guide a bounded-prefix witness follows to complete its fair
    /// suffix (see [`ProductData::walk_to_hull`]).
    fn hull_rings(&mut self, m: &mut SymbolicModel) -> Result<&[Bdd], SymbolicError> {
        if self.hull_rings.is_none() {
            // can_fair forces the hull; fetch the hull after it so the
            // handle postdates any reorder.
            let cf = self.can_fair(m)?;
            let z = self.hull(m)?;
            self.hull_rings = Some(self.rings_to(m, cf, z)?);
            self.mark(m);
        }
        Ok(self.hull_rings.as_deref().expect("just computed"))
    }

    /// Onion rings to each fairness set within the hull, memoized — the
    /// guide [`ProductData::extract_lasso`] walks.
    fn ensure_fair_rings(&mut self, m: &mut SymbolicModel) -> Result<(), SymbolicError> {
        if self.fair_rings.is_none() && !self.fair.is_empty() {
            // Completed ring families are parked in `fair_rings` right
            // away so a reorder during a later family's fixpoint remaps
            // them (`visit_roots`) instead of leaving them dangling. On
            // error the partial memo is discarded — a caller surviving a
            // NodeLimit must not find a half-built guide.
            self.fair_rings = Some(Vec::with_capacity(self.fair.len()));
            for j in 0..self.fair.len() {
                let family = (|| {
                    let z = self.hull(m)?; // memoized; remapped in place
                    let fj = self.fair[j];
                    self.rings_to(m, z, fj)
                })();
                match family {
                    Ok(rings) => self
                        .fair_rings
                        .as_mut()
                        .expect("parked above")
                        .push(rings),
                    Err(e) => {
                        self.fair_rings = None;
                        return Err(e);
                    }
                }
            }
            self.mark(m);
        }
        Ok(())
    }

    /// Forces every memoized fixpoint this product's queries depend on
    /// (reachable set, fair hull, hull-reaching set; with `rings`, also
    /// the witness-guidance onion rings), so that a subsequent
    /// checkpointed scratch region creates no nodes that must persist.
    pub(crate) fn ensure_fixpoints(
        &mut self,
        m: &mut SymbolicModel,
        rings: bool,
    ) -> Result<(), SymbolicError> {
        self.can_fair(m)?; // forces reach and hull too
        if rings {
            self.hull_rings(m)?;
            self.ensure_fair_rings(m)?;
        }
        Ok(())
    }

    /// Picks one concrete product state out of a non-empty set
    /// (deterministically; unconstrained variables default to 0, which is
    /// a valid completion of the satisfying cube).
    pub(crate) fn pick(&self, m: &SymbolicModel, set: Bdd) -> Valuation {
        let cube = m.man.any_sat(set).expect("picked from a non-empty set");
        let mut v = Valuation::all_false(self.val_len);
        for l in cube.lits() {
            v.set(l.signal(), l.polarity());
        }
        v
    }

    /// The characteristic cube of one concrete product state.
    pub(crate) fn state_cube(&self, m: &mut SymbolicModel, s: &Valuation) -> Bdd {
        let mut acc = Bdd::TRUE;
        for i in 0..self.all_curr.len() {
            let var = self.all_curr[i];
            let sig = m.man.signal_of_var(var);
            let v = m.var_bdd(var);
            let lit = if s.get(sig) { v } else { m.man.not(v) };
            acc = m.man.and(acc, lit);
        }
        acc
    }

    fn holds(&self, m: &SymbolicModel, set: Bdd, s: &Valuation) -> bool {
        m.man.eval(set, s)
    }

    /// Extends a concrete walk ending at a hull-reaching state with steps
    /// down the memoized onion rings until the hull is entered; `seq`'s
    /// last state must lie in [`ProductData::can_fair`].
    pub(crate) fn walk_to_hull(
        &mut self,
        m: &mut SymbolicModel,
        seq: &mut Vec<Valuation>,
    ) -> Result<(), SymbolicError> {
        loop {
            let cur = seq.last().expect("non-empty").clone();
            let d = {
                let rings = self.hull_rings(m)?;
                rings.iter().position(|&r| m.man.eval(r, &cur))
            }
            .expect("walk_to_hull state must reach the hull");
            if d == 0 {
                return Ok(());
            }
            let cube = self.state_cube(m, &cur);
            let img = self.image(m, cube)?;
            let ring = self.hull_rings(m)?[d - 1];
            let succ = m.man.and(img, ring);
            seq.push(self.pick(m, succ));
        }
    }

    /// Extracts a concrete lasso inside the fair hull `z`, starting from a
    /// state of `start ⊆ z`.
    ///
    /// With fairness sets, the walk services them round-robin, always
    /// stepping one ring closer to the pending set; whenever a full round
    /// completes at an already-seen round boundary, the segment between the
    /// two occurrences contains every fairness set and closes the loop.
    /// The walk is deterministic in (state, pending set), so a boundary
    /// must eventually repeat.
    pub(crate) fn extract_lasso(
        &mut self,
        m: &mut SymbolicModel,
        start: Bdd,
        z: Bdd,
    ) -> Result<(Vec<Valuation>, usize), SymbolicError> {
        let first = self.pick(m, start);
        if self.fair.is_empty() {
            // Any cycle within z: walk arbitrary successors until a state
            // repeats (z is closed under "has a successor in z").
            let mut seq = vec![first.clone()];
            let mut index: HashMap<Valuation, usize> = HashMap::from([(first, 0)]);
            loop {
                let cube = self.state_cube(m, seq.last().expect("non-empty"));
                let img = self.image(m, cube)?;
                let succ = m.man.and(img, z);
                let next = self.pick(m, succ);
                if let Some(&i) = index.get(&next) {
                    return Ok((seq, i));
                }
                index.insert(next.clone(), seq.len());
                seq.push(next);
            }
        }

        self.ensure_fair_rings(m)?;
        let rings = self.fair_rings.clone().expect("just computed");
        let k = self.fair.len();
        let mut seq = vec![first];
        let mut boundary: HashMap<Valuation, usize> = HashMap::new();
        let mut j = 0usize;
        loop {
            let cur = seq.last().expect("non-empty").clone();
            // Retire every pending fairness set the current state satisfies
            // (at most one sweep over all k, to avoid spinning when one
            // state satisfies every set).
            let mut retired = 0;
            while retired < k && self.holds(m, rings[j][0], &cur) {
                if j == k - 1 {
                    // A full round just completed here.
                    let idx = seq.len() - 1;
                    if let Some(&i) = boundary.get(&cur) {
                        // seq[idx] == seq[i]: drop the duplicate; the loop
                        // [i..idx) contains a complete round.
                        seq.pop();
                        return Ok((seq, i));
                    }
                    boundary.insert(cur.clone(), idx);
                }
                j = (j + 1) % k;
                retired += 1;
            }
            // One step: toward the pending set if it is elsewhere, or
            // anywhere within z if the current state already provides it.
            let cube = self.state_cube(m, &cur);
            let img = self.image(m, cube)?;
            let d = rings[j]
                .iter()
                .position(|&r| self.holds(m, r, &cur))
                .expect("every fair-hull state reaches every fairness set");
            let goal = if d == 0 { z } else { rings[j][d - 1] };
            let succ = m.man.and(img, goal);
            let next = self.pick(m, succ);
            seq.push(next);
        }
    }

    /// Replays a product lasso into full signal valuations: state signals
    /// are copied from the product state, wires are settled through the
    /// module logic — the exact label construction of the explicit Kripke
    /// structure, so witnesses replay on the simulator identically.
    pub(crate) fn to_word(
        &self,
        m: &SymbolicModel,
        seq: &[Valuation],
        loop_start: usize,
    ) -> LassoWord {
        let words: Vec<Valuation> = seq
            .iter()
            .map(|s| {
                let mut v = Valuation::all_false(m.table.len());
                for &sig in &m.state_signals {
                    v.set(sig, s.get(sig));
                }
                m.module.eval_wires(&mut v);
                v
            })
            .collect();
        LassoWord::new(words, loop_start).expect("walk produced a loop")
    }
}

/// `a ∧ ¬b` in one ite.
fn diff(m: &mut SymbolicModel, a: Bdd, b: Bdd) -> Bdd {
    m.man.ite(b, Bdd::FALSE, a)
}

/// Greedy conjunctive clustering (the classic cluster-size heuristic):
/// walk the conjuncts in order, merging each into the current cluster
/// while the combined BDD stays within `cap` nodes; a conjunct that would
/// overflow the cap closes the cluster and opens the next one. A single
/// conjunct larger than `cap` becomes its own cluster — the cap bounds
/// merging, it never splits.
fn cluster_conjuncts(m: &mut SymbolicModel, raw: Vec<Bdd>, cap: usize) -> Vec<Bdd> {
    let mut out: Vec<Bdd> = Vec::new();
    let mut acc: Option<Bdd> = None;
    for c in raw {
        acc = Some(match acc {
            None => c,
            Some(a) => {
                let merged = m.man.and(a, c);
                if m.man.size(merged) <= cap {
                    merged
                } else {
                    out.push(a);
                    c
                }
            }
        });
    }
    out.extend(acc);
    out
}

/// Variables grouped by the last conjunct whose support mentions them.
struct OccurrenceGroups {
    per_conjunct: Vec<Vec<u32>>,
    unmentioned: Vec<u32>,
}

fn last_occurrence_groups(supports: &[Vec<u32>], bank: &[u32]) -> OccurrenceGroups {
    let mut last: HashMap<u32, usize> = HashMap::new();
    for (i, support) in supports.iter().enumerate() {
        for &v in support {
            if bank.contains(&v) {
                last.insert(v, i);
            }
        }
    }
    let mut per_conjunct = vec![Vec::new(); supports.len()];
    let mut unmentioned = Vec::new();
    for &v in bank {
        match last.get(&v) {
            Some(&i) => per_conjunct[i].push(v),
            None => unmentioned.push(v),
        }
    }
    OccurrenceGroups {
        per_conjunct,
        unmentioned,
    }
}

/// Encodes one GBA over `bits` (a `(curr, next)` variable pair per code
/// bit): transition structure, literal invariant, initial set, fairness.
fn encode_gba(
    m: &mut SymbolicModel,
    gba: &Gba,
    bits: &[(u32, u32)],
) -> Result<AutEnc, SymbolicError> {
    let enc = |m: &mut SymbolicModel, q: u32, next_bank: bool| -> Bdd {
        let mut acc = Bdd::TRUE;
        for (b, &(cv, nv)) in bits.iter().enumerate() {
            let var = if next_bank { nv } else { cv };
            let v = m.var_bdd(var);
            let lit = if q >> b & 1 == 1 { v } else { m.man.not(v) };
            acc = m.man.and(acc, lit);
        }
        acc
    };

    let n = gba.num_states() as u32;
    let mut trans = Bdd::FALSE;
    let mut inv = Bdd::FALSE;
    let mut init = Bdd::FALSE;
    let mut fair = vec![Bdd::FALSE; gba.num_acceptance_sets() as usize];
    for q in 0..n {
        let eq = enc(m, q, false);

        // Successor choice: enc(q) ∧ ⋁_{q'} enc'(q').
        let mut succs = Bdd::FALSE;
        for &q2 in gba.successors(q) {
            let eq2 = enc(m, q2, true);
            succs = m.man.or(succs, eq2);
        }
        let step = m.man.and(eq, succs);
        trans = m.man.or(trans, step);

        // Literal obligations of q over the current signal bank.
        let mut lits = Bdd::TRUE;
        for l in gba.state(q).literals() {
            let sig = signal_lit(m, l.signal(), l.polarity())?;
            lits = m.man.and(lits, sig);
        }
        let obliged = m.man.and(eq, lits);
        inv = m.man.or(inv, obliged);

        for (j, f) in fair.iter_mut().enumerate() {
            if gba.state(q).acc_bits() >> j & 1 == 1 {
                *f = m.man.or(*f, eq);
            }
        }
    }
    for &q in gba.initial() {
        let eq = enc(m, q, false);
        init = m.man.or(init, eq);
    }
    Ok(AutEnc {
        trans,
        inv,
        init,
        fair,
    })
}

/// The BDD of a signal literal over the current bank.
fn signal_lit(m: &mut SymbolicModel, s: SignalId, polarity: bool) -> Result<Bdd, SymbolicError> {
    let f = m.signal_bdd(s)?;
    Ok(if polarity { f } else { m.man.not(f) })
}
