//! Symbolic LTL checking: GBA product encoding, Emerson–Lei fair-cycle
//! detection and replayable lasso counterexamples.
//!
//! The existential query "is there a run of `M` satisfying every formula?"
//! is answered fully symbolically:
//!
//! 1. each conjunct is translated to a (small, explicit) generalized Büchi
//!    automaton — the same GPVW translation the explicit engine uses — and
//!    its state space is *encoded in binary* over fresh BDD variables: the
//!    automaton transition structure, its literal obligations, its initial
//!    states and its acceptance sets all become BDDs;
//! 2. the product of the module's transition relation with every automaton
//!    relation is never built as a graph: images and preimages run over the
//!    partitioned conjunct list with early quantification
//!    ([`dic_logic::BddManager::and_exists`]);
//! 3. forward reachability restricts the search, and an Emerson–Lei
//!    greatest fixpoint `νZ. ⋀_j EX E[Z U (Z ∧ F_j)]` finds the states
//!    with a fair path (one fairness set per acceptance set of every
//!    automaton);
//! 4. when the intersection with the initial states is non-empty, a
//!    deterministic walk through the fixpoint — guided by backward
//!    "onion-ring" distances to each fairness set — extracts a concrete
//!    lasso, which is replayed into full signal valuations
//!    ([`dic_ltl::LassoWord`]) exactly like the explicit engine's
//!    counterexamples.

use crate::error::SymbolicError;
use crate::model::SymbolicModel;
use dic_automata::{translate_cached, Gba};
use dic_logic::{Bdd, PairingId, SignalId, Valuation, VarSetId};
use dic_ltl::{LassoWord, Ltl};
use std::collections::HashMap;
use std::sync::Arc;

/// One automaton encoded over a slice of the shared bit pool.
struct AutEnc {
    /// Transition structure over this automaton's current/next bits only
    /// (literal obligations live in `inv`, not here).
    trans: Bdd,
    /// `⋁_q enc(q) ∧ literals(q)`: every position must pick a valid state
    /// code *and* satisfy its literal obligations.
    inv: Bdd,
    /// `⋁_{q initial} enc(q)`.
    init: Bdd,
    /// One fairness set per acceptance set: `⋁_{q ∈ F_j} enc(q)`.
    fair: Vec<Bdd>,
}

/// A per-query product checker: the module plus the encoded automata, with
/// precomputed quantification schedules for image/preimage.
struct Check<'a> {
    m: &'a mut SymbolicModel,
    /// Transition conjuncts: one per latch, then one per automaton.
    conjuncts: Vec<Bdd>,
    /// Current-bank variables whose last occurrence is conjunct `i`
    /// (image schedule).
    img_sets: Vec<VarSetId>,
    /// Current-bank variables no conjunct mentions (quantified up front).
    img_tail: VarSetId,
    /// Next-bank variables whose last occurrence is conjunct `i`
    /// (preimage schedule).
    pre_sets: Vec<VarSetId>,
    /// Next-bank variables no conjunct mentions (free inputs).
    pre_tail: VarSetId,
    next_to_curr: PairingId,
    curr_to_next: PairingId,
    /// Conjunction of every automaton's `inv`.
    inv: Bdd,
    /// Module reset ∧ automata initial ∧ `inv`.
    init: Bdd,
    /// All fairness sets, flattened across automata.
    fair: Vec<Bdd>,
    /// Every current-bank variable of the product (module + automaton).
    all_curr: Vec<u32>,
    /// Length for product-state valuations (covers synthetic ids).
    val_len: usize,
}

impl SymbolicModel {
    /// Existential query: is there a run of the model satisfying every
    /// formula in `formulas` simultaneously? Returns a replayable witness
    /// lasso if so — the symbolic counterpart of
    /// [`dic_automata::satisfiable_in_conj`].
    ///
    /// # Errors
    ///
    /// [`SymbolicError::NodeLimit`] when the BDDs outgrow the configured
    /// budget, [`SymbolicError::UnknownSignal`] for formula atoms the model
    /// does not know.
    pub fn satisfiable_conj(
        &mut self,
        formulas: &[Ltl],
    ) -> Result<Option<LassoWord>, SymbolicError> {
        let gbas: Vec<Arc<Gba>> = formulas.iter().map(translate_cached).collect();
        if gbas.iter().any(|g| g.initial().is_empty()) {
            // Some conjunct is unsatisfiable on its own (e.g. `p ∧ ¬p`).
            return Ok(None);
        }
        let mut check = Check::build(self, &gbas)?;
        check.run()
    }
}

/// Number of binary code bits for an `n`-state automaton.
fn bits_for(n: usize) -> usize {
    let mut bits = 1;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits
}

impl<'a> Check<'a> {
    fn build(m: &'a mut SymbolicModel, gbas: &[Arc<Gba>]) -> Result<Self, SymbolicError> {
        // Allocate a stable slice of the bit pool per automaton.
        let mut ranges = Vec::with_capacity(gbas.len());
        let mut cursor = 0usize;
        for g in gbas {
            let nbits = bits_for(g.num_states());
            ranges.push((cursor, nbits));
            cursor += nbits;
        }
        m.ensure_aut_bits(cursor);

        let mut encs = Vec::with_capacity(gbas.len());
        for (g, &(start, nbits)) in gbas.iter().zip(&ranges) {
            let bits = m.aut_pool[start..start + nbits].to_vec();
            encs.push(encode_gba(m, g, &bits)?);
        }

        // Assemble the plan: conjuncts, invariant, init, fairness.
        let mut conjuncts = m.trans_latches.clone();
        let mut inv = Bdd::TRUE;
        let mut init = m.init;
        let mut fair = Vec::new();
        for e in &encs {
            conjuncts.push(e.trans);
            inv = m.man.and(inv, e.inv);
            init = m.man.and(init, e.init);
            fair.extend(e.fair.iter().copied());
        }
        init = m.man.and(init, inv);

        let mut all_curr: Vec<u32> = m.curr_var.clone();
        let mut all_next: Vec<u32> = m.next_var.clone();
        for &(c, n) in &m.aut_pool[..cursor] {
            all_curr.push(c);
            all_next.push(n);
        }

        // Early-quantification schedules: a variable can be summed out as
        // soon as the last conjunct mentioning it has been conjoined.
        let img_groups = last_occurrence_groups(m, &conjuncts, &all_curr);
        let pre_groups = last_occurrence_groups(m, &conjuncts, &all_next);
        let img_sets: Vec<VarSetId> = img_groups
            .per_conjunct
            .iter()
            .map(|vars| m.man.register_var_set(vars))
            .collect();
        let img_tail = m.man.register_var_set(&img_groups.unmentioned);
        let pre_sets: Vec<VarSetId> = pre_groups
            .per_conjunct
            .iter()
            .map(|vars| m.man.register_var_set(vars))
            .collect();
        let pre_tail = m.man.register_var_set(&pre_groups.unmentioned);

        let pairs_n2c: Vec<(u32, u32)> =
            all_next.iter().copied().zip(all_curr.iter().copied()).collect();
        let pairs_c2n: Vec<(u32, u32)> =
            all_curr.iter().copied().zip(all_next.iter().copied()).collect();
        let next_to_curr = m.man.register_pairing(&pairs_n2c);
        let curr_to_next = m.man.register_pairing(&pairs_c2n);

        let val_len = m.table.len() + m.synth_count;
        m.check_limit()?;
        Ok(Check {
            m,
            conjuncts,
            img_sets,
            img_tail,
            pre_sets,
            pre_tail,
            next_to_curr,
            curr_to_next,
            inv,
            init,
            fair,
            all_curr,
            val_len,
        })
    }

    /// The full decision procedure: reachability, fair states, witness.
    fn run(&mut self) -> Result<Option<LassoWord>, SymbolicError> {
        if self.init.is_false() {
            return Ok(None);
        }
        let reach = self.reachable()?;
        let z = self.fair_states(reach)?;
        let start = self.m.man.and(self.init, z);
        if start.is_false() {
            return Ok(None);
        }
        let product_lasso = self.extract_lasso(start, z)?;
        Ok(Some(self.to_word(&product_lasso.0, product_lasso.1)))
    }

    /// Successor image of `s` (a set over the current bank), restricted to
    /// the invariant.
    fn image(&mut self, s: Bdd) -> Result<Bdd, SymbolicError> {
        let mut acc = self.m.man.and_exists(s, Bdd::TRUE, self.img_tail);
        for i in 0..self.conjuncts.len() {
            acc = self.m.man.and_exists(acc, self.conjuncts[i], self.img_sets[i]);
        }
        let renamed = self.m.man.rename(acc, self.next_to_curr);
        let out = self.m.man.and(renamed, self.inv);
        self.m.check_limit()?;
        Ok(out)
    }

    /// Predecessor image of `s`, restricted to the invariant.
    fn preimage(&mut self, s: Bdd) -> Result<Bdd, SymbolicError> {
        let shifted = self.m.man.rename(s, self.curr_to_next);
        let mut acc = self.m.man.and_exists(shifted, Bdd::TRUE, self.pre_tail);
        for i in 0..self.conjuncts.len() {
            acc = self.m.man.and_exists(acc, self.conjuncts[i], self.pre_sets[i]);
        }
        let out = self.m.man.and(acc, self.inv);
        self.m.check_limit()?;
        Ok(out)
    }

    /// Forward reachability from the initial states (frontier-based).
    fn reachable(&mut self) -> Result<Bdd, SymbolicError> {
        let mut reach = self.init;
        let mut frontier = self.init;
        loop {
            let img = self.image(frontier)?;
            let fresh = diff(self.m, img, reach);
            if fresh.is_false() {
                return Ok(reach);
            }
            reach = self.m.man.or(reach, fresh);
            frontier = fresh;
        }
    }

    /// `E[inside U target]` (both already restricted to the product
    /// invariant): least fixpoint of backward steps within `inside`.
    fn until(&mut self, inside: Bdd, target: Bdd) -> Result<Bdd, SymbolicError> {
        let mut y = target;
        loop {
            let pre = self.preimage(y)?;
            let step = self.m.man.and(inside, pre);
            let next = self.m.man.or(y, step);
            if next == y {
                return Ok(y);
            }
            y = next;
        }
    }

    /// The Emerson–Lei greatest fixpoint: states with a fair path, i.e.
    /// `νZ. ⋀_j EX E[Z U (Z ∧ F_j)]` — or `νZ. EX Z` when no fairness
    /// sets exist (all conjuncts are safety; any cycle will do).
    fn fair_states(&mut self, reach: Bdd) -> Result<Bdd, SymbolicError> {
        let mut z = reach;
        loop {
            let z_old = z;
            if self.fair.is_empty() {
                let pre = self.preimage(z)?;
                z = self.m.man.and(z, pre);
            } else {
                for j in 0..self.fair.len() {
                    let target = self.m.man.and(z, self.fair[j]);
                    let eu = self.until(z, target)?;
                    let pre = self.preimage(eu)?;
                    z = self.m.man.and(z, pre);
                }
            }
            if z == z_old {
                return Ok(z);
            }
        }
    }

    /// Backward BFS "onion rings" from `target` within `z`: `rings[0]` is
    /// the target, `rings[d]` the states first reaching it in `d` steps.
    /// Every state of `z` with a path to the target lands in some ring.
    fn rings_to(&mut self, z: Bdd, target: Bdd) -> Result<Vec<Bdd>, SymbolicError> {
        let t0 = self.m.man.and(z, target);
        let mut rings = vec![t0];
        let mut covered = t0;
        loop {
            let last = *rings.last().expect("non-empty");
            let pre = self.preimage(last)?;
            let in_z = self.m.man.and(pre, z);
            let fresh = diff(self.m, in_z, covered);
            if fresh.is_false() {
                return Ok(rings);
            }
            covered = self.m.man.or(covered, fresh);
            rings.push(fresh);
        }
    }

    /// Picks one concrete product state out of a non-empty set
    /// (deterministically; unconstrained variables default to 0, which is
    /// a valid completion of the satisfying cube).
    fn pick(&mut self, set: Bdd) -> Valuation {
        let cube = self.m.man.any_sat(set).expect("picked from a non-empty set");
        let mut v = Valuation::all_false(self.val_len);
        for l in cube.lits() {
            v.set(l.signal(), l.polarity());
        }
        v
    }

    /// The characteristic cube of one concrete product state.
    fn state_cube(&mut self, s: &Valuation) -> Bdd {
        let mut acc = Bdd::TRUE;
        for i in 0..self.all_curr.len() {
            let var = self.all_curr[i];
            let sig = self.m.man.signal_of_var(var);
            let v = self.m.var_bdd(var);
            let lit = if s.get(sig) { v } else { self.m.man.not(v) };
            acc = self.m.man.and(acc, lit);
        }
        acc
    }

    fn holds(&self, set: Bdd, s: &Valuation) -> bool {
        self.m.man.eval(set, s)
    }

    /// Extracts a concrete lasso inside the fair hull `z`, starting from a
    /// state of `start ⊆ z`.
    ///
    /// With fairness sets, the walk services them round-robin, always
    /// stepping one ring closer to the pending set; whenever a full round
    /// completes at an already-seen round boundary, the segment between the
    /// two occurrences contains every fairness set and closes the loop.
    /// The walk is deterministic in (state, pending set), so a boundary
    /// must eventually repeat.
    fn extract_lasso(
        &mut self,
        start: Bdd,
        z: Bdd,
    ) -> Result<(Vec<Valuation>, usize), SymbolicError> {
        let first = self.pick(start);
        if self.fair.is_empty() {
            // Any cycle within z: walk arbitrary successors until a state
            // repeats (z is closed under "has a successor in z").
            let mut seq = vec![first.clone()];
            let mut index: HashMap<Valuation, usize> = HashMap::from([(first, 0)]);
            loop {
                let cube = self.state_cube(seq.last().expect("non-empty"));
                let img = self.image(cube)?;
                let succ = self.m.man.and(img, z);
                let next = self.pick(succ);
                if let Some(&i) = index.get(&next) {
                    return Ok((seq, i));
                }
                index.insert(next.clone(), seq.len());
                seq.push(next);
            }
        }

        let fairs = self.fair.clone();
        let mut rings = Vec::with_capacity(fairs.len());
        for &f in &fairs {
            rings.push(self.rings_to(z, f)?);
        }
        let k = fairs.len();
        let mut seq = vec![first];
        let mut boundary: HashMap<Valuation, usize> = HashMap::new();
        let mut j = 0usize;
        loop {
            let cur = seq.last().expect("non-empty").clone();
            // Retire every pending fairness set the current state satisfies
            // (at most one sweep over all k, to avoid spinning when one
            // state satisfies every set).
            let mut retired = 0;
            while retired < k && self.holds(rings[j][0], &cur) {
                if j == k - 1 {
                    // A full round just completed here.
                    let idx = seq.len() - 1;
                    if let Some(&i) = boundary.get(&cur) {
                        // seq[idx] == seq[i]: drop the duplicate; the loop
                        // [i..idx) contains a complete round.
                        seq.pop();
                        return Ok((seq, i));
                    }
                    boundary.insert(cur.clone(), idx);
                }
                j = (j + 1) % k;
                retired += 1;
            }
            // One step: toward the pending set if it is elsewhere, or
            // anywhere within z if the current state already provides it.
            let cube = self.state_cube(&cur);
            let img = self.image(cube)?;
            let d = rings[j]
                .iter()
                .position(|&r| self.holds(r, &cur))
                .expect("every fair-hull state reaches every fairness set");
            let goal = if d == 0 { z } else { rings[j][d - 1] };
            let succ = self.m.man.and(img, goal);
            let next = self.pick(succ);
            seq.push(next);
        }
    }

    /// Replays a product lasso into full signal valuations: state signals
    /// are copied from the product state, wires are settled through the
    /// module logic — the exact label construction of the explicit Kripke
    /// structure, so witnesses replay on the simulator identically.
    fn to_word(&self, seq: &[Valuation], loop_start: usize) -> LassoWord {
        let words: Vec<Valuation> = seq
            .iter()
            .map(|s| {
                let mut v = Valuation::all_false(self.m.table.len());
                for &sig in &self.m.state_signals {
                    v.set(sig, s.get(sig));
                }
                self.m.module.eval_wires(&mut v);
                v
            })
            .collect();
        LassoWord::new(words, loop_start).expect("walk produced a loop")
    }
}

/// `a ∧ ¬b` in one ite.
fn diff(m: &mut SymbolicModel, a: Bdd, b: Bdd) -> Bdd {
    m.man.ite(b, Bdd::FALSE, a)
}

/// Variables grouped by the last conjunct whose support mentions them.
struct OccurrenceGroups {
    per_conjunct: Vec<Vec<u32>>,
    unmentioned: Vec<u32>,
}

fn last_occurrence_groups(
    m: &SymbolicModel,
    conjuncts: &[Bdd],
    bank: &[u32],
) -> OccurrenceGroups {
    let mut last: HashMap<u32, usize> = HashMap::new();
    for (i, &c) in conjuncts.iter().enumerate() {
        for v in m.man.support_vars(c) {
            if bank.contains(&v) {
                last.insert(v, i);
            }
        }
    }
    let mut per_conjunct = vec![Vec::new(); conjuncts.len()];
    let mut unmentioned = Vec::new();
    for &v in bank {
        match last.get(&v) {
            Some(&i) => per_conjunct[i].push(v),
            None => unmentioned.push(v),
        }
    }
    OccurrenceGroups {
        per_conjunct,
        unmentioned,
    }
}

/// Encodes one GBA over `bits` (a `(curr, next)` variable pair per code
/// bit): transition structure, literal invariant, initial set, fairness.
fn encode_gba(
    m: &mut SymbolicModel,
    gba: &Gba,
    bits: &[(u32, u32)],
) -> Result<AutEnc, SymbolicError> {
    let enc = |m: &mut SymbolicModel, q: u32, next_bank: bool| -> Bdd {
        let mut acc = Bdd::TRUE;
        for (b, &(cv, nv)) in bits.iter().enumerate() {
            let var = if next_bank { nv } else { cv };
            let v = m.var_bdd(var);
            let lit = if q >> b & 1 == 1 { v } else { m.man.not(v) };
            acc = m.man.and(acc, lit);
        }
        acc
    };

    let n = gba.num_states() as u32;
    let mut trans = Bdd::FALSE;
    let mut inv = Bdd::FALSE;
    let mut init = Bdd::FALSE;
    let mut fair = vec![Bdd::FALSE; gba.num_acceptance_sets() as usize];
    for q in 0..n {
        let eq = enc(m, q, false);

        // Successor choice: enc(q) ∧ ⋁_{q'} enc'(q').
        let mut succs = Bdd::FALSE;
        for &q2 in gba.successors(q) {
            let eq2 = enc(m, q2, true);
            succs = m.man.or(succs, eq2);
        }
        let step = m.man.and(eq, succs);
        trans = m.man.or(trans, step);

        // Literal obligations of q over the current signal bank.
        let mut lits = Bdd::TRUE;
        for l in gba.state(q).literals() {
            let sig = signal_lit(m, l.signal(), l.polarity())?;
            lits = m.man.and(lits, sig);
        }
        let obliged = m.man.and(eq, lits);
        inv = m.man.or(inv, obliged);

        for (j, f) in fair.iter_mut().enumerate() {
            if gba.state(q).acc_bits() >> j & 1 == 1 {
                *f = m.man.or(*f, eq);
            }
        }
    }
    for &q in gba.initial() {
        let eq = enc(m, q, false);
        init = m.man.or(init, eq);
    }
    Ok(AutEnc {
        trans,
        inv,
        init,
        fair,
    })
}

/// The BDD of a signal literal over the current bank.
fn signal_lit(m: &mut SymbolicModel, s: SignalId, polarity: bool) -> Result<Bdd, SymbolicError> {
    let f = m.signal_bdd(s)?;
    Ok(if polarity { f } else { m.man.not(f) })
}
