//! **Resource governance and deterministic fault injection.**
//!
//! Two process-global facilities the engines consult at their loop heads,
//! both following the `dic_trace` off-by-default contract: when nothing is
//! armed, the fast path is a single relaxed atomic load and the layer
//! costs nothing measurable.
//!
//! # Deadlines
//!
//! [`arm_deadline`] installs a cooperative wall-clock budget for the
//! process; [`deadline_expired`] is the checkpoint every engine polls at
//! its existing iteration boundaries — BDD fixpoint steps, CDCL restart
//! boundaries, explicit-state expansion batches, per-candidate boundaries
//! in the gap phase. A tripped deadline surfaces as the engine's
//! `Deadline` error variant (`SymbolicError::Deadline`,
//! `FsmError::Deadline`, `SatResult::Unknown`), which the pipeline treats
//! as a *degradable* refusal: it stops cleanly and reports everything it
//! settled before the trip. Nothing is ever preempted mid-operation, so
//! every data structure stays consistent.
//!
//! # Fault injection
//!
//! [`arm_fault`] (or `SPECMATCHER_FAULT=site:nth:kind` via
//! [`arm_fault_from_env`]) plants one deterministic fault: the *nth* time
//! execution crosses the named [`Site`], [`hit`] returns the armed
//! [`FaultKind`] and the seam converts it into the corresponding organic
//! failure — a `NodeLimit` refusal, a deadline trip, a SAT `Unknown`, or
//! a worker panic. Sites are counted per process with monotone hit
//! counters, so the same schedule replays identically run after run; the
//! robustness suite sweeps sites × schedules × backends and asserts that
//! no injection ever escapes as a process abort or an unsound verdict.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Sites and kinds
// ---------------------------------------------------------------------------

/// Every counted injection site — one per fallible seam in the engines.
///
/// The dotted names are the stable spelling used by `SPECMATCHER_FAULT`
/// and by the `fault.injected` trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// `SymbolicModel::check_limit` — the BDD node-budget checkpoint
    /// between fixpoint steps (`bdd.alloc`).
    BddAlloc,
    /// The loop head of every symbolic fixpoint
    /// (`reachable`/`until`/`hull`/`rings_to`) — `symbolic.fixpoint_step`.
    SymbolicFixpointStep,
    /// `Solver::solve` entry in the CDCL solver (`sat.solve`).
    SatSolve,
    /// The per-candidate boundary of the gap-phase closure drivers in
    /// `weaken.rs` (`gap.worker`).
    GapWorker,
    /// The BMC unrolling encoder in `bounded_lasso` (`bmc.encode`).
    BmcEncode,
}

/// Number of distinct sites.
pub const NUM_SITES: usize = 5;

impl Site {
    /// Every site, in canonical order.
    pub const ALL: [Site; NUM_SITES] = [
        Site::BddAlloc,
        Site::SymbolicFixpointStep,
        Site::SatSolve,
        Site::GapWorker,
        Site::BmcEncode,
    ];

    /// The site's stable dotted name.
    pub const fn name(self) -> &'static str {
        match self {
            Site::BddAlloc => "bdd.alloc",
            Site::SymbolicFixpointStep => "symbolic.fixpoint_step",
            Site::SatSolve => "sat.solve",
            Site::GapWorker => "gap.worker",
            Site::BmcEncode => "bmc.encode",
        }
    }

    fn parse(s: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|site| site.name() == s)
    }
}

/// What an armed site forces when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The seam raises its resource refusal (`SymbolicError::NodeLimit`
    /// where expressible; seams with no node budget degrade to their
    /// closest refusal).
    NodeLimit,
    /// The seam behaves as if the cooperative deadline tripped.
    Deadline,
    /// The seam returns an inconclusive verdict (`SatResult::Unknown`;
    /// the BMC tier reports "no refutation found", which is always sound).
    SatUnknown,
    /// The seam panics — exercising the `catch_unwind` isolation of the
    /// gap scope.
    Panic,
}

impl FaultKind {
    /// The kind's stable spelling in `SPECMATCHER_FAULT`.
    pub const fn name(self) -> &'static str {
        match self {
            FaultKind::NodeLimit => "node-limit",
            FaultKind::Deadline => "deadline",
            FaultKind::SatUnknown => "sat-unknown",
            FaultKind::Panic => "panic",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "node-limit" => Some(FaultKind::NodeLimit),
            "deadline" => Some(FaultKind::Deadline),
            "sat-unknown" => Some(FaultKind::SatUnknown),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }
}

/// One armed injection: fire `kind` at the `nth` (1-based) crossing of
/// `site`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    pub site: Site,
    pub nth: u64,
    pub kind: FaultKind,
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

/// Fast-path gate: true iff a fault plan is armed. A single relaxed load
/// in [`hit`] keeps the unarmed cost negligible (the `dic_trace::enabled`
/// pattern).
static FAULT_ARMED: AtomicBool = AtomicBool::new(false);

/// The armed plan, packed into atomics so [`hit`] needs no lock:
/// site index, nth, kind index.
static FAULT_SITE: AtomicUsize = AtomicUsize::new(0);
static FAULT_NTH: AtomicU64 = AtomicU64::new(0);
static FAULT_KIND: AtomicUsize = AtomicUsize::new(0);

/// Monotone per-site hit counters (count regardless of which site is
/// armed, so a schedule's nth is stable across plans).
static HITS: [AtomicU64; NUM_SITES] = [const { AtomicU64::new(0) }; NUM_SITES];

/// Deadline gate + the armed deadline as nanoseconds since [`anchor`].
/// Zero in `DEADLINE_AT_NS` is never a valid armed value (arming adds a
/// positive budget to a positive elapsed reading... not guaranteed — the
/// gate bool is the source of truth; the cell only stores the instant).
static DEADLINE_ARMED: AtomicBool = AtomicBool::new(false);
static DEADLINE_AT_NS: AtomicU64 = AtomicU64::new(0);

/// Process-wide time anchor, fixed on first use, so instants can live in
/// an atomic as elapsed-nanos.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------------
// Deadline API
// ---------------------------------------------------------------------------

/// Arms the process-wide cooperative deadline `budget` from now. Engines
/// poll [`deadline_expired`] at their iteration boundaries and surface a
/// trip as their `Deadline` error.
pub fn arm_deadline(budget: Duration) {
    let now = anchor().elapsed();
    let at = now.saturating_add(budget);
    DEADLINE_AT_NS.store(at.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    DEADLINE_ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the deadline (tests; daemon mode will re-arm per request).
pub fn disarm_deadline() {
    DEADLINE_ARMED.store(false, Ordering::Relaxed);
}

/// The cooperative checkpoint: true iff a deadline is armed and has
/// passed. Counts a `deadline.trips` trace counter per observed trip.
#[inline]
pub fn deadline_expired() -> bool {
    if !DEADLINE_ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let expired =
        anchor().elapsed().as_nanos() as u64 >= DEADLINE_AT_NS.load(Ordering::Relaxed);
    if expired && dic_trace::enabled() {
        dic_trace::count(dic_trace::Counter::DeadlineTrips, 1);
    }
    expired
}

// ---------------------------------------------------------------------------
// Fault API
// ---------------------------------------------------------------------------

/// Arms `plan`; replaces any previously armed plan. Hit counters are NOT
/// reset — see [`reset_hits`].
pub fn arm_fault(plan: FaultPlan) {
    FAULT_SITE.store(plan.site as usize, Ordering::Relaxed);
    FAULT_NTH.store(plan.nth, Ordering::Relaxed);
    FAULT_KIND.store(plan.kind as usize, Ordering::Relaxed);
    FAULT_ARMED.store(true, Ordering::Relaxed);
}

/// Disarms fault injection.
pub fn disarm_fault() {
    FAULT_ARMED.store(false, Ordering::Relaxed);
}

/// Resets every per-site hit counter to zero, so a test harness can replay
/// the same `nth` schedule against a fresh run without a fresh process.
pub fn reset_hits() {
    for h in &HITS {
        h.store(0, Ordering::Relaxed);
    }
}

/// The injection checkpoint every seam calls: counts the crossing and
/// returns the armed [`FaultKind`] exactly at the armed site's nth hit.
/// One relaxed load when nothing is armed.
#[inline]
pub fn hit(site: Site) -> Option<FaultKind> {
    if !FAULT_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: Site) -> Option<FaultKind> {
    let n = HITS[site as usize].fetch_add(1, Ordering::Relaxed) + 1;
    if FAULT_SITE.load(Ordering::Relaxed) != site as usize
        || FAULT_NTH.load(Ordering::Relaxed) != n
    {
        return None;
    }
    let kind = match FAULT_KIND.load(Ordering::Relaxed) {
        k if k == FaultKind::NodeLimit as usize => FaultKind::NodeLimit,
        k if k == FaultKind::Deadline as usize => FaultKind::Deadline,
        k if k == FaultKind::SatUnknown as usize => FaultKind::SatUnknown,
        _ => FaultKind::Panic,
    };
    if dic_trace::enabled() {
        dic_trace::count(dic_trace::Counter::FaultInjected, 1);
        dic_trace::event("fault.injected", &[("nth", n)]);
    }
    Some(kind)
}

/// The message every injected panic carries, so the `catch_unwind`
/// isolation layer (and the robustness suite) can tell an injected panic
/// from an organic one.
pub const INJECTED_PANIC_MSG: &str = "injected fault: panic";

/// Panics with [`INJECTED_PANIC_MSG`] — the one spelling of the injected
/// worker panic, kept here so every seam agrees.
pub fn injected_panic() -> ! {
    panic!("{}", INJECTED_PANIC_MSG);
}

// ---------------------------------------------------------------------------
// Environment parsing (strict, fail-closed)
// ---------------------------------------------------------------------------

/// Strict parse of `SPECMATCHER_FAULT=site:nth:kind`. `Ok(None)` when
/// unset; any malformed value is an error naming the variable — a typo'd
/// schedule must refuse, not silently run fault-free.
pub fn fault_from_env() -> Result<Option<FaultPlan>, String> {
    let raw = match std::env::var("SPECMATCHER_FAULT") {
        Ok(v) => v,
        Err(_) => return Ok(None),
    };
    parse_fault(&raw).map(Some).map_err(|detail| {
        format!(
            "invalid SPECMATCHER_FAULT value {raw:?}: {detail} (expected \
             site:nth:kind, e.g. gap.worker:3:panic; sites: bdd.alloc, \
             symbolic.fixpoint_step, sat.solve, gap.worker, bmc.encode; \
             kinds: node-limit, deadline, sat-unknown, panic)"
        )
    })
}

fn parse_fault(raw: &str) -> Result<FaultPlan, String> {
    let mut parts = raw.split(':');
    let (site, nth, kind) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(s), Some(n), Some(k), None) => (s, n, k),
        _ => return Err("expected exactly three ':'-separated fields".into()),
    };
    let site = Site::parse(site).ok_or_else(|| format!("unknown site {site:?}"))?;
    let nth: u64 = match nth.parse() {
        Ok(n) if n >= 1 => n,
        _ => return Err(format!("nth must be a positive integer, got {nth:?}")),
    };
    let kind = FaultKind::parse(kind).ok_or_else(|| format!("unknown kind {kind:?}"))?;
    Ok(FaultPlan { site, nth, kind })
}

/// Parses and arms `SPECMATCHER_FAULT` in one step (binary startup).
pub fn arm_fault_from_env() -> Result<(), String> {
    if let Some(plan) = fault_from_env()? {
        arm_fault(plan);
    }
    Ok(())
}

/// Strict parse of `SPECMATCHER_TIMEOUT` (whole seconds, >= 1).
/// `Ok(None)` when unset.
pub fn timeout_from_env() -> Result<Option<Duration>, String> {
    let raw = match std::env::var("SPECMATCHER_TIMEOUT") {
        Ok(v) => v,
        Err(_) => return Ok(None),
    };
    match raw.parse::<u64>() {
        Ok(secs) if secs >= 1 => Ok(Some(Duration::from_secs(secs))),
        _ => Err(format!(
            "invalid SPECMATCHER_TIMEOUT value {raw:?}: expected a positive \
             whole number of seconds"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The fault/deadline cells are process globals; tests that arm them
    /// serialize here.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_hit_is_none_and_counts_nothing_armed() {
        let _g = LOCK.lock().unwrap();
        disarm_fault();
        assert_eq!(hit(Site::SatSolve), None);
        assert_eq!(hit(Site::GapWorker), None);
    }

    #[test]
    fn fires_exactly_at_the_nth_hit_of_the_armed_site() {
        let _g = LOCK.lock().unwrap();
        reset_hits();
        arm_fault(FaultPlan {
            site: Site::GapWorker,
            nth: 3,
            kind: FaultKind::NodeLimit,
        });
        assert_eq!(hit(Site::GapWorker), None);
        assert_eq!(hit(Site::SatSolve), None); // other sites never fire
        assert_eq!(hit(Site::GapWorker), None);
        assert_eq!(hit(Site::GapWorker), Some(FaultKind::NodeLimit));
        assert_eq!(hit(Site::GapWorker), None); // one-shot
        disarm_fault();
    }

    #[test]
    fn deadline_trips_after_the_budget_and_disarms_cleanly() {
        let _g = LOCK.lock().unwrap();
        arm_deadline(Duration::from_secs(3600));
        assert!(!deadline_expired());
        arm_deadline(Duration::ZERO);
        assert!(deadline_expired());
        disarm_deadline();
        assert!(!deadline_expired());
    }

    #[test]
    fn fault_spec_parses_strictly() {
        assert_eq!(
            parse_fault("gap.worker:3:panic"),
            Ok(FaultPlan {
                site: Site::GapWorker,
                nth: 3,
                kind: FaultKind::Panic,
            })
        );
        assert_eq!(
            parse_fault("bdd.alloc:1:node-limit"),
            Ok(FaultPlan {
                site: Site::BddAlloc,
                nth: 1,
                kind: FaultKind::NodeLimit,
            })
        );
        for bad in [
            "",
            "gap.worker",
            "gap.worker:3",
            "gap.worker:3:panic:extra",
            "gap.wrker:3:panic",
            "gap.worker:0:panic",
            "gap.worker:-1:panic",
            "gap.worker:x:panic",
            "gap.worker:3:explode",
        ] {
            assert!(parse_fault(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn every_site_round_trips_through_its_name() {
        for site in Site::ALL {
            assert_eq!(Site::parse(site.name()), Some(site));
        }
        for kind in [
            FaultKind::NodeLimit,
            FaultKind::Deadline,
            FaultKind::SatUnknown,
            FaultKind::Panic,
        ] {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
    }
}
