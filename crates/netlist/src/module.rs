//! Modules, wires, latches, the builder and structural composition.

use crate::error::NetlistError;
use dic_logic::{BoolExpr, SignalId, SignalTable, Valuation};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A combinational wire: `output = func(...)` evaluated every cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Wire {
    output: SignalId,
    func: BoolExpr,
}

impl Wire {
    /// The driven signal.
    pub fn output(&self) -> SignalId {
        self.output
    }

    /// The combinational function.
    pub fn func(&self) -> &BoolExpr {
        &self.func
    }
}

/// A D-type latch: `output` takes the value of `next` at every clock edge,
/// starting from `init` at reset.
///
/// This is the `L` element of the paper's Fig. 2/Fig. 5 — the only state
/// element in the netlist model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Latch {
    output: SignalId,
    next: BoolExpr,
    init: bool,
}

impl Latch {
    /// The latch output (a state variable).
    pub fn output(&self) -> SignalId {
        self.output
    }

    /// The next-state function sampled at the clock edge.
    pub fn next(&self) -> &BoolExpr {
        &self.next
    }

    /// The reset value.
    pub fn init(&self) -> bool {
        self.init
    }
}

/// A synchronous structural module: inputs, outputs, combinational wires and
/// latches over signals interned in a shared [`SignalTable`].
///
/// Modules are validated on construction: every signal has a single driver,
/// referenced signals are declared, and the wires are cycle-free. Use
/// [`ModuleBuilder`] or [`parse_snl`](crate::parse_snl) to create one, and
/// [`Module::compose`] to stitch several into the paper's composite `M`.
#[derive(Clone, Debug)]
pub struct Module {
    name: String,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    wires: Vec<Wire>,
    latches: Vec<Latch>,
    /// Indices into `wires` in dependency order.
    topo: Vec<usize>,
}

impl Module {
    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input signals (in declaration order).
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Declared output signals.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// All combinational wires.
    pub fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// All latches.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Latch output signals, in declaration order (the FSM state variables).
    pub fn state_signals(&self) -> Vec<SignalId> {
        self.latches.iter().map(Latch::output).collect()
    }

    /// Wire indices in dependency order.
    pub fn wire_order(&self) -> &[usize] {
        &self.topo
    }

    /// Every signal this module drives (wires and latches).
    pub fn driven_signals(&self) -> BTreeSet<SignalId> {
        self.wires
            .iter()
            .map(Wire::output)
            .chain(self.latches.iter().map(Latch::output))
            .collect()
    }

    /// The module's nondeterministic inputs extended with `extra_free`:
    /// declared inputs first, then every extra signal the module does not
    /// drive, deduplicated in order.
    ///
    /// This is *the* state-variable accounting shared by the explicit
    /// Kripke construction, the symbolic encoding and the backend auto
    /// selection — one definition, so a size threshold can never disagree
    /// with the engines' own bit counts.
    pub fn nondet_inputs(&self, extra_free: &[SignalId]) -> Vec<SignalId> {
        let driven = self.driven_signals();
        let mut inputs: Vec<SignalId> = self.inputs.clone();
        for &s in extra_free {
            if !driven.contains(&s) && !inputs.contains(&s) {
                inputs.push(s);
            }
        }
        inputs
    }

    /// Every signal mentioned anywhere in the module.
    pub fn signals(&self) -> BTreeSet<SignalId> {
        let mut all: BTreeSet<SignalId> = self.driven_signals();
        all.extend(self.inputs.iter().copied());
        for w in &self.wires {
            all.extend(w.func.support());
        }
        for l in &self.latches {
            all.extend(l.next.support());
        }
        all
    }

    /// Evaluates all wires (in dependency order) into `state`, assuming the
    /// input and latch-output bits of `state` are already set.
    pub fn eval_wires(&self, state: &mut Valuation) {
        for &i in &self.topo {
            let w = &self.wires[i];
            let v = w.func.eval(state);
            state.set(w.output, v);
        }
    }

    /// Computes the next value of every latch from the *current* `state`
    /// (call after [`Module::eval_wires`]).
    pub fn next_latch_values(&self, state: &Valuation) -> Vec<bool> {
        self.latches.iter().map(|l| l.next.eval(state)).collect()
    }

    /// The reset valuation of the latches, applied to `state`.
    pub fn apply_reset(&self, state: &mut Valuation) {
        for l in &self.latches {
            state.set(l.output, l.init);
        }
    }

    /// Structurally composes `modules` into one module named `name`.
    ///
    /// Signals connect by identity: a wire driving `g1` in one module feeds
    /// every reader of `g1` in the others. The composite inputs are the
    /// signals read but driven by no member; the outputs are the union of
    /// member outputs.
    ///
    /// # Errors
    ///
    /// Fails with [`NetlistError::DoubleDrive`] if two members drive the
    /// same signal and [`NetlistError::CombinationalLoop`] if gluing the
    /// members creates a cycle through wires.
    pub fn compose(
        name: &str,
        modules: &[&Module],
        table: &SignalTable,
    ) -> Result<Module, NetlistError> {
        let mut wires = Vec::new();
        let mut latches = Vec::new();
        let mut outputs = Vec::new();
        let mut seen_outputs = HashSet::new();
        for m in modules {
            wires.extend(m.wires.iter().cloned());
            latches.extend(m.latches.iter().cloned());
            for &o in &m.outputs {
                if seen_outputs.insert(o) {
                    outputs.push(o);
                }
            }
        }
        // Inputs: read anywhere, driven nowhere.
        let mut driven = HashSet::new();
        for w in &wires {
            if !driven.insert(w.output) {
                return Err(NetlistError::DoubleDrive {
                    signal: w.output,
                    name: table.name(w.output).to_owned(),
                });
            }
        }
        for l in &latches {
            if !driven.insert(l.output) {
                return Err(NetlistError::DoubleDrive {
                    signal: l.output,
                    name: table.name(l.output).to_owned(),
                });
            }
        }
        let mut inputs = Vec::new();
        let mut seen_inputs = HashSet::new();
        for m in modules {
            for w in &m.wires {
                for s in w.func.support() {
                    if !driven.contains(&s) && seen_inputs.insert(s) {
                        inputs.push(s);
                    }
                }
            }
            for l in &m.latches {
                for s in l.next.support() {
                    if !driven.contains(&s) && seen_inputs.insert(s) {
                        inputs.push(s);
                    }
                }
            }
        }
        let topo = topo_sort(&wires, table)?;
        Ok(Module {
            name: name.to_owned(),
            inputs,
            outputs,
            wires,
            latches,
            topo,
        })
    }

    /// Restricts the module to the *cone of influence* of `targets`: only
    /// the wires and latches whose outputs can affect a target signal
    /// (transitively, through combinational logic and state) are kept.
    ///
    /// This is the standard model-checking reduction applied before state
    /// enumeration: latches outside the cone contribute exponential state
    /// without affecting the property. Targets that the module does not
    /// drive are simply absent from the result (they stay free inputs of
    /// the surrounding analysis).
    pub fn cone_of_influence(&self, targets: &[SignalId], table: &SignalTable) -> Module {
        use std::collections::VecDeque;
        // Map each driven signal to its defining element's support.
        let mut support_of: HashMap<SignalId, Vec<SignalId>> = HashMap::new();
        for w in &self.wires {
            support_of.insert(w.output, w.func.support().into_iter().collect());
        }
        for l in &self.latches {
            support_of.insert(l.output, l.next.support().into_iter().collect());
        }
        let mut keep: HashSet<SignalId> = HashSet::new();
        let mut queue: VecDeque<SignalId> = targets.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            if !keep.insert(s) {
                continue;
            }
            if let Some(deps) = support_of.get(&s) {
                queue.extend(deps.iter().copied());
            }
        }
        let wires: Vec<Wire> = self
            .wires
            .iter()
            .filter(|w| keep.contains(&w.output))
            .cloned()
            .collect();
        let latches: Vec<Latch> = self
            .latches
            .iter()
            .filter(|l| keep.contains(&l.output))
            .cloned()
            .collect();
        let driven: HashSet<SignalId> = wires
            .iter()
            .map(Wire::output)
            .chain(latches.iter().map(Latch::output))
            .collect();
        let mut inputs: Vec<SignalId> = Vec::new();
        for s in wires
            .iter()
            .flat_map(|w| w.func.support())
            .chain(latches.iter().flat_map(|l| l.next.support()))
        {
            if !driven.contains(&s) && !inputs.contains(&s) {
                inputs.push(s);
            }
        }
        let outputs: Vec<SignalId> = self
            .outputs
            .iter()
            .copied()
            .filter(|o| driven.contains(o) || inputs.contains(o))
            .collect();
        let topo = topo_sort(&wires, table).expect("a sub-netlist of an acyclic netlist is acyclic");
        Module {
            name: format!("{}_coi", self.name),
            inputs,
            outputs,
            wires,
            latches,
            topo,
        }
    }

    /// Renders the module in SNL text format (see [`crate::snl`]).
    pub fn to_snl(&self, table: &SignalTable) -> String {
        let mut out = format!("module {}\n", self.name);
        if !self.inputs.is_empty() {
            out.push_str("  input");
            for &i in &self.inputs {
                out.push(' ');
                out.push_str(table.name(i));
            }
            out.push('\n');
        }
        if !self.outputs.is_empty() {
            out.push_str("  output");
            for &o in &self.outputs {
                out.push(' ');
                out.push_str(table.name(o));
            }
            out.push('\n');
        }
        for w in &self.wires {
            out.push_str(&format!(
                "  assign {} = {}\n",
                table.name(w.output),
                w.func.display(table)
            ));
        }
        for l in &self.latches {
            out.push_str(&format!(
                "  latch {} = {} init {}\n",
                table.name(l.output),
                l.next.display(table),
                u8::from(l.init)
            ));
        }
        out.push_str("endmodule\n");
        out
    }
}

/// Kahn-style topological sort of wires; errors on combinational loops.
fn topo_sort(wires: &[Wire], table: &SignalTable) -> Result<Vec<usize>, NetlistError> {
    let by_output: HashMap<SignalId, usize> = wires
        .iter()
        .enumerate()
        .map(|(i, w)| (w.output, i))
        .collect();
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; wires.len()];
    let mut order = Vec::with_capacity(wires.len());

    fn visit(
        i: usize,
        wires: &[Wire],
        by_output: &HashMap<SignalId, usize>,
        marks: &mut [Mark],
        order: &mut Vec<usize>,
        table: &SignalTable,
        trail: &mut Vec<SignalId>,
    ) -> Result<(), NetlistError> {
        match marks[i] {
            Mark::Black => return Ok(()),
            Mark::Grey => {
                let mut cycle: Vec<String> =
                    trail.iter().map(|&s| table.name(s).to_owned()).collect();
                cycle.push(table.name(wires[i].output).to_owned());
                return Err(NetlistError::CombinationalLoop { cycle });
            }
            Mark::White => {}
        }
        marks[i] = Mark::Grey;
        trail.push(wires[i].output);
        for dep in wires[i].func.support() {
            if let Some(&j) = by_output.get(&dep) {
                visit(j, wires, by_output, marks, order, table, trail)?;
            }
        }
        trail.pop();
        marks[i] = Mark::Black;
        order.push(i);
        Ok(())
    }

    let mut trail = Vec::new();
    for i in 0..wires.len() {
        visit(i, wires, &by_output, &mut marks, &mut order, table, &mut trail)?;
    }
    Ok(order)
}

/// Incremental builder for [`Module`]; see the crate-level example.
#[derive(Debug)]
pub struct ModuleBuilder<'t> {
    name: String,
    table: &'t mut SignalTable,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    wires: Vec<Wire>,
    latches: Vec<Latch>,
}

impl<'t> ModuleBuilder<'t> {
    /// Starts a new module named `name` over the shared signal table.
    pub fn new(name: &str, table: &'t mut SignalTable) -> Self {
        ModuleBuilder {
            name: name.to_owned(),
            table,
            inputs: Vec::new(),
            outputs: Vec::new(),
            wires: Vec::new(),
            latches: Vec::new(),
        }
    }

    /// Access to the shared signal table.
    pub fn table(&mut self) -> &mut SignalTable {
        self.table
    }

    /// Declares (or reuses) an input signal.
    pub fn input(&mut self, name: &str) -> SignalId {
        let id = self.table.intern(name);
        if !self.inputs.contains(&id) {
            self.inputs.push(id);
        }
        id
    }

    /// Adds a combinational wire `name = func`.
    pub fn wire(&mut self, name: &str, func: BoolExpr) -> SignalId {
        let output = self.table.intern(name);
        self.wires.push(Wire { output, func });
        output
    }

    /// AND gate with optional inverted inputs: `name = ⋀pos ∧ ⋀¬neg`.
    pub fn and_gate<P, N>(&mut self, name: &str, pos: P, neg: N) -> SignalId
    where
        P: IntoIterator<Item = SignalId>,
        N: IntoIterator<Item = SignalId>,
    {
        let func = BoolExpr::and(
            pos.into_iter()
                .map(BoolExpr::var)
                .chain(neg.into_iter().map(|s| BoolExpr::var(s).not())),
        );
        self.wire(name, func)
    }

    /// OR gate with optional inverted inputs.
    pub fn or_gate<P, N>(&mut self, name: &str, pos: P, neg: N) -> SignalId
    where
        P: IntoIterator<Item = SignalId>,
        N: IntoIterator<Item = SignalId>,
    {
        let func = BoolExpr::or(
            pos.into_iter()
                .map(BoolExpr::var)
                .chain(neg.into_iter().map(|s| BoolExpr::var(s).not())),
        );
        self.wire(name, func)
    }

    /// Inverter.
    pub fn not_gate(&mut self, name: &str, a: SignalId) -> SignalId {
        self.wire(name, BoolExpr::var(a).not())
    }

    /// XOR gate.
    pub fn xor_gate(&mut self, name: &str, a: SignalId, b: SignalId) -> SignalId {
        self.wire(name, BoolExpr::xor(BoolExpr::var(a), BoolExpr::var(b)))
    }

    /// 2:1 multiplexer: `sel ? a : b`.
    pub fn mux_gate(&mut self, name: &str, sel: SignalId, a: SignalId, b: SignalId) -> SignalId {
        self.wire(
            name,
            BoolExpr::or([
                BoolExpr::and([BoolExpr::var(sel), BoolExpr::var(a)]),
                BoolExpr::and([BoolExpr::var(sel).not(), BoolExpr::var(b)]),
            ]),
        )
    }

    /// Buffer (an alias wire).
    pub fn buf_gate(&mut self, name: &str, a: SignalId) -> SignalId {
        self.wire(name, BoolExpr::var(a))
    }

    /// Adds a latch with an arbitrary next-state function.
    pub fn latch(&mut self, name: &str, next: BoolExpr, init: bool) -> SignalId {
        let output = self.table.intern(name);
        self.latches.push(Latch { output, next, init });
        output
    }

    /// Adds a latch clocked from a single signal (`q' = d`).
    pub fn latch_from(&mut self, name: &str, d: SignalId, init: bool) -> SignalId {
        self.latch(name, BoolExpr::var(d), init)
    }

    /// Marks a signal as a module output.
    pub fn mark_output(&mut self, signal: SignalId) {
        if !self.outputs.contains(&signal) {
            self.outputs.push(signal);
        }
    }

    /// Validates and produces the [`Module`].
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DoubleDrive`] — a signal driven twice, or a driven
    ///   signal also declared as input,
    /// * [`NetlistError::Parse`] — a wire or latch references a signal that
    ///   is neither driven nor declared as an input,
    /// * [`NetlistError::CombinationalLoop`] — the wires form a cycle,
    /// * [`NetlistError::UndrivenOutput`] — an output with no driver.
    pub fn finish(self) -> Result<Module, NetlistError> {
        let ModuleBuilder {
            name,
            table,
            inputs,
            outputs,
            wires,
            latches,
        } = self;
        let mut driven: HashSet<SignalId> = HashSet::new();
        for w in &wires {
            if !driven.insert(w.output) || inputs.contains(&w.output) {
                return Err(NetlistError::DoubleDrive {
                    signal: w.output,
                    name: table.name(w.output).to_owned(),
                });
            }
        }
        for l in &latches {
            if !driven.insert(l.output) || inputs.contains(&l.output) {
                return Err(NetlistError::DoubleDrive {
                    signal: l.output,
                    name: table.name(l.output).to_owned(),
                });
            }
        }
        // Every referenced signal must be declared or driven.
        for (what, support) in wires
            .iter()
            .map(|w| (w.output, w.func.support()))
            .chain(latches.iter().map(|l| (l.output, l.next.support())))
        {
            for s in support {
                if !driven.contains(&s) && !inputs.contains(&s) {
                    return Err(NetlistError::Parse {
                        line: 0,
                        message: format!(
                            "{} references undeclared signal {}",
                            table.name(what),
                            table.name(s)
                        ),
                    });
                }
            }
        }
        for &o in &outputs {
            if !driven.contains(&o) && !inputs.contains(&o) {
                return Err(NetlistError::UndrivenOutput {
                    name: table.name(o).to_owned(),
                });
            }
        }
        let topo = topo_sort(&wires, table)?;
        Ok(Module {
            name,
            inputs,
            outputs,
            wires,
            latches,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_module() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        let bsig = b.input("b");
        let x = b.and_gate("x", [a, bsig], []);
        let q = b.latch_from("q", x, false);
        b.mark_output(q);
        let m = b.finish().expect("valid");
        assert_eq!(m.name(), "m");
        assert_eq!(m.inputs().len(), 2);
        assert_eq!(m.wires().len(), 1);
        assert_eq!(m.latches().len(), 1);
        assert_eq!(m.state_signals(), vec![q]);
    }

    #[test]
    fn double_drive_rejected() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        b.buf_gate("x", a);
        b.buf_gate("x", a);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DoubleDrive { .. })
        ));
    }

    #[test]
    fn input_cannot_be_driven() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        b.buf_gate("a", a);
        assert!(matches!(b.finish(), Err(NetlistError::DoubleDrive { .. })));
    }

    #[test]
    fn undeclared_reference_rejected() {
        let mut t = SignalTable::new();
        let ghost = t.intern("ghost");
        let mut b = ModuleBuilder::new("m", &mut t);
        b.wire("x", BoolExpr::var(ghost));
        assert!(b.finish().is_err());
    }

    #[test]
    fn comb_loop_detected() {
        let mut t = SignalTable::new();
        let x = t.intern("x");
        let y = t.intern("y");
        let mut b = ModuleBuilder::new("m", &mut t);
        b.wire("x", BoolExpr::var(y));
        b.wire("y", BoolExpr::var(x));
        match b.finish() {
            Err(NetlistError::CombinationalLoop { cycle }) => {
                assert!(cycle.len() >= 2);
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn latch_breaks_loops() {
        // x = q; q' = x is fine (the loop goes through the latch).
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let q = b.table().intern("q");
        let x = b.wire("x", BoolExpr::var(q));
        b.latch("q", BoolExpr::var(x), false);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn wires_evaluate_in_dependency_order() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        // Declare z first, depending on y, which depends on a.
        let y = b.table().intern("y");
        b.wire("z", BoolExpr::var(y));
        b.wire("y", BoolExpr::var(a).not());
        let m = b.finish().expect("valid");
        let mut v = Valuation::all_false(t.len());
        v.set(a, false);
        m.eval_wires(&mut v);
        assert!(v.get(t.lookup("z").unwrap()));
    }

    #[test]
    fn compose_connects_by_name() {
        let mut t = SignalTable::new();
        // producer: y = !a ; consumer: z = y & b
        let mut b1 = ModuleBuilder::new("producer", &mut t);
        let a = b1.input("a");
        let y = b1.not_gate("y", a);
        b1.mark_output(y);
        let producer = b1.finish().expect("valid");

        let mut b2 = ModuleBuilder::new("consumer", &mut t);
        let y2 = b2.input("y");
        let bb = b2.input("b");
        let z = b2.and_gate("z", [y2, bb], []);
        b2.mark_output(z);
        let consumer = b2.finish().expect("valid");

        let m = Module::compose("top", &[&producer, &consumer], &t).expect("compose");
        // Composite inputs are a and b only; y is now internal.
        assert_eq!(m.inputs().len(), 2);
        assert!(m.inputs().contains(&a));
        let mut v = Valuation::all_false(t.len());
        v.set(a, false);
        v.set(bb, true);
        m.eval_wires(&mut v);
        assert!(v.get(z));
    }

    #[test]
    fn compose_detects_cross_module_loop() {
        let mut t = SignalTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let mut b1 = ModuleBuilder::new("m1", &mut t);
        b1.input("q");
        b1.wire("p", BoolExpr::var(q));
        let m1 = b1.finish().expect("valid");
        let mut b2 = ModuleBuilder::new("m2", &mut t);
        b2.input("p");
        b2.wire("q", BoolExpr::var(p));
        let m2 = b2.finish().expect("valid");
        assert!(matches!(
            Module::compose("top", &[&m1, &m2], &t),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn compose_rejects_shared_driver() {
        let mut t = SignalTable::new();
        let mut b1 = ModuleBuilder::new("m1", &mut t);
        let a = b1.input("a");
        b1.buf_gate("x", a);
        let m1 = b1.finish().expect("valid");
        let mut b2 = ModuleBuilder::new("m2", &mut t);
        let a2 = b2.input("a");
        b2.not_gate("x", a2);
        let m2 = b2.finish().expect("valid");
        assert!(matches!(
            Module::compose("top", &[&m1, &m2], &t),
            Err(NetlistError::DoubleDrive { .. })
        ));
    }

    #[test]
    fn cone_of_influence_drops_unrelated_state() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        let bb = b.input("b");
        // Two independent chains: q1 <- a (target), q2 <- b (unrelated).
        let q1 = b.latch_from("q1", a, false);
        b.latch_from("q2", bb, false);
        let y = b.not_gate("y", q1);
        b.mark_output(y);
        let m = b.finish().expect("valid");
        let cone = m.cone_of_influence(&[y], &t);
        assert_eq!(cone.latches().len(), 1, "q2 is outside the cone");
        assert_eq!(cone.wires().len(), 1);
        assert_eq!(cone.inputs(), &[a]);
        // Latch chains are followed through state.
        let all = m.cone_of_influence(&[y, t.lookup("q2").unwrap()], &t);
        assert_eq!(all.latches().len(), 2);
    }

    #[test]
    fn cone_of_influence_keeps_cyclic_state_dependencies() {
        // q feeds itself through a wire: the cone of q contains both.
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let q = b.table().intern("q");
        let x = b.not_gate("x", q);
        b.latch("q", BoolExpr::var(x), false);
        let m = b.finish().expect("valid");
        let cone = m.cone_of_influence(&[q], &t);
        assert_eq!(cone.latches().len(), 1);
        assert_eq!(cone.wires().len(), 1);
        assert!(cone.inputs().is_empty());
    }

    #[test]
    fn to_snl_mentions_everything() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        let x = b.not_gate("x", a);
        let q = b.latch_from("q", x, true);
        b.mark_output(q);
        let m = b.finish().expect("valid");
        let snl = m.to_snl(&t);
        assert!(snl.contains("module m"));
        assert!(snl.contains("assign x = !a"));
        assert!(snl.contains("latch q = x init 1"));
        assert!(snl.contains("endmodule"));
    }
}
