//! Error type for netlist construction, validation and parsing.

use dic_logic::SignalId;
use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal is driven by more than one wire/latch (or is also an input).
    DoubleDrive {
        /// The multiply-driven signal.
        signal: SignalId,
        /// Name when available (parsing context), for readable messages.
        name: String,
    },
    /// The combinational wires form a cycle.
    CombinationalLoop {
        /// Signals on (or reachable within) the cycle.
        cycle: Vec<String>,
    },
    /// A declared output is never driven and is not an input.
    UndrivenOutput {
        /// The undriven output signal name.
        name: String,
    },
    /// SNL text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Composition failed (e.g. two modules drive the same signal).
    Compose {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DoubleDrive { name, .. } => {
                write!(f, "signal {name} is driven more than once")
            }
            NetlistError::CombinationalLoop { cycle } => {
                write!(f, "combinational loop through: {}", cycle.join(" -> "))
            }
            NetlistError::UndrivenOutput { name } => {
                write!(f, "output {name} is never driven")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "SNL parse error on line {line}: {message}")
            }
            NetlistError::Compose { message } => write!(f, "composition error: {message}"),
        }
    }
}

impl Error for NetlistError {}
