//! Netlist optimization passes: constant folding and dead-logic removal.
//!
//! Pre-verified custom cells and glue blocks — the RTL the paper's method
//! admits into the coverage analysis — frequently contain tied-off inputs
//! and logic that cannot influence any observable output. Both inflate the
//! extracted FSM (every extra latch doubles the explicit state space), so
//! the passes here are run productively before
//! [`extract_fsm`](dic_fsm::extract_fsm):
//!
//! * [`constant_fold`] — propagates wires/latches that are provably
//!   constant through the logic and deletes them;
//! * [`prune_dead`] — drops logic outside the cone of influence of the
//!   module outputs (a thin wrapper over [`Module::cone_of_influence`]).
//!
//! Both passes preserve the input/output behaviour of the module; the
//! equivalence checker ([`crate::equiv`]) is used in this crate's tests to
//! machine-check that claim.

use crate::error::NetlistError;
use crate::module::{Module, ModuleBuilder};
use dic_logic::{BoolExpr, SignalId, SignalTable};
use std::collections::HashMap;

/// What [`constant_fold`] did; returned alongside the folded module.
#[derive(Clone, Debug, Default)]
pub struct FoldReport {
    /// Signals proven constant, with their values (informational; a
    /// constant wire kept as a module output is re-listed on every run).
    pub constants: Vec<(SignalId, bool)>,
    /// Wires removed from the netlist.
    pub removed_wires: usize,
    /// Latches removed from the netlist.
    pub removed_latches: usize,
    /// Driving functions rewritten by constant substitution.
    pub rewritten: usize,
}

impl FoldReport {
    /// Whether the pass changed the netlist structurally (removed a driver
    /// or rewrote a function) — `constant_fold` is idempotent under this
    /// notion.
    pub fn changed(&self) -> bool {
        self.removed_wires > 0 || self.removed_latches > 0 || self.rewritten > 0
    }
}

/// Propagates constants through `module` and removes the logic they pin.
///
/// A wire is constant when its function simplifies to `true`/`false` after
/// substituting already-known constants; a latch is constant when its
/// next-state function is a constant equal to its reset value (a latch
/// resetting to `0` whose next value is always `1` is *not* constant — it
/// steps once). Constant drivers are deleted; module outputs that became
/// constant keep a constant wire so the interface is unchanged.
///
/// # Errors
///
/// Rebuilding can only fail if `module` was already invalid
/// (see [`ModuleBuilder::finish`]).
pub fn constant_fold(
    module: &Module,
    table: &mut SignalTable,
) -> Result<(Module, FoldReport), NetlistError> {
    let known = infer_constants(module);

    // Pre-collect names (the builder takes the table mutably).
    let name_of = |id: SignalId, table: &SignalTable| table.name(id).to_owned();
    let input_names: Vec<String> = module.inputs().iter().map(|&i| name_of(i, table)).collect();
    let wire_parts: Vec<(String, SignalId, BoolExpr)> = module
        .wires()
        .iter()
        .map(|w| (name_of(w.output(), table), w.output(), substitute(w.func(), &known)))
        .collect();
    let latch_parts: Vec<(String, SignalId, BoolExpr, bool)> = module
        .latches()
        .iter()
        .map(|l| {
            (
                name_of(l.output(), table),
                l.output(),
                substitute(l.next(), &known),
                l.init(),
            )
        })
        .collect();
    let outputs: Vec<SignalId> = module.outputs().to_vec();

    let mut report = FoldReport::default();
    let mut constants: Vec<(SignalId, bool)> = known.iter().map(|(&s, &v)| (s, v)).collect();
    constants.sort();
    report.constants = constants;

    let mut b = ModuleBuilder::new(module.name(), table);
    for name in &input_names {
        b.input(name);
    }
    for (name, id, func) in &wire_parts {
        if known.contains_key(id) {
            // Keep constant *outputs* so the interface is unchanged.
            if outputs.contains(id) {
                b.wire(name, BoolExpr::Const(known[id]));
            } else {
                report.removed_wires += 1;
            }
            continue;
        }
        if module
            .wires()
            .iter()
            .find(|w| w.output() == *id)
            .is_some_and(|w| w.func() != func)
        {
            report.rewritten += 1;
        }
        b.wire(name, func.clone());
    }
    for (name, id, next, init) in &latch_parts {
        if known.contains_key(id) {
            if outputs.contains(id) {
                b.wire(name, BoolExpr::Const(known[id]));
            }
            report.removed_latches += 1;
            continue;
        }
        if module
            .latches()
            .iter()
            .find(|l| l.output() == *id)
            .is_some_and(|l| l.next() != next)
        {
            report.rewritten += 1;
        }
        b.latch(name, next.clone(), *init);
    }
    for &o in &outputs {
        b.mark_output(o);
    }
    Ok((b.finish()?, report))
}

/// Removes logic outside the cone of influence of the module outputs.
///
/// Behaviour on the outputs is unchanged; latches and wires that no output
/// transitively depends on are dropped. This is the pass that keeps the
/// explicit state space of [`dic_fsm::extract_fsm`] proportional to the
/// *relevant* logic.
pub fn prune_dead(module: &Module, table: &SignalTable) -> Module {
    let outputs: Vec<SignalId> = module.outputs().to_vec();
    module.cone_of_influence(&outputs, table)
}

/// Infers the signals of `module` that are provably constant: wires whose
/// function simplifies to a constant, and latches whose next-state
/// function is the constant equal to their reset value (sound by
/// induction over cycles). Shared by [`constant_fold`] and the equivalence
/// checker ([`crate::equiv`]).
pub fn infer_constants(module: &Module) -> HashMap<SignalId, bool> {
    let mut known: HashMap<SignalId, bool> = HashMap::new();
    // Fixpoint: each round substitutes the constants found so far.
    loop {
        let mut changed = false;
        for w in module.wires() {
            if known.contains_key(&w.output()) {
                continue;
            }
            if let Some(v) = substitute(w.func(), &known).as_const() {
                known.insert(w.output(), v);
                changed = true;
            }
        }
        for l in module.latches() {
            if known.contains_key(&l.output()) {
                continue;
            }
            if let Some(v) = substitute(l.next(), &known).as_const() {
                if v == l.init() {
                    known.insert(l.output(), v);
                    changed = true;
                }
            }
        }
        if !changed {
            return known;
        }
    }
}

/// Substitutes known constants into an expression.
fn substitute(e: &BoolExpr, known: &HashMap<SignalId, bool>) -> BoolExpr {
    let mut out = e.clone();
    for s in e.support() {
        if let Some(&v) = known.get(&s) {
            out = out.assign(s, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{equiv_check, EquivVerdict};
    use dic_logic::BoolExpr;

    /// A module with a tied-off enable: `en = false`, so the masked path
    /// `masked = d & en` is constantly 0 and `q` latches only `d`.
    fn tied(t: &mut SignalTable) -> Module {
        let mut b = ModuleBuilder::new("tied", t);
        let d = b.input("d");
        let en = b.wire("en", BoolExpr::ff());
        let masked = b.wire(
            "masked",
            BoolExpr::and([BoolExpr::var(d), BoolExpr::var(en)]),
        );
        let q = b.latch(
            "q",
            BoolExpr::or([BoolExpr::var(masked), BoolExpr::var(d)]),
            false,
        );
        b.mark_output(q);
        b.finish().expect("valid")
    }

    #[test]
    fn folds_tied_off_logic() {
        let mut t = SignalTable::new();
        let m = tied(&mut t);
        let (folded, report) = constant_fold(&m, &mut t).expect("folds");
        assert!(report.changed());
        // en and masked are gone.
        assert_eq!(report.removed_wires, 2);
        assert_eq!(folded.wires().len(), 0);
        assert_eq!(folded.latches().len(), 1);
        // The latch next-function no longer mentions masked.
        let q_next = folded.latches()[0].next();
        let d = t.lookup("d").unwrap();
        assert_eq!(q_next, &BoolExpr::var(d));
    }

    #[test]
    fn folding_preserves_behaviour() {
        let mut t = SignalTable::new();
        let m = tied(&mut t);
        let (folded, _) = constant_fold(&m, &mut t).expect("folds");
        assert!(matches!(
            equiv_check(&m, &folded, &t).expect("comparable"),
            EquivVerdict::Equivalent
        ));
    }

    #[test]
    fn constant_latch_requires_matching_init() {
        // q' = 1 with init 0: NOT constant (steps 0 -> 1). Must survive.
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("step", &mut t);
        let q = b.latch("q", BoolExpr::tt(), false);
        b.mark_output(q);
        let m = b.finish().expect("valid");
        let (folded, report) = constant_fold(&m, &mut t).expect("folds");
        assert!(!report.changed());
        assert_eq!(folded.latches().len(), 1);

        // q' = 1 with init 1: constant, folded to a constant output wire.
        let mut t2 = SignalTable::new();
        let mut b2 = ModuleBuilder::new("const", &mut t2);
        let q2 = b2.latch("q", BoolExpr::tt(), true);
        b2.mark_output(q2);
        let m2 = b2.finish().expect("valid");
        let (folded2, report2) = constant_fold(&m2, &mut t2).expect("folds");
        assert_eq!(report2.removed_latches, 1);
        assert_eq!(folded2.latches().len(), 0);
        assert_eq!(folded2.wires().len(), 1, "constant output wire kept");
        assert!(matches!(
            equiv_check(&m2, &folded2, &t2).expect("comparable"),
            EquivVerdict::Equivalent
        ));
    }

    #[test]
    fn chained_constants_propagate() {
        // a = true; b = !a (false); c = in | b  == in.
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("chain", &mut t);
        let i = b.input("in");
        let a = b.wire("a", BoolExpr::tt());
        let nb = b.wire("b", BoolExpr::var(a).not());
        let c = b.wire("c", BoolExpr::or([BoolExpr::var(i), BoolExpr::var(nb)]));
        b.mark_output(c);
        let m = b.finish().expect("valid");
        let (folded, report) = constant_fold(&m, &mut t).expect("folds");
        assert_eq!(report.removed_wires, 2);
        assert_eq!(folded.wires().len(), 1);
        let d = t.lookup("in").unwrap();
        assert_eq!(folded.wires()[0].func(), &BoolExpr::var(d));
    }

    #[test]
    fn prune_dead_drops_unobservable_latch() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("dead", &mut t);
        let i = b.input("i");
        let q = b.latch_from("q", i, false);
        b.latch_from("zombie", i, false); // never read by an output
        b.mark_output(q);
        let m = b.finish().expect("valid");
        assert_eq!(m.latches().len(), 2);
        let pruned = prune_dead(&m, &t);
        assert_eq!(pruned.latches().len(), 1);
        assert!(matches!(
            equiv_check(&m, &pruned, &t).expect("comparable"),
            EquivVerdict::Equivalent
        ));
    }
}
