//! Combinational/structural equivalence checking between modules.
//!
//! The optimization passes ([`crate::opt`]) and the cone-of-influence
//! reduction claim to preserve module behaviour; this module provides the
//! machine check. Two modules are compared *structurally over a common
//! state encoding*: latch outputs are treated as free cut points, and for
//! every module output and every matched latch the driving functions are
//! compared as BDDs over (inputs ∪ latch outputs).
//!
//! For purely combinational modules this decides functional equivalence
//! exactly. For sequential modules it is the standard sufficient check
//! (same reset values, equivalent next-state and output functions over the
//! shared encoding); it cannot equate modules that implement the same
//! behaviour with different state encodings — re-encoding equivalence is a
//! model-checking problem, which is what the rest of this workspace is for.

use crate::error::NetlistError;
use crate::module::Module;
use crate::opt::infer_constants;
use dic_logic::{Bdd, BddManager, SignalId, SignalTable, Valuation};
use std::collections::HashMap;

/// Outcome of [`equiv_check`].
#[derive(Clone, Debug)]
pub enum EquivVerdict {
    /// All outputs and matched latches agree.
    Equivalent,
    /// Some driven function differs; a distinguishing assignment over the
    /// cut points (inputs and latch outputs) is attached.
    Different {
        /// The signal whose driving function differs.
        signal: SignalId,
        /// An assignment under which the two functions disagree.
        witness: Valuation,
    },
}

impl EquivVerdict {
    /// Whether the verdict is [`EquivVerdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivVerdict::Equivalent)
    }
}

/// Checks structural equivalence of two modules over their common state
/// encoding (see the [module docs](self)).
///
/// # Errors
///
/// [`NetlistError::Parse`] when the interfaces are not comparable: the
/// modules differ in output sets, or in latch output sets, or a latch pair
/// disagrees on reset value (reported with the offending signal's name).
pub fn equiv_check(
    a: &Module,
    b: &Module,
    table: &SignalTable,
) -> Result<EquivVerdict, NetlistError> {
    let mismatch = |message: String| NetlistError::Parse { line: 0, message };

    let mut a_out: Vec<SignalId> = a.outputs().to_vec();
    let mut b_out: Vec<SignalId> = b.outputs().to_vec();
    a_out.sort();
    a_out.dedup();
    b_out.sort();
    b_out.dedup();
    if a_out != b_out {
        return Err(mismatch(format!(
            "output sets differ: {} vs {}",
            a.name(),
            b.name()
        )));
    }
    // Latches present on only one side are tolerated: after constant
    // folding a latch may disappear entirely. Shared latches (matched by
    // output signal) must agree on reset value and next-state function;
    // one-sided latches are cut points like inputs, and any influence they
    // have on behaviour is caught by the output comparison.
    let mut man = BddManager::new();

    // Function of every signal in terms of the cut points. Latches proven
    // constant (next ≡ reset value) are resolved to their constants so
    // that a side where `constant_fold` replaced such a latch by a
    // constant wire still compares equal.
    let funcs_a = module_functions(a, &mut man);
    let funcs_b = module_functions(b, &mut man);
    let consts_a = infer_constants(a);
    let consts_b = infer_constants(b);

    // Compare outputs.
    for &o in &a_out {
        let fa = resolved(o, &funcs_a, &consts_a, &mut man);
        let fb = resolved(o, &funcs_b, &consts_b, &mut man);
        let diff = man.xor(fa, fb);
        if let Some(cube) = man.any_sat(diff) {
            let mut witness = Valuation::all_false(table.len());
            for l in cube.lits() {
                witness.set(l.signal(), l.polarity());
            }
            return Ok(EquivVerdict::Different { signal: o, witness });
        }
    }

    // Compare shared latches: init values and next-state functions.
    for (sig, la, lb) in latch_pairs(a, b) {
        if la.init() != lb.init() {
            return Err(mismatch(format!(
                "latch {} resets to {} vs {}",
                table.name(sig),
                la.init(),
                lb.init()
            )));
        }
        let fa = expr_over_cuts(la.next(), &funcs_a, &mut man);
        let fb = expr_over_cuts(lb.next(), &funcs_b, &mut man);
        let diff = man.xor(fa, fb);
        if let Some(cube) = man.any_sat(diff) {
            let mut witness = Valuation::all_false(table.len());
            for l in cube.lits() {
                witness.set(l.signal(), l.polarity());
            }
            return Ok(EquivVerdict::Different {
                signal: sig,
                witness,
            });
        }
    }

    Ok(EquivVerdict::Equivalent)
}

/// Latch pairs present in both modules, by output signal.
fn latch_pairs<'a>(
    a: &'a Module,
    b: &'a Module,
) -> impl Iterator<Item = (SignalId, &'a crate::module::Latch, &'a crate::module::Latch)> {
    let by_sig: HashMap<SignalId, &crate::module::Latch> =
        b.latches().iter().map(|l| (l.output(), l)).collect();
    a.latches().iter().filter_map(move |la| {
        by_sig
            .get(&la.output())
            .map(|lb| (la.output(), la, *lb))
    })
}

/// BDDs of every *wire* in terms of the cut points (inputs and latch
/// outputs are BDD variables).
fn module_functions(m: &Module, man: &mut BddManager) -> HashMap<SignalId, Bdd> {
    let mut funcs: HashMap<SignalId, Bdd> = HashMap::new();
    for &idx in m.wire_order() {
        let w = &m.wires()[idx];
        let f = expr_over_cuts(w.func(), &funcs, man);
        funcs.insert(w.output(), f);
    }
    funcs
}

/// The BDD of a signal: its wire function if driven by a wire, its
/// constant if provably constant, otherwise a fresh variable (input or
/// latch output = cut point).
fn resolved(
    s: SignalId,
    funcs: &HashMap<SignalId, Bdd>,
    consts: &HashMap<SignalId, bool>,
    man: &mut BddManager,
) -> Bdd {
    if let Some(&f) = funcs.get(&s) {
        return f;
    }
    match consts.get(&s) {
        Some(true) => Bdd::TRUE,
        Some(false) => Bdd::FALSE,
        None => man.var_for_signal(s),
    }
}

/// Evaluates an expression into a BDD, resolving wire-driven signals
/// through `funcs` and everything else as variables.
fn expr_over_cuts(e: &dic_logic::BoolExpr, funcs: &HashMap<SignalId, Bdd>, man: &mut BddManager) -> Bdd {
    let mut f = man.from_expr(e);
    // Replace wire-driven signals by their functions (compose), innermost
    // first: wire_order guarantees `funcs` entries are already over cut
    // points only.
    for s in e.support() {
        if let Some(&g) = funcs.get(&s) {
            f = man.compose(f, s, g);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;
    use dic_logic::BoolExpr;

    /// Two structurally different implementations of XOR.
    #[test]
    fn equivalent_xor_implementations() {
        let mut t = SignalTable::new();
        let m1 = {
            let mut b = ModuleBuilder::new("xor1", &mut t);
            let x = b.input("x");
            let y = b.input("y");
            let o = b.wire("o", BoolExpr::xor(BoolExpr::var(x), BoolExpr::var(y)));
            b.mark_output(o);
            b.finish().expect("valid")
        };
        let m2 = {
            let mut b = ModuleBuilder::new("xor2", &mut t);
            let x = b.input("x");
            let y = b.input("y");
            // (x | y) & !(x & y), via intermediate wires.
            let or = b.wire("or_xy", BoolExpr::or([BoolExpr::var(x), BoolExpr::var(y)]));
            let and = b.wire("and_xy", BoolExpr::and([BoolExpr::var(x), BoolExpr::var(y)]));
            let o2 = b.wire(
                "o",
                BoolExpr::and([BoolExpr::var(or), BoolExpr::var(and).not()]),
            );
            b.mark_output(o2);
            b.finish().expect("valid")
        };
        assert!(equiv_check(&m1, &m2, &t).expect("comparable").is_equivalent());
    }

    #[test]
    fn different_functions_are_caught_with_witness() {
        let mut t = SignalTable::new();
        let m1 = {
            let mut b = ModuleBuilder::new("and", &mut t);
            let x = b.input("x");
            let y = b.input("y");
            let o = b.wire("o", BoolExpr::and([BoolExpr::var(x), BoolExpr::var(y)]));
            b.mark_output(o);
            b.finish().expect("valid")
        };
        let m2 = {
            let mut b = ModuleBuilder::new("or", &mut t);
            let x = b.input("x");
            let y = b.input("y");
            let o = b.wire("o", BoolExpr::or([BoolExpr::var(x), BoolExpr::var(y)]));
            b.mark_output(o);
            b.finish().expect("valid")
        };
        let verdict = equiv_check(&m1, &m2, &t).expect("comparable");
        let EquivVerdict::Different { signal, witness } = verdict else {
            panic!("AND and OR must differ");
        };
        assert_eq!(t.name(signal), "o");
        // The witness genuinely distinguishes: x ^ y on it.
        let x = t.lookup("x").unwrap();
        let y = t.lookup("y").unwrap();
        assert_ne!(witness.get(x) && witness.get(y), witness.get(x) || witness.get(y));
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let mut t = SignalTable::new();
        let m1 = {
            let mut b = ModuleBuilder::new("one", &mut t);
            let x = b.input("x");
            let o = b.wire("o", BoolExpr::var(x));
            b.mark_output(o);
            b.finish().expect("valid")
        };
        let m2 = {
            let mut b = ModuleBuilder::new("two", &mut t);
            let x = b.input("x");
            let p = b.wire("p", BoolExpr::var(x));
            b.mark_output(p);
            b.finish().expect("valid")
        };
        assert!(equiv_check(&m1, &m2, &t).is_err());
    }

    #[test]
    fn sequential_next_functions_compared() {
        let mut t = SignalTable::new();
        let m1 = {
            let mut b = ModuleBuilder::new("seq1", &mut t);
            let d = b.input("d");
            let q = b.latch("q", BoolExpr::var(d), false);
            b.mark_output(q);
            b.finish().expect("valid")
        };
        // Same latch, next-function routed through a wire.
        let m2 = {
            let mut b = ModuleBuilder::new("seq2", &mut t);
            let d = b.input("d");
            let buf = b.wire("buf", BoolExpr::var(d));
            let q = b.table().intern("q");
            b.latch("q", BoolExpr::var(buf), false);
            b.mark_output(q);
            b.finish().expect("valid")
        };
        assert!(equiv_check(&m1, &m2, &t).expect("comparable").is_equivalent());
        // Inverted next-function differs.
        let m3 = {
            let mut b = ModuleBuilder::new("seq3", &mut t);
            let d = b.input("d");
            let q = b.latch("q", BoolExpr::var(d).not(), false);
            b.mark_output(q);
            b.finish().expect("valid")
        };
        assert!(!equiv_check(&m1, &m3, &t).expect("comparable").is_equivalent());
    }

    #[test]
    fn reset_mismatch_is_an_error() {
        let mut t = SignalTable::new();
        let mk = |init: bool, t: &mut SignalTable, name: &str| {
            let mut b = ModuleBuilder::new(name, t);
            let d = b.input("d");
            let q = b.latch("q", BoolExpr::var(d), init);
            b.mark_output(q);
            b.finish().expect("valid")
        };
        let m1 = mk(false, &mut t, "r0");
        let m2 = mk(true, &mut t, "r1");
        assert!(equiv_check(&m1, &m2, &t).is_err());
    }
}
