//! Structural RTL for the SpecMatcher design-intent-coverage toolkit.
//!
//! The paper's *concrete modules* — glue logic and pre-verified cells given
//! as RTL rather than as properties — are represented here as synchronous
//! netlists:
//!
//! * [`Module`] — named blocks of [`Wire`]s (combinational functions) and
//!   [`Latch`]es (D-type state elements with reset values), built either
//!   programmatically through [`ModuleBuilder`] or parsed from the tiny
//!   structural **SNL** text format ([`parse_snl`]),
//! * [`Module::compose`] — structural composition by signal-name identity,
//!   realizing the paper's "module M consisting of M1, …, Mk",
//! * [`Simulator`] / [`Trace`] — a cycle-accurate two-valued simulator with
//!   ASCII waveform rendering, used to regenerate the paper's Figure 3
//!   timing diagrams.
//!
//! # Example
//!
//! ```
//! use dic_logic::SignalTable;
//! use dic_netlist::{ModuleBuilder, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut t = SignalTable::new();
//! // M1 of the paper's Fig. 2: grant masking by the cache wait signal.
//! let mut b = ModuleBuilder::new("M1", &mut t);
//! let n1 = b.input("n1");
//! let wait = b.input("wait");
//! let g1 = b.and_gate("g1", [n1], [wait]); // g1 = n1 & !wait
//! b.mark_output(g1);
//! let m1 = b.finish()?;
//!
//! let mut sim = Simulator::new(&m1, &t)?;
//! let out = sim.step(&[(n1, true), (wait, false)]);
//! assert!(out.get(g1));
//! # Ok(())
//! # }
//! ```

pub mod equiv;
pub mod error;
pub mod module;
pub mod opt;
pub mod sim;
pub mod snl;
pub mod vcd;

pub use equiv::{equiv_check, EquivVerdict};
pub use error::NetlistError;
pub use opt::{constant_fold, infer_constants, prune_dead, FoldReport};
pub use module::{Latch, Module, ModuleBuilder, Wire};
pub use sim::{Simulator, Trace};
pub use snl::parse_snl;
pub use vcd::to_vcd;
