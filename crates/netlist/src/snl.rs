//! SNL — a tiny structural netlist text format.
//!
//! The paper's tool accepts "the RTL of the remaining modules"; SNL is the
//! equivalent input format here, small enough to write by hand and regular
//! enough to machine-generate:
//!
//! ```text
//! # Memory arbitration glue (Fig. 2 'M1')
//! module M1
//!   input n1 n2 wait
//!   output g1 g2
//!   assign g1 = n1 & !wait
//!   assign g2 = n2 & !wait
//! endmodule
//!
//! module L
//!   input d
//!   output q
//!   latch q = d init 0
//! endmodule
//! ```
//!
//! * `assign <name> = <boolexpr>` defines a combinational wire,
//! * `latch <name> = <boolexpr> init <0|1>` defines a D-latch with reset
//!   value,
//! * `#` and `//` start comments,
//! * every referenced signal must be an `input` or driven in the module.

use crate::error::NetlistError;
use crate::module::{Module, ModuleBuilder};
use dic_logic::{BoolExpr, SignalTable};

/// Parses SNL text into modules, interning signals in `table`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a 1-based line number for syntax
/// errors, and the corresponding validation errors for semantic problems
/// (double drivers, combinational loops, undriven outputs).
///
/// # Example
///
/// ```
/// use dic_logic::SignalTable;
/// use dic_netlist::parse_snl;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = SignalTable::new();
/// let modules = parse_snl(
///     "module inv\n  input a\n  output y\n  assign y = !a\nendmodule\n",
///     &mut t,
/// )?;
/// assert_eq!(modules.len(), 1);
/// assert_eq!(modules[0].name(), "inv");
/// # Ok(())
/// # }
/// ```
pub fn parse_snl(src: &str, table: &mut SignalTable) -> Result<Vec<Module>, NetlistError> {
    let mut modules = Vec::new();
    let mut pending: Option<Pending> = None;

    for (lineno, raw) in src.lines().enumerate() {
        let line = raw
            .split('#')
            .next()
            .unwrap_or("")
            .split("//")
            .next()
            .unwrap_or("")
            .trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line");
        match keyword {
            "module" => {
                if pending.is_some() {
                    return Err(NetlistError::Parse {
                        line: lineno,
                        message: "nested module".into(),
                    });
                }
                let name = words.next().ok_or(NetlistError::Parse {
                    line: lineno,
                    message: "module needs a name".into(),
                })?;
                pending = Some(Pending {
                    name: name.to_owned(),
                    inputs: Vec::new(),
                    outputs: Vec::new(),
                    assigns: Vec::new(),
                    latches: Vec::new(),
                });
            }
            "endmodule" => {
                let p = pending.take().ok_or(NetlistError::Parse {
                    line: lineno,
                    message: "endmodule outside module".into(),
                })?;
                modules.push(build(p, table)?);
            }
            "input" | "output" => {
                let p = pending.as_mut().ok_or(NetlistError::Parse {
                    line: lineno,
                    message: format!("{keyword} outside module"),
                })?;
                let target = if keyword == "input" {
                    &mut p.inputs
                } else {
                    &mut p.outputs
                };
                for w in words {
                    target.push(w.to_owned());
                }
            }
            "assign" => {
                let p = pending.as_mut().ok_or(NetlistError::Parse {
                    line: lineno,
                    message: "assign outside module".into(),
                })?;
                let rest = line["assign".len()..].trim();
                let (name, expr) = rest.split_once('=').ok_or(NetlistError::Parse {
                    line: lineno,
                    message: "assign needs '='".into(),
                })?;
                p.assigns
                    .push((name.trim().to_owned(), expr.trim().to_owned(), lineno));
            }
            "latch" => {
                let p = pending.as_mut().ok_or(NetlistError::Parse {
                    line: lineno,
                    message: "latch outside module".into(),
                })?;
                let rest = line["latch".len()..].trim();
                let (name, rhs) = rest.split_once('=').ok_or(NetlistError::Parse {
                    line: lineno,
                    message: "latch needs '='".into(),
                })?;
                let (expr, init) = match rhs.rsplit_once(" init ") {
                    Some((e, i)) => {
                        let init = match i.trim() {
                            "0" => false,
                            "1" => true,
                            other => {
                                return Err(NetlistError::Parse {
                                    line: lineno,
                                    message: format!("bad init value {other:?}"),
                                })
                            }
                        };
                        (e, init)
                    }
                    None => (rhs, false),
                };
                p.latches.push((
                    name.trim().to_owned(),
                    expr.trim().to_owned(),
                    init,
                    lineno,
                ));
            }
            other => {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: format!("unknown keyword {other:?}"),
                })
            }
        }
    }
    if pending.is_some() {
        return Err(NetlistError::Parse {
            line: src.lines().count(),
            message: "missing endmodule".into(),
        });
    }
    Ok(modules)
}

/// Statements of one module collected before building (the builder holds a
/// mutable borrow of the signal table, so parsing and building are split).
struct Pending {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    assigns: Vec<(String, String, usize)>,
    latches: Vec<(String, String, bool, usize)>,
}

fn build(p: Pending, table: &mut SignalTable) -> Result<Module, NetlistError> {
    let mut b = ModuleBuilder::new(&p.name, table);
    for i in &p.inputs {
        b.input(i);
    }
    for (wire_name, expr_src, line) in &p.assigns {
        let expr = parse_expr(expr_src, b.table(), *line)?;
        b.wire(wire_name, expr);
    }
    for (latch_name, expr_src, init, line) in &p.latches {
        let expr = parse_expr(expr_src, b.table(), *line)?;
        b.latch(latch_name, expr, *init);
    }
    for o in &p.outputs {
        let id = b.table().intern(o);
        b.mark_output(id);
    }
    b.finish()
}

fn parse_expr(
    src: &str,
    table: &mut SignalTable,
    line: usize,
) -> Result<BoolExpr, NetlistError> {
    BoolExpr::parse(src, table).map_err(|e| NetlistError::Parse {
        line,
        message: format!("in expression {src:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn parses_simple_module() {
        let mut t = SignalTable::new();
        let src = "
# arbiter glue
module M1
  input n1 n2 wait
  output g1 g2
  assign g1 = n1 & !wait
  assign g2 = n2 & !wait
endmodule
";
        let ms = parse_snl(src, &mut t).expect("parse");
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!(m.name(), "M1");
        assert_eq!(m.inputs().len(), 3);
        assert_eq!(m.outputs().len(), 2);
        assert_eq!(m.wires().len(), 2);
    }

    #[test]
    fn parses_latches_and_simulates() {
        let mut t = SignalTable::new();
        let src = "
module toggler
  input en
  output q
  latch q = q ^ en init 0
endmodule
";
        let ms = parse_snl(src, &mut t).expect("parse");
        let q = t.lookup("q").unwrap();
        let en = t.lookup("en").unwrap();
        let mut sim = Simulator::new(&ms[0], &t).expect("sim");
        assert!(!sim.state().get(q));
        sim.step(&[(en, true)]);
        assert!(sim.state().get(q));
        sim.step(&[(en, true)]);
        assert!(!sim.state().get(q));
    }

    #[test]
    fn multiple_modules_share_signals() {
        let mut t = SignalTable::new();
        let src = "
module a
  input x
  output y
  assign y = !x
endmodule
module b
  input y
  output z
  assign z = !y
endmodule
";
        let ms = parse_snl(src, &mut t).expect("parse");
        assert_eq!(ms.len(), 2);
        // Both modules see the *same* y.
        assert_eq!(ms[0].outputs()[0], ms[1].inputs()[0]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut t = SignalTable::new();
        let src = "
// leading comment
module m   # trailing comment
  input a

  output y  // another
  assign y = a
endmodule
";
        assert_eq!(parse_snl(src, &mut t).expect("parse").len(), 1);
    }

    #[test]
    fn error_line_numbers() {
        let mut t = SignalTable::new();
        let src = "module m\n  input a\n  bogus y = a\nendmodule\n";
        match parse_snl(src, &mut t) {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_endmodule_rejected() {
        let mut t = SignalTable::new();
        assert!(parse_snl("module m\n  input a\n", &mut t).is_err());
    }

    #[test]
    fn default_init_is_zero() {
        let mut t = SignalTable::new();
        let ms = parse_snl(
            "module m\n input d\n output q\n latch q = d\nendmodule\n",
            &mut t,
        )
        .expect("parse");
        assert!(!ms[0].latches()[0].init());
    }

    #[test]
    fn round_trip_through_to_snl() {
        let mut t = SignalTable::new();
        let src = "
module rt
  input a b
  output q y
  assign y = a & !b | b & !a
  latch q = y | q init 1
endmodule
";
        let ms = parse_snl(src, &mut t).expect("parse");
        let printed = ms[0].to_snl(&t);
        let ms2 = parse_snl(&printed, &mut t).expect("reparse");
        assert_eq!(ms2[0].name(), "rt");
        assert_eq!(ms2[0].wires().len(), ms[0].wires().len());
        assert!(ms2[0].latches()[0].init());
        // Same structure: identical SNL after a second round trip.
        assert_eq!(printed, ms2[0].to_snl(&t));
    }
}
