//! Cycle-accurate two-valued simulation and waveform rendering.
//!
//! Used to regenerate the paper's Fig. 3 timing diagrams (cache hit and
//! cache miss scenarios of the memory arbitration logic) and as a
//! cross-check for FSM extraction.

use crate::module::Module;
use crate::NetlistError;
use dic_logic::{SignalId, SignalTable, Valuation};
use std::fmt::Write as _;

/// A cycle-accurate simulator for a [`Module`].
///
/// Semantics per cycle: primary inputs are applied, wires settle (evaluated
/// in dependency order), outputs are observable; at the clock edge all
/// latches simultaneously load their next-state functions.
///
/// # Example
///
/// ```
/// use dic_logic::{BoolExpr, SignalTable};
/// use dic_netlist::{ModuleBuilder, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = SignalTable::new();
/// let mut b = ModuleBuilder::new("counter_bit", &mut t);
/// let en = b.input("en");
/// let q = b.table().intern("q");
/// b.latch("q", BoolExpr::xor(BoolExpr::var(q), BoolExpr::var(en)), false);
/// let m = b.finish()?;
///
/// let mut sim = Simulator::new(&m, &t)?;
/// assert!(!sim.state().get(q));
/// sim.step(&[(en, true)]); // q toggles at the edge
/// assert!(sim.state().get(q));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'m> {
    module: &'m Module,
    state: Valuation,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator with latches at their reset values and all other
    /// signals low.
    ///
    /// # Errors
    ///
    /// Currently infallible for validated modules; returns `Result` so the
    /// signature stays stable if later validation is added.
    pub fn new(module: &'m Module, table: &SignalTable) -> Result<Self, NetlistError> {
        let mut state = Valuation::all_false(table.len());
        module.apply_reset(&mut state);
        let mut sim = Simulator { module, state };
        sim.settle(&[]);
        Ok(sim)
    }

    /// The current settled valuation (after the last [`Simulator::step`]).
    pub fn state(&self) -> &Valuation {
        &self.state
    }

    /// Applies inputs and lets the combinational logic settle, *without*
    /// clocking the latches. Returns the settled valuation.
    pub fn settle(&mut self, inputs: &[(SignalId, bool)]) -> &Valuation {
        for &(s, v) in inputs {
            self.state.set(s, v);
        }
        self.module.eval_wires(&mut self.state);
        &self.state
    }

    /// One full clock cycle: apply inputs, settle wires, then clock all
    /// latches. Returns the valuation *before* the edge (what a waveform
    /// viewer shows for the cycle).
    pub fn step(&mut self, inputs: &[(SignalId, bool)]) -> Valuation {
        self.settle(inputs);
        let observed = self.state.clone();
        let next = self.module.next_latch_values(&self.state);
        for (l, v) in self.module.latches().iter().zip(next) {
            self.state.set(l.output(), v);
        }
        // Re-settle so `state()` reflects the new cycle (with held inputs).
        self.module.eval_wires(&mut self.state);
        observed
    }

    /// Runs a stimulus (one input vector per cycle) and records the trace.
    pub fn run(&mut self, stimulus: &[Vec<(SignalId, bool)>]) -> Trace {
        let mut states = Vec::with_capacity(stimulus.len());
        for cycle in stimulus {
            states.push(self.step(cycle));
        }
        Trace { states }
    }
}

/// A recorded simulation trace: one settled valuation per cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    states: Vec<Valuation>,
}

impl Trace {
    /// Builds a trace from explicit per-cycle valuations.
    pub fn from_states(states: Vec<Valuation>) -> Self {
        Trace { states }
    }

    /// The recorded valuations.
    pub fn states(&self) -> &[Valuation] {
        &self.states
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no cycle was recorded.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Value of `signal` at `cycle`.
    pub fn value(&self, cycle: usize, signal: SignalId) -> bool {
        self.states[cycle].get(signal)
    }

    /// Renders an ASCII timing diagram for the given signals, in the style
    /// of the paper's Fig. 3:
    ///
    /// ```text
    /// r1   : ▔▔▁▁▁
    /// wait : ▁▁▔▔▁
    /// ```
    ///
    /// High is `▔`, low is `▁`.
    pub fn render(&self, table: &SignalTable, signals: &[SignalId]) -> String {
        let name_width = signals
            .iter()
            .map(|&s| table.name(s).len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        // Header with cycle numbers (mod 10 to stay one char wide).
        let _ = write!(out, "{:name_width$}   ", "");
        for c in 0..self.len() {
            let _ = write!(out, "{}", c % 10);
        }
        out.push('\n');
        for &s in signals {
            let _ = write!(out, "{:name_width$} : ", table.name(s));
            for st in &self.states {
                out.push(if st.get(s) { '▔' } else { '▁' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;
    use dic_logic::BoolExpr;

    /// A 2-bit shift register: q2' = q1, q1' = d.
    fn shift_register(t: &mut SignalTable) -> (Module, SignalId, SignalId, SignalId) {
        let mut b = ModuleBuilder::new("shift", t);
        let d = b.input("d");
        let q1 = b.latch_from("q1", d, false);
        let q2 = b.latch_from("q2", q1, false);
        b.mark_output(q2);
        (b.finish().expect("valid"), d, q1, q2)
    }

    #[test]
    fn latches_delay_by_one_cycle() {
        let mut t = SignalTable::new();
        let (m, d, q1, q2) = shift_register(&mut t);
        let mut sim = Simulator::new(&m, &t).expect("sim");
        let tr = sim.run(&[
            vec![(d, true)],
            vec![(d, false)],
            vec![(d, false)],
            vec![(d, false)],
        ]);
        // d pulses at cycle 0; q1 sees it at cycle 1; q2 at cycle 2.
        assert!(tr.value(0, d) && !tr.value(0, q1) && !tr.value(0, q2));
        assert!(!tr.value(1, d) && tr.value(1, q1) && !tr.value(1, q2));
        assert!(!tr.value(2, q1) && tr.value(2, q2));
        assert!(!tr.value(3, q2));
    }

    #[test]
    fn reset_values_respected() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let q = b.latch("q", BoolExpr::ff(), true);
        b.mark_output(q);
        let m = b.finish().expect("valid");
        let mut sim = Simulator::new(&m, &t).expect("sim");
        assert!(sim.state().get(q), "starts at reset value 1");
        sim.step(&[]);
        assert!(!sim.state().get(q), "next function forces 0");
    }

    #[test]
    fn combinational_logic_settles_within_cycle() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        let nb = b.not_gate("nb", a);
        let both = b.or_gate("both", [a, nb], []);
        b.mark_output(both);
        let m = b.finish().expect("valid");
        let mut sim = Simulator::new(&m, &t).expect("sim");
        for v in [false, true] {
            let st = sim.step(&[(a, v)]);
            assert!(st.get(both), "tautology wire must always read 1");
        }
    }

    #[test]
    fn inputs_hold_between_steps() {
        let mut t = SignalTable::new();
        let (m, d, q1, _q2) = shift_register(&mut t);
        let mut sim = Simulator::new(&m, &t).expect("sim");
        sim.step(&[(d, true)]);
        // No new assignment to d: it holds its value.
        let st = sim.step(&[]);
        assert!(st.get(d));
        assert!(st.get(q1));
    }

    #[test]
    fn trace_render_shape() {
        let mut t = SignalTable::new();
        let (m, d, _q1, q2) = shift_register(&mut t);
        let mut sim = Simulator::new(&m, &t).expect("sim");
        let tr = sim.run(&[vec![(d, true)], vec![(d, false)], vec![], vec![]]);
        let art = tr.render(&t, &[d, q2]);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 signals
        assert!(lines[0].contains("0123"));
        assert!(lines[1].starts_with("d "));
        assert!(lines[1].contains("▔▁▁▁"));
        assert!(lines[2].contains("▁▁▔▔") || lines[2].contains("▁▁▔▁"));
    }
}
