//! Property-based tests for the LTL crate: printer/parser round trips and
//! semantics-preserving transformations, checked on random lasso words.

use dic_logic::SignalTable;
use dic_ltl::random::{random_formula, random_word, XorShift64};
use dic_ltl::Ltl;
use proptest::prelude::*;

fn universe() -> (SignalTable, Vec<dic_logic::SignalId>) {
    let mut t = SignalTable::new();
    let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r"), t.intern("s")];
    (t, atoms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(seed in 1u64..5000, budget in 1usize..25) {
        let (mut t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        let shown = f.display(&t).to_string();
        let reparsed = Ltl::parse(&shown, &mut t)
            .unwrap_or_else(|e| panic!("printed form {shown:?} failed to parse: {e}"));
        prop_assert_eq!(&f, &reparsed, "printed {} reparsed differently", shown);
    }

    #[test]
    fn nnf_preserves_lasso_semantics(
        seed in 1u64..5000,
        budget in 1usize..20,
        prefix in 0usize..4,
        loop_len in 1usize..5,
    ) {
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        let w = random_word(&mut rng, atoms.len(), prefix, loop_len);
        prop_assert_eq!(f.holds_on(&w), f.nnf().holds_on(&w));
    }

    #[test]
    fn core_nnf_preserves_semantics_and_removes_gf(
        seed in 1u64..5000,
        budget in 1usize..20,
        prefix in 0usize..4,
        loop_len in 1usize..5,
    ) {
        use dic_ltl::LtlNode;
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        let w = random_word(&mut rng, atoms.len(), prefix, loop_len);
        let core = f.core_nnf();
        prop_assert_eq!(f.holds_on(&w), core.holds_on(&w));
        // core form contains no Globally/Finally/Not-above-non-atom.
        for occ in core.positions() {
            match occ.subformula.node() {
                LtlNode::Globally(_) | LtlNode::Finally(_) => {
                    prop_assert!(false, "core form still has G/F: {:?}", core);
                }
                LtlNode::Not(inner) => {
                    prop_assert!(
                        matches!(inner.node(), LtlNode::Atom(_)),
                        "negation above non-atom in {:?}",
                        core
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn double_negation_preserves_semantics(
        seed in 1u64..5000,
        budget in 1usize..20,
        prefix in 0usize..4,
        loop_len in 1usize..5,
    ) {
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        let w = random_word(&mut rng, atoms.len(), prefix, loop_len);
        let nn = Ltl::not(Ltl::not(f.clone()));
        prop_assert_eq!(f.holds_on(&w), nn.holds_on(&w));
        // And negation flips truth.
        prop_assert_eq!(f.holds_on(&w), !Ltl::not(f).holds_on(&w));
    }

    #[test]
    fn replace_with_self_is_identity(seed in 1u64..5000, budget in 1usize..20) {
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        for occ in f.positions() {
            let replaced = f
                .replace_at(&occ.position, occ.subformula.clone())
                .expect("position exists");
            // Smart constructors may locally re-simplify, but replacing a
            // subformula by itself must preserve lasso semantics.
            let w = random_word(&mut rng, atoms.len(), 2, 3);
            prop_assert_eq!(f.holds_on(&w), replaced.holds_on(&w));
        }
    }

    #[test]
    fn weakening_positive_positions_weakens(
        seed in 1u64..2000,
        budget in 1usize..15,
        prefix in 0usize..3,
        loop_len in 1usize..4,
    ) {
        use dic_ltl::Polarity;
        // Replacing a positive occurrence g by (g | x) can only turn the
        // whole formula from false to true, never true to false — i.e. the
        // result is weaker. Checked empirically on random words.
        let (_t, atoms) = universe();
        let mut rng = XorShift64::new(seed);
        let f = random_formula(&mut rng, &atoms, budget);
        let extra = Ltl::atom(atoms[0]);
        let w = random_word(&mut rng, atoms.len(), prefix, loop_len);
        for occ in f.positions() {
            let weaker_sub = match occ.polarity {
                Polarity::Positive => Ltl::or([occ.subformula.clone(), extra.clone()]),
                Polarity::Negative => Ltl::and([occ.subformula.clone(), extra.clone()]),
            };
            let weakened = f.replace_at(&occ.position, weaker_sub).expect("pos");
            if f.holds_on(&w) {
                prop_assert!(
                    weakened.holds_on(&w),
                    "weakening at {} made {:?} false on a word where it held",
                    occ.position, f
                );
            }
        }
    }
}
