//! Linear temporal logic for the SpecMatcher design-intent-coverage toolkit.
//!
//! This crate implements the specification language of the paper:
//!
//! * [`Ltl`] — an immutable, cheaply clonable LTL AST over interned
//!   [`SignalId`](dic_logic::SignalId)s, with smart constructors that apply
//!   the obvious simplifications,
//! * a parser ([`Ltl::parse`]) and a pretty printer ([`Ltl::display`]) that
//!   round-trip,
//! * negation normal form ([`Ltl::nnf`]) and the U/R-core form used by the
//!   automaton translation ([`Ltl::core_nnf`]),
//! * semantics on ultimately periodic words ([`LassoWord`], [`Ltl::holds_on`])
//!   — the executable definition of a *run* from the paper's Section 2, used
//!   as the test oracle for the automaton construction,
//! * syntactic positions with polarity ([`Ltl::positions`],
//!   [`Ltl::replace_at`]) — the machinery behind the paper's
//!   structure-preserving weakening (Algorithm 1, steps 2(c)/2(d)),
//! * [`TemporalCube`] — bounded conjunctions of `X^k literal` terms (the
//!   "uncovered terms" `UM` of Algorithm 1) with a BDD bridge for the
//!   universal quantification of step 2(b).
//!
//! # Example
//!
//! ```
//! use dic_logic::SignalTable;
//! use dic_ltl::Ltl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sigs = SignalTable::new();
//! // The architectural intent of the paper's Example 1.
//! let a = Ltl::parse(
//!     "G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))",
//!     &mut sigs,
//! )?;
//! assert_eq!(a.atoms().len(), 5);
//! let printed = a.display(&sigs).to_string();
//! let reparsed = Ltl::parse(&printed, &mut sigs)?;
//! assert_eq!(a, reparsed);
//! # Ok(())
//! # }
//! ```

pub mod cube;
pub mod formula;
pub mod parse;
pub mod position;
pub mod random;
pub mod rewrite;
pub mod semantics;

pub use cube::{PositionedVars, TemporalCube};
pub use formula::{Ltl, LtlNode};
pub use parse::ParseLtlError;
pub use position::{Polarity, Position};
pub use semantics::LassoWord;
