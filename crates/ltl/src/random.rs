//! Random LTL formula generation (for fuzz-style tests and benchmarks).
//!
//! The generator is deterministic given the seed, producing formulas in the
//! operator set of the paper (`! & | X U R G F`), with sizes controlled by a
//! node budget. It lives in the library (not `#[cfg(test)]`) because the
//! automata crate and the benchmark harness both fuzz against it.

use crate::formula::Ltl;
use dic_logic::SignalId;

/// A tiny deterministic PRNG (xorshift64*), so the crate does not need a
/// hard dependency on `rand` for its public API.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a non-zero seed (0 is mapped to a constant).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (bound must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// A random boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Generates a random LTL formula over `atoms` with roughly `budget` nodes.
///
/// # Panics
///
/// Panics if `atoms` is empty.
///
/// # Example
///
/// ```
/// use dic_logic::SignalTable;
/// use dic_ltl::random::{random_formula, XorShift64};
///
/// let mut t = SignalTable::new();
/// let atoms = vec![t.intern("p"), t.intern("q")];
/// let mut rng = XorShift64::new(42);
/// let f = random_formula(&mut rng, &atoms, 12);
/// assert!(f.size() <= 3 * 12); // budget is approximate
/// ```
pub fn random_formula(rng: &mut XorShift64, atoms: &[SignalId], budget: usize) -> Ltl {
    assert!(!atoms.is_empty(), "need at least one atom");
    if budget <= 1 {
        let a = Ltl::atom(atoms[rng.below(atoms.len())]);
        return if rng.flip() { a } else { Ltl::not(a) };
    }
    match rng.below(8) {
        0 => Ltl::not(random_formula(rng, atoms, budget - 1)),
        1 => {
            let half = budget / 2;
            Ltl::and([
                random_formula(rng, atoms, half),
                random_formula(rng, atoms, budget - half),
            ])
        }
        2 => {
            let half = budget / 2;
            Ltl::or([
                random_formula(rng, atoms, half),
                random_formula(rng, atoms, budget - half),
            ])
        }
        3 => Ltl::next(random_formula(rng, atoms, budget - 1)),
        4 => {
            let half = budget / 2;
            Ltl::until(
                random_formula(rng, atoms, half),
                random_formula(rng, atoms, budget - half),
            )
        }
        5 => {
            let half = budget / 2;
            Ltl::release(
                random_formula(rng, atoms, half),
                random_formula(rng, atoms, budget - half),
            )
        }
        6 => Ltl::globally(random_formula(rng, atoms, budget - 1)),
        _ => Ltl::finally(random_formula(rng, atoms, budget - 1)),
    }
}

/// Generates a random lasso word over `nsignals` signals with the given
/// prefix and loop lengths.
pub fn random_word(
    rng: &mut XorShift64,
    nsignals: usize,
    prefix_len: usize,
    loop_len: usize,
) -> crate::semantics::LassoWord {
    use dic_logic::Valuation;
    assert!(loop_len > 0, "loop must be non-empty");
    let total = prefix_len + loop_len;
    let states = (0..total)
        .map(|_| {
            let mut v = Valuation::all_false(nsignals);
            for i in 0..nsignals {
                if rng.flip() {
                    v.set(dic_logic::SignalId::from_index(i), true);
                }
            }
            v
        })
        .collect();
    crate::semantics::LassoWord::new(states, prefix_len).expect("loop_len > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::SignalTable;

    #[test]
    fn deterministic_given_seed() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
        let f1 = random_formula(&mut XorShift64::new(7), &atoms, 20);
        let f2 = random_formula(&mut XorShift64::new(7), &atoms, 20);
        assert_eq!(f1, f2);
    }

    #[test]
    fn stays_within_atom_set() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q")];
        for seed in 1..20 {
            let f = random_formula(&mut XorShift64::new(seed), &atoms, 15);
            for a in f.atoms() {
                assert!(atoms.contains(&a));
            }
        }
    }

    #[test]
    fn random_word_shape() {
        let mut rng = XorShift64::new(3);
        let w = random_word(&mut rng, 4, 2, 3);
        assert_eq!(w.len(), 5);
        assert_eq!(w.loop_start(), 2);
    }

    #[test]
    fn nnf_agrees_on_random_formulas_and_words() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
        for seed in 1..40 {
            let mut rng = XorShift64::new(seed);
            let f = random_formula(&mut rng, &atoms, 12);
            let w = random_word(&mut rng, atoms.len(), 2, 3);
            assert_eq!(f.holds_on(&w), f.nnf().holds_on(&w), "nnf broke {f:?}");
            assert_eq!(
                f.holds_on(&w),
                f.core_nnf().holds_on(&w),
                "core_nnf broke {f:?}"
            );
        }
    }
}
