//! LTL semantics on ultimately periodic words.
//!
//! The paper's Definition 1 talks about *runs*: infinite sequences of states
//! (valuations). Every counterexample produced by an explicit-state model
//! checker is an ultimately periodic run — a finite prefix followed by a
//! repeated loop — and every LTL formula that is satisfiable at all is
//! satisfiable by such a *lasso*. This module evaluates formulas on lassos
//! exactly, which gives us an executable oracle for testing the automaton
//! translation and the model checker.

use crate::formula::{Ltl, LtlNode};
use dic_logic::Valuation;

/// An ultimately periodic infinite word `u · v^ω` over valuations.
///
/// `states[0..loop_start]` is the finite prefix `u`;
/// `states[loop_start..]` is the loop `v`, which must be non-empty.
///
/// # Example
///
/// ```
/// use dic_logic::{SignalTable, Valuation};
/// use dic_ltl::{LassoWord, Ltl};
///
/// let mut t = SignalTable::new();
/// let p = t.intern("p");
/// let mut on = Valuation::all_false(1);
/// on.set(p, true);
/// let off = Valuation::all_false(1);
///
/// // word: off, then (on)^ω  — satisfies F p and X G p but not p.
/// let w = LassoWord::new(vec![off, on], 1).expect("well-formed");
/// assert!(Ltl::finally(Ltl::atom(p)).holds_on(&w));
/// assert!(!Ltl::atom(p).holds_on(&w));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LassoWord {
    states: Vec<Valuation>,
    loop_start: usize,
}

impl LassoWord {
    /// Creates a lasso word; `loop_start` must index into `states`.
    ///
    /// Returns `None` if `states` is empty or `loop_start >= states.len()`.
    pub fn new(states: Vec<Valuation>, loop_start: usize) -> Option<Self> {
        if states.is_empty() || loop_start >= states.len() {
            return None;
        }
        Some(LassoWord { states, loop_start })
    }

    /// The stored states (prefix followed by one copy of the loop).
    pub fn states(&self) -> &[Valuation] {
        &self.states
    }

    /// Index of the first loop state.
    pub fn loop_start(&self) -> usize {
        self.loop_start
    }

    /// Number of stored positions.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// A lasso always denotes an infinite word, so it is never "empty";
    /// provided for API completeness (always `false`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The valuation at absolute position `i` of the infinite word.
    pub fn at(&self, i: usize) -> &Valuation {
        if i < self.states.len() {
            &self.states[i]
        } else {
            let loop_len = self.states.len() - self.loop_start;
            &self.states[self.loop_start + (i - self.loop_start) % loop_len]
        }
    }

    /// Successor of a stored position (wraps the last position to
    /// `loop_start`).
    pub fn succ(&self, i: usize) -> usize {
        if i + 1 < self.states.len() {
            i + 1
        } else {
            self.loop_start
        }
    }
}

impl Ltl {
    /// Whether the formula holds at position 0 of the lasso word.
    pub fn holds_on(&self, word: &LassoWord) -> bool {
        self.eval_positions(word)[0]
    }

    /// Truth value of the formula at every stored position of the word.
    ///
    /// Temporal operators are evaluated by fixpoint iteration over the lasso
    /// graph (each position has exactly one successor, the last wrapping to
    /// the loop start), which terminates because the graph is finite.
    pub fn eval_positions(&self, word: &LassoWord) -> Vec<bool> {
        let n = word.len();
        match self.node() {
            LtlNode::True => vec![true; n],
            LtlNode::False => vec![false; n],
            LtlNode::Atom(id) => (0..n).map(|i| word.at(i).get(*id)).collect(),
            LtlNode::Not(f) => f.eval_positions(word).into_iter().map(|b| !b).collect(),
            LtlNode::And(fs) => {
                let mut acc = vec![true; n];
                for f in fs {
                    for (a, b) in acc.iter_mut().zip(f.eval_positions(word)) {
                        *a &= b;
                    }
                }
                acc
            }
            LtlNode::Or(fs) => {
                let mut acc = vec![false; n];
                for f in fs {
                    for (a, b) in acc.iter_mut().zip(f.eval_positions(word)) {
                        *a |= b;
                    }
                }
                acc
            }
            LtlNode::Next(f) => {
                let c = f.eval_positions(word);
                (0..n).map(|i| c[word.succ(i)]).collect()
            }
            LtlNode::Until(a, b) => {
                let va = a.eval_positions(word);
                let vb = b.eval_positions(word);
                lfp(word, |u, i| vb[i] || (va[i] && u[word.succ(i)]))
            }
            LtlNode::Release(a, b) => {
                let va = a.eval_positions(word);
                let vb = b.eval_positions(word);
                gfp(word, |r, i| vb[i] && (va[i] || r[word.succ(i)]))
            }
            LtlNode::Globally(f) => {
                let c = f.eval_positions(word);
                gfp(word, |g, i| c[i] && g[word.succ(i)])
            }
            LtlNode::Finally(f) => {
                let c = f.eval_positions(word);
                lfp(word, |g, i| c[i] || g[word.succ(i)])
            }
        }
    }
}

/// Least fixpoint of a monotone step function over the lasso positions.
fn lfp(word: &LassoWord, step: impl Fn(&[bool], usize) -> bool) -> Vec<bool> {
    let n = word.len();
    let mut cur = vec![false; n];
    loop {
        let mut changed = false;
        // Iterate backwards for fast convergence along the chain.
        for i in (0..n).rev() {
            let v = step(&cur, i);
            if v != cur[i] {
                cur[i] = v;
                changed = true;
            }
        }
        if !changed {
            return cur;
        }
    }
}

/// Greatest fixpoint of a monotone step function over the lasso positions.
fn gfp(word: &LassoWord, step: impl Fn(&[bool], usize) -> bool) -> Vec<bool> {
    let n = word.len();
    let mut cur = vec![true; n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            let v = step(&cur, i);
            if v != cur[i] {
                cur[i] = v;
                changed = true;
            }
        }
        if !changed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::{SignalId, SignalTable};

    /// Builds a word from per-position sets of true signals.
    fn word(
        t: &SignalTable,
        positions: &[&[SignalId]],
        loop_start: usize,
    ) -> LassoWord {
        let states = positions
            .iter()
            .map(|sigs| {
                let mut v = Valuation::all_false(t.len());
                for &s in *sigs {
                    v.set(s, true);
                }
                v
            })
            .collect();
        LassoWord::new(states, loop_start).expect("well-formed word")
    }

    fn table() -> (SignalTable, SignalId, SignalId) {
        let mut t = SignalTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        (t, p, q)
    }

    #[test]
    fn atoms_and_boolean() {
        let (t, p, q) = table();
        let w = word(&t, &[&[p], &[q]], 1);
        assert!(Ltl::atom(p).holds_on(&w));
        assert!(!Ltl::atom(q).holds_on(&w));
        assert!(Ltl::and([Ltl::atom(p), Ltl::not(Ltl::atom(q))]).holds_on(&w));
    }

    #[test]
    fn next_wraps_into_loop() {
        let (t, p, q) = table();
        // states: {p}, then loop {q}
        let w = word(&t, &[&[p], &[q]], 1);
        assert!(Ltl::next(Ltl::atom(q)).holds_on(&w));
        // X at the last stored position wraps to loop_start.
        assert!(Ltl::next(Ltl::next(Ltl::atom(q))).holds_on(&w));
    }

    #[test]
    fn until_semantics() {
        let (t, p, q) = table();
        // p p q then loop on empty
        let w = word(&t, &[&[p], &[p], &[q], &[]], 3);
        assert!(Ltl::until(Ltl::atom(p), Ltl::atom(q)).holds_on(&w));
        // until requires the goal eventually: p forever without q fails
        let w2 = word(&t, &[&[p]], 0);
        assert!(!Ltl::until(Ltl::atom(p), Ltl::atom(q)).holds_on(&w2));
        // but weak until (release form) holds: q R ... dual check below
        assert!(Ltl::weak_until(Ltl::atom(p), Ltl::atom(q)).holds_on(&w2));
    }

    #[test]
    fn globally_and_finally() {
        let (t, p, q) = table();
        let w = word(&t, &[&[p], &[p, q]], 1);
        assert!(Ltl::globally(Ltl::atom(p)).holds_on(&w));
        assert!(Ltl::finally(Ltl::atom(q)).holds_on(&w));
        assert!(!Ltl::globally(Ltl::atom(q)).holds_on(&w));
        // GF q: q holds infinitely often (it's in the loop).
        assert!(Ltl::globally(Ltl::finally(Ltl::atom(q))).holds_on(&w));
        // FG q fails if the loop has a q-free state.
        let w2 = word(&t, &[&[q], &[]], 0);
        assert!(!Ltl::finally(Ltl::globally(Ltl::atom(q))).holds_on(&w2));
    }

    #[test]
    fn release_duality() {
        let (t, p, q) = table();
        let words = [
            word(&t, &[&[p], &[q], &[]], 2),
            word(&t, &[&[p, q]], 0),
            word(&t, &[&[], &[p], &[q]], 1),
        ];
        let f = Ltl::release(Ltl::atom(p), Ltl::atom(q));
        let dual = Ltl::not(Ltl::until(
            Ltl::not(Ltl::atom(p)),
            Ltl::not(Ltl::atom(q)),
        ));
        for w in &words {
            assert_eq!(f.holds_on(w), dual.holds_on(w));
        }
    }

    #[test]
    fn expansion_laws_hold_on_words() {
        let (t, p, q) = table();
        let words = [
            word(&t, &[&[p], &[q], &[]], 1),
            word(&t, &[&[p, q], &[p]], 0),
            word(&t, &[&[], &[p], &[p, q]], 2),
        ];
        let a = Ltl::atom(p);
        let b = Ltl::atom(q);
        // p U q == q | (p & X(p U q))
        let u = Ltl::until(a.clone(), b.clone());
        let u_exp = Ltl::or([
            b.clone(),
            Ltl::and([a.clone(), Ltl::next(u.clone())]),
        ]);
        // G p == p & X G p
        let g = Ltl::globally(a.clone());
        let g_exp = Ltl::and([a.clone(), Ltl::next(g.clone())]);
        for w in &words {
            assert_eq!(u.holds_on(w), u_exp.holds_on(w));
            assert_eq!(g.holds_on(w), g_exp.holds_on(w));
        }
    }

    #[test]
    fn nnf_preserves_semantics_on_words() {
        let (t, p, q) = table();
        let words = [
            word(&t, &[&[p], &[q], &[]], 1),
            word(&t, &[&[p, q], &[p]], 0),
        ];
        let formulas = [
            Ltl::not(Ltl::until(Ltl::atom(p), Ltl::atom(q))),
            Ltl::not(Ltl::globally(Ltl::finally(Ltl::atom(p)))),
            Ltl::not(Ltl::and([Ltl::atom(p), Ltl::next(Ltl::atom(q))])),
        ];
        for f in &formulas {
            for w in &words {
                assert_eq!(f.holds_on(w), f.nnf().holds_on(w), "{f:?}");
                assert_eq!(f.holds_on(w), f.core_nnf().holds_on(w), "{f:?}");
            }
        }
    }
}
