//! Canonical LTL rewriting — the first stage of the automaton reduction
//! pipeline.
//!
//! [`Ltl::simplify`] applies the formula-level reductions of Somenzi &
//! Bloem, *Efficient Büchi Automata from LTL Formulae* (CAV 2000), before
//! the GPVW tableau ever runs: idempotence and absorption of `U`/`R`/`G`/
//! `F`, outward `X` distribution, suffix-invariant collapsing (`F G F p ≡
//! G F p`), literal subsumption and syntactic-implication folding of
//! `And`/`Or` operands. Every rule preserves the language *exactly* — the
//! rewritten formula holds on precisely the same words (property-tested
//! against the [`Ltl::holds_on`] oracle and the automaton-level
//! equivalence check) — so translations of the rewritten form answer every
//! model-checking query the original would.
//!
//! The result is **canonical enough to key translation caches**:
//! syntactically distinct but rewrite-equal formulas (common in the
//! enumerated candidate class of the paper's Algorithm 1, step 2(c))
//! simplify to the same AST and share one tableau run. It is *not* a
//! decision procedure — inequivalent formulas may also stay distinct under
//! rewriting; only soundness of each fold is required.
//!
//! The pass never touches formulas the user sees: specs, reports and gap
//! properties keep the syntactic shape the designer wrote (which the
//! paper's gap-representation algorithm depends on). Rewriting happens
//! behind [`translate_cached`](../dic_automata/fn.translate_cached.html)
//! only.

use crate::formula::{Ltl, LtlNode};

impl Ltl {
    /// The canonical rewritten form of this formula: negation normal form,
    /// then the reduction rules of the [module docs](self) applied
    /// bottom-up. Deterministic, language-preserving, idempotent on its
    /// own output.
    pub fn simplify(&self) -> Ltl {
        simp(&self.nnf())
    }
}

/// Whether `f ⇒ g` can be established by the cheap structural rules below
/// (sound, incomplete, terminating — each recursion strictly shrinks the
/// combined size). Used to fold implied conjuncts/disjuncts away.
pub fn syntactically_implies(f: &Ltl, g: &Ltl) -> bool {
    if f == g {
        return true;
    }
    if matches!(f.node(), LtlNode::False) || matches!(g.node(), LtlNode::True) {
        return true;
    }
    // Conjunctions: f = ⋀fs is stronger than each fi; g = ⋀gs needs all.
    if let LtlNode::And(fs) = f.node() {
        if fs.iter().any(|fi| syntactically_implies(fi, g)) {
            return true;
        }
    }
    if let LtlNode::And(gs) = g.node() {
        if gs.iter().all(|gi| syntactically_implies(f, gi)) {
            return true;
        }
    }
    // Disjunctions, dually.
    if let LtlNode::Or(fs) = f.node() {
        if fs.iter().all(|fi| syntactically_implies(fi, g)) {
            return true;
        }
    }
    if let LtlNode::Or(gs) = g.node() {
        if gs.iter().any(|gi| syntactically_implies(f, gi)) {
            return true;
        }
    }
    match (f.node(), g.node()) {
        (LtlNode::Globally(a), LtlNode::Globally(b))
        | (LtlNode::Finally(a), LtlNode::Finally(b))
        | (LtlNode::Globally(a), LtlNode::Finally(b))
        | (LtlNode::Next(a), LtlNode::Next(b))
            if syntactically_implies(a, b) =>
        {
            return true;
        }
        (LtlNode::Until(a, b), LtlNode::Until(c, d))
        | (LtlNode::Release(a, b), LtlNode::Release(c, d))
            if syntactically_implies(a, c) && syntactically_implies(b, d) =>
        {
            return true;
        }
        // G a ⇒ c R d whenever a ⇒ d (G d implies any release of d).
        (LtlNode::Globally(a), LtlNode::Release(_, d)) if syntactically_implies(a, d) => {
            return true;
        }
        // a U b ⇒ F d whenever b ⇒ d (the until discharges eventually).
        (LtlNode::Until(_, b), LtlNode::Finally(d)) if syntactically_implies(b, d) => {
            return true;
        }
        _ => {}
    }
    // G a holds now ⇒ a holds now.
    if let LtlNode::Globally(a) = f.node() {
        if syntactically_implies(a, g) {
            return true;
        }
    }
    // a R b holds now ⇒ b holds now.
    if let LtlNode::Release(_, b) = f.node() {
        if syntactically_implies(b, g) {
            return true;
        }
    }
    // a U b ⇒ g when both a and b imply g (one of them holds now).
    if let LtlNode::Until(a, b) = f.node() {
        if syntactically_implies(a, g) && syntactically_implies(b, g) {
            return true;
        }
    }
    // d ⇒ c U d, and f ⇒ b ⇒ F b.
    if let LtlNode::Until(_, d) = g.node() {
        if syntactically_implies(f, d) {
            return true;
        }
    }
    if let LtlNode::Finally(b) = g.node() {
        if syntactically_implies(f, b) {
            return true;
        }
    }
    false
}

/// Whether the formula is *suffix-invariant*: its truth value is the same
/// at every position of every word (`G F p`, `F G p`, and Boolean/temporal
/// combinations thereof). For invariant `x`: `X x ≡ x` (and `x` is both a
/// pure eventuality and a pure universality).
fn suffix_invariant(f: &Ltl) -> bool {
    match f.node() {
        LtlNode::True | LtlNode::False => true,
        LtlNode::Globally(g) => matches!(g.node(), LtlNode::Finally(_)) || suffix_invariant(g),
        LtlNode::Finally(g) => matches!(g.node(), LtlNode::Globally(_)) || suffix_invariant(g),
        LtlNode::Next(g) => suffix_invariant(g),
        LtlNode::And(fs) | LtlNode::Or(fs) => fs.iter().all(suffix_invariant),
        _ => false,
    }
}

/// Somenzi–Bloem *pure eventuality* (μ): satisfaction is closed under
/// prepending arbitrary prefixes (`F φ`, closed under `∧`/`∨`/`X`, and
/// `a U μ`). For such μ: `F μ ≡ μ` and `a U μ ≡ μ`.
fn pure_eventuality(f: &Ltl) -> bool {
    if suffix_invariant(f) {
        return true;
    }
    match f.node() {
        LtlNode::Finally(_) => true,
        LtlNode::Next(g) => pure_eventuality(g),
        LtlNode::And(fs) | LtlNode::Or(fs) => fs.iter().all(pure_eventuality),
        LtlNode::Until(_, b) => pure_eventuality(b),
        _ => false,
    }
}

/// Somenzi–Bloem *pure universality* (ν), dual to [`pure_eventuality`]:
/// satisfaction is inherited by every suffix (`G φ`, closed under
/// `∧`/`∨`/`X`, and `a R ν`). For such ν: `G ν ≡ ν` and `a R ν ≡ ν`.
fn pure_universality(f: &Ltl) -> bool {
    if suffix_invariant(f) {
        return true;
    }
    match f.node() {
        LtlNode::Globally(_) => true,
        LtlNode::Next(g) => pure_universality(g),
        LtlNode::And(fs) | LtlNode::Or(fs) => fs.iter().all(pure_universality),
        LtlNode::Release(_, b) => pure_universality(b),
        _ => false,
    }
}

/// Structural complement in NNF: literals `p` vs `!p`; recursively through
/// the De Morgan / temporal duals. Sound (never claims complement
/// wrongly), incomplete.
fn complements(f: &Ltl, g: &Ltl) -> bool {
    match (f.node(), g.node()) {
        (LtlNode::Not(a), _) => a == g,
        (_, LtlNode::Not(b)) => b == f,
        (LtlNode::True, LtlNode::False) | (LtlNode::False, LtlNode::True) => true,
        _ => false,
    }
}

fn simp(f: &Ltl) -> Ltl {
    match f.node() {
        LtlNode::True | LtlNode::False | LtlNode::Atom(_) | LtlNode::Not(_) => f.clone(),
        LtlNode::And(fs) => s_and(fs.iter().map(simp)),
        LtlNode::Or(fs) => s_or(fs.iter().map(simp)),
        LtlNode::Next(g) => s_next(simp(g)),
        LtlNode::Globally(g) => s_globally(simp(g)),
        LtlNode::Finally(g) => s_finally(simp(g)),
        LtlNode::Until(a, b) => s_until(simp(a), simp(b)),
        LtlNode::Release(a, b) => s_release(simp(a), simp(b)),
    }
}

/// `X f` with outward normalization: `X` of a suffix-invariant formula is
/// the formula itself.
fn s_next(f: Ltl) -> Ltl {
    if suffix_invariant(&f) {
        return f;
    }
    Ltl::next(f)
}

fn s_globally(f: Ltl) -> Ltl {
    if pure_universality(&f) {
        return f;
    }
    match f.node() {
        // G X a == X G a: commute X outward so siblings can merge.
        LtlNode::Next(a) => s_next(s_globally(a.clone())),
        // G(a R b) == G b.
        LtlNode::Release(_, b) => s_globally(b.clone()),
        _ => Ltl::globally(f),
    }
}

fn s_finally(f: Ltl) -> Ltl {
    if pure_eventuality(&f) {
        return f;
    }
    match f.node() {
        LtlNode::Next(a) => s_next(s_finally(a.clone())),
        // F(a U b) == F b.
        LtlNode::Until(_, b) => s_finally(b.clone()),
        _ => Ltl::finally(f),
    }
}

fn s_until(a: Ltl, b: Ltl) -> Ltl {
    // A pure-eventuality right operand decides the whole Until.
    if pure_eventuality(&b) {
        return b;
    }
    match (a.node(), b.node()) {
        (LtlNode::True, _) => return s_finally(b),
        (LtlNode::False, _) | (_, LtlNode::False) => return Ltl::until(a, b),
        // a U (a U b) == a U b.
        (_, LtlNode::Until(a2, _)) if *a2 == a => return b,
        // (a U b) U b == a U b.
        (LtlNode::Until(_, b2), _) if *b2 == b => return a,
        // X a U X b == X(a U b).
        (LtlNode::Next(na), LtlNode::Next(nb)) => {
            return s_next(s_until(na.clone(), nb.clone()))
        }
        _ => {}
    }
    // a ⇒ b makes the wait vacuous: a U b == b.
    if syntactically_implies(&a, &b) {
        return b;
    }
    Ltl::until(a, b)
}

fn s_release(a: Ltl, b: Ltl) -> Ltl {
    // A pure-universality right operand decides the whole Release.
    if pure_universality(&b) {
        return b;
    }
    match (a.node(), b.node()) {
        (LtlNode::False, _) => return s_globally(b),
        (LtlNode::True, _) | (_, LtlNode::True) | (_, LtlNode::False) => {
            return Ltl::release(a, b)
        }
        // a R (a R b) == a R b.
        (_, LtlNode::Release(a2, _)) if *a2 == a => return b,
        // (a R b) R b == a R b.
        (LtlNode::Release(_, b2), _) if *b2 == b => return a,
        // X a R X b == X(a R b).
        (LtlNode::Next(na), LtlNode::Next(nb)) => {
            return s_next(s_release(na.clone(), nb.clone()))
        }
        _ => {}
    }
    // b ⇒ a releases immediately: a R b == b.
    if syntactically_implies(&b, &a) {
        return b;
    }
    Ltl::release(a, b)
}

/// Conjunction with merging and folding (operands already simplified):
/// `G`s merge into one, `X`s pull out, equal-right `U`s and equal-left
/// `R`s combine, syntactically implied conjuncts drop, complementary
/// conjuncts collapse to `false`.
fn s_and<I: IntoIterator<Item = Ltl>>(parts: I) -> Ltl {
    // Flatten through the smart constructor first (constants, nesting).
    let flat = Ltl::and(parts);
    let LtlNode::And(fs) = flat.node() else {
        return flat;
    };
    let mut globals: Vec<Ltl> = Vec::new();
    let mut nexts: Vec<Ltl> = Vec::new();
    let mut rest: Vec<Ltl> = Vec::new();
    for p in fs {
        match p.node() {
            // G a ∧ G b == G(a ∧ b): one Release subformula instead of two.
            LtlNode::Globally(g) => globals.push(g.clone()),
            // X a ∧ X b == X(a ∧ b).
            LtlNode::Next(g) => nexts.push(g.clone()),
            _ => rest.push(p.clone()),
        }
    }
    let mut out = rest;
    if globals.len() == 1 {
        out.push(Ltl::globally(globals.pop().expect("len checked")));
    } else if !globals.is_empty() {
        out.push(s_globally(s_and(globals)));
    }
    if nexts.len() == 1 {
        out.push(Ltl::next(nexts.pop().expect("len checked")));
    } else if !nexts.is_empty() {
        out.push(s_next(s_and(nexts)));
    }
    // (a U b) ∧ (c U b) == (a ∧ c) U b; (a R b) ∧ (a R c) == a R (b ∧ c).
    out = fold_pairs(out, |x, y| match (x.node(), y.node()) {
        (LtlNode::Until(a, b), LtlNode::Until(c, d)) if b == d => {
            Some(s_until(s_and([a.clone(), c.clone()]), b.clone()))
        }
        (LtlNode::Release(a, b), LtlNode::Release(c, d)) if a == c => {
            Some(s_release(a.clone(), s_and([b.clone(), d.clone()])))
        }
        _ => None,
    });
    // Complementary conjuncts: f ∧ ¬f == false.
    for i in 0..out.len() {
        for j in i + 1..out.len() {
            if complements(&out[i], &out[j]) {
                return Ltl::ff();
            }
        }
    }
    Ltl::and(drop_implied(out, syntactically_implies))
}

/// Disjunction, dual to [`s_and`]: `F`s merge, `X`s pull out, equal-left
/// `U`s and equal-right `R`s combine, implied (stronger) disjuncts drop,
/// complementary disjuncts collapse to `true`.
fn s_or<I: IntoIterator<Item = Ltl>>(parts: I) -> Ltl {
    let flat = Ltl::or(parts);
    let LtlNode::Or(fs) = flat.node() else {
        return flat;
    };
    let mut finals: Vec<Ltl> = Vec::new();
    let mut nexts: Vec<Ltl> = Vec::new();
    let mut rest: Vec<Ltl> = Vec::new();
    for p in fs {
        match p.node() {
            // F a ∨ F b == F(a ∨ b).
            LtlNode::Finally(g) => finals.push(g.clone()),
            LtlNode::Next(g) => nexts.push(g.clone()),
            _ => rest.push(p.clone()),
        }
    }
    let mut out = rest;
    if finals.len() == 1 {
        out.push(Ltl::finally(finals.pop().expect("len checked")));
    } else if !finals.is_empty() {
        out.push(s_finally(s_or(finals)));
    }
    if nexts.len() == 1 {
        out.push(Ltl::next(nexts.pop().expect("len checked")));
    } else if !nexts.is_empty() {
        out.push(s_next(s_or(nexts)));
    }
    // (a U b) ∨ (a U c) == a U (b ∨ c); (a R b) ∨ (c R b) == (a ∨ c) R b.
    out = fold_pairs(out, |x, y| match (x.node(), y.node()) {
        (LtlNode::Until(a, b), LtlNode::Until(c, d)) if a == c => {
            Some(s_until(a.clone(), s_or([b.clone(), d.clone()])))
        }
        (LtlNode::Release(a, b), LtlNode::Release(c, d)) if b == d => {
            Some(s_release(s_or([a.clone(), c.clone()]), b.clone()))
        }
        _ => None,
    });
    for i in 0..out.len() {
        for j in i + 1..out.len() {
            if complements(&out[i], &out[j]) {
                return Ltl::tt();
            }
        }
    }
    // In a disjunction the *stronger* operand is absorbed by the weaker.
    Ltl::or(drop_implied(out, |keep, cand| syntactically_implies(cand, keep)))
}

/// Repeatedly merges the first combinable pair until none combines
/// (deterministic: earliest pair in operand order wins each round; every
/// merge shrinks the list, so this terminates).
fn fold_pairs(mut parts: Vec<Ltl>, combine: impl Fn(&Ltl, &Ltl) -> Option<Ltl>) -> Vec<Ltl> {
    'again: loop {
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                if let Some(merged) = combine(&parts[i], &parts[j]) {
                    parts.remove(j);
                    parts[i] = merged;
                    continue 'again;
                }
            }
        }
        return parts;
    }
}

/// Removes operands another operand makes redundant: `cand` at index `j`
/// drops when some distinct kept operand `keep` at index `i` satisfies
/// `redundant(keep, cand)` — with ties (mutual redundancy) resolved by
/// keeping the earliest, so the result is order-deterministic.
fn drop_implied(parts: Vec<Ltl>, redundant: impl Fn(&Ltl, &Ltl) -> bool) -> Vec<Ltl> {
    let mut keep = vec![true; parts.len()];
    for j in 0..parts.len() {
        for i in 0..parts.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            if redundant(&parts[i], &parts[j]) && (i < j || !redundant(&parts[j], &parts[i])) {
                keep[j] = false;
            }
        }
    }
    parts
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_formula, random_word, XorShift64};
    use dic_logic::SignalTable;

    fn parse(t: &mut SignalTable, src: &str) -> Ltl {
        Ltl::parse(src, t).expect("parse")
    }

    #[test]
    fn classic_reductions() {
        let mut t = SignalTable::new();
        let cases = [
            ("F F p", "F p"),
            ("G G p", "G p"),
            ("F G F p", "G F p"),
            ("G F G p", "F G p"),
            ("X G F p", "G F p"),
            ("p U (p U q)", "p U q"),
            ("(p U q) U q", "p U q"),
            ("F(p U q)", "F q"),
            ("G(p R q)", "G q"),
            ("X p & X q", "X(p & q)"),
            ("X p | X q", "X(p | q)"),
            ("(X p) U (X q)", "X(p U q)"),
            ("G p & G q", "G(p & q)"),
            ("F p | F q", "F(p | q)"),
            ("(p U r) & (q U r)", "(p & q) U r"),
            ("(p U q) | (p U r)", "p U (q | r)"),
            ("p U F q", "F q"),
            ("q R G F p", "G F p"),
            ("p & (p | q)", "p"),
            ("p | (p & q)", "p"),
            ("G p & p", "G p"),
            ("G p & F p", "G p"),
            ("p & !p", "false"),
            ("p | !p", "true"),
            ("G G F p", "G F p"),
            ("q R G p", "G p"),
        ];
        for (src, want) in cases {
            let f = parse(&mut t, src);
            let got = f.simplify();
            let expect = parse(&mut t, want).simplify();
            assert_eq!(
                got,
                expect,
                "{} simplified to {:?}, wanted {:?}",
                src,
                got.display(&t).to_string(),
                expect.display(&t).to_string()
            );
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
        for seed in 1..200u64 {
            let f = random_formula(&mut XorShift64::new(seed), &atoms, 14);
            let once = f.simplify();
            assert_eq!(once, once.simplify(), "not idempotent on {f:?}");
        }
    }

    #[test]
    fn simplify_never_grows() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
        for seed in 1..200u64 {
            let f = random_formula(&mut XorShift64::new(seed), &atoms, 14);
            let s = f.simplify();
            assert!(
                s.size() <= f.nnf().size(),
                "grew: {f:?} ({}) -> {s:?} ({})",
                f.nnf().size(),
                s.size()
            );
        }
    }

    #[test]
    fn simplify_preserves_semantics_on_random_words() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q"), t.intern("r")];
        for seed in 1..400u64 {
            let mut rng = XorShift64::new(seed);
            let f = random_formula(&mut rng, &atoms, 12);
            let s = f.simplify();
            for _ in 0..6 {
                let (pre, lp) = (rng.below(3), 1 + rng.below(4));
                let w = random_word(&mut rng, atoms.len(), pre, lp);
                assert_eq!(
                    f.holds_on(&w),
                    s.holds_on(&w),
                    "semantics broke on {f:?} -> {s:?}"
                );
            }
        }
    }

    #[test]
    fn syntactic_implication_is_sound_on_words() {
        let mut t = SignalTable::new();
        let atoms = vec![t.intern("p"), t.intern("q")];
        for seed in 1..600u64 {
            let mut rng = XorShift64::new(seed);
            let f = random_formula(&mut rng, &atoms, 8);
            let g = random_formula(&mut rng, &atoms, 8);
            if !syntactically_implies(&f, &g) {
                continue;
            }
            for _ in 0..8 {
                let (pre, lp) = (rng.below(3), 1 + rng.below(3));
                let w = random_word(&mut rng, atoms.len(), pre, lp);
                assert!(
                    !f.holds_on(&w) || g.holds_on(&w),
                    "claimed {f:?} => {g:?}, refuted by a word"
                );
            }
        }
    }

    #[test]
    fn syntactic_implication_catches_the_expected_pairs() {
        let mut t = SignalTable::new();
        let pairs = [
            ("G p", "p"),
            ("G p", "F p"),
            ("G p", "G p | q"),
            ("p & q", "p"),
            ("p", "p | q"),
            ("G(p & q)", "G p"),
            ("p U q", "F q"),
            ("q", "p U q"),
            ("G p", "q R p"),
            ("p R q", "q"),
            ("X(p & q)", "X p"),
            ("(p & q) U (q & p)", "p U q"),
        ];
        for (f_src, g_src) in pairs {
            let f = parse(&mut t, f_src);
            let g = parse(&mut t, g_src);
            assert!(
                syntactically_implies(&f.nnf(), &g.nnf()),
                "{f_src} should syntactically imply {g_src}"
            );
        }
        // Not complete, and never unsound on non-implications.
        let f = parse(&mut t, "F p");
        let g = parse(&mut t, "G p");
        assert!(!syntactically_implies(&f, &g));
    }

    #[test]
    fn suffix_invariants_detected_and_sound() {
        let mut t = SignalTable::new();
        for src in ["G F p", "F G p", "G F p & F G q", "G F p | G F q", "X G F p"] {
            let f = parse(&mut t, src);
            assert!(suffix_invariant(&f.nnf()), "{src} should be invariant");
        }
        for src in ["p", "F p", "G p", "p U q", "X p"] {
            let f = parse(&mut t, src);
            assert!(!suffix_invariant(&f.nnf()), "{src} is not invariant");
        }
    }

    #[test]
    fn candidate_class_shapes_converge() {
        // Rewrite-equal but syntactically distinct conjuncts, as Algorithm
        // 1's enumerated candidates produce them, must converge to one AST
        // (this is what lets the translation cache share their tableaus).
        let mut t = SignalTable::new();
        let a = parse(&mut t, "G(r1 -> X d1) & G(r1 -> X d1)");
        let b = parse(&mut t, "G((r1 -> X d1) & (r1 -> X d1))");
        assert_eq!(a.simplify(), b.simplify());
        let c = parse(&mut t, "X r1 & X X d1");
        let d = parse(&mut t, "X(r1 & X d1)");
        assert_eq!(c.simplify(), d.simplify());
    }
}
